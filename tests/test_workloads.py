"""SPEClite workloads: self-checks on the functional golden model."""

import pytest

from repro.functional import run_program
from repro.workloads import WORKLOAD_NAMES, build_suite, build_workload


@pytest.mark.parametrize("name", WORKLOAD_NAMES)
def test_workload_selfcheck_functional(name):
    workload = build_workload(name, scale="test")
    program = workload.assemble()
    result = run_program(program, max_instructions=2_000_000)
    assert workload.validate(result.regs), (
        f"{name}: a0={result.regs[10]:#x} expected {workload.check_value:#x}"
    )


def test_suite_has_fourteen_distinct_workloads():
    suite = build_suite(scale="test")
    names = [w.name for w in suite]
    assert len(names) == 14
    assert len(set(names)) == 14
    categories = {w.category for w in suite}
    assert categories == {"memory", "control", "compute"}


def test_cipher_marks_secret_key():
    workload = build_workload("cipher", scale="test")
    program = workload.assemble()
    key_addr = program.address_of("key")
    assert program.is_secret_address(key_addr)
    assert program.is_secret_address(key_addr + 31)
    assert not program.is_secret_address(program.address_of("messages"))


def test_unknown_workload_rejected():
    with pytest.raises(KeyError):
        build_workload("perlbench")


@pytest.mark.parametrize("name", WORKLOAD_NAMES)
def test_workload_dynamic_size_in_budget(name):
    """Test scale must stay small enough for the cycle-level tests."""
    workload = build_workload(name, scale="test")
    result = run_program(workload.assemble(), max_instructions=2_000_000)
    assert 1_000 < result.instructions < 120_000
