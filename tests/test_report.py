"""Artifact collection into EXPERIMENTS.md."""

from repro.harness.report import (
    collect_artifacts,
    render_record,
    update_experiments_md,
)


def test_collect_missing_dir(tmp_path):
    assert collect_artifacts(tmp_path / "nope") == {}


def test_collect_and_render(tmp_path):
    (tmp_path / "fig2.txt").write_text("fig2 table body\n")
    (tmp_path / "fig5.txt").write_text("fig5 table body\n")
    (tmp_path / "unrelated.txt").write_text("ignored\n")
    artifacts = collect_artifacts(tmp_path)
    assert set(artifacts) == {"fig2", "fig5"}
    record = render_record(artifacts, scale="test")
    assert record.index("fig2 table body") < record.index("fig5 table body")
    assert "```" in record


def test_update_experiments_md(tmp_path):
    artifacts = tmp_path / "artifacts"
    artifacts.mkdir()
    (artifacts / "fig2.txt").write_text("NUMBERS\n")
    doc = tmp_path / "EXPERIMENTS.md"
    doc.write_text("# header\n\nprose\n\n## Recorded numbers\n\nold stuff\n")
    assert update_experiments_md(doc, artifacts, scale="test")
    text = doc.read_text()
    assert "NUMBERS" in text
    assert "old stuff" not in text
    assert text.startswith("# header")


def test_update_without_marker_is_noop(tmp_path):
    artifacts = tmp_path / "artifacts"
    artifacts.mkdir()
    (artifacts / "fig2.txt").write_text("NUMBERS\n")
    doc = tmp_path / "EXPERIMENTS.md"
    doc.write_text("no marker here\n")
    assert not update_experiments_md(doc, artifacts)
    assert doc.read_text() == "no marker here\n"
