"""Property tests for the dataflow solver and metadata degradation.

Two invariants the rest of the PR leans on:

* The worklist solver and the naive round-robin reference reach the *same*
  fixpoint on arbitrary generated CFGs (monotone frameworks have a unique
  maximal fixpoint; the schedulers differ wildly, the answer must not).
* ``BranchDependencyInfo.degraded()`` is conservative: it may erase
  reconvergence points (the hardware then holds regions until resolve) but
  must never shrink a dependency set.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings

from repro.asm import assemble
from repro.analysis import (
    LiveRegisters,
    ReachingDefinitions,
    live_registers,
    reaching_definitions,
    solve_round_robin,
)
from repro.cfg import build_all_cfgs
from repro.compiler import run_levioso_pass
from repro.testing import programs

PROPERTY_SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def _facts(result):
    return (result.entry_facts, result.exit_facts)


@PROPERTY_SETTINGS
@given(source=programs())
def test_worklist_matches_round_robin_fixpoint(source):
    program = assemble(source, name="prop")
    for cfg in build_all_cfgs(program):
        worklist_fwd = reaching_definitions(cfg)
        naive_fwd = solve_round_robin(cfg, ReachingDefinitions())
        assert _facts(worklist_fwd) == _facts(naive_fwd)

        worklist_bwd = live_registers(cfg)
        naive_bwd = solve_round_robin(cfg, LiveRegisters())
        assert _facts(worklist_bwd) == _facts(naive_bwd)


@PROPERTY_SETTINGS
@given(source=programs())
def test_degraded_metadata_never_shrinks_dependency_sets(source):
    program = assemble(source, name="prop")
    info = run_levioso_pass(program)
    degraded = info.degraded(keep_reconvergence=False)
    assert set(degraded.control_dep_pcs) == set(info.control_dep_pcs)
    for branch_pc, region in info.control_dep_pcs.items():
        assert degraded.control_dep_pcs[branch_pc] >= region
    assert all(v is None for v in degraded.reconv_pc.values())
    assert degraded.indirect_pcs == info.indirect_pcs
