"""Levioso compiler pass: reconvergence, control dependence, stats."""

from repro.asm import assemble
from repro.compiler import (
    control_dependent_pcs,
    dynamic_dependence_stats,
    ensure_analysis,
    run_levioso_pass,
    static_stats,
)
from repro.cfg import build_function_cfg
from repro.functional import run_program

DIAMOND = """
.text
    li a0, 1
    beq a0, zero, else_side
    addi a1, zero, 10
    j join
else_side:
    addi a1, zero, 20
join:
    addi a2, a1, 1
    halt
"""


def test_reconvergence_of_diamond_branch():
    program = assemble(DIAMOND)
    info = run_levioso_pass(program)
    branch_pc = program.text_base + 4
    assert info.reconvergence_of(branch_pc) == program.address_of("join")


def test_control_dependent_pcs_are_the_two_arms():
    program = assemble(DIAMOND)
    cfg = build_function_cfg(program, program.entry)
    branch_pc = program.text_base + 4
    deps = control_dependent_pcs(cfg, branch_pc)
    join = program.address_of("join")
    assert deps  # both arms
    assert all(pc < join for pc in deps)
    assert branch_pc not in deps
    assert join not in deps


def test_loop_branch_region_is_loop_body():
    source = """
    .text
        li a0, 0
        li a1, 10
    loop:
        addi a0, a0, 1
        bne a0, a1, loop
        addi a2, a0, 0
        halt
    """
    program = assemble(source)
    info = run_levioso_pass(program)
    branch_pc = program.address_of("loop") + 4
    # Reconvergence of the loop back-branch is the loop exit.
    assert info.reconvergence_of(branch_pc) == branch_pc + 4
    # The loop body (including the branch's own block via the back edge)
    # is control-dependent on it.
    assert program.address_of("loop") in info.control_dep_pcs[branch_pc]


def test_branch_without_reconvergence():
    source = """
    .text
        li a0, 1
        beq a0, zero, other
        halt
    other:
        addi a1, zero, 2
        halt
    """
    program = assemble(source)
    info = run_levioso_pass(program)
    branch_pc = program.text_base + 4
    # Both arms halt: the join is the function exit -> no reconvergence PC.
    assert info.reconvergence_of(branch_pc) is None


def test_indirect_jumps_recorded():
    source = """
    .text
        call helper
        halt
    helper:
        ret
    """
    program = assemble(source)
    info = run_levioso_pass(program)
    assert program.address_of("helper") in info.indirect_pcs


def test_degraded_info_loses_reconvergence():
    program = assemble(DIAMOND)
    info = run_levioso_pass(program)
    degraded = info.degraded(keep_reconvergence=False)
    assert all(v is None for v in degraded.reconv_pc.values())
    assert set(degraded.reconv_pc) == set(info.reconv_pc)


def test_static_stats_reasonable():
    program = assemble(DIAMOND)
    stats = static_stats(program)
    assert stats.static_branches == 1
    assert stats.reconvergence_coverage == 1.0
    assert 0 < stats.frac_insts_in_any_region < 1


def test_dynamic_stats_true_leq_conservative():
    source = """
    .text
        li a0, 0
        li a1, 200
    loop:
        addi a0, a0, 1
        and t0, a0, a1
        or t1, t0, a0
        xor t2, t1, a1
        bne a0, a1, loop
        halt
    """
    program = assemble(source)
    result = run_program(program, trace=True)
    stats = dynamic_dependence_stats(program, result.trace)
    assert 0.0 <= stats.true_fraction <= stats.conservative_fraction <= 1.0
    assert stats.dynamic_instructions == result.instructions


def test_ensure_analysis_is_cached():
    program = assemble(DIAMOND)
    first = ensure_analysis(program)
    second = ensure_analysis(program)
    assert first is second
