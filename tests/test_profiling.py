"""The profiling harness: report shape, cycle attribution, CLI entry."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.profiling import SORT_KEYS, profile_run, render_profile
from repro.secure import make_policy
from repro.uarch import OooCore
from repro.workloads import build_workload


def test_profile_run_report_shape():
    program = build_workload("gather", "test").assemble()
    report = profile_run(program, "levioso")
    assert report["workload"] == program.name
    assert report["policy"] == "levioso"
    # A real run must surface a meaningful call profile.
    assert len(report["top_functions"]) >= 10
    for row in report["top_functions"]:
        assert row["ncalls"] > 0
        assert row["cumtime"] >= row["tottime"] >= 0.0
    # cumtime sort means descending cumulative time.
    cums = [row["cumtime"] for row in report["top_functions"]]
    assert cums == sorted(cums, reverse=True)
    assert report["run"]["cycles"] > 0
    assert report["run"]["inst_per_sec"] > 0
    horizon = report["event_horizon"]
    assert 0.0 <= horizon["skip_fraction"] < 1.0
    assert horizon["cycles_skipped"] == (
        report["cycle_attribution"]["simulated_cycles"]
        - report["cycle_attribution"]["stepped_cycles"]
    )


def test_profile_cycle_attribution_matches_core_stats():
    program = build_workload("gather", "test").assemble()
    report = profile_run(program, "levioso")
    # The attribution block mirrors a plain run's CoreStats (profiling
    # must not perturb simulated state).
    plain = OooCore(program, policy=make_policy("levioso")).run()
    attr = report["cycle_attribution"]
    assert attr["simulated_cycles"] == plain.stats.cycles
    assert attr["fetch_stall_cycles"] == plain.stats.fetch_stall_cycles
    assert attr["rob_full_stalls"] == plain.stats.rob_full_stalls
    assert attr["load_gate_cycles"] == plain.stats.load_gate_cycles


def test_profile_run_rejects_unknown_sort():
    program = build_workload("gather", "test").assemble()
    with pytest.raises(ValueError, match="sort"):
        profile_run(program, sort="walltime")
    assert "cumtime" in SORT_KEYS


def test_render_profile_is_readable():
    program = build_workload("gather", "test").assemble()
    report = profile_run(program, "levioso", top=5)
    text = render_profile(report)
    assert "workload gather" in text
    assert "event horizon" in text
    assert "top functions by cumtime" in text


def test_cli_profile_json(capsys):
    rc = main(["profile", "gather", "--policy", "levioso", "--json", "--top", "12"])
    assert rc == 0
    report = json.loads(capsys.readouterr().out)
    assert report["workload"] == "gather"
    assert len(report["top_functions"]) >= 10


def test_cli_profile_no_cycle_skip(capsys):
    rc = main(["profile", "gather", "--no-cycle-skip"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "0 of" in out or "(0.0%)" in out
