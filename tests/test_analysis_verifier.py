"""Regression suite: metadata verifier + gadget scanner + dynamic crosscheck.

Unsoundness of the compiler metadata anywhere in the SPEClite suite is a
hard failure — it would mean the hardware can release an instruction the
branch actually controls.  The gadget scanner must flag every attack in
``repro.attacks`` and none of the benign kernels.
"""

import dataclasses

import pytest

from repro.analysis import (
    KIND_V1,
    KIND_V1_CT,
    KIND_V2,
    crosscheck_retired,
    run_with_crosscheck,
    scan_program,
    verify_metadata,
)
from repro.attacks import ATTACKS
from repro.compiler import ensure_analysis
from repro.errors import AnalysisError
from repro.harness import ExperimentRunner
from repro.secure import make_policy
from repro.uarch import OooCore
from repro.workloads import WORKLOAD_NAMES, build_workload

EXPECTED_KINDS = {
    "spectre_v1": KIND_V1,
    "spectre_v1_ct": KIND_V1_CT,
    "spectre_v2": KIND_V2,
}


@pytest.fixture(scope="module")
def workload_programs():
    return {
        name: build_workload(name, scale="test").assemble()
        for name in WORKLOAD_NAMES
    }


# ------------------------------------------------------------------ verifier
@pytest.mark.parametrize("name", WORKLOAD_NAMES)
def test_metadata_sound_on_workload(name, workload_programs):
    report = verify_metadata(workload_programs[name])
    assert report.sound, [v.to_dict() for v in report.violations]
    assert report.branches_checked > 0


@pytest.mark.parametrize("name", sorted(ATTACKS))
def test_metadata_sound_on_gadget(name):
    report = verify_metadata(ATTACKS[name]())
    assert report.sound, [v.to_dict() for v in report.violations]


def test_verifier_catches_seeded_missed_dependence():
    program = build_workload("bsearch", scale="test").assemble()
    info = ensure_analysis(program)
    branch_pc, region = next(
        (pc, pcs) for pc, pcs in info.control_dep_pcs.items() if pcs
    )
    tampered = dataclasses.replace(
        info,
        control_dep_pcs={
            **info.control_dep_pcs,
            branch_pc: frozenset(list(region)[:-1]),
        },
    )
    report = verify_metadata(program, tampered)
    assert not report.sound
    assert any(v.kind == "missed-dependence" for v in report.violations)


def test_verifier_catches_bogus_reconvergence():
    from repro.asm import assemble

    source = """
.text
    li t0, 1
    beqz t0, other
    addi t1, t1, 1
    j join
other:
    addi t1, t1, 2
join:
    halt
"""
    program = assemble(source, name="diamond")
    info = ensure_analysis(program)
    branch_pc = next(iter(info.reconv_pc))
    assert info.reconv_pc[branch_pc] == program.address_of("join")
    # Claim the branch reconverges inside one arm of the diamond — a block
    # the other arm bypasses, so it cannot post-dominate the branch.
    tampered = dataclasses.replace(
        info,
        reconv_pc={**info.reconv_pc, branch_pc: program.address_of("other")},
    )
    report = verify_metadata(program, tampered)
    assert any(v.kind == "bogus-reconvergence" for v in report.violations)


# ------------------------------------------------------------------- scanner
@pytest.mark.parametrize("name", sorted(ATTACKS))
def test_scanner_flags_every_gadget(name):
    report = scan_program(ATTACKS[name]())
    assert not report.clean
    assert EXPECTED_KINDS[name] in report.counts_by_kind()
    assert report.flagged_transmitters >= 1


@pytest.mark.parametrize("name", WORKLOAD_NAMES)
def test_scanner_clean_on_benign_workload(name, workload_programs):
    report = scan_program(workload_programs[name])
    assert report.clean, [f.to_dict() for f in report.findings]


# ---------------------------------------------------------------- crosscheck
@pytest.mark.parametrize("name", WORKLOAD_NAMES)
def test_dynamic_deps_within_static_prediction(name, workload_programs):
    program = workload_programs[name]
    _, report = run_with_crosscheck(program, policy=make_policy("levioso"))
    assert report.ok
    assert report.dependences_checked > 0
    # test-scale workloads are single-function: every dependence should be
    # positively confirmed, not excused.
    assert report.confirmed == report.dependences_checked


def test_crosscheck_detects_tampered_metadata():
    program = build_workload("branchy", scale="test").assemble()
    core = OooCore(program, policy=make_policy("none"), record_pipeline=True)
    core.run()
    info = ensure_analysis(program)
    tampered = dataclasses.replace(
        info,
        control_dep_pcs={pc: frozenset() for pc in info.control_dep_pcs},
    )
    report = crosscheck_retired(program, core.retired, tampered)
    assert not report.ok
    assert report.violations


def test_runner_crosscheck_option():
    runner = ExperimentRunner(scale="test", crosscheck=True)
    record = runner.run("bsearch", "levioso")
    assert record.cycles > 0
    assert runner.simulations == 1


def test_run_with_crosscheck_raises_on_violation():
    program = build_workload("branchy", scale="test").assemble()
    ensure_analysis(program)
    program.analysis = dataclasses.replace(
        program.analysis,
        control_dep_pcs={
            pc: frozenset() for pc in program.analysis.control_dep_pcs
        },
    )
    with pytest.raises(AnalysisError):
        run_with_crosscheck(program, policy=make_policy("none"))
