"""Assembler: directives, pseudo-ops, errors, disassembler round trip."""

import pytest

from repro.asm import Assembler, assemble, disassemble
from repro.errors import AssemblerError
from repro.functional import run_program
from repro.isa import Opcode


# ----------------------------------------------------------------- sections
def test_data_directives_layout():
    program = assemble("""
    .data
    a: .byte 1, 2
    b: .half 3
    c: .align 3
    d: .dword 0x1122334455667788
    e: .word -1
    """)
    base = program.data_base
    assert program.address_of("a") == base
    assert program.address_of("b") == base + 2
    assert program.address_of("d") == base + 8  # aligned to 8
    assert program.data[0:2] == b"\x01\x02"
    assert program.data[8:16] == bytes.fromhex("8877665544332211")


def test_ascii_and_zero():
    program = assemble("""
    .data
    s: .asciiz "hi\\n"
    z: .zero 4
    """)
    assert program.data[:4] == b"hi\n\x00"
    assert program.address_of("z") == program.data_base + 4


def test_equ_constants():
    program = assemble("""
    .equ SIZE, 8
    .equ DOUBLE, SIZE + SIZE
    .text
        li a0, DOUBLE
        halt
    """)
    result = run_program(program)
    assert result.state.read_reg(10) == 16


def test_entry_directive():
    program = assemble("""
    .entry start
    .text
    pad:
        nop
    start:
        li a0, 9
        halt
    """)
    assert program.entry == program.address_of("start")
    assert run_program(program).state.read_reg(10) == 9


def test_secret_ranges_named():
    program = assemble("""
    .data
    pub: .dword 1
    .secret keys
    k1: .dword 2
    k2: .dword 3
    .public
    pub2: .dword 4
    """)
    assert len(program.secret_ranges) == 1
    srange = program.secret_ranges[0]
    assert srange.name == "keys"
    assert program.is_secret_address(program.address_of("k1"))
    assert program.is_secret_address(program.address_of("k2") + 7)
    assert not program.is_secret_address(program.address_of("pub"))
    assert not program.is_secret_address(program.address_of("pub2"))


# ----------------------------------------------------------------- pseudo-ops
@pytest.mark.parametrize(
    "line,expected_op",
    [
        ("mv a0, a1", Opcode.ADDI),
        ("not a0, a1", Opcode.XORI),
        ("neg a0, a1", Opcode.SUB),
        ("beqz a0, target", Opcode.BEQ),
        ("bgtz a0, target", Opcode.BLT),
        ("ble a0, a1, target", Opcode.BGE),
        ("j target", Opcode.JAL),
        ("call target", Opcode.JAL),
        ("ret", Opcode.JALR),
        ("jr a0", Opcode.JALR),
    ],
)
def test_pseudo_expansion(line, expected_op):
    program = assemble(f"""
    .text
    target:
        {line}
        halt
    """)
    assert program.instructions[0].opcode is expected_op


def test_pseudo_semantics():
    program = assemble("""
    .text
        li a1, 7
        mv a0, a1
        not a2, a1
        neg a3, a1
        halt
    """)
    state = run_program(program).state
    assert state.read_reg(10) == 7
    assert state.read_reg(12) == (~7) & ((1 << 64) - 1)
    assert state.read_reg(13) == (-7) & ((1 << 64) - 1)


# -------------------------------------------------------------------- errors
@pytest.mark.parametrize(
    "source,fragment",
    [
        (".text\n  bogus a0, a1", "unknown mnemonic"),
        (".text\n  add a0, a1", "expects 3 operand"),
        (".text\n  ld a0, label", "offset(base)"),
        (".data\n  .word 1\n.text\n  halt\n.data\nx:\n.text\n  j undefined_label", "undefined symbol"),
        (".text\nl:\nl:\n  halt", "duplicate symbol"),
        (".text\n  .word 5", "outside .data"),
        (".data\n  addi a0, a0, 1", "instruction outside .text"),
        (".text\n  li a0, 1 2", "expected comma"),
        (".data\n  .byte 300", "does not fit"),
        (".text\n  addi a0, a0, $", "unexpected character"),
    ],
)
def test_assembler_errors(source, fragment):
    with pytest.raises(AssemblerError) as excinfo:
        assemble(source)
    assert fragment in str(excinfo.value)


def test_error_carries_line_number():
    with pytest.raises(AssemblerError) as excinfo:
        assemble(".text\n  nop\n  bogus\n")
    assert "line 3" in str(excinfo.value)


# --------------------------------------------------------------- disassembly
def test_disassemble_reassembles_equivalently():
    source = """
    .text
        li a0, 0
        li a1, 5
    loop:
        addi a0, a0, 3
        bne a0, a1, skip
        addi a0, a0, 100
    skip:
        blt a0, a1, loop
        halt
    """
    program = assemble(source)
    round_tripped = assemble(disassemble(program))
    first = run_program(program)
    second = run_program(round_tripped)
    assert first.regs == second.regs
    assert len(program) == len(round_tripped)


def test_custom_bases():
    asm = Assembler(text_base=0x4000, data_base=0x200000)
    program = asm.assemble(".data\nv: .dword 1\n.text\n  halt\n")
    assert program.text_base == 0x4000
    assert program.address_of("v") == 0x200000
    assert program.inst_at(0x4000).opcode is Opcode.HALT
