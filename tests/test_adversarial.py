"""Adversarial engine: synthesis, differential oracle, repair, campaign."""

import json

import pytest

from repro.adversarial import (
    CampaignConfig,
    build_fuzz_workload,
    parse_fuzz_name,
    program_verdict,
    repair_program,
    run_campaign,
    secret_filled,
    synth_source,
    synthesize_item,
)
from repro.analysis import scan_program
from repro.asm import assemble
from repro.attacks import spectre_v1, spectre_v1_ct, spectre_v2
from repro.cli import main
from repro.compiler import insert_fences
from repro.errors import HarnessError
from repro.harness import ParallelRunner

GADGETS = {
    "spectre_v1": spectre_v1,
    "spectre_v1_ct": spectre_v1_ct,
    "spectre_v2": spectre_v2,
}

#: Per-policy expected oracle verdicts on the hand-written gadgets — the
#: dynamic twin of the attack suite's Fig 5 matrix.  ``stt`` stops v1
#: (the secret enters speculatively and is tracked) but not v1-ct/v2
#: (non-speculatively loaded secrets are outside its taint source).
EXPECTED_LEAKS = {
    "none": {"spectre_v1": True, "spectre_v1_ct": True, "spectre_v2": True},
    "stt": {"spectre_v1": False, "spectre_v1_ct": True, "spectre_v2": True},
    "fence": {"spectre_v1": False, "spectre_v1_ct": False, "spectre_v2": False},
    "levioso": {"spectre_v1": False, "spectre_v1_ct": False, "spectre_v2": False},
}


def _gadget_program(name):
    return assemble(GADGETS[name]().source, name=name)


@pytest.mark.parametrize("policy", sorted(EXPECTED_LEAKS))
def test_oracle_matrix_matches_attack_suite(policy):
    for name, want_leak in EXPECTED_LEAKS[policy].items():
        verdict = program_verdict(_gadget_program(name), policy)
        assert verdict.leaks == want_leak, (name, policy, verdict)


def test_secret_filled_patches_only_secret_bytes():
    program = _gadget_program("spectre_v1")
    filled = secret_filled(program, 0x7F)
    assert filled.data != program.data
    for offset, (old, new) in enumerate(zip(program.data, filled.data)):
        address = program.data_base + offset
        if program.is_secret_address(address):
            assert new == 0x7F
        else:
            assert new == old
    assert filled.instructions is program.instructions


def test_oracle_requires_two_digests():
    from repro.adversarial import differential_verdict

    with pytest.raises(ValueError):
        differential_verdict("w", "none", ["abc"])
    with pytest.raises(ValueError):
        differential_verdict("w", "none", ["abc", None])


@pytest.mark.parametrize("gadget", sorted(GADGETS))
@pytest.mark.parametrize("strategy", ["load", "branch", "cheapest"])
def test_repair_certifies_every_gadget(gadget, strategy):
    program = _gadget_program(gadget)
    outcome = repair_program(program, strategy=strategy)
    assert outcome.clean
    # Some repair was applied: fences, or a whole mitigation pass
    # (``cheapest`` may find SLH cheaper than any fence placement).
    assert outcome.fences_inserted >= 1 or outcome.mitigation
    assert scan_program(outcome.program).clean
    # Dynamic certification: the repaired binary no longer leaks even on
    # the unprotected core.
    assert not program_verdict(outcome.program, "none").leaks


def test_repair_is_minimal_on_v1():
    # spectre_v1 carries two findings sharing one window; one-site-per-
    # iteration repair must converge with a single fence, not two.
    outcome = repair_program(_gadget_program("spectre_v1"), strategy="load")
    assert outcome.fences_inserted == 1


def test_repair_noop_on_clean_program():
    program = assemble(
        ".text\n    li a0, 7\n    halt\n", name="clean"
    )
    outcome = repair_program(program)
    assert outcome.clean and outcome.fences_inserted == 0
    assert outcome.program is program


def test_finding_ids_stable_and_serialized():
    program = _gadget_program("spectre_v1")
    first = scan_program(program).findings
    second = scan_program(_gadget_program("spectre_v1")).findings
    assert [f.id for f in first] == [f.id for f in second]
    for finding in first:
        payload = finding.to_dict()
        assert payload["id"] == finding.id and len(finding.id) == 12
        assert payload["branch_pc"] == min(finding.guards)
        assert payload["load_pc"] == (
            min(finding.secret_srcs) if finding.secret_srcs else None
        )


def test_insert_fences_splits_labelled_lines():
    program = assemble(
        ".text\n"
        "    li t0, 1\n"
        "target: addi t0, t0, 1\n"
        "    halt\n",
        name="labelled",
    )
    target_pc = program.address_of("target")
    fenced = insert_fences(program, [target_pc])
    # The fence lands after the label: jumps to `target` execute it.
    assert fenced.address_of("target") == target_pc
    assert fenced.inst_at(target_pc).opcode.mnemonic == "fence"


def test_fuzz_names_roundtrip():
    spec = synthesize_item(7, 3)
    name = spec.workload_name(0x41, repaired=True)
    assert parse_fuzz_name(name) == (7, 3, 0x41, True)
    for bad in ("fuzz/s7", "fuzz/s7/i0/f41/extra", "fuzz/s7/i0/fzz"):
        with pytest.raises(KeyError):
            parse_fuzz_name(bad)


def test_fuzz_workload_rebuilds_from_name_alone():
    spec = synthesize_item(11, 2)
    workload = build_fuzz_workload(spec.workload_name(0xC3))
    assert workload.source == synth_source(spec, 0xC3)
    assert workload.category == "adversarial"


def test_campaign_config_env_overrides(monkeypatch):
    monkeypatch.setenv("REPRO_FUZZ_POLICIES", "fence,levioso")
    monkeypatch.setenv("REPRO_FUZZ_FILLS", "0x11,0x22,0x33")
    config = CampaignConfig.resolve(seed=1, count=4)
    assert config.policies == ("none", "fence", "levioso")  # baseline forced
    assert config.fills == (0x11, 0x22, 0x33)
    monkeypatch.setenv("REPRO_FUZZ_FILLS", "0x41,0x41")
    with pytest.raises(HarnessError):
        CampaignConfig.resolve()
    monkeypatch.setenv("REPRO_FUZZ_FILLS", "junk")
    with pytest.raises(HarnessError):
        CampaignConfig.resolve()


def test_campaign_end_to_end_and_deterministic():
    config = CampaignConfig.resolve(
        seed=7, count=4, policies=("none", "levioso"), repair=True
    )
    reports = [
        run_campaign(config, ParallelRunner(scale="test"))
        for _ in range(2)
    ]
    first, second = (
        json.dumps(r, sort_keys=True) for r in reports
    )
    assert first == second  # byte-identical across same-seed runs
    report = reports[0]
    assert report["gates"]["passed"]
    assert report["gates"]["scanner_recall_intended_leaky"] == 1.0
    assert report["scanner"]["vs_intent"]["overall"]["fp"] == 0
    assert report["repair"]["repaired_items"] == 3
    for row in report["items"]:
        leaky = row["spec"]["intent"] == "leaky"
        assert row["scanner"]["flagged"] == leaky
        assert (row["oracle"]["none"] == "LEAKS") == leaky
        assert row["oracle"]["levioso"] == "SECURE"
        if leaky:
            assert row["repair"]["oracle"]["none"] == "SECURE"
            assert row["repair"]["slowdown"]["none"] >= 1.0


def test_cli_fuzz_and_gates(tmp_path, capsys):
    out = tmp_path / "report.json"
    assert main([
        "fuzz", "--seed", "7", "--count", "4", "--repair",
        "--policies", "levioso", "--out", str(out),
    ]) == 0
    assert "PASS" in capsys.readouterr().out
    report = json.loads(out.read_text())
    assert report["gates"]["passed"]


def test_cli_repair_certifies(capsys):
    assert main(["repair", "spectre_v1", "--strategy", "cheapest"]) == 0
    assert "CERTIFIED SECURE" in capsys.readouterr().out
    assert main(["repair", "spectre_v2", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["certified"] and payload["after"]["oracle"] == "SECURE"
    assert payload["slowdown"] >= 1.0


def test_cli_lint_counts_expectation(capsys):
    targets = ["spectre_v1", "spectre_v1_ct", "spectre_v2"]
    good = "counts:spectre-v1=2,spectre-v1-ct=1,spectre-v2=1"
    assert main(["lint", *targets, "--expect", good]) == 0
    capsys.readouterr()
    # Wrong total for a listed kind.
    assert main(["lint", *targets, "--expect", "counts:spectre-v1=3"]) == 1
    # Unlisted kinds must be absent: v1-ct/v2 findings fail this one.
    assert main(["lint", *targets, "--expect", "counts:spectre-v1=2"]) == 1
    capsys.readouterr()
    assert main(["lint", "spectre_v1", "--expect", "counts:nope"]) == 2
