"""compute_idoms on hand-built graphs (independent of the CFG builder)."""

from repro.cfg import compute_idoms


def test_straight_line():
    succs = {0: [1], 1: [2], 2: []}
    idom = compute_idoms(0, succs)
    assert idom == {0: 0, 1: 0, 2: 1}


def test_diamond():
    #    0
    #   / \
    #  1   2
    #   \ /
    #    3
    succs = {0: [1, 2], 1: [3], 2: [3], 3: []}
    idom = compute_idoms(0, succs)
    assert idom[3] == 0  # the join is dominated by the fork, not an arm
    assert idom[1] == 0 and idom[2] == 0


def test_nested_diamonds():
    succs = {
        0: [1, 2], 1: [3, 4], 3: [5], 4: [5], 5: [6], 2: [6], 6: [],
    }
    idom = compute_idoms(0, succs)
    assert idom[5] == 1   # inner join
    assert idom[6] == 0   # outer join


def test_loop_back_edge():
    succs = {0: [1], 1: [2], 2: [1, 3], 3: []}
    idom = compute_idoms(0, succs)
    assert idom[1] == 0
    assert idom[2] == 1
    assert idom[3] == 2


def test_unreachable_nodes_excluded():
    succs = {0: [1], 1: [], 9: [1]}  # 9 unreachable from 0
    idom = compute_idoms(0, succs)
    assert 9 not in idom
    assert idom[1] == 0


def test_multiple_paths_same_length():
    # 0 -> {1,2,3} -> 4 ; idom(4) must be 0
    succs = {0: [1, 2, 3], 1: [4], 2: [4], 3: [4], 4: []}
    idom = compute_idoms(0, succs)
    assert idom[4] == 0


def test_self_loop():
    succs = {0: [1], 1: [1, 2], 2: []}
    idom = compute_idoms(0, succs)
    assert idom[1] == 0
    assert idom[2] == 1
