"""Event-based energy model."""

import pytest

from repro.mem import MemoryHierarchy
from repro.secure import make_policy
from repro.uarch import CoreStats, OooCore
from repro.uarch.energy import (
    EnergyBreakdown,
    EnergyParams,
    energy_delay_product,
    estimate_energy,
)
from repro.workloads import build_workload


def make_stats(**kwargs):
    defaults = dict(cycles=1000, committed=2000, fetched=2200,
                    committed_loads=400, committed_stores=200,
                    squashed_insts=100)
    defaults.update(kwargs)
    return CoreStats(**defaults)


def test_breakdown_components_sum():
    stats = make_stats()
    hier = MemoryHierarchy()
    breakdown = estimate_energy(stats, hier)
    assert breakdown.total == pytest.approx(breakdown.dynamic + breakdown.static)
    d = breakdown.as_dict()
    assert d["total"] == pytest.approx(
        sum(d[k] for k in ("frontend", "window", "execute", "memory",
                           "speculation_waste", "security", "static"))
    )


def test_static_scales_with_cycles():
    hier = MemoryHierarchy()
    short = estimate_energy(make_stats(cycles=1000), hier)
    long = estimate_energy(make_stats(cycles=5000), hier)
    assert long.static == pytest.approx(5 * short.static)


def test_squashes_cost_energy():
    hier = MemoryHierarchy()
    clean = estimate_energy(make_stats(squashed_insts=0), hier)
    wasteful = estimate_energy(make_stats(squashed_insts=500), hier)
    assert wasteful.speculation_waste > clean.speculation_waste
    assert wasteful.total > clean.total


def test_security_charges():
    hier = MemoryHierarchy()
    base = estimate_energy(make_stats(), hier)
    gated = estimate_energy(make_stats(), hier, gate_checks=1000)
    tracked = estimate_energy(make_stats(), hier, tracks_dependencies=True)
    assert gated.security > base.security
    assert tracked.security > base.security


def test_dram_dominates_memory_energy():
    params = EnergyParams()
    hier = MemoryHierarchy()
    for i in range(50):
        hier.load(0x100000 + i * 4096, i * 200)  # all DRAM misses
    breakdown = estimate_energy(make_stats(), hier, params=params)
    assert breakdown.memory > 50 * params.dram_access * 0.9


def test_edp():
    b = EnergyBreakdown(static=100.0)
    assert energy_delay_product(b, 10) == pytest.approx(1000.0)


def test_slow_policy_costs_more_total_energy():
    """Protection that stretches execution burns static energy."""
    workload = build_workload("gather", scale="test")
    program = workload.assemble()
    results = {}
    for name in ("none", "fence"):
        result = OooCore(program, policy=make_policy(name)).run()
        results[name] = estimate_energy(
            result.stats, result.hierarchy,
            gate_checks=result.stats.loads_gated,
        )
    assert results["fence"].total > results["none"].total


def test_energy_experiment_module():
    from repro.harness.experiments import energy as energy_exp

    result = energy_exp.run(scale="test", workloads=("crc", "stream"))
    assert result.rows[-1][0] == "geomean"
    geomeans = result.extras["geomeans"]
    # Levioso's energy overhead must not exceed the conservative baselines'.
    assert geomeans["levioso"][0] <= geomeans["fence"][0] + 0.01
