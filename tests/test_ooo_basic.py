"""Out-of-order core: basic architectural correctness."""

import pytest

from repro.asm import assemble
from repro.functional import run_program
from repro.secure import make_policy
from repro.uarch import CoreConfig, OooCore

SUM_LOOP = """
.data
result: .dword 0
.text
    li a0, 0
    li a1, 1
    li a2, 101
loop:
    add a0, a0, a1
    addi a1, a1, 1
    bne a1, a2, loop
    la t0, result
    sd a0, 0(t0)
    halt
"""


def run_ooo(source, policy="none", **core_kwargs):
    program = assemble(source)
    core = OooCore(program, policy=make_policy(policy), **core_kwargs)
    return program, core.run()


def test_sum_loop_matches_functional():
    program = assemble(SUM_LOOP)
    functional = run_program(program)
    core = OooCore(program)
    result = core.run()
    assert result.regs == functional.regs
    addr = program.address_of("result")
    assert result.memory.read_int(addr, 8) == 5050


def test_ipc_is_positive_and_sane():
    _, result = run_ooo(SUM_LOOP)
    assert 0.1 < result.ipc <= 4.0
    assert result.stats.committed == 306


def test_committed_trace_matches_functional_path():
    program = assemble(SUM_LOOP)
    functional = run_program(program, trace=True)
    core = OooCore(program, record_trace=True)
    result = core.run()
    assert result.committed_pcs == [entry.pc for entry in functional.trace]


def test_store_load_forwarding():
    source = """
    .data
    buf: .dword 0
    .text
        la t0, buf
        li t1, 77
        li t3, 1000
        li t4, 7
        div t5, t3, t4      # long-latency op keeps the ROB head busy...
        sd t1, 0(t0)        # ...so this store cannot commit yet
        ld t2, 0(t0)        # and this load must forward from the SQ
        addi t2, t2, 1
        halt
    """
    _, result = run_ooo(source)
    assert result.regs[7] == 78  # t2
    assert result.stats.loads_forwarded >= 1


def test_partial_overlap_store_blocks_until_commit():
    source = """
    .data
    buf: .dword 0x1122334455667788
    .text
        la t0, buf
        li t1, 0xAB
        sb t1, 3(t0)        # 1-byte store
        ld t2, 0(t0)        # 8-byte load overlapping partially
        halt
    """
    program = assemble(source)
    functional = run_program(program)
    core = OooCore(program)
    result = core.run()
    assert result.regs == functional.regs


def test_branchy_program_with_mispredicts():
    source = """
    .text
        li a0, 0          # acc
        li a1, 0          # i
        li a2, 64
    loop:
        andi t0, a1, 3
        bnez t0, skip      # taken 3 of 4 times: some mispredicts early
        addi a0, a0, 5
    skip:
        addi a1, a1, 1
        bne a1, a2, loop
        halt
    """
    program = assemble(source)
    functional = run_program(program)
    core = OooCore(program)
    result = core.run()
    assert result.regs == functional.regs
    assert result.stats.branch_mispredicts > 0
    assert result.stats.squashed_insts > 0


def test_call_ret_through_ras():
    source = """
    .text
        li a0, 3
        li s0, 0
        li s1, 10
    loop:
        call work
        addi s0, s0, 1
        bne s0, s1, loop
        halt
    work:
        add a0, a0, a0
        and a0, a0, s1
        addi a0, a0, 1
        ret
    """
    program = assemble(source)
    functional = run_program(program)
    result = OooCore(program).run()
    assert result.regs == functional.regs
    # RAS should make returns cheap: very few jalr mispredicts.
    assert result.stats.jalr_mispredicts <= 2


def test_division_and_multiplication():
    source = """
    .text
        li a0, 1000
        li a1, 7
        div a2, a0, a1
        rem a3, a0, a1
        mul a4, a2, a1
        add a5, a4, a3
        halt
    """
    program = assemble(source)
    functional = run_program(program)
    result = OooCore(program).run()
    assert result.regs == functional.regs
    assert result.regs[15] == 1000  # a5 = q*7 + r


def test_rdcycle_monotonic_and_serializing():
    source = """
    .text
        rdcycle t0
        li a0, 0
        li a1, 100
    loop:
        addi a0, a0, 1
        bne a0, a1, loop
        rdcycle t1
        sub t2, t1, t0
        halt
    """
    _, result = run_ooo(source)
    elapsed = result.regs[7]  # t2
    assert 0 < elapsed < 10_000


def test_cflush_is_architectural_noop():
    source = """
    .data
    buf: .dword 42
    .text
        la t0, buf
        ld t1, 0(t0)
        cflush 0(t0)
        ld t2, 0(t0)
        halt
    """
    program = assemble(source)
    functional = run_program(program)
    result = OooCore(program).run()
    assert result.regs == functional.regs
    assert result.regs[6] == result.regs[7] == 42


@pytest.mark.parametrize("rob", [32, 192])
def test_larger_rob_is_not_slower(rob):
    program = assemble(SUM_LOOP)
    result = OooCore(program, config=CoreConfig(rob_size=rob, iq_size=min(rob, 64))).run()
    assert result.stats.committed == 306


def test_wrong_path_off_text_segment_recovers():
    # A branch mispredicted toward a path that runs off the end of .text
    # must not crash the simulator.
    source = """
    .text
        li a0, 1
        li a1, 1
        beq a0, a1, good   # always taken; predictor starts weakly not-taken
        addi a2, a2, 1
        addi a2, a2, 1
    good:
        halt
    """
    program = assemble(source)
    functional = run_program(program)
    result = OooCore(program).run()
    assert result.regs == functional.regs
