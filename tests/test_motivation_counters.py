"""Issue-time motivation counters (Fig. 1 inputs)."""

from repro.secure import make_policy
from repro.uarch import OooCore
from repro.workloads import build_workload


def run_counters(name, policy="none"):
    workload = build_workload(name, scale="test")
    core = OooCore(workload.assemble(), policy=make_policy(policy))
    return core.run().stats


def test_true_dep_is_subset_of_conservative():
    for name in ("gather", "bsearch", "branchy"):
        stats = run_counters(name)
        assert 0 <= stats.loads_true_dep_at_issue <= stats.loads_speculative_at_issue
        assert stats.loads_speculative_at_issue <= stats.loads_issued


def test_gather_shows_large_headroom():
    """The control-independent gather load is speculative but not dependent."""
    stats = run_counters("gather")
    assert stats.loads_speculative_at_issue > 0.3 * stats.loads_issued
    assert stats.loads_true_dep_at_issue < 0.1 * stats.loads_speculative_at_issue


def test_bsearch_shows_little_headroom():
    """Probe loads genuinely depend on unresolved comparisons."""
    stats = run_counters("bsearch")
    assert stats.loads_true_dep_at_issue > 0.5 * stats.loads_speculative_at_issue


def test_counters_defined_under_protective_policies_too():
    """Counters sample at actual issue, so gated policies shift them but the
    subset invariant must hold regardless."""
    stats = run_counters("gather", policy="levioso")
    assert stats.loads_true_dep_at_issue <= stats.loads_speculative_at_issue
