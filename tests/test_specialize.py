"""Region specialization: bit-identical equivalence + cache behaviour.

The exec-compiled per-PC ops in :mod:`repro.uarch.specialize` replace the
interpreted execute/address/extend paths, so the contract is the same as
the event-horizon engine's: a specialized run must be *bit-identical* to
the fully-interpreted reference run — same CoreStats, same architectural
registers, same memory-hierarchy counters — for every workload and every
policy, plus a hypothesis property over random programs and random core
geometries, and timeout equivalence.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.asm import assemble
from repro.errors import SimulationTimeout
from repro.secure import ALL_POLICY_NAMES, make_policy
from repro.testing import programs
from repro.uarch import CoreConfig, OooCore
from repro.uarch.decoded import decoded_image
from repro.uarch.specialize import spec_cache_info, specialized_image
from repro.workloads import WORKLOAD_NAMES, build_workload

POLICIES = tuple(sorted(ALL_POLICY_NAMES))


def _reference(program, policy_name, config=None, max_cycles=5_000_000):
    return OooCore(
        program,
        config=config,
        policy=make_policy(policy_name),
        specialize=False,
        cycle_skip=False,
        recycle_dyninsts=False,
    ).run(max_cycles=max_cycles)


@pytest.mark.parametrize("name", WORKLOAD_NAMES)
def test_suite_equivalence_under_every_policy(name):
    """Specialized fast mode is bit-identical to the interpreted reference
    across the whole suite x policy grid."""
    workload = build_workload(name, "test")
    program = workload.assemble()
    for policy_name in POLICIES:
        core = OooCore(
            program, policy=make_policy(policy_name), specialize=True
        )
        assert core._specialize
        spec = core.run(max_cycles=5_000_000)
        ref = _reference(program, policy_name)
        label = f"{name}/{policy_name}"
        assert spec.stats == ref.stats, label
        assert spec.regs == ref.regs, label
        assert spec.stats_dict() == ref.stats_dict(), label
        assert workload.validate(spec.regs), label


@st.composite
def _small_configs(draw):
    """Random cramped-to-roomy core geometries; stress every stall path."""
    iq_size = draw(st.integers(4, 32))
    return CoreConfig(
        fetch_width=draw(st.integers(1, 4)),
        dispatch_width=draw(st.integers(1, 4)),
        issue_width=draw(st.integers(1, 4)),
        commit_width=draw(st.integers(1, 4)),
        rob_size=draw(st.integers(iq_size, 64)),
        iq_size=iq_size,
        lq_size=draw(st.integers(2, 16)),
        sq_size=draw(st.integers(2, 16)),
        fetch_queue_size=draw(st.integers(2, 16)),
        frontend_latency=draw(st.integers(1, 8)),
    )


@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(
    source=programs(),
    policy_name=st.sampled_from(POLICIES),
    config=_small_configs(),
)
def test_specialized_never_diverges(source, policy_name, config):
    """Property: random program geometry, random core geometry, any
    policy — specialized and interpreted runs are bit-identical."""
    program = assemble(source, name="hypothesis")
    spec = OooCore(
        program, config=config, policy=make_policy(policy_name),
        specialize=True,
    ).run(max_cycles=2_000_000)
    ref = _reference(program, policy_name, config=config,
                     max_cycles=2_000_000)
    assert spec.stats == ref.stats
    assert spec.regs == ref.regs


def test_timeout_is_bit_identical_across_modes():
    """Both modes hit the limit at the same point with the same message;
    outside a lockstep batch the point attribution stays None."""
    program = build_workload("treewalk", "test").assemble()
    limit = 500
    errors = []
    for kwargs in (
        {"specialize": True},
        {"specialize": False, "cycle_skip": False, "recycle_dyninsts": False},
    ):
        core = OooCore(program, policy=make_policy("levioso"), **kwargs)
        with pytest.raises(SimulationTimeout) as exc_info:
            core.run(max_cycles=limit)
        errors.append(exc_info.value)
    spec_err, ref_err = errors
    assert str(spec_err) == str(ref_err)
    assert spec_err.limit == ref_err.limit == limit
    assert spec_err.committed == ref_err.committed
    assert spec_err.pc == ref_err.pc
    assert spec_err.point is None and ref_err.point is None


def test_env_override_forces_interpreted_path(monkeypatch):
    program = build_workload("gather", "test").assemble()
    monkeypatch.setenv("REPRO_NO_SPECIALIZE", "1")
    core = OooCore(program, policy=make_policy("levioso"))
    assert not core._specialize
    ref = core.run()
    monkeypatch.delenv("REPRO_NO_SPECIALIZE")
    fast_core = OooCore(program, policy=make_policy("levioso"))
    assert fast_core._specialize
    fast = fast_core.run()
    assert fast.stats == ref.stats
    assert fast.regs == ref.regs


def test_plan_cache_hits_and_op_attachment():
    """Same (image, config, policy) -> cached plan; the shared decoded
    image carries the compiled ops exactly once."""
    program = build_workload("gather", "test").assemble()
    config = CoreConfig()
    image = decoded_image(program, config)
    policy = make_policy("levioso")
    before = spec_cache_info()
    plan1 = specialized_image(image, config, policy)
    plan2 = specialized_image(image, config, policy)
    assert plan1 is plan2
    after = spec_cache_info()
    assert after["hits"] >= before["hits"] + 1
    assert image.spec_token == image.fingerprint
    # Every ALU-class decoded instruction carries an execute op; every
    # memory op carries an address op; loads carry an extension.
    for dec in image.by_pc.values():
        opcode = dec.opcode
        if opcode.is_mem:
            assert dec.aop is not None
            if opcode.is_load and opcode.mnemonic != "cflush":
                assert dec.ext is not None
    # A sibling plan for another policy reuses the attached ops (no
    # second codegen pass for the same image).
    fn_count_before = spec_cache_info()["generated_functions"]
    specialized_image(image, config, make_policy("fence"))
    assert spec_cache_info()["generated_functions"] == fn_count_before


def test_fresh_image_reattaches_ops(monkeypatch):
    """REPRO_DECODE_CACHE=0 builds identity-fresh images; specialization
    must re-attach ops to each (plans stay content-addressed)."""
    monkeypatch.setenv("REPRO_DECODE_CACHE", "0")
    program = build_workload("gather", "test").assemble()
    spec = OooCore(program, policy=make_policy("levioso"),
                   specialize=True).run()
    monkeypatch.delenv("REPRO_DECODE_CACHE")
    ref = _reference(program, "levioso")
    assert spec.stats == ref.stats
    assert spec.regs == ref.regs


def test_caches_stay_bounded_under_config_sweeps():
    """A sweep over more latency profiles than either LRU holds must not
    grow the plan or image caches past their caps, and the newest entries
    must survive (LRU evicts from the cold end)."""
    import dataclasses

    from repro.uarch.decoded import image_cache_info

    program = build_workload("gather", "test").assemble()
    policy = make_policy("none")
    spec_max = spec_cache_info()["max_entries"]
    image_max = image_cache_info()["max_entries"]
    sweep = max(spec_max, image_max) + 10
    for alu_latency in range(1, sweep + 1):
        config = dataclasses.replace(CoreConfig(), alu_latency=alu_latency)
        image = decoded_image(program, config)
        specialized_image(image, config, policy)
    spec_info = spec_cache_info()
    image_info = image_cache_info()
    assert spec_info["entries"] <= spec_max
    assert image_info["entries"] <= image_max
    # The caps were actually exercised (the sweep overflowed both).
    assert spec_info["entries"] == spec_max
    assert image_info["entries"] == image_max
    # The hottest (most recent) profile is still cached: re-requesting it
    # must not miss.
    misses_before = spec_cache_info()["misses"]
    config = dataclasses.replace(CoreConfig(), alu_latency=sweep)
    specialized_image(decoded_image(program, config), config, policy)
    assert spec_cache_info()["misses"] == misses_before


def test_defers_wakeup_skip_only_for_non_overriding_policies():
    """The per-completion defers_wakeup call may be elided only when the
    policy inherits the base (constant-False) implementation."""
    program = build_workload("gather", "test").assemble()
    nda = OooCore(program, policy=make_policy("nda"), specialize=True)
    assert nda._defers_wakeup is not None  # NDA overrides: must be called
    levioso = OooCore(program, policy=make_policy("levioso"), specialize=True)
    assert levioso._defers_wakeup is None  # base impl: safely skipped
