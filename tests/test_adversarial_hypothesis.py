"""Property tests for the adversarial engine.

Three invariants the campaign gates lean on:

* soundness of the scanner on the synthesizer's ground truth — every
  synthesized intended-leaky program is flagged, every known-clean
  mutant is not, for arbitrary (seed, index);
* the differential oracle under the unprotected baseline agrees with the
  synthesizer's intent (the dynamic twin of the static property);
* determinism — the same (seed, index) always reproduces byte-identical
  sources and specs, which is what lets workers rebuild corpus items
  from their names and makes campaign reports reproducible.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.adversarial import program_verdict, synth_source, synthesize_item
from repro.analysis import scan_program
from repro.asm import assemble

STATIC_SETTINGS = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

#: Oracle examples simulate two full runs each — keep the budget small;
#: the fixed-seed campaign in CI covers breadth.
DYNAMIC_SETTINGS = settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

seeds = st.integers(min_value=0, max_value=10_000)
indices = st.integers(min_value=0, max_value=63)


@STATIC_SETTINGS
@given(seed=seeds, index=indices)
def test_scanner_matches_synthesis_intent(seed, index):
    spec = synthesize_item(seed, index)
    program = assemble(synth_source(spec, 0x41), name=spec.name)
    report = scan_program(program)
    if spec.intent == "leaky":
        assert not report.clean, (spec.name, spec.skeleton)
        kinds = {f.kind for f in report.findings}
        assert f"spectre-{spec.skeleton}" in kinds, (spec.name, kinds)
    else:
        assert report.clean, (
            spec.name, spec.mutation,
            [f.message for f in report.findings],
        )


@DYNAMIC_SETTINGS
@given(seed=seeds, index=indices)
def test_oracle_under_baseline_matches_intent(seed, index):
    spec = synthesize_item(seed, index)
    program = assemble(synth_source(spec, 0x41), name=spec.name)
    verdict = program_verdict(program, "none")
    assert verdict.leaks == (spec.intent == "leaky"), (
        spec.name, spec.skeleton, spec.mutation, verdict.verdict
    )


@STATIC_SETTINGS
@given(seed=seeds, index=indices, fill=st.integers(min_value=1, max_value=255))
def test_synthesis_is_deterministic(seed, index, fill):
    a, b = synthesize_item(seed, index), synthesize_item(seed, index)
    assert a == b and a.to_dict() == b.to_dict()
    assert synth_source(a, fill) == synth_source(b, fill)
    # Different indices draw from independent streams: the per-item RNG is
    # keyed on (seed, index), so item i is stable however many items exist.
    assert synthesize_item(seed, index) == synthesize_item(seed, index)
