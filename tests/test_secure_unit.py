"""Policy predicates in isolation, against a minimal fake core."""

import pytest

from repro.errors import PolicyError
from repro.isa import Instruction, Opcode
from repro.secure import (
    ALL_POLICY_NAMES,
    COMPREHENSIVE_POLICY_NAMES,
    CttPolicy,
    DelayOnMissPolicy,
    FencePolicy,
    LeviosoPolicy,
    NoProtection,
    SttPolicy,
    make_policy,
)
from repro.uarch.dyninst import DynInst, Stage


class FakeHierarchy:
    def __init__(self, l1_hits=()):
        self._hits = set(l1_hits)

    def peek_l1_hit(self, address):
        return address in self._hits


class FakeCore:
    """Just enough of OooCore for the policy predicates."""

    def __init__(self, unresolved=(), inflight_loads=(), l1_hits=()):
        self.unresolved_ctrl = set(unresolved)
        self.inflight_loads = {d.seq: d for d in inflight_loads}
        self.hierarchy = FakeHierarchy(l1_hits)

    def has_unresolved_ctrl_older_than(self, seq):
        return bool(self.unresolved_ctrl) and min(self.unresolved_ctrl) < seq

    def any_unresolved(self, deps):
        return bool(deps & self.unresolved_ctrl)

    def is_load_root_unsafe(self, root_seq):
        if root_seq not in self.inflight_loads:
            return False
        return self.has_unresolved_ctrl_older_than(root_seq)


def load_dyn(seq, *, control_deps=(), producer=None, arf_tainted=False):
    dyn = DynInst(
        seq=seq,
        inst=Instruction(Opcode.LD, rd=10, rs1=11, imm=0),
        fetch_cycle=0,
    )
    dyn.control_deps = frozenset(control_deps)
    dyn.src1_producer = producer
    dyn.src1_arf_tainted = arf_tainted
    dyn.mem_address = 0x1000
    return dyn


def completed_load_producer(seq, deps=(), roots=None):
    producer = load_dyn(seq)
    producer.stage = Stage.COMPLETED
    producer.out_deps = frozenset(deps)
    producer.out_roots = frozenset(roots if roots is not None else {seq})
    producer.out_tainted = True
    return producer


# ------------------------------------------------------------------ registry
def test_registry_contents():
    assert set(ALL_POLICY_NAMES) == {
        "none", "fence", "dom", "nda", "stt", "ctt", "levioso",
    }
    assert set(COMPREHENSIVE_POLICY_NAMES) == {"fence", "dom", "ctt", "levioso"}
    with pytest.raises(PolicyError):
        make_policy("invisispec")


def test_describe_strings():
    assert "comprehensive" in LeviosoPolicy().describe()
    assert "speculative-only" in SttPolicy().describe()
    assert "no protection" in NoProtection().describe()


# --------------------------------------------------------------------- gates
def test_none_always_allows():
    core = FakeCore(unresolved={1})
    assert NoProtection().may_issue_load(load_dyn(5), core)


def test_fence_blocks_any_speculative_load():
    core = FakeCore(unresolved={3})
    policy = FencePolicy()
    assert not policy.may_issue_load(load_dyn(5), core)
    assert policy.may_issue_load(load_dyn(2), core)  # older than the branch
    # and blocks speculative branch resolution:
    assert not policy.may_issue_branch(load_dyn(9), core)


def test_dom_allows_speculative_l1_hits_only():
    hit = load_dyn(5)
    miss = load_dyn(6)
    miss.mem_address = 0x9999
    core = FakeCore(unresolved={1}, l1_hits={0x1000})
    policy = DelayOnMissPolicy()
    assert policy.may_issue_load(hit, core)
    assert not policy.may_issue_load(miss, core)
    core_quiet = FakeCore(unresolved=())
    assert policy.may_issue_load(miss, core_quiet)


def test_stt_taint_expires_at_visibility():
    root = completed_load_producer(seq=2)
    consumer = load_dyn(10, producer=root)
    # Root is speculative: an unresolved branch older than it exists.
    core = FakeCore(unresolved={1}, inflight_loads=[root])
    assert not SttPolicy().may_issue_load(consumer, core)
    # The branch resolved: root reached visibility, taint expired.
    core2 = FakeCore(unresolved={5}, inflight_loads=[root])
    assert SttPolicy().may_issue_load(consumer, core2)
    # Root left the window entirely (committed): safe.
    core3 = FakeCore(unresolved={1})
    assert SttPolicy().may_issue_load(consumer, core3)


def test_stt_ignores_arf_taint():
    """Non-speculatively loaded (committed) secrets are invisible to STT."""
    consumer = load_dyn(10, arf_tainted=True)
    core = FakeCore(unresolved={1})
    assert SttPolicy().may_issue_load(consumer, core)


def test_ctt_structural_taint_never_expires():
    consumer = load_dyn(10, arf_tainted=True)
    core = FakeCore(unresolved={1})
    assert not CttPolicy().may_issue_load(consumer, core)
    # Untainted address: free even while speculative.
    clean = load_dyn(11)
    assert CttPolicy().may_issue_load(clean, core)
    # Non-speculative: free even when tainted.
    quiet = FakeCore(unresolved=())
    assert CttPolicy().may_issue_load(consumer, quiet)


def test_levioso_gates_only_true_dependencies():
    root = completed_load_producer(seq=2, deps={7})
    dependent = load_dyn(10, producer=root, control_deps={7})
    independent = load_dyn(11, producer=root)
    independent.src1_producer = None
    independent.src1_arf_tainted = True  # tainted but no dep on branch 7

    policy = LeviosoPolicy()
    core = FakeCore(unresolved={7})
    assert not policy.may_issue_load(dependent, core)
    assert policy.may_issue_load(independent, core)
    # Branch 7 resolves -> dependent becomes free immediately,
    # even if a *younger* branch is still unresolved.
    core2 = FakeCore(unresolved={9})
    assert policy.may_issue_load(dependent, core2)


def test_levioso_branch_gate_uses_input_deps():
    policy = LeviosoPolicy()
    branch = DynInst(
        seq=12,
        inst=Instruction(Opcode.BEQ, rs1=5, rs2=6, imm=0x2000),
        fetch_cycle=0,
    )
    branch.control_deps = frozenset({4})
    branch.src1_arf_tainted = True
    core = FakeCore(unresolved={4})
    assert not policy.may_issue_branch(branch, core)
    resolved = FakeCore(unresolved={20})
    assert policy.may_issue_branch(branch, core=resolved)
    # Untainted condition: never gated.
    branch.src1_arf_tainted = False
    assert policy.may_issue_branch(branch, core)


def test_checked_wrappers_count_denials():
    policy = FencePolicy()
    core = FakeCore(unresolved={1})
    policy.checked_may_issue_load(load_dyn(5), core)
    policy.checked_may_issue_load(load_dyn(0), core)
    assert policy.stats.gate_checks == 2
    assert policy.stats.gate_denials == 1
