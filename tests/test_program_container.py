"""Program container helpers."""

import pytest

from repro.asm import assemble
from repro.errors import SimulationError

SOURCE = """
.data
v: .dword 9
.secret k
key: .dword 1
.public
.text
start:
    la t0, v
    ld a0, 0(t0)
    beqz a0, out
    addi a0, a0, 1
out:
    halt
"""


@pytest.fixture
def program():
    return assemble(SOURCE, name="container")


def test_inst_at_and_bounds(program):
    first = program.inst_at(program.text_base)
    assert first.opcode.mnemonic == "li"  # la expands to li
    with pytest.raises(SimulationError):
        program.inst_at(program.text_end)
    assert program.try_inst_at(program.text_end) is None


def test_index_of(program):
    assert program.index_of(program.text_base) == 0
    assert program.index_of(program.text_base + 8) == 2


def test_symbols_and_entry(program):
    assert program.address_of("start") == program.text_base
    with pytest.raises(SimulationError):
        program.address_of("nonexistent")
    assert program.entry == program.text_base


def test_static_counts(program):
    counts = program.static_counts()
    assert counts["total"] == len(program)
    assert counts["loads"] == 1
    assert counts["branches"] == 1


def test_listing_contains_labels(program):
    listing = program.listing()
    assert "start:" in listing
    assert "beq" in listing


def test_iteration_order(program):
    pcs = [inst.pc for inst in program]
    assert pcs == sorted(pcs)


def test_secret_range_queries(program):
    key = program.address_of("key")
    assert program.is_secret_address(key)
    assert program.is_secret_address(key + 7)
    assert not program.is_secret_address(key + 8)
    assert not program.is_secret_address(program.address_of("v"))
    # size-spanning query overlapping the range
    assert program.is_secret_address(key - 4, size=8)
