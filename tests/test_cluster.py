"""Fault-tolerant simulation fleet: ring, membership, coordinator.

The acceptance bar (ISSUE 8): a coordinator consistent-hashes run-cache
content keys across registered worker daemons, detects death by missed
heartbeats, fails in-flight jobs over as *uncharged* retries, coalesces
duplicates cluster-wide, and degrades to in-process execution at zero
nodes — with every served result bit-identical to a clean serial run
(simulations are pure functions of the content key, so placement can
never change an answer).
"""

from __future__ import annotations

import time

import pytest

from repro.cluster.federation import merge_samples, render_federated
from repro.cluster.membership import (
    ALIVE,
    DEAD,
    LEFT,
    SUSPECT,
    Membership,
)
from repro.cluster.ring import HashRing
from repro.harness.cache import ResultCache
from repro.harness.runner import ExperimentRunner
from repro.service.client import ServiceClient


# -------------------------------------------------------------------- ring
def test_ring_deterministic_and_order_independent():
    a, b = HashRing(), HashRing()
    for node in ("w1", "w2", "w3"):
        a.add(node)
    for node in ("w3", "w1", "w2"):
        b.add(node)
    keys = [f"key-{i}" for i in range(200)]
    assert [a.node_for(k) for k in keys] == [b.node_for(k) for k in keys]
    assert len(a) == 3 and "w2" in a and a.nodes() == {"w1", "w2", "w3"}


def test_ring_spreads_keys_across_nodes():
    ring = HashRing()
    for node in ("w1", "w2", "w3"):
        ring.add(node)
    owners = {ring.node_for(f"key-{i}") for i in range(300)}
    assert owners == {"w1", "w2", "w3"}


def test_ring_removal_moves_only_the_dead_nodes_keys():
    ring = HashRing()
    for node in ("w1", "w2", "w3"):
        ring.add(node)
    keys = [f"key-{i}" for i in range(500)]
    before = {k: ring.node_for(k) for k in keys}
    ring.remove("w2")
    for key in keys:
        owner = ring.node_for(key)
        if before[key] != "w2":
            # Consistency: keys not owned by the dead node never move.
            assert owner == before[key]
        else:
            assert owner in ("w1", "w3")


def test_ring_preference_is_failover_order():
    ring = HashRing()
    for node in ("w1", "w2", "w3"):
        ring.add(node)
    for key in ("key-a", "key-b", "key-c"):
        pref = ring.preference(key)
        assert pref[0] == ring.node_for(key)
        assert sorted(pref) == ["w1", "w2", "w3"]   # all distinct nodes
    ring.remove(ring.node_for("key-a"))
    assert ring.node_for("key-a") in ring.nodes()


def test_empty_ring_routes_nowhere():
    ring = HashRing()
    assert ring.node_for("anything") is None
    assert ring.preference("anything") == []
    ring.add("solo")
    ring.remove("solo")
    assert ring.node_for("anything") is None


# -------------------------------------------------------------- membership
class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self) -> float:
        return self.now


def test_membership_suspect_then_dead_thresholds():
    clock = FakeClock()
    m = Membership(heartbeat_interval=1.0, node_timeout=5.0, clock=clock)
    m.register("w1", "http://w1")
    assert m.get("w1").state == ALIVE

    clock.now += 1.0
    m.heartbeat("w1")
    assert m.sweep() == [] and m.get("w1").state == ALIVE

    clock.now += 3.0                      # 3s silent > suspect_after (2.5)
    assert m.sweep() == []                # suspect flip is silent
    assert m.get("w1").state == SUSPECT
    assert [n.node_id for n in m.routable()] == ["w1"]  # still routable

    clock.now += 2.5                      # 5.5s silent > node_timeout
    died = m.sweep()
    assert [n.node_id for n in died] == ["w1"]
    assert m.get("w1").state == DEAD
    assert m.routable() == []
    assert m.sweep() == []                # death is reported exactly once


def test_membership_heartbeat_revives_suspect():
    clock = FakeClock()
    m = Membership(heartbeat_interval=1.0, node_timeout=5.0, clock=clock)
    m.register("w1", "http://w1")
    clock.now += 3.0
    m.sweep()
    assert m.get("w1").state == SUSPECT
    m.heartbeat("w1", load={"queue_depth": 2})
    assert m.get("w1").state == ALIVE
    assert m.get("w1").load == {"queue_depth": 2}


def test_membership_resurrection_bumps_generation():
    clock = FakeClock()
    m = Membership(heartbeat_interval=1.0, node_timeout=5.0, clock=clock)
    node = m.register("w1", "http://w1")
    assert node.generation == 0
    clock.now += 10.0
    m.sweep()
    assert m.get("w1").state == DEAD
    # A beat from a dead node is a resurrection: same id, new generation
    # — stale per-incarnation state (e.g. a remote job id) is discarded.
    m.heartbeat("w1")
    assert m.get("w1").state == ALIVE
    assert m.get("w1").generation == 1


def test_membership_unknown_heartbeat_and_drain_departure():
    clock = FakeClock()
    m = Membership(heartbeat_interval=1.0, node_timeout=5.0, clock=clock)
    assert m.heartbeat("ghost") is None   # caller answers 404
    m.register("w1", "http://w1")
    m.deregister("w1")
    assert m.get("w1").state == LEFT      # unroutable, not failed over
    assert m.routable() == []
    assert m.sweep() == []                # LEFT never becomes newly-dead
    counts = m.counts()
    assert counts[LEFT] == 1 and counts[ALIVE] == 0


def test_membership_mark_dead_reports_transition_once():
    clock = FakeClock()
    m = Membership(heartbeat_interval=1.0, node_timeout=5.0, clock=clock)
    m.register("w1", "http://w1")
    assert m.mark_dead("w1") is not None   # caller owes a failover now
    assert m.mark_dead("w1") is None       # already dead: no second one
    assert m.mark_dead("ghost") is None


# -------------------------------------------------------------- federation
def test_merge_samples_sums_by_sample_key():
    merged = merge_samples([
        'repro_jobs_total{state="done"} 3\nrepro_queue_depth 1\n',
        'repro_jobs_total{state="done"} 4\nrepro_queue_depth 2\n',
    ])
    assert merged['repro_jobs_total{state="done"}'] == 7
    assert merged["repro_queue_depth"] == 3


def test_render_federated_includes_node_up_flags():
    text = render_federated(
        "repro_cluster_jobs_submitted_total 5\n",
        {"w1": "repro_simulations_total 2\n", "w2": None},
    )
    assert "repro_cluster_jobs_submitted_total 5" in text
    assert "repro_simulations_total 2" in text
    assert 'repro_cluster_node_up{node="w1"} 1' in text
    assert 'repro_cluster_node_up{node="w2"} 0' in text


# ------------------------------------------------------- coordinator (e2e)
GRID = [
    {"workload": "gather", "policy": "none", "scale": "test"},
    {"workload": "gather", "policy": "levioso", "scale": "test"},
    {"workload": "pchase", "policy": "none", "scale": "test"},
    {"workload": "pchase", "policy": "fence", "scale": "test"},
]


@pytest.fixture(scope="module")
def expected():
    runner = ExperimentRunner(scale="test")
    return {
        (r["workload"], r["policy"]): ResultCache.serialize(
            runner.run(r["workload"], r["policy"]).slim())
        for r in GRID
    }


def _start_fleet(n_workers: int, heartbeat: float = 0.2,
                 node_timeout: float = 1.5, **coord_overrides):
    from repro.cluster.coordinator import CoordinatorConfig, CoordinatorThread
    from repro.service.daemon import ServiceConfig, ServiceThread

    coord = CoordinatorThread(CoordinatorConfig(
        port=0, nodes=(), heartbeat_interval=heartbeat,
        node_timeout=node_timeout, **coord_overrides)).start()
    workers = []
    for i in range(n_workers):
        workers.append(ServiceThread(ServiceConfig(
            port=0, jobs=1, register_url=coord.base_url,
            node_id=f"tw{i + 1}", heartbeat_interval=heartbeat)).start())
    client = ServiceClient(coord.base_url)
    deadline = time.monotonic() + 20.0
    while time.monotonic() < deadline:
        if client.healthz()["nodes"]["alive"] >= n_workers:
            break
        time.sleep(0.05)
    else:
        raise AssertionError(f"{n_workers} worker(s) never registered")
    return coord, workers, client


def test_cluster_grid_bit_identical_with_cross_node_coalescing(expected):
    coord, workers, client = _start_fleet(2)
    try:
        results = client.run_grid(GRID * 2, timeout=120.0)  # duplicates
        assert len(results) == len(GRID) * 2
        for job, record in results:
            want = expected[(job["request"]["workload"],
                             job["request"]["policy"])]
            assert ResultCache.serialize(record) == want
        metrics = client.metrics()
        assert metrics["repro_cluster_nodes_alive"] == 2
        # The duplicated half never re-simulates anywhere in the fleet.
        assert metrics["repro_cluster_cross_node_coalesced_total"] \
            + metrics["repro_cluster_cache_hits_total"] >= len(GRID)
        # Both workers actually served flights (the ring spreads GRID).
        forwards = {k: v for k, v in metrics.items()
                    if k.startswith("repro_cluster_forwards_total")}
        assert sum(forwards.values()) == len(GRID)
        # Resubmitting after completion is answered from coordinator
        # results without opening a single new flight.
        before = metrics["repro_cluster_cache_hits_total"]
        again = client.run_grid(GRID, timeout=30.0)
        for job, record in again:
            assert job["cached"]
        assert client.metrics()["repro_cluster_cache_hits_total"] \
            == before + len(GRID)
    finally:
        for w in workers:
            w.stop()
        assert coord.stop()


def test_cluster_healthz_federated_metrics_and_drain_departure(expected):
    coord, workers, client = _start_fleet(2)
    try:
        health = client.healthz()
        assert health["nodes"]["alive"] == 2
        fleet = client._json("GET", "/v1/nodes")
        assert {n["id"] for n in fleet["nodes"]} == {"tw1", "tw2"}
        assert sorted(fleet["routable"]) == ["tw1", "tw2"]
        client.run_grid(GRID[:2], timeout=60.0)
        text = client.metrics_text()
        assert 'repro_cluster_node_up{node="tw1"} 1' in text
        assert 'repro_cluster_node_up{node="tw2"} 1' in text
        # Fleet aggregate folds worker-side samples into the scrape.
        assert "repro_service_jobs_submitted_total" in text
        # A SIGTERM-style drain deregisters: LEFT, never failed over.
        workers.pop(0).stop()
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            counts = client.healthz()["nodes"]
            if counts["left"] >= 1:
                break
            time.sleep(0.05)
        assert client.healthz()["nodes"]["left"] >= 1
        assert client.metrics()["repro_cluster_failovers_total"] == 0
    finally:
        for w in workers:
            w.stop()
        assert coord.stop()


def test_cluster_failover_reroutes_dead_nodes_flights(expected):
    # One real worker + one registered-but-bogus node: flights hashed to
    # the bogus node hit connection-refused, which declares it dead and
    # reroutes the flight — an *uncharged* retry (job still succeeds).
    coord, workers, client = _start_fleet(1, node_timeout=5.0)
    try:
        client._json("POST", "/v1/nodes",
                     {"id": "bogus", "url": "http://127.0.0.1:9"})
        results = client.run_grid(GRID, timeout=120.0)
        for job, record in results:
            want = expected[(job["request"]["workload"],
                             job["request"]["policy"])]
            assert ResultCache.serialize(record) == want
            assert job["state"] == "done"
        metrics = client.metrics()
        assert metrics["repro_cluster_failovers_total"] >= 1
        # The bogus node is dead, not merely suspect.
        assert client.healthz()["nodes"]["dead"] == 1
    finally:
        for w in workers:
            w.stop()
        assert coord.stop()


def test_cluster_zero_nodes_degrades_to_local_execution(expected):
    from repro.cluster.coordinator import CoordinatorConfig, CoordinatorThread

    coord = CoordinatorThread(CoordinatorConfig(
        port=0, nodes=(), heartbeat_interval=0.2, node_timeout=1.5)).start()
    try:
        client = ServiceClient(coord.base_url)
        results = client.run_grid(GRID[:2], timeout=120.0)
        for job, record in results:
            want = expected[(job["request"]["workload"],
                             job["request"]["policy"])]
            assert ResultCache.serialize(record) == want
        metrics = client.metrics()
        assert metrics["repro_cluster_degraded"] == 1
        assert metrics["repro_cluster_local_runs_total"] == len(GRID[:2])
    finally:
        assert coord.stop()


def test_cluster_heartbeat_silence_kills_node():
    # Register a node by hand and never heartbeat: the monitor sweep
    # must declare it dead within node_timeout plus one sweep period.
    from repro.cluster.coordinator import CoordinatorConfig, CoordinatorThread

    coord = CoordinatorThread(CoordinatorConfig(
        port=0, nodes=(), heartbeat_interval=0.1, node_timeout=0.5)).start()
    try:
        client = ServiceClient(coord.base_url)
        client._json("POST", "/v1/nodes",
                     {"id": "silent", "url": "http://127.0.0.1:9"})
        assert client.healthz()["nodes"]["alive"] == 1
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            if client.healthz()["nodes"]["dead"] == 1:
                break
            time.sleep(0.05)
        assert client.healthz()["nodes"]["dead"] == 1
        assert client.metrics()["repro_cluster_nodes_alive"] == 0
        # Dead nodes stay visible in the federation as the alerting
        # signal, never silently dropped from the scrape.
        assert 'repro_cluster_node_up{node="silent"} 0' \
            in client.metrics_text()
    finally:
        assert coord.stop()


def test_cluster_rejects_bad_registrations():
    from repro.cluster.coordinator import CoordinatorConfig, CoordinatorThread
    from repro.service.client import ServiceError

    coord = CoordinatorThread(CoordinatorConfig(port=0, nodes=())).start()
    try:
        client = ServiceClient(coord.base_url)
        with pytest.raises(ServiceError):
            client._json("POST", "/v1/nodes", {"id": "", "url": "http://x"})
        with pytest.raises(ServiceError):
            client._json("POST", "/v1/nodes", {"id": "w", "url": "ftp://x"})
        with pytest.raises(ServiceError):
            client._json("POST", "/v1/nodes/ghost/heartbeat", {})
    finally:
        assert coord.stop()
