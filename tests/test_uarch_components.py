"""Core configuration, stats, and pipeline-mechanics unit tests."""

import pytest

from repro.asm import assemble
from repro.errors import ConfigError, SimulationError, TimeoutError_
from repro.secure import make_policy
from repro.uarch import CoreConfig, CoreStats, OooCore


# --------------------------------------------------------------------- config
def test_config_validation():
    with pytest.raises(ConfigError):
        CoreConfig(fetch_width=0)
    with pytest.raises(ConfigError):
        CoreConfig(rob_size=16, iq_size=64)


def test_config_overrides_copy():
    base = CoreConfig()
    wide = base.with_overrides(issue_width=8)
    assert wide.issue_width == 8
    assert base.issue_width == 4
    assert wide.rob_size == base.rob_size


def test_config_table_rows_cover_key_parameters():
    labels = [name for name, _ in CoreConfig().table_rows()]
    assert "Branch predictor" in labels
    assert "DRAM" in labels


# ---------------------------------------------------------------------- stats
def test_stats_derived_metrics():
    stats = CoreStats(cycles=100, committed=250, branch_mispredicts=5)
    assert stats.ipc == 2.5
    assert stats.cpi == 0.4
    assert stats.mpki == 20.0
    empty = CoreStats()
    assert empty.ipc == 0.0
    assert empty.mpki == 0.0
    assert empty.mean_gate_delay == 0.0


def test_stats_as_dict_round_trip():
    stats = CoreStats(cycles=10, committed=20, loads_gated=2, load_gate_cycles=9)
    d = stats.as_dict()
    assert d["cycles"] == 10
    assert d["loads_gated"] == 2
    assert d["mean_gate_delay"] == 4.5


# ------------------------------------------------------------------ mechanics
def test_max_cycles_timeout():
    program = assemble("""
    .text
    spin:
        j spin
    """)
    core = OooCore(program)
    with pytest.raises(TimeoutError_):
        core.run(max_cycles=2000)


def test_occupancy_counters_return_to_zero():
    program = assemble("""
    .data
    buf: .zero 64
    .text
        la t0, buf
        li t1, 5
        sd t1, 0(t0)
        ld t2, 0(t0)
        beqz t2, skip
        addi t2, t2, 1
    skip:
        halt
    """)
    core = OooCore(program)
    core.run()
    assert core.iq_count == 0
    assert core.lq_count == 0
    assert core.sq_count == 0
    assert not core.store_queue
    assert not core.pending_loads
    assert not core.pending_ctrl
    assert not core.unresolved_ctrl


def test_step_is_externally_drivable():
    program = assemble(".text\n  li a0, 1\n  halt\n")
    core = OooCore(program)
    for _ in range(200):
        if core._done:
            break
        core.step()
    assert core._done
    assert core.arf[10] == 1


def test_record_trace_off_by_default():
    program = assemble(".text\n  li a0, 1\n  halt\n")
    result = OooCore(program).run()
    assert result.committed_pcs == []


def test_fetch_queue_bounded():
    # A long straight-line program must never exceed the fetch queue bound.
    body = "\n".join("    addi a0, a0, 1" for _ in range(100))
    program = assemble(f".text\n{body}\n    halt\n")
    config = CoreConfig(fetch_queue_size=8)
    core = OooCore(program, config=config)
    max_seen = 0
    while not core._done:
        core.step()
        max_seen = max(max_seen, len(core.fetch_queue))
    assert max_seen <= 8
    assert core.arf[10] == 100


def test_policy_object_reuse_is_rejected_gracefully():
    """Two cores sharing one policy object share its stats; document that
    the harness always builds a fresh policy per run."""
    program = assemble(".text\n  li a0, 1\n  halt\n")
    policy = make_policy("fence")
    OooCore(program, policy=policy).run()
    checks_first = policy.stats.gate_checks
    OooCore(program, policy=policy).run()
    assert policy.stats.gate_checks >= checks_first  # accumulates, by design


def test_dispatch_respects_small_rob():
    # A cold (DRAM-latency) load at the ROB head blocks commit while the
    # front end keeps dispatching independent work: an 8-entry ROB must fill.
    body = "\n".join("    addi a0, a0, 1" for _ in range(30))
    program = assemble(f"""
    .data
    cold: .dword 12
    .text
        la t0, cold
        ld t1, 0(t0)
{body}
        add a0, a0, t1
        halt
    """)
    config = CoreConfig(rob_size=8, iq_size=8, lq_size=4, sq_size=4)
    result = OooCore(program, config=config).run()
    assert result.regs[10] == 42
    assert result.stats.rob_full_stalls > 0
