"""Security policies on the OoO core: timing-only, correctly ordered."""

import pytest

from repro.functional import run_program
from repro.secure import ALL_POLICY_NAMES, make_policy
from repro.uarch import OooCore
from repro.workloads import build_workload

POLICY_SET = ("none", "fence", "dom", "stt", "ctt", "levioso")


def run_policy(workload, policy_name, **kwargs):
    program = workload.assemble()
    core = OooCore(program, policy=make_policy(policy_name), **kwargs)
    return core.run()


@pytest.fixture(scope="module")
def gather_results():
    workload = build_workload("gather", scale="test")
    return {name: run_policy(workload, name) for name in POLICY_SET}, workload


def test_policies_preserve_architecture(gather_results):
    results, workload = gather_results
    baseline = run_program(workload.assemble())
    for name, result in results.items():
        assert result.regs == baseline.regs, f"{name} changed architectural state"
        assert workload.validate(result.regs), f"{name} failed the self-check"


def test_overhead_ordering_on_gather(gather_results):
    """The paper's central claim, on its most favourable workload shape:

    unprotected <= levioso < ctt <= fence, with levioso well below ctt.
    """
    results, _ = gather_results
    cycles = {name: r.cycles for name, r in results.items()}
    assert cycles["none"] <= cycles["levioso"]
    assert cycles["levioso"] < cycles["ctt"]
    assert cycles["ctt"] <= cycles["fence"]
    # Levioso should recover a large part of the conservative gap.
    gap_ctt = cycles["ctt"] - cycles["none"]
    gap_lev = cycles["levioso"] - cycles["none"]
    assert gap_lev < 0.7 * gap_ctt, (
        f"levioso gap {gap_lev} vs ctt gap {gap_ctt}"
    )


def test_stt_cheaper_than_comprehensive(gather_results):
    results, _ = gather_results
    assert results["stt"].cycles <= results["ctt"].cycles


def test_fence_gates_more_loads_than_levioso(gather_results):
    results, _ = gather_results
    assert results["fence"].stats.loads_gated >= results["levioso"].stats.loads_gated
    assert (
        results["fence"].stats.load_gate_cycles
        > results["levioso"].stats.load_gate_cycles
    )


def test_none_policy_gates_nothing(gather_results):
    results, _ = gather_results
    assert results["none"].stats.loads_gated == 0


@pytest.mark.parametrize("policy", POLICY_SET)
@pytest.mark.parametrize("workload_name", ["pchase", "branchy", "sandbox", "crc"])
def test_architectural_equivalence_across_suite(workload_name, policy):
    workload = build_workload(workload_name, scale="test")
    program = workload.assemble()
    functional = run_program(program)
    result = OooCore(program, policy=make_policy(policy)).run()
    assert result.regs == functional.regs
    assert result.memory.equal_contents(functional.state.memory)


def test_levioso_without_compiler_info_behaves_conservatively():
    """Ablation: no reconvergence metadata -> every branch region extends to
    resolution, so Levioso degenerates toward the conservative baseline."""
    workload = build_workload("gather", scale="test")
    program = workload.assemble()
    informed = OooCore(program, policy=make_policy("levioso")).run()
    blind_core = OooCore(
        program, policy=make_policy("levioso"), use_compiler_info=False
    )
    blind = blind_core.run()
    assert informed.regs == blind.regs
    assert blind.cycles > informed.cycles


def test_stream_costs_stay_moderate():
    """Streaming with a data-dependent fixup branch: taint policies pay a
    moderate price; STT (expiring taint) and Levioso stay near free."""
    workload = build_workload("stream", scale="test")
    none_r = run_policy(workload, "none")
    ctt_overhead = run_policy(workload, "ctt").cycles / none_r.cycles - 1.0
    assert ctt_overhead < 0.35, f"ctt overhead {ctt_overhead:.2%} on stream"
    for name in ("stt", "levioso"):
        result = run_policy(workload, name)
        overhead = result.cycles / none_r.cycles - 1.0
        assert overhead < 0.10, f"{name} overhead {overhead:.2%} on stream"
        assert overhead <= ctt_overhead + 0.01


def test_policy_stats_are_consistent(gather_results):
    results, _ = gather_results
    for name, result in results.items():
        stats = result.stats
        assert stats.load_gate_cycles >= stats.loads_gated >= 0
        assert stats.committed > 0
        assert stats.cycles > 0
