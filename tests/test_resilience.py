"""Fault-tolerant execution: supervisor, journal, cache integrity, chaos.

Covers the resilience layer's contracts:

* retry/backoff/timeout policy math is deterministic and bounded;
* injected worker crashes/hangs/kills and cache corruption are survived
  without operator intervention, and the recovered results are
  bit-identical to a clean serial run;
* a run killed mid-grid leaves a journal + cache from which ``--resume``
  re-simulates only the unfinished points (run-count accounting);
* the persistent cache detects and quarantines damaged entries instead
  of crashing or silently serving them.
"""

from __future__ import annotations

import json
import math
import os
import signal
import subprocess
import sys
import threading

import pytest

from repro.errors import (
    CacheCorruptionError,
    HarnessError,
    InjectedFault,
    ReproError,
    SimulationTimeout,
    TimeoutError_,
)
from repro.faults import FAULT_ENV, FaultPlan, FaultSpec, maybe_fault, uninstall
from repro.harness import (
    GridPoint,
    ParallelRunner,
    ResultCache,
    RetryPolicy,
    RunJournal,
    resilience_summary,
    run_experiments,
)
from repro.harness.resilience import (
    HOLE,
    WorkItem,
    execute_supervised,
    failed_run_record,
    scrub_holes,
)

WORKLOADS = ("gather", "pchase")
POLICIES = ("none", "levioso")


@pytest.fixture(autouse=True)
def _no_leaked_fault_plan():
    """Every test starts and ends without an active fault plan."""
    uninstall()
    yield
    uninstall()


def _points():
    return [GridPoint(w, p) for w in WORKLOADS for p in POLICIES]


def _clean_reference():
    runner = ParallelRunner(scale="test", jobs=1)
    runner.prefetch(_points())
    return {
        (p.workload, p.policy): runner.run(p.workload, p.policy)
        for p in _points()
    }


def _assert_matches_reference(runner, reference):
    for point in _points():
        got = runner.run(point.workload, point.policy)
        want = reference[(point.workload, point.policy)]
        assert (got.cycles, got.committed, got.loads_gated) == (
            want.cycles, want.committed, want.loads_gated,
        ), f"{point.workload}/{point.policy} diverged after fault recovery"


# -------------------------------------------------------------- error names
def test_timeout_rename_keeps_alias():
    assert SimulationTimeout is TimeoutError_
    assert issubclass(SimulationTimeout, ReproError)
    assert issubclass(HarnessError, ReproError)
    assert issubclass(CacheCorruptionError, HarnessError)
    assert issubclass(InjectedFault, ReproError)


# ------------------------------------------------------------- policy math
def test_backoff_grows_and_caps():
    policy = RetryPolicy(base_delay=0.1, backoff=2.0, max_delay=0.5, jitter=0.0)
    assert policy.delay(1) == pytest.approx(0.1)
    assert policy.delay(2) == pytest.approx(0.2)
    assert policy.delay(3) == pytest.approx(0.4)
    assert policy.delay(4) == pytest.approx(0.5)  # capped
    assert policy.delay(10) == pytest.approx(0.5)


def test_backoff_jitter_is_deterministic_and_bounded():
    policy = RetryPolicy(base_delay=0.1, backoff=2.0, max_delay=1.0, jitter=0.5)
    for attempt in (1, 2, 3):
        base = 0.1 * 2.0 ** (attempt - 1)
        d1 = policy.delay(attempt, "some-key")
        d2 = policy.delay(attempt, "some-key")
        assert d1 == d2  # pure function of (attempt, key)
        assert base <= d1 <= base * 1.5
    # Different keys decorrelate.
    assert policy.delay(1, "key-a") != policy.delay(1, "key-b")


# ----------------------------------------------------------------- journal
def test_journal_roundtrip_and_torn_line(tmp_path):
    journal = RunJournal(tmp_path / "j.jsonl")
    journal.record("k1", "ok", workload="gather", policy="none")
    journal.record("k2", "retried", attempts=3)
    journal.record("k3", "failed")
    # Simulate a SIGKILL mid-append: a torn, non-JSON final line.
    with open(journal.path, "a") as f:
        f.write('{"key": "k4", "sta')
    assert journal.completed() == {"k1", "k2"}  # failed + torn excluded
    entries = journal.entries()
    assert [e["key"] for e in entries] == ["k1", "k2", "k3"]
    journal.clear()
    assert journal.completed() == set()


# -------------------------------------------------------------- fault plan
def test_fault_plan_env_roundtrip(tmp_path):
    plan = FaultPlan(
        [FaultSpec("worker", "exception", times=2)],
        seed=42, state_dir=tmp_path,
    )
    clone = FaultPlan.from_json(plan.to_json())
    assert clone.seed == 42
    assert clone.specs == plan.specs
    assert clone.state_dir == plan.state_dir


def test_fault_budget_and_once_per_key(tmp_path):
    plan = FaultPlan(
        [FaultSpec("worker", "exception", times=2)],
        state_dir=tmp_path,
    )
    assert plan.check("worker", "key-a") is not None
    assert plan.check("worker", "key-a") is None  # once per key: retry passes
    assert plan.check("cache.get", "key-b") is None  # wrong site
    assert plan.check("worker", "key-b") is not None
    assert plan.check("worker", "key-c") is None  # budget of 2 exhausted
    assert plan.fired() == 2


def test_fault_selection_is_seeded(tmp_path):
    keys = [f"key-{i}" for i in range(64)]

    def selection(seed, subdir):
        plan = FaultPlan(
            [FaultSpec("worker", "exception", times=64, probability=0.3)],
            seed=seed, state_dir=tmp_path / subdir,
        )
        return {k for k in keys if plan.check("worker", k)}

    first = selection(7, "a")
    assert selection(7, "b") == first  # same seed, same selection
    assert 0 < len(first) < len(keys)  # probability actually filters
    assert selection(8, "c") != first  # seed changes the draw


def test_maybe_fault_raises_injected(tmp_path):
    plan = FaultPlan([FaultSpec("worker", "exception")], state_dir=tmp_path)
    plan.install()
    assert os.environ[FAULT_ENV]
    with pytest.raises(InjectedFault):
        maybe_fault("worker", "k")
    assert maybe_fault("worker", "k") is None  # fired once, spent
    uninstall()
    assert maybe_fault("worker", "k2") is None


# --------------------------------------------------------- cache integrity
def test_cache_checksum_detects_damage(tmp_path):
    cache = ResultCache(tmp_path)
    runner = ParallelRunner(scale="test", jobs=1, cache=cache)
    runner.run("gather", "none")
    key = runner.run_key_for("gather", "none")
    path = cache._path(key)

    # Damage the record *inside* valid JSON: still parses, checksum trips.
    data = json.loads(path.read_text())
    data["record"]["cycles"] = 1
    path.write_text(json.dumps(data))

    fresh = ResultCache(tmp_path)
    assert fresh.get(key) is None  # miss, not a wrong record and not a crash
    assert fresh.stats.corrupt == 1
    assert not path.exists()
    assert len(fresh.quarantined()) == 1  # evidence kept, not deleted


def test_cache_verify_and_repair(tmp_path):
    cache = ResultCache(tmp_path)
    runner = ParallelRunner(scale="test", jobs=1, cache=cache)
    runner.run("gather", "none")
    runner.run("gather", "levioso")
    runner.run("pchase", "none")
    paths = cache.entries()
    assert len(paths) == 3
    paths[0].write_text("{truncated")              # not JSON
    data = json.loads(paths[1].read_text())
    data["record"]["committed"] = 0                # checksum mismatch
    paths[1].write_text(json.dumps(data))

    scan = ResultCache(tmp_path).verify()
    assert scan.checked == 3
    assert scan.ok == 1
    assert len(scan.corrupt) == 2
    assert not scan.clean

    fixer = ResultCache(tmp_path)
    counts = fixer.repair()
    assert counts["quarantined"] == 2
    after = ResultCache(tmp_path)
    assert after.verify().clean
    assert len(after.quarantined()) == 2
    # Quarantined files are not served as entries.
    assert len(after.entries()) == 1


def test_cache_stale_salt_detected(tmp_path):
    cache = ResultCache(tmp_path)
    runner = ParallelRunner(scale="test", jobs=1, cache=cache)
    runner.run("gather", "none")
    path = cache.entries()[0]
    data = json.loads(path.read_text())
    data["salt"] = "other-version/sim0"
    path.write_text(json.dumps(data))
    scan = ResultCache(tmp_path).verify()
    assert len(scan.stale) == 1
    counts = ResultCache(tmp_path).repair()
    assert counts["purged_stale"] == 1
    assert ResultCache(tmp_path).verify().clean


def test_concurrent_put_same_key_no_tmp_collision(tmp_path):
    """Racing writers of one key must never corrupt the stored entry."""
    runner = ParallelRunner(scale="test", jobs=1)
    record = runner.run("gather", "none").slim()
    key = runner.run_key_for("gather", "none")

    errors = []

    def hammer():
        mine = ResultCache(tmp_path)
        try:
            for _ in range(25):
                mine.put(key, record)
        except Exception as exc:  # pragma: no cover - the failure mode
            errors.append(exc)

    threads = [threading.Thread(target=hammer) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    assert not list(tmp_path.rglob("*.tmp"))  # no temp litter left behind
    reread = ResultCache(tmp_path)
    got = reread.get(key)
    assert got is not None and got.cycles == record.cycles
    assert reread.stats.corrupt == 0


_CACHE_HAMMER = """
import json, sys
from repro.harness.cache import ResultCache

root, mode, key, record_path, rounds = sys.argv[1:6]
with open(record_path) as fh:
    record = ResultCache.deserialize(json.load(fh))
cache = ResultCache(root)
for _ in range(int(rounds)):
    if mode == "write":
        cache.put(key, record)
    else:
        got = cache.get(key)
        assert got is not None, "reader saw a missing entry mid-write"
        assert got.cycles == record.cycles, "reader saw a torn entry"
assert cache.stats.corrupt == 0
print("ok")
"""


def test_multiprocess_readers_writers_while_verify_runs(tmp_path):
    """Verify must stay clean while other *processes* rewrite and read a key.

    ``put`` is an atomic same-directory replace, so a concurrent
    ``cache verify`` (the operator's integrity scan) and any number of
    cross-process readers must only ever observe complete entries —
    never a torn or missing one.
    """
    runner = ParallelRunner(scale="test", jobs=1)
    record = runner.run("gather", "none").slim()
    key = runner.run_key_for("gather", "none")
    cache = ResultCache(tmp_path)
    cache.put(key, record)
    record_path = tmp_path / "record-fixture.json"
    record_path.write_text(json.dumps(ResultCache.serialize(record)))

    env = dict(os.environ)
    env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
    env.pop(FAULT_ENV, None)
    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    procs = [
        subprocess.Popen(
            [sys.executable, "-c", _CACHE_HAMMER, str(tmp_path), mode,
             key, str(record_path), "40"],
            env=env, cwd=repo_root,
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        )
        for mode in ("write", "write", "read", "read")
    ]
    # The integrity scan races the workers from this process the whole time.
    scans = 0
    while any(p.poll() is None for p in procs):
        scan = ResultCache(tmp_path).verify()
        assert not scan.corrupt, f"verify saw a torn entry: {scan.corrupt}"
        scans += 1
    assert scans > 0
    for p in procs:
        out, err = p.communicate(timeout=60)
        assert p.returncode == 0, err
        assert "ok" in out
    # Quiescent state: one clean entry, no temp litter, contents intact.
    record_path.unlink()  # not a cache entry; remove before the final scan
    final = ResultCache(tmp_path)
    scan = final.verify()
    assert scan.clean and scan.checked == 1
    assert not list(tmp_path.rglob("*.tmp"))
    got = final.get(key)
    assert got is not None and got.cycles == record.cycles


# ------------------------------------------------- supervised execution
def test_supervisor_captures_exception_with_traceback():
    def worker(args):
        raise ValueError("boom %s" % args[0])

    items = [WorkItem(key="k", args=("x",), workload="w", policy="p")]
    report = execute_supervised(
        items, worker, jobs=1,
        policy=RetryPolicy(max_attempts=2, base_delay=0.0, jitter=0.0),
        on_success=lambda item, record: None,
    )
    assert report.counts == {"failed": 1}
    outcome = report.outcomes[0]
    assert outcome.attempts == 2
    assert "ValueError" in outcome.error and "boom x" in outcome.error
    summary = resilience_summary(report)
    assert summary["ok"] is False
    assert summary["counts"] == {"failed": 1}


def test_worker_crashes_recover_and_match_serial(tmp_path, monkeypatch):
    # Pin the single-point dispatch path: this test counts one recovered
    # outcome per injected crash, which lockstep batching coalesces
    # (batch-level fault recovery is covered in test_lockstep.py).
    monkeypatch.setenv("REPRO_NO_LOCKSTEP", "1")
    reference = _clean_reference()
    FaultPlan(
        [FaultSpec("worker", "exception", times=3)],
        seed=1, state_dir=tmp_path,
    ).install()
    runner = ParallelRunner(
        scale="test", jobs=2,
        retry_policy=RetryPolicy(max_attempts=3, base_delay=0.01),
    )
    ran = runner.prefetch(_points())
    assert ran == len(_points())
    report = runner.report
    assert report.ok
    assert len(report.recovered) == 3  # every injected crash was retried
    assert all(o.attempts >= 2 for o in report.recovered)
    uninstall()
    _assert_matches_reference(runner, reference)


def test_worker_kill_breaks_pool_then_recovers(tmp_path):
    reference = _clean_reference()
    FaultPlan(
        [FaultSpec("worker", "kill", times=1)],
        state_dir=tmp_path,
    ).install()
    runner = ParallelRunner(
        scale="test", jobs=2,
        retry_policy=RetryPolicy(max_attempts=3, base_delay=0.01),
    )
    runner.prefetch(_points())
    assert runner.report.ok
    assert runner.report.pool_rebuilds >= 1
    uninstall()
    _assert_matches_reference(runner, reference)


def test_pool_death_budget_degrades_to_serial(tmp_path):
    reference = _clean_reference()
    FaultPlan(
        [FaultSpec("worker", "kill", times=1)],
        state_dir=tmp_path,
    ).install()
    runner = ParallelRunner(
        scale="test", jobs=2,
        retry_policy=RetryPolicy(max_attempts=3, base_delay=0.01,
                                 max_pool_rebuilds=0),
    )
    runner.prefetch(_points())
    assert runner.report.degraded_to_serial
    assert runner.report.ok  # the grid still completed, in-process
    uninstall()
    _assert_matches_reference(runner, reference)


def test_worker_hang_times_out_and_recovers(tmp_path):
    reference = _clean_reference()
    FaultPlan(
        [FaultSpec("worker", "hang", times=1, hang_seconds=20.0)],
        state_dir=tmp_path,
    ).install()
    runner = ParallelRunner(
        scale="test", jobs=2,
        retry_policy=RetryPolicy(max_attempts=3, base_delay=0.01, timeout=1.5),
    )
    runner.prefetch(_points())
    assert runner.report.ok
    assert runner.report.pool_rebuilds >= 1  # hung worker was abandoned
    uninstall()
    _assert_matches_reference(runner, reference)


def test_corrupt_cache_write_quarantined_on_reread(tmp_path):
    reference = _clean_reference()
    FaultPlan(
        [FaultSpec("cache.put", "corrupt", times=1)],
        state_dir=tmp_path / "faults",
    ).install()
    cold = ParallelRunner(scale="test", jobs=1,
                          cache=ResultCache(tmp_path / "cache"))
    cold.prefetch(_points())
    uninstall()

    warm_cache = ResultCache(tmp_path / "cache")
    warm = ParallelRunner(scale="test", jobs=1, cache=warm_cache)
    warm.prefetch(_points())
    assert warm_cache.stats.corrupt == 1       # the poisoned entry tripped
    assert len(warm_cache.quarantined()) == 1  # ... and was quarantined
    assert warm.simulations == 1               # only that point re-simulated
    _assert_matches_reference(warm, reference)
    # After re-simulation the cache is fully healthy again.
    assert ResultCache(tmp_path / "cache").verify().clean


def test_failed_grid_raises_summary_without_keep_going(tmp_path):
    FaultPlan(
        [FaultSpec("worker", "exception", times=99, persistent=True)],
        state_dir=tmp_path,
    ).install()
    runner = ParallelRunner(
        scale="test", jobs=1,
        retry_policy=RetryPolicy(max_attempts=1, base_delay=0.0),
    )
    with pytest.raises(HarnessError, match="failed permanently"):
        runner.prefetch(_points())
    # The whole grid was still attempted — not aborted at the first error —
    # and every point (batches expand to their members) is accounted failed.
    assert len(runner.failed_points) == len(_points())


def test_keep_going_renders_holes(tmp_path):
    from repro.harness.experiments import fig2

    runner = ParallelRunner(scale="test", jobs=1, keep_going=True)
    bad_key = runner.run_key_for("pchase", "levioso")
    FaultPlan(
        [FaultSpec("worker", "exception", match=bad_key, times=99,
                   persistent=True)],
        state_dir=tmp_path,
    ).install()
    runner.retry_policy = RetryPolicy(max_attempts=2, base_delay=0.0)
    runner.prefetch([GridPoint(w, p) for w in WORKLOADS
                     for p in ("none", "levioso")])
    assert [o.status for o in runner.report.failed] == ["failed"]
    uninstall()

    result = fig2.run(runner=runner, workloads=WORKLOADS,
                      policies=("levioso",))
    holes = scrub_holes(result.rows)
    assert holes >= 1
    by_name = {row[0]: row for row in result.rows}
    assert by_name["pchase"][1] == HOLE       # the failed cell is a hole
    assert isinstance(by_name["gather"][1], (int, float))  # others intact
    assert by_name["geomean"][1] == HOLE      # aggregates over holes too
    assert HOLE in result.text()


def test_failed_run_record_is_all_nan():
    record = failed_run_record("w", "p")
    assert math.isnan(record.cycles)
    assert math.isnan(record.core_stats.committed)
    assert math.isnan(record.mem_stats["anything"])
    assert math.isnan(record.mem_stats.get("other"))


# --------------------------------------------------------- resume support
_KILL_DRIVER = """
import sys
from repro.faults import FaultPlan, FaultSpec
from repro.harness import GridPoint, ParallelRunner, ResultCache, RunJournal

cache_dir, journal_path, fault_dir = sys.argv[1:4]
points = [GridPoint(w, p) for w in ("gather", "pchase")
          for p in ("none", "levioso")]
runner = ParallelRunner(
    scale="test", jobs=1,
    cache=ResultCache(cache_dir), journal=RunJournal(journal_path),
)
# Aim the kill at the THIRD point's key: with jobs=1 the fault SIGKILLs
# this whole process mid-grid, exactly like an operator ^9.
kill_key = runner.run_key_for(points[2].workload, points[2].policy)
FaultPlan(
    [FaultSpec("worker", "kill", match=kill_key)], state_dir=fault_dir
).install()
runner.prefetch(points)
print("unreachable")
"""


def test_resume_after_sigkill_runs_only_unfinished_points(tmp_path):
    cache_dir = tmp_path / "cache"
    journal_path = tmp_path / "journal.jsonl"
    env = dict(os.environ)
    env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
    env.pop(FAULT_ENV, None)
    proc = subprocess.run(
        [sys.executable, "-c", _KILL_DRIVER,
         str(cache_dir), str(journal_path), str(tmp_path / "faults")],
        env=env, cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        capture_output=True, text=True, timeout=300,
    )
    assert proc.returncode == -signal.SIGKILL  # died mid-grid, no cleanup
    assert "unreachable" not in proc.stdout

    journal = RunJournal(journal_path)
    done_before = journal.completed()
    assert len(done_before) == 2  # exactly the points that finished

    resumed = ParallelRunner(
        scale="test", jobs=1, cache=ResultCache(cache_dir),
        journal=journal, resume=True,
    )
    points = [GridPoint(w, p) for w in WORKLOADS for p in POLICIES]
    ran = resumed.prefetch(points)
    assert ran == len(points) - 2       # only the unfinished points
    assert resumed.simulations == len(points) - 2
    assert journal.completed() >= {  # manifest now covers the whole grid
        resumed.run_key_for(p.workload, p.policy) for p in points
    }
    reference = _clean_reference()
    _assert_matches_reference(resumed, reference)


def test_run_experiments_resume_requires_cache():
    with pytest.raises(HarnessError, match="resume"):
        run_experiments(["fig1"], scale="test", resume=True)


# ------------------------------------------------------------- e2e + CLI
def test_chaos_grid_bit_identical_to_clean_run(tmp_path):
    """Acceptance: >=3 crashes + 1 hang + 1 corrupted entry, no operator."""
    reference = _clean_reference()
    FaultPlan(
        [
            FaultSpec("worker", "exception", times=3),
            FaultSpec("worker", "hang", times=1, hang_seconds=15.0),
            FaultSpec("cache.put", "corrupt", times=1),
        ],
        seed=3, state_dir=tmp_path / "faults",
    ).install()
    cache_dir = tmp_path / "cache"
    chaotic = ParallelRunner(
        scale="test", jobs=2, cache=ResultCache(cache_dir),
        retry_policy=RetryPolicy(max_attempts=4, base_delay=0.01, timeout=1.5),
    )
    chaotic.prefetch(_points())
    assert chaotic.report.ok
    # Every injected worker fault forced a retry attempt somewhere; with
    # lockstep batching the four points travel as two batch outcomes, so
    # count recovery *attempts*, not recovered outcomes.
    assert sum(o.attempts - 1 for o in chaotic.report.recovered) >= 3
    uninstall()
    _assert_matches_reference(chaotic, reference)

    # Warm regeneration over the (partly poisoned) cache also converges.
    warm = ParallelRunner(scale="test", jobs=1,
                          cache=ResultCache(cache_dir))
    warm.prefetch(_points())
    _assert_matches_reference(warm, reference)
    assert ResultCache(cache_dir).verify().clean


def test_cli_cache_verify_and_repair(tmp_path, capsys):
    from repro.cli import main

    cache = ResultCache(tmp_path)
    runner = ParallelRunner(scale="test", jobs=1, cache=cache)
    runner.run("gather", "none")
    assert main(["cache", "verify", "--cache-dir", str(tmp_path)]) == 0
    cache.entries()[0].write_text("{broken")
    assert main(["cache", "verify", "--cache-dir", str(tmp_path)]) == 1
    assert main(["cache", "repair", "--cache-dir", str(tmp_path)]) == 0
    assert main(["cache", "verify", "--cache-dir", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert '"clean": true' in out


def test_cli_experiment_fault_plan_keep_going(tmp_path, capsys):
    from repro.cli import main

    plan = FaultPlan(
        [FaultSpec("worker", "exception", times=2)],
        seed=5, state_dir=tmp_path / "faults",
    )
    plan_file = tmp_path / "plan.json"
    plan_file.write_text(plan.to_json())
    code = main([
        "experiment", "fig1", "--scale", "test", "--keep-going",
        "--retries", "3", "--fault-plan", f"@{plan_file}",
    ])
    uninstall()
    assert code == 0  # both injected crashes were retried to success
    out = capsys.readouterr().out
    assert "resilience:" in out
    assert "retried" in out
