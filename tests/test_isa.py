"""ISA layer: registers, opcodes, instruction records, encodings."""

import pytest

from repro.errors import EncodingError, IsaError
from repro.isa import (
    Instruction,
    Opcode,
    parse_register,
    register_name,
    to_signed,
    to_unsigned,
)
from repro.isa.encoding import (
    RECORD_BYTES,
    decode,
    decode_program_text,
    encode,
    encode_program_text,
)


# ----------------------------------------------------------------- registers
def test_parse_register_abi_and_numeric():
    assert parse_register("zero") == 0
    assert parse_register("ra") == 1
    assert parse_register("sp") == parse_register("x2")
    assert parse_register("fp") == parse_register("s0") == 8
    assert parse_register("t6") == 31


def test_parse_register_rejects_unknown():
    with pytest.raises(IsaError):
        parse_register("x32")
    with pytest.raises(IsaError):
        parse_register("r5")


def test_register_name_round_trips():
    for i in range(32):
        assert parse_register(register_name(i)) == i


def test_signedness_helpers():
    assert to_signed(to_unsigned(-1)) == -1
    assert to_unsigned(-1) == (1 << 64) - 1
    assert to_signed(1 << 63) == -(1 << 63)
    assert to_signed(5) == 5


# -------------------------------------------------------------------- opcodes
def test_opcode_classes():
    assert Opcode.LD.is_load and Opcode.LD.is_mem
    assert Opcode.SD.is_store and not Opcode.SD.is_load
    assert Opcode.BEQ.is_branch and Opcode.BEQ.is_control
    assert Opcode.JAL.is_jump and not Opcode.JAL.is_branch
    assert Opcode.CFLUSH.is_load  # transmitter-class
    assert not Opcode.CFLUSH.writes_rd


def test_access_sizes():
    assert Opcode.LB.access_size == 1
    assert Opcode.LH.access_size == 2
    assert Opcode.LWU.access_size == 4
    assert Opcode.SD.access_size == 8
    with pytest.raises(IsaError):
        Opcode.ADD.access_size


def test_opcode_codes_unique():
    codes = [op.code for op in Opcode]
    assert len(codes) == len(set(codes))


# ---------------------------------------------------------------- instruction
def test_instruction_validates_registers():
    with pytest.raises(IsaError):
        Instruction(Opcode.ADD, rd=32)


def test_dest_and_source_regs():
    inst = Instruction(Opcode.ADD, rd=5, rs1=6, rs2=7)
    assert inst.dest_reg() == 5
    assert inst.source_regs() == (6, 7)
    # x0 writes are discarded and x0 reads are free.
    zero_dest = Instruction(Opcode.ADD, rd=0, rs1=0, rs2=7)
    assert zero_dest.dest_reg() is None
    assert zero_dest.source_regs() == (7,)


def test_branch_target_accessors():
    branch = Instruction(Opcode.BNE, rs1=1, rs2=2, imm=0x2000, pc=0x1000)
    assert branch.branch_target == 0x2000
    assert branch.fallthrough == 0x1004
    with pytest.raises(IsaError):
        Instruction(Opcode.ADD).branch_target


def test_instruction_text_forms():
    assert "add" in Instruction(Opcode.ADD, rd=10, rs1=11, rs2=12).text()
    assert "0x2000" in Instruction(Opcode.BEQ, rs1=1, rs2=2, imm=0x2000).text()
    assert "(sp)" in Instruction(Opcode.LD, rd=10, rs1=2, imm=8).text()
    assert Instruction(Opcode.RDCYCLE, rd=5).text() == "rdcycle t0"
    assert Instruction(Opcode.CFLUSH, rs1=2, imm=16).text() == "cflush 16(sp)"


# ------------------------------------------------------------------ encoding
def test_encode_decode_round_trip():
    insts = [
        Instruction(Opcode.ADD, rd=1, rs1=2, rs2=3),
        Instruction(Opcode.LI, rd=10, imm=-(1 << 40)),
        Instruction(Opcode.LD, rd=4, rs1=2, imm=8),
        Instruction(Opcode.BEQ, rs1=1, rs2=2, imm=0x1040),
        Instruction(Opcode.HALT),
    ]
    for inst in insts:
        decoded = decode(encode(inst))
        assert decoded.opcode == inst.opcode
        assert (decoded.rd, decoded.rs1, decoded.rs2) == (inst.rd, inst.rs1, inst.rs2)
        assert decoded.imm == inst.imm


def test_decode_rejects_bad_records():
    with pytest.raises(EncodingError):
        decode(b"\x00" * (RECORD_BYTES - 1))
    bad_opcode = b"\xff" + b"\x00" * (RECORD_BYTES - 1)
    with pytest.raises(EncodingError):
        decode(bad_opcode)


def test_program_image_round_trip():
    insts = [
        Instruction(Opcode.LI, rd=10, imm=7, pc=0x1000),
        Instruction(Opcode.ADDI, rd=10, rs1=10, imm=1, pc=0x1004),
        Instruction(Opcode.HALT, pc=0x1008),
    ]
    image = encode_program_text(insts)
    assert len(image) == 3 * RECORD_BYTES
    back = decode_program_text(image, base_pc=0x1000)
    assert [i.pc for i in back] == [0x1000, 0x1004, 0x1008]
    assert [i.opcode for i in back] == [i.opcode for i in insts]
    with pytest.raises(EncodingError):
        decode_program_text(image[:-1], base_pc=0)
