"""Experiment harness: runner caching, formatting, experiment plumbing."""

import pytest

from repro.errors import SimulationError
from repro.harness import ExperimentRunner, format_percent, format_table, geomean
from repro.harness.experiments import EXPERIMENTS, table1


def test_geomean_basics():
    assert geomean([]) == 0.0
    assert geomean([0.5, 0.5]) == pytest.approx(0.5)
    # geomean of (1+x) factors, not arithmetic mean:
    assert geomean([0.0, 1.0]) == pytest.approx(2 ** 0.5 - 1)


def test_format_table_alignment():
    text = format_table(["name", "value"], [["a", 1.23456], ["bb", 7]])
    lines = text.splitlines()
    assert lines[0].startswith("name")
    assert "1.235" in text
    assert "-" in lines[1]


def test_format_percent():
    assert format_percent(0.235) == "23.5%"


def test_table1_contains_rob_row():
    result = table1.run()
    assert any("ROB" in row[0] for row in result.rows)
    assert "table1" in result.text()


def test_experiment_registry_complete():
    assert set(EXPERIMENTS) == {
        "table1", "table2", "fig1", "fig2", "fig3", "fig4", "fig5",
        "ablationA", "ablationB", "ablationC", "energy", "swcmp",
    }


def test_runner_caches_runs():
    runner = ExperimentRunner(scale="test")
    first = runner.run("cipher", "none")
    second = runner.run("cipher", "none")
    assert first is second  # same object: cached


def test_runner_overhead_nonnegative_for_protected():
    runner = ExperimentRunner(scale="test")
    overhead = runner.overhead("cipher", "fence")
    assert overhead >= -0.01  # protection never speeds things up materially


def test_runner_selfcheck_guards_results():
    """The runner re-validates workload self-checks on every run."""
    runner = ExperimentRunner(scale="test")
    record = runner.run("sort", "levioso")
    assert record.committed > 0
    workload = runner.workload("sort")
    assert workload.validate(record.result.regs)


def test_run_record_fields():
    runner = ExperimentRunner(scale="test")
    record = runner.run("cipher", "ctt")
    assert record.workload == "cipher"
    assert record.policy == "ctt"
    assert record.cycles == record.result.stats.cycles
    assert record.ipc > 0
