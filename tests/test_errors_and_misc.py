"""Exception hierarchy and small-surface coverage."""

import pytest

from repro.errors import (
    AnalysisError,
    AssemblerError,
    ConfigError,
    EncodingError,
    IsaError,
    MemoryFault,
    PolicyError,
    ReproError,
    SimulationError,
    TimeoutError_,
)
from repro.harness import format_series


def test_every_error_is_a_repro_error():
    for cls in (
        IsaError, EncodingError, AssemblerError, SimulationError,
        MemoryFault, TimeoutError_, AnalysisError, ConfigError, PolicyError,
    ):
        assert issubclass(cls, ReproError)


def test_assembler_error_line_prefix():
    err = AssemblerError("bad thing", line=7)
    assert "line 7" in str(err)
    assert err.line == 7
    bare = AssemblerError("bad thing")
    assert bare.line is None


def test_memory_fault_formats_address():
    fault = MemoryFault(0xDEAD, "misaligned")
    assert "0xdead" in str(fault)
    assert fault.address == 0xDEAD


def test_encoding_error_is_isa_error():
    assert issubclass(EncodingError, IsaError)


def test_format_series():
    text = format_series("fence", [(64, 0.5), (128, 0.75)], unit="x")
    assert text.startswith("fence:")
    assert "64=0.500x" in text


def test_catching_repro_error_catches_all():
    with pytest.raises(ReproError):
        raise PolicyError("nope")
