"""Property-based round-trip tests for the ISA encoding and assembler."""

from hypothesis import given, settings, strategies as st

from repro.asm import assemble, disassemble
from repro.functional import run_program
from repro.isa import Instruction, Opcode, OperandFormat
from repro.isa.encoding import decode, encode

reg = st.integers(min_value=0, max_value=31)
imm64 = st.integers(min_value=-(1 << 62), max_value=(1 << 62) - 1)
small_imm = st.integers(min_value=-2048, max_value=2047)


@st.composite
def instructions(draw) -> Instruction:
    opcode = draw(st.sampled_from(list(Opcode)))
    rd = draw(reg) if opcode.writes_rd else 0
    rs1 = draw(reg) if opcode.reads_rs1 else 0
    rs2 = draw(reg) if opcode.reads_rs2 else 0
    if opcode.fmt in (OperandFormat.B, OperandFormat.J):
        imm = draw(st.integers(min_value=0, max_value=1 << 20)) * 4 + 0x1000
    elif opcode is Opcode.LI:
        imm = draw(imm64)
    else:
        imm = draw(small_imm)
    return Instruction(opcode, rd=rd, rs1=rs1, rs2=rs2, imm=imm)


@settings(max_examples=300, deadline=None)
@given(inst=instructions())
def test_encode_decode_identity(inst):
    decoded = decode(encode(inst))
    assert decoded.opcode is inst.opcode
    assert decoded.rd == inst.rd
    assert decoded.rs1 == inst.rs1
    assert decoded.rs2 == inst.rs2
    assert decoded.imm == inst.imm


@st.composite
def straightline_sources(draw) -> str:
    """Small straight-line programs over a scratch buffer."""
    lines = [".data", "buf: .zero 64", ".text", "    la s0, buf"]
    ops = draw(
        st.lists(
            st.tuples(
                st.sampled_from(["add", "sub", "xor", "and", "or", "mul"]),
                st.sampled_from(["t0", "t1", "t2", "a0", "a1"]),
                st.sampled_from(["t0", "t1", "t2", "a0", "a1"]),
                st.sampled_from(["t0", "t1", "t2", "a0", "a1"]),
            ),
            min_size=1,
            max_size=12,
        )
    )
    seeds = draw(st.lists(small_imm, min_size=2, max_size=4))
    for i, seed in enumerate(seeds):
        lines.append(f"    li {['t0','t1','t2','a0','a1'][i % 5]}, {seed}")
    for op, rd, rs1, rs2 in ops:
        lines.append(f"    {op} {rd}, {rs1}, {rs2}")
    offset = draw(st.integers(min_value=0, max_value=7)) * 8
    lines.append(f"    sd a0, {offset}(s0)")
    lines.append(f"    ld a1, {offset}(s0)")
    lines.append("    halt")
    return "\n".join(lines)


@settings(max_examples=60, deadline=None)
@given(source=straightline_sources())
def test_disassemble_reassemble_preserves_semantics(source):
    program = assemble(source)
    round_tripped = assemble(disassemble(program))
    assert run_program(program).regs == run_program(round_tripped).regs


@settings(max_examples=60, deadline=None)
@given(source=straightline_sources())
def test_functional_determinism(source):
    program = assemble(source)
    assert run_program(program).regs == run_program(program).regs
