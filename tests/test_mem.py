"""Backing memory, caches, MSHRs, DRAM, hierarchy."""

import pytest

from repro.errors import ConfigError
from repro.mem import (
    Cache,
    CacheGeometry,
    DramModel,
    MemHierarchyConfig,
    MemoryHierarchy,
    MshrFile,
    SparseMemory,
)


# ------------------------------------------------------------ SparseMemory
def test_sparse_memory_roundtrip():
    mem = SparseMemory()
    mem.write_int(0x1000, 0xDEADBEEF, 4)
    assert mem.read_int(0x1000, 4) == 0xDEADBEEF


def test_sparse_memory_cross_page():
    mem = SparseMemory()
    mem.write_bytes(0x0FFE, b"\x01\x02\x03\x04")
    assert mem.read_bytes(0x0FFE, 4) == b"\x01\x02\x03\x04"


def test_sparse_memory_signed_read():
    mem = SparseMemory()
    mem.write_int(0x100, -5, 8)
    assert mem.read_int(0x100, 8, signed=True) == -5
    assert mem.read_int(0x100, 8) == (1 << 64) - 5


def test_sparse_memory_default_zero():
    mem = SparseMemory()
    assert mem.read_int(0x123456, 8) == 0


def test_sparse_memory_copy_is_deep():
    mem = SparseMemory()
    mem.write_int(0x10, 42, 8)
    clone = mem.copy()
    clone.write_int(0x10, 43, 8)
    assert mem.read_int(0x10, 8) == 42
    assert not mem.equal_contents(clone)


# -------------------------------------------------------------------- Cache
def small_cache(assoc=2, sets=4, repl="lru"):
    return Cache(CacheGeometry("t", assoc * sets * 64, assoc, 64, 1, repl))


def test_cache_miss_then_hit():
    cache = small_cache()
    assert cache.access(0x1000, False) is False
    cache.fill(0x1000)
    assert cache.access(0x1000, False) is True
    assert cache.stats.hits == 1
    assert cache.stats.misses == 1


def test_cache_lru_eviction_order():
    cache = small_cache(assoc=2, sets=1)
    cache.fill(0 * 64)
    cache.fill(1 * 64)
    cache.access(0 * 64, False)      # touch line 0 -> line 1 becomes LRU
    evicted = cache.fill(2 * 64)
    assert evicted == 1
    assert cache.contains(0 * 64)
    assert not cache.contains(1 * 64)


def test_cache_contains_has_no_side_effects():
    cache = small_cache()
    cache.fill(0x40)
    hits, misses = cache.stats.hits, cache.stats.misses
    cache.contains(0x40)
    cache.contains(0x9999)
    assert (cache.stats.hits, cache.stats.misses) == (hits, misses)


def test_cache_invalidate_and_writeback_counting():
    cache = small_cache()
    cache.fill(0x80, dirty=True)
    assert cache.invalidate(0x80) is True
    assert cache.stats.writebacks == 1
    assert cache.invalidate(0x80) is False


def test_cache_geometry_validation():
    with pytest.raises(ConfigError):
        CacheGeometry("bad", 48 * 1024, 7).num_sets


def test_tree_plru_cache_works():
    cache = small_cache(assoc=4, sets=2, repl="tree_plru")
    for i in range(8):
        cache.fill(i * 64 * 2)  # same set (stride = sets*line)
    assert len(cache.resident_lines()) <= 8


# --------------------------------------------------------------------- MSHR
def test_mshr_merge_same_line():
    mshrs = MshrFile(4)
    first = mshrs.allocate(10, cycle=0, fill_latency=100)
    merged = mshrs.lookup(10, cycle=5)
    assert merged == first


def test_mshr_full_delays_start():
    mshrs = MshrFile(2)
    mshrs.allocate(1, 0, 100)
    mshrs.allocate(2, 0, 100)
    ready = mshrs.allocate(3, 0, 100)
    assert ready == 200  # waits for a slot at cycle 100, then 100 latency
    assert mshrs.stats.full_stall_cycles == 100


def test_mshr_outstanding_counts():
    mshrs = MshrFile(8)
    mshrs.allocate(1, 0, 50)
    mshrs.allocate(2, 0, 60)
    assert mshrs.outstanding(10) == 2
    assert mshrs.outstanding(55) == 1
    assert mshrs.outstanding(100) == 0


# --------------------------------------------------------------------- DRAM
def test_dram_row_hit_discount():
    dram = DramModel(latency=100, cycles_per_access=4, row_hit_discount=40)
    first = dram.access(0x0, 0)
    second = dram.access(0x40, 100)  # same row
    assert first == 100
    assert second == 100 + 60
    assert dram.stats.row_hits == 1


def test_dram_channel_queueing():
    dram = DramModel(latency=100, cycles_per_access=10)
    dram.access(0x0, 0)
    # second request issued same cycle queues behind channel occupancy
    second = dram.access(0x100000, 0)
    assert second > 100
    assert dram.stats.queue_cycles > 0


# ---------------------------------------------------------------- Hierarchy
def test_hierarchy_miss_costs_more_than_hit():
    hier = MemoryHierarchy()
    cold = hier.load(0x5000, cycle=0)
    warm = hier.load(0x5000, cycle=cold)
    assert cold - 0 > hier.config.l2.hit_latency
    assert warm - cold == hier.config.l1d.hit_latency


def test_hierarchy_l2_faster_than_dram():
    hier = MemoryHierarchy()
    hier.load(0x5000, 0)          # warm everything
    hier.l1d.invalidate(0x5000)   # now resident only in L2/LLC
    l2_hit = hier.load(0x5000, 1000) - 1000
    dram_cold = hier.load(0xABCDE000, 2000) - 2000
    assert l2_hit < dram_cold


def test_hierarchy_flush_address():
    hier = MemoryHierarchy()
    hier.load(0x6000, 0)
    assert hier.probe_level(0x6000) == "l1d"
    hier.flush_address(0x6000)
    assert hier.probe_level(0x6000) is None


def test_hierarchy_peek_does_not_perturb():
    hier = MemoryHierarchy()
    hier.load(0x7000, 0)
    before = hier.l1d.stats.accesses
    assert hier.peek_l1_hit(0x7000) is True
    assert hier.peek_l1_hit(0x11110000) is False
    assert hier.l1d.stats.accesses == before


def test_hierarchy_stride_prefetcher_reduces_misses():
    base_cfg = MemHierarchyConfig()
    pf_cfg = MemHierarchyConfig(prefetcher="stride", prefetch_degree=4)
    plain, pref = MemoryHierarchy(base_cfg), MemoryHierarchy(pf_cfg)
    t0 = t1 = 0
    for i in range(256):
        addr = 0x20000 + i * 64
        t0 = plain.load(addr, t0, pc=0x1000)
        t1 = pref.load(addr, t1, pc=0x1000)
    assert pref.l2.stats.misses + pref.l1d.stats.misses < (
        plain.l2.stats.misses + plain.l1d.stats.misses
    )


def test_hierarchy_warm_line():
    hier = MemoryHierarchy()
    hier.warm_line(0x8000)
    assert hier.peek_l1_hit(0x8000)
