"""Unit tests for the dataflow framework and its client analyses."""

import pytest

from repro.asm import assemble
from repro.analysis import (
    ENTRY_DEF,
    KIND_V1,
    KIND_V1_CT,
    FORWARD,
    dead_writes,
    definitions_reaching_use,
    live_registers,
    make_problem,
    reaching_definitions,
    scan_program,
    solve,
)
from repro.analysis.scanner import region_map
from repro.cfg import build_all_cfgs
from repro.errors import AnalysisError
from repro.isa import parse_register

DIAMOND = """
.text
    li t0, 1
    li t1, 10
    beqz t0, other
    addi t1, t1, 1
    j join
other:
    addi t1, t1, 2
join:
    add t2, t1, t0
    halt
"""

LOOP = """
.text
    li s0, 4
    li s1, 0
head:
    addi s1, s1, 1
    addi s0, s0, -1
    bnez s0, head
    add a0, s1, zero
    halt
"""


def _cfg(source):
    program = assemble(source, name="unit")
    cfgs = build_all_cfgs(program)
    assert len(cfgs) == 1
    return program, cfgs[0]


def test_reaching_definitions_diamond_merges_both_arms():
    program, cfg = _cfg(DIAMOND)
    result = reaching_definitions(cfg)
    t1 = parse_register("t1")
    add_pc = next(
        i.pc for b in cfg.blocks for i in b.instructions if i.opcode.mnemonic == "add"
    )
    chains = definitions_reaching_use(result, add_pc)
    # t1 was redefined on both arms of the diamond: both defs reach the join.
    assert len(chains[t1]) == 2
    assert ENTRY_DEF not in chains[t1]


def test_reaching_definitions_loop_carries_back_edge():
    program, cfg = _cfg(LOOP)
    result = reaching_definitions(cfg)
    s1 = parse_register("s1")
    inc_pc = next(
        i.pc
        for b in cfg.blocks
        for i in b.instructions
        if i.opcode.mnemonic == "addi" and i.rd == s1 and i.imm == 1
    )
    chains = definitions_reaching_use(result, inc_pc)
    # Around the back edge the increment's own def reaches its use, along
    # with the initial `li`.
    assert inc_pc in chains[s1]
    assert len(chains[s1]) == 2


def test_liveness_dead_write_detected():
    source = """
.text
    li t0, 1
    li t0, 2
    add a0, t0, t0
    halt
"""
    _, cfg = _cfg(source)
    result = live_registers(cfg)
    dead = dead_writes(cfg, result)
    insts = [i for b in cfg.blocks for i in b.instructions]
    # The first `li t0` is overwritten before any read; the second is used.
    assert insts[0].pc in dead
    assert insts[1].pc not in dead


def test_liveness_before_after_replay():
    _, cfg = _cfg(DIAMOND)
    result = live_registers(cfg)
    t0 = parse_register("t0")
    branch_pc = next(i.pc for i in cfg.conditional_branches())
    # t0 is read by the branch and by the join `add`: live before it.
    assert t0 in result.before(branch_pc)


def test_solver_raises_on_non_monotone_problem():
    _, cfg = _cfg(LOOP)
    # An oscillating "analysis": flips a bit on every instruction visit and
    # never stabilizes around the loop.
    problem = make_problem(
        direction=FORWARD,
        boundary=lambda cfg: 0,
        meet=lambda a, b: a + b,  # not idempotent
        transfer_inst=lambda inst, fact: fact + 1,
    )
    with pytest.raises(AnalysisError):
        solve(cfg, problem)


def test_region_map_inverts_branch_metadata():
    inverted = region_map({0x10: frozenset((0x14, 0x18)), 0x20: frozenset((0x18,))})
    assert inverted[0x14] == frozenset((0x10,))
    assert inverted[0x18] == frozenset((0x10, 0x20))


def test_scanner_flags_minimal_v1_shape():
    source = """
.data
array: .zero 64
.secret key
secret: .dword 0x41
.public
probe: .zero 512
bound: .dword 64
.text
    la s0, array
    la s1, probe
    la s2, bound
    ld t0, 0(s2)
loop:
    addi a1, a1, 1
    bltu a1, t0, body
    halt
body:
    add t1, s0, a1
    lbu t2, 0(t1)
    slli t3, t2, 6
    add t4, s1, t3
    lb t5, 0(t4)
    j loop
"""
    report = scan_program(assemble(source, name="mini_v1"))
    assert not report.clean
    assert {f.kind for f in report.findings} == {KIND_V1}


def test_scanner_flags_direct_secret_transmit_as_v1_ct():
    source = """
.data
.secret key
key: .dword 0x41
.public
probe: .zero 512
cond: .dword 1
.text
    la t0, key
    ld s11, 0(t0)
    la s1, probe
    la s2, cond
    ld t1, 0(s2)
    bnez t1, done
    andi t2, s11, 0xff
    slli t3, t2, 6
    add t4, s1, t3
    lb t5, 0(t4)
done:
    halt
"""
    report = scan_program(assemble(source, name="mini_ct"))
    kinds = {f.kind for f in report.findings}
    assert KIND_V1_CT in kinds


def test_scanner_clean_without_secret_ranges():
    # The same memory shapes, but no .secret declaration: nothing to leak.
    source = """
.data
array: .zero 64
probe: .zero 512
bound: .dword 64
.text
    la s0, array
    la s1, probe
    la s2, bound
    ld t0, 0(s2)
loop:
    addi a1, a1, 1
    bltu a1, t0, body
    halt
body:
    add t1, s0, a1
    lbu t2, 0(t1)
    slli t3, t2, 6
    add t4, s1, t3
    lb t5, 0(t4)
    j loop
"""
    report = scan_program(assemble(source, name="no_secrets"))
    assert report.clean


def test_scanner_constant_address_secret_load_alone_is_clean():
    # Loading a secret non-speculatively without transmitting it under a
    # window is constant-time-legitimate (what cipher does).
    source = """
.data
.secret key
key: .dword 0x41
.text
    la t0, key
    ld s11, 0(t0)
    addi s11, s11, 1
    halt
"""
    report = scan_program(assemble(source, name="ct_ok"))
    assert report.clean
