"""Simulation-as-a-service: daemon, queue, coalescing, metrics, client.

The acceptance bar (ISSUE 5): a grid of simulations submitted through
the HTTP service — batch + duplicate submissions — must return results
bit-identical to the serial in-process runner, with ``/metrics`` showing
coalesced > 0 and cache hits > 0; queue overflow must return 429 and
never drop an accepted job.
"""

from __future__ import annotations

import json
import threading
import urllib.request

import pytest

from repro.harness.cache import ResultCache
from repro.harness.runner import ExperimentRunner
from repro.service.client import (
    ServiceClient,
    ServiceError,
    ServiceQueueFull,
    parse_metrics,
)
from repro.service.daemon import ServiceConfig, ServiceThread
from repro.service.jobs import BadRequest, Flight, Job, JobStore, RunRequest
from repro.service.metrics import (
    Gauge,
    Histogram,
    MetricsRegistry,
    record_grid_report,
)
from repro.service.queue import AdmissionQueue, QueueFull


# ----------------------------------------------------------------- metrics
def test_counter_labels_and_render():
    registry = MetricsRegistry()
    c = registry.counter("http_requests_total", "Requests.",
                         labelnames=("code",))
    c.inc(code="200")
    c.inc(2, code="429")
    assert c.value(code="429") == 2
    assert c.total() == 3
    text = registry.render()
    assert "# TYPE http_requests_total counter" in text
    assert 'http_requests_total{code="200"} 1' in text
    assert 'http_requests_total{code="429"} 2' in text


def test_counter_rejects_negative_and_kind_conflict():
    registry = MetricsRegistry()
    c = registry.counter("ops_total")
    with pytest.raises(ValueError):
        c.inc(-1)
    with pytest.raises(ValueError):
        registry.gauge("ops_total")
    # get-or-create returns the same instrument
    assert registry.counter("ops_total") is c


def test_gauge_set_inc_dec():
    g = Gauge("depth")
    g.set(5)
    g.inc()
    g.dec(2)
    assert g.value() == 4
    assert "depth 4" in "\n".join(g.render())


def test_histogram_quantiles_and_render():
    h = Histogram("latency_seconds", buckets=(0.1, 1.0, 10.0))
    for v in (0.05, 0.05, 0.5, 0.5, 0.5, 5.0):
        h.observe(v)
    assert h.count == 6
    assert h.sum == pytest.approx(6.6)
    assert 0.0 < h.quantile(0.5) <= 1.0
    assert h.quantile(0.99) > 1.0
    text = "\n".join(h.render())
    assert 'latency_seconds_bucket{le="+Inf"} 6' in text
    assert "latency_seconds_count 6" in text


def test_histogram_quantile_edge_cases():
    h = Histogram("empty", buckets=(1.0,))
    assert h.quantile(0.5) == 0.0
    with pytest.raises(ValueError):
        h.quantile(1.5)


def test_record_grid_report_feeds_registry():
    from repro.harness.resilience import ResilienceReport, RunOutcome

    report = ResilienceReport(
        outcomes=[
            RunOutcome(key="k1", workload="w", policy="p", status="ok"),
            RunOutcome(key="k2", workload="w", policy="p", status="retried"),
        ],
        pool_rebuilds=2,
    )
    registry = MetricsRegistry()
    record_grid_report(report, registry)
    grid = registry.get("repro_grid_points_total")
    assert grid.value(status="ok") == 1
    assert grid.value(status="retried") == 1
    assert registry.get("repro_pool_rebuilds_total").total() == 2


def test_harness_feeds_global_metrics_registry():
    """The batch harness itself must feed the service metrics registry."""
    from repro.harness.resilience import RetryPolicy, WorkItem, execute_supervised
    from repro.service.metrics import GLOBAL

    before = (GLOBAL.get("repro_grid_points_total").value(status="ok")
              if GLOBAL.get("repro_grid_points_total") else 0)
    items = [WorkItem(key="k", args=("x",), workload="w", policy="p")]
    execute_supervised(items, lambda args: None, jobs=1,
                       policy=RetryPolicy(max_attempts=1),
                       on_success=lambda item, record: None)
    assert GLOBAL.get("repro_grid_points_total").value(status="ok") == before + 1


def test_parse_metrics():
    text = (
        "# HELP x Help.\n# TYPE x counter\n"
        'x{label="a"} 3\n'
        "y 1.5\n"
        "garbage line\n"
    )
    samples = parse_metrics(text)
    assert samples['x{label="a"}'] == 3
    assert samples["y"] == 1.5


# ------------------------------------------------------------ jobs / queue
def test_run_request_validation_errors():
    with pytest.raises(BadRequest):
        RunRequest.from_dict({"workload": "nope", "policy": "none"})
    with pytest.raises(BadRequest):
        RunRequest.from_dict({"workload": "gather", "policy": "nope"})
    with pytest.raises(BadRequest):
        RunRequest.from_dict({"workload": "gather", "scale": "huge"})
    with pytest.raises(BadRequest):
        RunRequest.from_dict({"workload": "gather", "frobnicate": 1})
    with pytest.raises(BadRequest):
        RunRequest.from_dict({"workload": "gather",
                              "config": {"not_a_field": 3}})
    with pytest.raises(BadRequest):
        RunRequest.from_dict({"workload": "gather",
                              "config": {"rob_size": [1, 2]}})
    with pytest.raises(BadRequest):
        RunRequest.from_dict(["not", "an", "object"])


def test_run_request_config_overrides_round_trip():
    request = RunRequest.from_dict(
        {"workload": "gather", "policy": "levioso",
         "config": {"rob_size": 64}})
    assert request.config.rob_size == 64
    described = request.describe()
    assert described["config"] == {"rob_size": 64}
    point = request.grid_point()
    assert point.config.rob_size == 64


def test_admission_queue_priority_and_overflow():
    q = AdmissionQueue(depth=2)
    r = RunRequest(workload="gather", policy="none")
    low = Flight(key="low", request=r, priority=20)
    high = Flight(key="high", request=r, priority=1)
    q.push(low)
    q.push(high)
    assert q.full
    with pytest.raises(QueueFull) as exc_info:
        q.push(Flight(key="x", request=r, priority=5))
    assert exc_info.value.retry_after > 0
    assert q.pop() is high  # priority order, not FIFO
    assert q.pop() is low
    assert q.pop() is None
    assert q.admitted == 2 and q.rejected == 1


def test_admission_queue_priority_raise_after_enqueue():
    q = AdmissionQueue(depth=4)
    r = RunRequest(workload="gather", policy="none")
    a = Flight(key="a", request=r, priority=10)
    b = Flight(key="b", request=r, priority=9)
    q.push(a)
    q.push(b)
    # A high-priority latecomer coalesces onto `a`, pulling it forward.
    a.attach(Job(
        request=RunRequest(workload="gather", policy="none", priority=1),
        key="a"))
    q.reprioritize(a)
    assert a.priority == 1
    assert len(q) == 2  # the duplicate heap entry is not a new flight
    assert [f.key for f in q.flights()] == ["a", "b"]
    assert q.pop() is a
    assert q.pop() is b
    assert q.pop() is None  # a's stale entry is lazy-deletion garbage


def test_job_store_prunes_only_terminal_jobs():
    from repro.service.jobs import DONE

    store = JobStore(history=3)
    r = RunRequest(workload="gather", policy="none")
    done = [Job(request=r, key=f"k{i}", state=DONE) for i in range(3)]
    for job in done:
        store.add(job)
    active = Job(request=r, key="active")
    store.add(active)
    assert len(store) == 3  # one DONE job evicted, the active one kept
    assert store.get(active.id) is active
    assert store.get(done[0].id) is None
    assert store.evicted == 1


# ------------------------------------------------------- service end-to-end
@pytest.fixture(scope="module")
def service():
    with ServiceThread(ServiceConfig(port=0, jobs=2, queue_depth=16)) as s:
        yield s


@pytest.fixture(scope="module")
def client(service):
    return ServiceClient(service.base_url)


def test_healthz_and_404(client):
    health = client.healthz()
    assert health["status"] == "ok"
    assert health["queue_capacity"] == 16
    with pytest.raises(ServiceError) as exc_info:
        client._json("GET", "/nope")
    assert exc_info.value.status == 404


def test_submit_rejects_bad_requests(client):
    with pytest.raises(ServiceError) as exc_info:
        client.submit([{"workload": "not-a-workload", "policy": "none"}])
    assert exc_info.value.status == 400
    with pytest.raises(ServiceError) as exc_info:
        client._json("POST", "/v1/runs", ["not", "a", "dict"])
    assert exc_info.value.status == 400
    status, _, _ = client._request("PUT", "/healthz", {"x": 1})
    assert status == 405


def test_unknown_job_is_404(client):
    with pytest.raises(ServiceError) as exc_info:
        client.status("no-such-job")
    assert exc_info.value.status == 404


def test_grid_bit_identical_with_coalescing_and_cache_hits(client):
    """THE acceptance test: batch + duplicates, bit-identical to serial."""
    points = [
        ("gather", "none"), ("gather", "levioso"),
        ("pchase", "none"), ("pchase", "levioso"),
        ("bsearch", "fence"),
    ]
    runs = [{"workload": w, "policy": p} for w, p in points]
    # Batch with in-batch duplicates -> coalescing.
    jobs = client.submit(runs + runs)
    assert len(jobs) == 10
    assert sum(1 for j in jobs if j["coalesced"]) >= len(points)
    finals = client.wait([j["id"] for j in jobs], timeout=120)

    serial = ExperimentRunner(scale="test")
    for job in finals.values():
        record = client.record_of(job)
        want = serial.run(job["request"]["workload"],
                          job["request"]["policy"]).slim()
        got, expect = ResultCache.serialize(record), ResultCache.serialize(want)
        assert json.loads(json.dumps(got)) == json.loads(json.dumps(expect)), (
            f"{job['request']}: service record differs from serial run")

    # Duplicate submission after completion -> served from the store.
    again = client.submit(runs)
    assert all(j["cached"] and j["state"] == "done" for j in again)
    metrics = client.metrics()
    assert metrics["repro_service_jobs_coalesced_total"] >= len(points)
    assert metrics["repro_service_cache_hits_total"] >= len(points)
    assert metrics["repro_service_simulations_total"] >= len(points)
    # Prometheus exposition contains the histogram family.
    text = client.metrics_text()
    assert "repro_service_job_latency_seconds_bucket" in text
    assert "# TYPE repro_service_queue_depth gauge" in text


def test_config_override_runs_and_differs(client):
    job = client.submit_one("gather", "levioso", config={"rob_size": 96})
    final = client.wait([job["id"]], timeout=120)[job["id"]]
    small_rob = client.record_of(final)
    base = ExperimentRunner(scale="test")
    assert small_rob.cycles != base.run("gather", "levioso").cycles
    from repro.uarch import CoreConfig
    import dataclasses

    override = ExperimentRunner(scale="test")
    want = override.run(
        "gather", "levioso",
        config=dataclasses.replace(CoreConfig(), rob_size=96))
    assert small_rob.cycles == want.cycles


def test_queue_overflow_429_never_drops_accepted(client, service):
    """Backpressure: 429 on overflow; every accepted job still completes."""
    service.pause()  # nothing pops, so admissions deterministically pile up
    try:
        depth = service.service.queue.depth
        room = depth - len(service.service.queue)
        assert room > 0
        accepted = []
        # Fill the queue exactly with distinct (never-run-before) points.
        batch = [
            {"workload": "gather", "policy": "levioso",
             "config": {"rob_size": 100 + 2 * i}}
            for i in range(room)
        ]
        accepted.extend(client.submit(batch))
        # One more novel point must be rejected with Retry-After.
        with pytest.raises(ServiceQueueFull) as exc_info:
            client.submit([{"workload": "gather", "policy": "levioso",
                            "config": {"rob_size": 190}}])
        assert exc_info.value.retry_after >= 1.0
        # ... but a duplicate of a queued point coalesces: no capacity used.
        dup = client.submit([batch[0]])
        assert dup[0]["coalesced"]
        accepted.extend(dup)
        rejected = client.metrics()["repro_service_jobs_rejected_total"]
        assert rejected >= 1
    finally:
        service.resume()
    finals = client.wait([j["id"] for j in accepted], timeout=300)
    assert all(j["state"] == "done" for j in finals.values())


def test_jobs_index_lists_recent(client):
    index = client.jobs()
    assert index["total"] >= 1
    assert all("id" in j and "state" in j for j in index["jobs"])


def test_priority_orders_queued_work(service):
    """With the scheduler paused, a later high-priority job runs first."""
    local = ServiceClient(service.base_url)
    service.pause()
    try:
        slow = local.submit([{"workload": "sort", "policy": "none",
                              "priority": 50}])
        fast = local.submit([{"workload": "crc", "policy": "none",
                              "priority": 1}])
        flights = service.service.queue.flights()
        assert flights[0].request.workload == "crc"
    finally:
        service.resume()
    finals = local.wait([slow[0]["id"], fast[0]["id"]], timeout=120)
    assert all(j["state"] == "done" for j in finals.values())


def test_http_metrics_endpoint_content_type(service):
    with urllib.request.urlopen(service.base_url + "/metrics") as resp:
        assert resp.status == 200
        assert resp.headers["Content-Type"].startswith("text/plain")


# ------------------------------------------------------------ drain + cache
def test_drain_completes_accepted_jobs_and_rejects_new(tmp_path):
    config = ServiceConfig(port=0, jobs=2, queue_depth=16,
                           cache_dir=str(tmp_path / "cache"), use_cache=True)
    server = ServiceThread(config).start()
    client = ServiceClient(server.base_url)
    jobs = client.submit([
        {"workload": "gather", "policy": "none"},
        {"workload": "crc", "policy": "levioso"},
    ])
    assert server.stop(timeout=120)  # drain: accepted jobs must resolve
    done = [server.service.store.get(j["id"]) for j in jobs]
    assert all(j is not None and j.state == "done" for j in done)
    # The persistent cache holds the results for the next daemon.
    cache = ResultCache(tmp_path / "cache")
    assert len(cache.entries()) >= 2
    # A restarted service serves them as cache hits without simulating.
    server2 = ServiceThread(ServiceConfig(
        port=0, jobs=1, cache_dir=str(tmp_path / "cache"),
        use_cache=True)).start()
    try:
        client2 = ServiceClient(server2.base_url)
        again = client2.submit([{"workload": "gather", "policy": "none"}])
        assert again[0]["cached"] and again[0]["state"] == "done"
        record = client2.record_of(client2.status(again[0]["id"]))
        serial = ExperimentRunner(scale="test").run("gather", "none").slim()
        assert ResultCache.serialize(record) == ResultCache.serialize(serial)
    finally:
        server2.stop()


def test_stopped_service_rejects_new_submissions():
    server = ServiceThread(ServiceConfig(port=0, jobs=1)).start()
    client = ServiceClient(server.base_url)
    assert client.healthz()["status"] == "ok"
    server.stop()
    # The listener is closed after drain; new submissions cannot land.
    with pytest.raises(ServiceError):
        client.submit([{"workload": "gather", "policy": "none"}])


# ------------------------------------------------------------------- chaos
def test_service_chaos_smoke_bit_identical(tmp_path):
    """Worker kill + cache corruption through HTTP: recovery must match."""
    from repro.service.chaos import service_chaos_smoke

    messages: list[str] = []
    ok = service_chaos_smoke(
        seed=7, jobs=2,
        workloads=("gather",), policies=("none", "levioso"),
        cache_dir=tmp_path / "chaos-cache", log=messages.append,
    )
    assert ok, "\n".join(messages)
    assert any("PASS" in m for m in messages)


# ------------------------------------------------------- concurrent clients
def test_many_threads_submitting_same_point_coalesce(service):
    """N racing clients of one point: one simulation, N identical answers."""
    local = ServiceClient(service.base_url)
    run = {"workload": "automaton", "policy": "nda"}
    results: list = []
    errors: list = []

    def one_client():
        try:
            mine = ServiceClient(service.base_url)
            jobs = mine.submit([run])
            final = mine.wait([jobs[0]["id"]], timeout=120)[jobs[0]["id"]]
            results.append(ResultCache.serialize(mine.record_of(final)))
        except Exception as exc:  # pragma: no cover - the failure mode
            errors.append(exc)

    threads = [threading.Thread(target=one_client) for _ in range(6)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    assert len(results) == 6
    assert all(r == results[0] for r in results)
    serial = ExperimentRunner(scale="test").run("automaton", "nda").slim()
    assert results[0] == ResultCache.serialize(serial)
