"""Superblock front end: partition invariants + bit-identical equivalence.

The generated superblock fetch (``_sbf_<i>``) and dispatch (``_sbd_<i>``)
ops replace the per-PC front-end loops, so the contract mirrors
:mod:`tests.test_specialize`: a superblock run must be *bit-identical* to
the same specialized core with the superblock fast path disabled — same
CoreStats, same architectural registers, same memory-hierarchy counters —
for every workload and every policy, plus a hypothesis property over
random programs and random core geometries, resumable-slice equivalence,
and the ``REPRO_NO_SUPERBLOCK`` escape hatch.  (Specialized-vs-interpreted
equivalence is test_specialize's job; composing the two closures covers
superblock-vs-interpreted.)
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.asm import assemble
from repro.isa import Opcode
from repro.secure import ALL_POLICY_NAMES, make_policy
from repro.testing import programs
from repro.uarch import CoreConfig, OooCore
from repro.uarch.decoded import K_SEQ, _SB_MIN_RUN, decoded_image
from repro.workloads import WORKLOAD_NAMES, build_workload

POLICIES = tuple(sorted(ALL_POLICY_NAMES))


def _run(program, policy_name, *, superblock, config=None,
         max_cycles=5_000_000):
    core = OooCore(
        program,
        config=config,
        policy=make_policy(policy_name),
        specialize=True,
        superblock=superblock,
    )
    if superblock:
        assert core._superblock or not core._decoded.superblocks
    else:
        assert not core._superblock
    return core.run(max_cycles=max_cycles)


# ------------------------------------------------------------ equivalence
@pytest.mark.parametrize("name", WORKLOAD_NAMES)
def test_suite_equivalence_under_every_policy(name):
    """Superblock fast path is bit-identical to the per-PC front end
    across the whole suite x policy grid."""
    workload = build_workload(name, "test")
    program = workload.assemble()
    for policy_name in POLICIES:
        fast = _run(program, policy_name, superblock=True)
        slow = _run(program, policy_name, superblock=False)
        label = f"{name}/{policy_name}"
        assert fast.stats == slow.stats, label
        assert fast.regs == slow.regs, label
        assert fast.stats_dict() == slow.stats_dict(), label
        assert workload.validate(fast.regs), label


@st.composite
def _small_configs(draw):
    """Random cramped-to-roomy core geometries; stress every stall path
    (a fetch queue smaller than a run forces mid-superblock stalls)."""
    iq_size = draw(st.integers(4, 32))
    return CoreConfig(
        fetch_width=draw(st.integers(1, 4)),
        dispatch_width=draw(st.integers(1, 4)),
        issue_width=draw(st.integers(1, 4)),
        commit_width=draw(st.integers(1, 4)),
        rob_size=draw(st.integers(iq_size, 64)),
        iq_size=iq_size,
        lq_size=draw(st.integers(2, 16)),
        sq_size=draw(st.integers(2, 16)),
        fetch_queue_size=draw(st.integers(2, 16)),
        frontend_latency=draw(st.integers(1, 8)),
    )


@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(
    source=programs(),
    policy_name=st.sampled_from(POLICIES),
    config=_small_configs(),
)
def test_superblock_never_diverges(source, policy_name, config):
    """Property: random program geometry, random core geometry, any
    policy — superblock and per-PC front ends are bit-identical."""
    program = assemble(source, name="hypothesis")
    fast = _run(program, policy_name, superblock=True, config=config,
                max_cycles=2_000_000)
    slow = _run(program, policy_name, superblock=False, config=config,
                max_cycles=2_000_000)
    assert fast.stats == slow.stats
    assert fast.regs == slow.regs


def test_sliced_advance_pauses_mid_superblock():
    """advance(limit, stop_cycle) with a pause that lands mid-run is
    bit-identical to the one-shot run, in both front-end modes (the
    resumable-slice path the lockstep executor uses must not observe
    the superblock packet boundary)."""
    program = build_workload("branchy", "test").assemble()
    for superblock in (True, False):
        one_shot = _run(program, "levioso", superblock=superblock)
        core = OooCore(
            program, policy=make_policy("levioso"),
            specialize=True, superblock=superblock,
        )
        # Tiny odd quantum: pause points land at arbitrary offsets inside
        # fetched superblock packets.
        stop = 7
        while not core.advance(5_000_000, stop):
            stop += 7
        sliced = core._result()
        assert sliced.stats == one_shot.stats, superblock
        assert sliced.regs == one_shot.regs, superblock
        assert sliced.stats_dict() == one_shot.stats_dict(), superblock


# ----------------------------------------------------- partition invariants
@pytest.mark.parametrize("name", WORKLOAD_NAMES)
def test_partition_invariants(name):
    """Every superblock is a maximal straight-line run of plain
    instructions with correct backrefs and no interior entry points."""
    program = build_workload(name, "test").assemble()
    image = decoded_image(program, CoreConfig())
    interior_pcs = set()
    for sb in image.superblocks:
        assert sb.n == len(sb.decs) == len(sb.pcs) == len(sb.meta)
        assert sb.n >= _SB_MIN_RUN
        for pos, dec in enumerate(sb.decs):
            # Only plain sequential instructions — no terminators, no
            # fences — and each one knows its run and offset.
            assert dec.kind == K_SEQ
            assert dec.opcode is not Opcode.FENCE
            assert dec.sb is sb and dec.sb_pos == pos
            if pos:
                assert sb.decs[pos - 1].fallthrough == dec.pc
                interior_pcs.add(dec.pc)
        assert sb.next_pc == sb.decs[-1].fallthrough
        assert sb.has_mem == any(cls for _, _, _, cls in sb.meta)
    # No interior PC is a potential control-flow entry: branch/jump
    # targets, fallthroughs of control flow, the program entry, and
    # reconvergence PCs all start a new run.
    assert program.entry not in interior_pcs
    for inst in program.instructions:
        opcode = inst.opcode
        if opcode.is_branch:
            assert inst.branch_target not in interior_pcs
            assert inst.fallthrough not in interior_pcs
        elif opcode is Opcode.JAL:
            assert inst.imm not in interior_pcs
            assert inst.fallthrough not in interior_pcs
        elif opcode is Opcode.JALR:
            assert inst.fallthrough not in interior_pcs
    for dec in image.by_pc.values():
        if dec.reconv_pc is not None:
            assert dec.reconv_pc not in interior_pcs
    # Instructions outside every run are exactly the non-K_SEQ/FENCE ones
    # plus runs shorter than the minimum.
    for dec in image.by_pc.values():
        if dec.sb is None:
            continue
        assert dec is dec.sb.decs[dec.sb_pos]


# ------------------------------------------------------------- diagnostics
def test_hit_rate_counters_and_profile_report():
    """The off-CoreStats fast-path counters move and stay bounded, and
    the profile report surfaces them."""
    program = build_workload("gather", "test").assemble()
    core = OooCore(program, policy=make_policy("levioso"),
                   specialize=True, superblock=True)
    result = core.run()
    assert core._superblock
    assert core._sb_fetched > 0
    assert 0 < core._sb_committed <= result.stats.committed
    assert core._sb_committed <= core._sb_fetched

    from repro.profiling import profile_run

    report = profile_run(program, "levioso", superblock=True)
    sb = report["superblock"]
    assert sb["enabled"]
    assert sb["fetched_fast"] > 0
    assert 0.0 < sb["hit_rate"] <= 1.0

    # Counters must stay zero when the fast path is off.
    off = OooCore(program, policy=make_policy("levioso"),
                  specialize=True, superblock=False)
    off.run()
    assert off._sb_fetched == 0 and off._sb_committed == 0


def test_env_override_forces_per_pc_front_end(monkeypatch):
    program = build_workload("gather", "test").assemble()
    monkeypatch.setenv("REPRO_NO_SUPERBLOCK", "1")
    core = OooCore(program, policy=make_policy("levioso"), specialize=True)
    assert not core._superblock
    ref = core.run()
    monkeypatch.delenv("REPRO_NO_SUPERBLOCK")
    fast_core = OooCore(program, policy=make_policy("levioso"),
                        specialize=True)
    assert fast_core._superblock
    fast = fast_core.run()
    assert fast.stats == ref.stats
    assert fast.regs == ref.regs


def test_interpreted_core_never_takes_fast_path():
    """superblock=True without specialize=True must not enable the fast
    path (the generated ops live on the specialized image)."""
    program = build_workload("gather", "test").assemble()
    core = OooCore(program, policy=make_policy("none"),
                   specialize=False, cycle_skip=False,
                   recycle_dyninsts=False, superblock=True)
    assert not core._superblock
    core.run()
    assert core._sb_fetched == 0
