"""Property-based differential testing: random programs, golden model vs
out-of-order core under every security policy.

The generator builds structured, always-terminating programs (straight-line
ALU blocks, scratch-buffer loads/stores, if/else diamonds, fixed-trip-count
loops — including pointer-like tainted addressing) and asserts that the OoO
core commits exactly the architectural state the functional simulator
produces, under each policy.  This is the strongest correctness net over
squash/rename/forwarding/gating interactions.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.asm import assemble
from repro.functional import run_program
from repro.secure import ALL_POLICY_NAMES, make_policy
from repro.testing import programs
from repro.uarch import CoreConfig, OooCore


def _arch_state(source: str, policy_name: str, config: CoreConfig):
    program = assemble(source, name="hypothesis")
    core = OooCore(program, config=config, policy=make_policy(policy_name))
    result = core.run(max_cycles=2_000_000)
    return program, result


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(source=programs(), policy_name=st.sampled_from(sorted(ALL_POLICY_NAMES)))
def test_ooo_matches_functional_under_any_policy(source, policy_name):
    program = assemble(source, name="hypothesis")
    functional = run_program(program, max_instructions=500_000)
    _, result = _arch_state(source, policy_name, CoreConfig())
    assert result.regs == functional.regs
    assert result.memory.equal_contents(functional.state.memory)


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(source=programs())
def test_tiny_core_matches_functional(source):
    """A deliberately cramped core (tiny ROB/IQ/LSQ) shakes out stall paths."""
    config = CoreConfig(
        rob_size=16, iq_size=8, lq_size=4, sq_size=4,
        fetch_width=2, dispatch_width=2, issue_width=2, commit_width=2,
        fetch_queue_size=4,
    )
    program = assemble(source, name="hypothesis")
    functional = run_program(program, max_instructions=500_000)
    _, result = _arch_state(source, "levioso", config)
    assert result.regs == functional.regs
    assert result.memory.equal_contents(functional.state.memory)


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(source=programs())
def test_policies_never_change_cycle_determinism(source):
    """Same program + same policy twice -> exactly the same cycle count."""
    program_a = assemble(source, name="a")
    program_b = assemble(source, name="b")
    r1 = OooCore(program_a, policy=make_policy("ctt")).run(max_cycles=2_000_000)
    r2 = OooCore(program_b, policy=make_policy("ctt")).run(max_cycles=2_000_000)
    assert r1.cycles == r2.cycles
    assert r1.regs == r2.regs
