"""NDA propagation-blocking policy: mechanism, security, correctness."""

import pytest

from repro.asm import assemble
from repro.attacks import run_attack
from repro.functional import run_program
from repro.secure import NdaPolicy, make_policy
from repro.uarch import OooCore
from repro.workloads import build_workload


def test_nda_architectural_equivalence():
    for name in ("branchy", "pchase", "sort"):
        workload = build_workload(name, scale="test")
        program = workload.assemble()
        functional = run_program(program)
        result = OooCore(program, policy=make_policy("nda")).run()
        assert result.regs == functional.regs, name
        assert result.memory.equal_contents(functional.state.memory), name


def test_nda_blocks_spectre_v1():
    outcome = run_attack("spectre_v1", "nda", secret=0x5A)
    assert not outcome.leaked


def test_nda_does_not_protect_nonspeculative_secrets():
    outcome = run_attack("spectre_v1_ct", "nda", secret=0xA7)
    assert outcome.leaked


def test_nda_delays_dependents_not_the_load():
    """A dependent of a speculative load waits; the load itself issues."""
    source = """
    .data
    cold: .dword 0          # value is an index
    table: .dword 11, 22, 33, 44
    .text
        la t0, cold
        la t1, table
        li a1, 0
        li a2, 64
    warm:                   # a loop so branches are in flight
        addi a1, a1, 1
        ld t2, 0(t0)        # load under an unresolved back-branch window
        slli t3, t2, 3
        add t3, t1, t3
        ld a0, 0(t3)        # dependent load
        bne a1, a2, warm
        halt
    """
    program = assemble(source)
    functional = run_program(program)
    none_r = OooCore(program, policy=make_policy("none")).run()
    nda_r = OooCore(program, policy=make_policy("nda")).run()
    assert nda_r.regs == functional.regs
    # NDA never gates load *issue*:
    assert nda_r.stats.loads_gated == 0
    # ...but costs cycles through withheld propagation.
    assert nda_r.cycles >= none_r.cycles


def test_nda_policy_flags():
    policy = NdaPolicy()
    assert policy.protects_speculative_secrets
    assert not policy.protects_nonspeculative_secrets
    assert not policy.comprehensive


def test_nda_cost_between_none_and_fence():
    workload = build_workload("gather", scale="test")
    program = workload.assemble()
    cycles = {}
    for name in ("none", "nda", "fence"):
        cycles[name] = OooCore(program, policy=make_policy(name)).run().cycles
    assert cycles["none"] <= cycles["nda"] <= cycles["fence"]
