"""Lockstep grid vectorization: never-diverge property + batch plumbing.

A lockstep batch interleaves N independent cores in one process; the
contract is that batching is *invisible* in the results — every member's
record is bit-identical to running that point alone — for any batch size,
composition, and slice quantum.  Also covers the planner's grouping, the
``REPRO_NO_LOCKSTEP`` escape hatch, mid-batch timeout attribution, and
batch-level fault recovery (the batched twin of the per-point recovery
tests in ``test_resilience.py``).
"""

from __future__ import annotations

import dataclasses

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.errors import SimulationTimeout
from repro.faults import FaultPlan, FaultSpec, uninstall
from repro.harness import GridPoint, ParallelRunner, RetryPolicy
from repro.harness.lockstep import (
    LOCKSTEP_MAX,
    lockstep_enabled,
    run_lockstep,
    simulate_batch,
    simulate_work,
)
from repro.harness.resilience import simulate_point
from repro.secure import make_policy
from repro.uarch import CoreConfig, OooCore
from repro.workloads import build_workload

WORKLOADS = ("gather", "pchase")
POLICIES = ("none", "levioso", "fence")


@pytest.fixture(autouse=True)
def _no_leaked_fault_plan():
    uninstall()
    yield
    uninstall()


#: Memoized single-point reference records, keyed (workload, policy) —
#: every hypothesis example reuses them, so the property's cost is the
#: batched arm only.
_REF: dict = {}


def _single(workload: str, policy: str):
    record = _REF.get((workload, policy))
    if record is None:
        record = simulate_point(
            ("test", GridPoint(workload, policy), None)
        )
        _REF[workload, policy] = record
    return record


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    composition=st.lists(
        st.tuples(st.sampled_from(WORKLOADS), st.sampled_from(POLICIES)),
        min_size=1,
        max_size=5,
    )
)
def test_lockstep_never_diverges(composition):
    """Property: a batch of random size and composition (duplicates and
    mixed workloads included) returns records bit-identical to running
    each member alone."""
    keys = tuple(
        f"m{i}:{w}/{p}" for i, (w, p) in enumerate(composition)
    )
    points = tuple(GridPoint(w, p) for w, p in composition)
    records = simulate_batch(("test", points, None, keys))
    assert set(records) == set(keys)
    for key, (workload, policy) in zip(keys, composition):
        assert records[key] == _single(workload, policy), key


@pytest.mark.parametrize("slice_cycles", [7, 64, 130, 1021, 10**9])
def test_slice_quantum_is_invisible(slice_cycles):
    """The round-robin quantum is pure scheduling: any slice size yields
    the same stats/regs as an unsliced run.  The tiny odd quanta land
    pause points mid-superblock, so the resumable-slice path must not
    observe the generated front end's packet boundaries."""
    program = build_workload("gather", "test").assemble()
    direct = OooCore(program, policy=make_policy("levioso")).run()
    core = OooCore(program, policy=make_policy("levioso"))
    limit = CoreConfig().max_cycles
    results = run_lockstep([("only", core, limit)], slice_cycles)
    assert results["only"].stats == direct.stats
    assert results["only"].regs == direct.regs


def test_timeout_mid_batch_names_the_guilty_point():
    """A member that hits its cycle limit mid-lockstep raises with the
    member's run key in ``SimulationTimeout.point``."""
    tiny = dataclasses.replace(CoreConfig(), max_cycles=300)
    keys = ("innocent", "guilty")
    points = (
        GridPoint("gather", "none"),
        GridPoint("gather", "none", config=tiny),
    )
    with pytest.raises(SimulationTimeout) as exc_info:
        simulate_batch(("test", points, None, keys))
    assert exc_info.value.point == "guilty"
    assert exc_info.value.limit == 300


def test_simulate_work_dispatches_on_arity():
    point = GridPoint("gather", "none")
    single = simulate_work(("test", point, None))
    batched = simulate_work(("test", (point,), None, ("k",)))
    assert batched["k"] == single


def test_planner_groups_by_workload_and_chunks(monkeypatch):
    monkeypatch.delenv("REPRO_NO_LOCKSTEP", raising=False)
    assert lockstep_enabled()
    runner = ParallelRunner(scale="test", jobs=2)
    todo = [
        (f"k{i}:{w}/{p}", GridPoint(w, p))
        for w in WORKLOADS
        for i, p in enumerate(POLICIES)
    ]
    items, batch_members = runner._plan_work(todo)
    # Two workloads x three policies -> one batch per workload.
    assert len(items) == 2
    assert all(item.key.startswith("batch:") for item in items)
    for item in items:
        scale, points, config, keys = item.args
        members = batch_members[item.key]
        assert keys == tuple(k for k, _ in members)
        assert all(p.workload == item.workload for _, p in members)
    # Oversized groups are chunked at LOCKSTEP_MAX; the remainder of one
    # becomes a classic single-point item.
    big = [
        (f"b{i}", GridPoint("gather", "none"))
        for i in range(LOCKSTEP_MAX + 1)
    ]
    items, batch_members = runner._plan_work(big)
    sizes = sorted(
        len(batch_members.get(item.key, [None])) for item in items
    )
    assert sizes == [1, LOCKSTEP_MAX]


def test_env_override_disables_batching(monkeypatch):
    monkeypatch.setenv("REPRO_NO_LOCKSTEP", "1")
    assert not lockstep_enabled()
    runner = ParallelRunner(scale="test", jobs=2)
    todo = [
        (f"k:{w}/{p}", GridPoint(w, p))
        for w in WORKLOADS
        for p in POLICIES
    ]
    items, batch_members = runner._plan_work(todo)
    assert not batch_members
    assert len(items) == len(todo)
    assert all(len(item.args) == 3 for item in items)


def test_prefetch_with_batching_matches_unbatched(monkeypatch):
    points = [GridPoint(w, p) for w in WORKLOADS for p in POLICIES]

    monkeypatch.setenv("REPRO_NO_LOCKSTEP", "1")
    plain = ParallelRunner(scale="test", jobs=2)
    assert plain.prefetch(points) == len(points)

    monkeypatch.delenv("REPRO_NO_LOCKSTEP")
    batched = ParallelRunner(scale="test", jobs=2)
    assert batched.prefetch(points) == len(points)

    for point in points:
        a = plain.run(point.workload, point.policy)
        b = batched.run(point.workload, point.policy)
        assert a.cycles == b.cycles, (point.workload, point.policy)
        assert a.core_stats == b.core_stats
        assert a.mem_stats == b.mem_stats


def test_batch_fault_recovery_bit_identical(monkeypatch, tmp_path):
    """An injected worker fault fails the whole batch; the supervisor
    retries it as a unit and the recovered grid matches a clean run."""
    monkeypatch.delenv("REPRO_NO_LOCKSTEP", raising=False)
    points = [GridPoint(w, p) for w in WORKLOADS for p in POLICIES]
    clean = ParallelRunner(scale="test", jobs=1)
    clean.prefetch(points)
    reference = {
        (p.workload, p.policy): clean.run(p.workload, p.policy)
        for p in points
    }

    FaultPlan(
        [FaultSpec("worker", "exception", times=1)],
        seed=7, state_dir=tmp_path,
    ).install()
    runner = ParallelRunner(
        scale="test", jobs=2,
        retry_policy=RetryPolicy(max_attempts=3, base_delay=0.01),
    )
    assert runner.prefetch(points) == len(points)
    assert runner.report.ok
    assert sum(o.attempts - 1 for o in runner.report.recovered) >= 1
    uninstall()
    for point in points:
        got = runner.run(point.workload, point.policy)
        want = reference[point.workload, point.policy]
        assert got.cycles == want.cycles
        assert got.core_stats == want.core_stats
        assert got.mem_stats == want.mem_stats
