"""CFG construction, dominators, post-dominators, loops."""

import pytest

from repro.asm import assemble
from repro.cfg import (
    EXIT_BLOCK,
    DominatorInfo,
    PostDominatorInfo,
    build_all_cfgs,
    build_function_cfg,
    find_function_entries,
    find_natural_loops,
    loop_depth_of_blocks,
)

DIAMOND = """
.text
    li a0, 1
    beq a0, zero, else_side
    addi a1, zero, 10
    j join
else_side:
    addi a1, zero, 20
join:
    addi a2, a1, 1
    halt
"""


@pytest.fixture
def diamond_cfg():
    program = assemble(DIAMOND)
    return program, build_function_cfg(program, program.entry)


def test_diamond_block_structure(diamond_cfg):
    _, cfg = diamond_cfg
    # entry(li,beq) / then(addi,j) / else(addi) / join(addi,halt)
    assert cfg.num_blocks == 4
    entry = cfg.block_at(cfg.entry_pc)
    assert len(entry.successors) == 2


def test_diamond_postdominator_is_join(diamond_cfg):
    program, cfg = diamond_cfg
    pdom = PostDominatorInfo(cfg)
    branch_block = cfg.block_at(program.text_base + 4)
    join_bid = cfg.block_of_pc[program.address_of("join")]
    assert pdom.immediate_postdominator(branch_block.bid) == join_bid


def test_diamond_dominators(diamond_cfg):
    program, cfg = diamond_cfg
    dom = DominatorInfo(cfg)
    entry_bid = cfg.block_of_pc[cfg.entry_pc]
    join_bid = cfg.block_of_pc[program.address_of("join")]
    assert dom.dominates(entry_bid, join_bid)
    assert not dom.dominates(join_bid, entry_bid)


LOOP = """
.text
    li a0, 0
    li a1, 10
loop:
    addi a0, a0, 1
    bne a0, a1, loop
    halt
"""


def test_loop_detection():
    program = assemble(LOOP)
    cfg = build_function_cfg(program, program.entry)
    loops = find_natural_loops(cfg)
    assert len(loops) == 1
    header_bid = cfg.block_of_pc[program.address_of("loop")]
    assert loops[0].header == header_bid
    depths = loop_depth_of_blocks(cfg)
    assert depths[header_bid] == 1


def test_nested_loop_depth():
    source = """
    .text
        li a0, 0
    outer:
        li a1, 0
    inner:
        addi a1, a1, 1
        blt a1, a0, inner
        addi a0, a0, 1
        li t0, 5
        blt a0, t0, outer
        halt
    """
    program = assemble(source)
    cfg = build_function_cfg(program, program.entry)
    depths = loop_depth_of_blocks(cfg)
    inner_bid = cfg.block_of_pc[program.address_of("inner")]
    assert depths[inner_bid] == 2


CALLS = """
.text
    li a0, 3
    call helper
    halt
helper:
    add a0, a0, a0
    ret
"""


def test_function_discovery():
    program = assemble(CALLS)
    entries = find_function_entries(program)
    assert program.entry in entries
    assert program.address_of("helper") in entries
    assert len(entries) == 2


def test_call_falls_through_in_caller_cfg():
    program = assemble(CALLS)
    cfg = build_function_cfg(program, program.entry)
    # caller CFG must not contain the helper body
    assert program.address_of("helper") not in cfg.block_of_pc


def test_return_edges_to_exit():
    program = assemble(CALLS)
    helper = build_function_cfg(program, program.address_of("helper"))
    last = helper.block_at(program.address_of("helper"))
    assert EXIT_BLOCK in last.successors


def test_build_all_cfgs_covers_functions():
    program = assemble(CALLS)
    cfgs = build_all_cfgs(program)
    assert {c.entry_pc for c in cfgs} == set(find_function_entries(program))


def test_infinite_loop_has_no_postdominator():
    source = """
    .text
    spin:
        beq zero, zero, spin
        halt
    """
    program = assemble(source)
    cfg = build_function_cfg(program, program.entry)
    pdom = PostDominatorInfo(cfg)
    spin_bid = cfg.block_of_pc[program.address_of("spin")]
    # The spin block reaches exit only via the (dead) fallthrough; its
    # ipdom chain must be consistent - either EXIT or the halt block.
    ip = pdom.immediate_postdominator(spin_bid)
    assert ip is None or ip == EXIT_BLOCK or ip in range(cfg.num_blocks)
