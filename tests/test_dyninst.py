"""DynInst lineage tracking: the security bookkeeping, unit-level."""

from repro.isa import Instruction, Opcode
from repro.uarch.dyninst import DynInst, Stage


def make(seq, opcode=Opcode.ADD, **kwargs):
    defaults = dict(rd=10, rs1=11, rs2=12)
    if opcode in (Opcode.LD, Opcode.CFLUSH):
        defaults = dict(rd=10, rs1=11)
    inst = Instruction(opcode, **defaults, imm=kwargs.pop("imm", 0))
    return DynInst(seq=seq, inst=inst, fetch_cycle=0, **kwargs)


def completed(dyn, deps=(), roots=(), tainted=False, result=0):
    dyn.stage = Stage.COMPLETED
    dyn.out_deps = frozenset(deps)
    dyn.out_roots = frozenset(roots)
    dyn.out_tainted = tainted
    dyn.result = result
    return dyn


def test_alu_merges_producer_lineage():
    p1 = completed(make(1), deps={100}, roots={1}, tainted=True)
    p2 = completed(make(2), deps={101}, roots=set(), tainted=False)
    consumer = make(5)
    consumer.src1_producer = p1
    consumer.src2_producer = p2
    consumer.control_deps = frozenset({102})
    consumer.finalize_lineage()
    assert consumer.out_deps == {100, 101, 102}
    assert consumer.out_roots == {1}
    assert consumer.out_tainted is True


def test_load_result_is_tainted_and_rooted_at_itself():
    load = make(7, Opcode.LD)
    load.finalize_lineage()
    assert load.out_tainted is True
    assert load.out_roots == {7}


def test_cflush_result_is_not_a_taint_root():
    flush = make(8, Opcode.CFLUSH)
    flush.finalize_lineage()
    assert flush.out_roots == frozenset()
    assert flush.out_tainted is False


def test_forwarded_load_inherits_store_lineage():
    store = make(3, Opcode.SD)
    completed(store, deps={50}, roots={2}, tainted=True)
    load = make(9, Opcode.LD)
    load.forwarded_from = store
    load.finalize_lineage()
    assert 50 in load.out_deps
    assert load.out_roots == {2, 9}
    assert load.out_tainted


def test_arf_taint_reaches_addr_queries():
    load = make(4, Opcode.LD)
    load.src1_arf_tainted = True
    assert load.addr_tainted() is True
    assert load.addr_roots() == frozenset()
    assert load.addr_deps() == frozenset()


def test_addr_queries_use_producer_not_control_for_roots():
    producer = completed(make(1, Opcode.LD), deps={60}, roots={1}, tainted=True)
    load = make(6, Opcode.LD)
    load.src1_producer = producer
    load.control_deps = frozenset({61})
    assert load.addr_deps() == {60, 61}
    assert load.addr_roots() == {1}
    assert load.addr_tainted()


def test_operand_queries_cover_both_sources():
    p1 = completed(make(1), roots={1}, tainted=False)
    p2 = completed(make(2), roots={2}, tainted=True)
    branch = make(5, Opcode.BEQ)
    branch.src1_producer = p1
    branch.src2_producer = p2
    assert branch.operand_roots() == {1, 2}
    assert branch.operand_tainted() is True


def test_value_reads_prefer_producer_results():
    producer = completed(make(1), result=42)
    consumer = make(2)
    consumer.src1_producer = producer
    consumer.src2_value = 7
    assert consumer.value_of_src1() == 42
    assert consumer.value_of_src2() == 7


def test_speculation_source_flag():
    assert make(1, Opcode.BEQ).is_speculation_source
    jalr = DynInst(seq=2, inst=Instruction(Opcode.JALR, rd=0, rs1=1), fetch_cycle=0)
    assert jalr.is_speculation_source
    assert not make(3, Opcode.ADD).is_speculation_source
    jal = DynInst(seq=4, inst=Instruction(Opcode.JAL, rd=1, imm=0x1000), fetch_cycle=0)
    assert not jal.is_speculation_source  # static target, no speculation
