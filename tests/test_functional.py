"""Functional simulator + shared semantics: edge cases."""

import pytest

from repro.asm import assemble
from repro.errors import SimulationError, TimeoutError_
from repro.functional import FunctionalSimulator, run_program
from repro.functional.semantics import alu_result, branch_taken
from repro.isa import Opcode, to_unsigned

U = to_unsigned


# --------------------------------------------------------- pure ALU semantics
def test_arith_wraps_at_64_bits():
    assert alu_result(Opcode.ADD, U(-1), 1, 0, 0) == 0
    assert alu_result(Opcode.SUB, 0, 1, 0, 0) == U(-1)
    assert alu_result(Opcode.MUL, U(-1), 2, 0, 0) == U(-2)


def test_shift_amounts_mask_to_six_bits():
    assert alu_result(Opcode.SLL, 1, 64, 0, 0) == 1  # 64 & 63 == 0
    assert alu_result(Opcode.SRL, 1 << 63, 63, 0, 0) == 1
    assert alu_result(Opcode.SRA, U(-8), 1, 0, 0) == U(-4)


def test_division_riscv_semantics():
    assert alu_result(Opcode.DIV, 7, 0, 0, 0) == U(-1)       # div by zero
    assert alu_result(Opcode.REM, 7, 0, 0, 0) == 7
    int_min = 1 << 63
    assert alu_result(Opcode.DIV, int_min, U(-1), 0, 0) == int_min  # overflow
    assert alu_result(Opcode.REM, int_min, U(-1), 0, 0) == 0
    # C-style truncation toward zero.
    assert alu_result(Opcode.DIV, U(-7), 2, 0, 0) == U(-3)
    assert alu_result(Opcode.REM, U(-7), 2, 0, 0) == U(-1)


def test_mulh_signed_high_bits():
    assert alu_result(Opcode.MULH, U(-1), U(-1), 0, 0) == 0  # (-1)*(-1)=1, high=0
    assert alu_result(Opcode.MULH, 1 << 62, 4, 0, 0) == 1


def test_comparisons_signed_vs_unsigned():
    assert alu_result(Opcode.SLT, U(-1), 0, 0, 0) == 1
    assert alu_result(Opcode.SLTU, U(-1), 0, 0, 0) == 0
    assert branch_taken(Opcode.BLT, U(-1), 0)
    assert not branch_taken(Opcode.BLTU, U(-1), 0)
    assert branch_taken(Opcode.BGEU, U(-1), 0)


def test_alu_rejects_non_alu_opcode():
    with pytest.raises(SimulationError):
        alu_result(Opcode.LD, 0, 0, 0, 0)
    with pytest.raises(SimulationError):
        branch_taken(Opcode.ADD, 0, 0)


# ------------------------------------------------------------- memory access
def test_subword_loads_sign_and_zero_extend():
    program = assemble("""
    .data
    v: .dword 0xFFFFFFFFFFFFFF80
    .text
        la t0, v
        lb a0, 0(t0)
        lbu a1, 0(t0)
        lh a2, 0(t0)
        lhu a3, 0(t0)
        lw a4, 0(t0)
        lwu a5, 0(t0)
        halt
    """)
    state = run_program(program).state
    assert state.read_reg(10) == U(-128)
    assert state.read_reg(11) == 0x80
    assert state.read_reg(12) == U(-128)
    assert state.read_reg(13) == 0xFF80
    assert state.read_reg(14) == U(-128)
    assert state.read_reg(15) == 0xFFFFFF80


def test_subword_stores_do_not_clobber_neighbours():
    program = assemble("""
    .data
    v: .dword 0x1111111111111111
    .text
        la t0, v
        li t1, 0xAB
        sb t1, 2(t0)
        ld a0, 0(t0)
        halt
    """)
    state = run_program(program).state
    assert state.read_reg(10) == 0x1111111111AB1111


def test_x0_is_hardwired_zero():
    program = assemble("""
    .text
        li a0, 5
        add zero, a0, a0
        add a1, zero, zero
        halt
    """)
    state = run_program(program).state
    assert state.read_reg(0) == 0
    assert state.read_reg(11) == 0


# ---------------------------------------------------------------- run control
def test_timeout_guard():
    program = assemble("""
    .text
    spin:
        j spin
    """)
    with pytest.raises(TimeoutError_):
        run_program(program, max_instructions=1000)


def test_wild_jump_faults():
    program = assemble("""
    .text
        li t0, 0x99999
        jr t0
    """)
    with pytest.raises(SimulationError):
        run_program(program)


def test_step_after_halt_returns_none():
    sim = FunctionalSimulator(assemble(".text\n  halt\n"))
    assert sim.step() is not None
    assert sim.state.halted
    assert sim.step() is None


def test_trace_records_memory_and_branches():
    program = assemble("""
    .data
    v: .dword 3
    .text
        la t0, v
        ld a0, 0(t0)
        beqz a0, done
        addi a0, a0, 1
    done:
        halt
    """)
    result = run_program(program, trace=True)
    kinds = [(e.opcode.is_load, e.taken) for e in result.trace]
    load_entries = [e for e in result.trace if e.opcode.is_load]
    assert load_entries[0].mem_address == program.address_of("v")
    branch_entries = [e for e in result.trace if e.opcode.is_branch]
    assert branch_entries[0].taken is False
