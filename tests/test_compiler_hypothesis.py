"""Property-based verification of the Levioso compiler analysis.

The key semantic property of reconvergence/control-dependence, checked
dynamically: for every executed conditional branch B with reconvergence
point R, every instruction the committed path executes *between B and the
first subsequent visit to R* lies inside B's static control-dependence
region.  (That is exactly the guarantee the hardware tracker relies on.)
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings

from repro.asm import assemble
from repro.compiler import ensure_analysis
from repro.functional import run_program

from repro.testing import programs


def check_region_property(source: str) -> None:
    program = assemble(source, name="prop")
    info = ensure_analysis(program)
    trace = run_program(program, trace=True, max_instructions=300_000).trace

    # Replay: for each branch instance, walk until its reconvergence PC and
    # verify every intermediate PC is statically control-dependent on it.
    pcs = [entry.pc for entry in trace]
    for i, entry in enumerate(pcs):
        inst = program.inst_at(entry)
        if not inst.is_branch:
            continue
        reconv = info.reconvergence_of(entry)
        if reconv is None:
            continue
        region = info.control_dep_pcs[entry]
        for later in pcs[i + 1 :]:
            if later == reconv:
                break
            assert later in region, (
                f"pc {later:#x} executed between branch {entry:#x} and its "
                f"reconvergence {reconv:#x} but is not in its region"
            )


@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(source=programs())
def test_executed_path_stays_in_region_until_reconvergence(source):
    check_region_property(source)


@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(source=programs())
def test_reconvergence_point_is_outside_its_region(source):
    program = assemble(source, name="prop")
    info = ensure_analysis(program)
    for branch_pc, reconv in info.reconv_pc.items():
        region = info.control_dep_pcs[branch_pc]
        if reconv is not None:
            assert reconv not in region
        # Note: a loop back-branch legitimately sits in its OWN region (the
        # back edge makes its next dynamic instance contingent on itself),
        # so no self-exclusion is asserted.


@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(source=programs())
def test_reconvergence_is_always_reached_when_defined(source):
    """On a terminating committed path, after a branch executes, its
    reconvergence PC (when defined) is eventually executed."""
    program = assemble(source, name="prop")
    info = ensure_analysis(program)
    trace = run_program(program, trace=True, max_instructions=300_000).trace
    pcs = [entry.pc for entry in trace]
    for i, pc in enumerate(pcs):
        inst = program.inst_at(pc)
        if not inst.is_branch:
            continue
        reconv = info.reconvergence_of(pc)
        if reconv is None:
            continue
        assert reconv in pcs[i + 1 :], (
            f"branch {pc:#x} executed but reconvergence {reconv:#x} never reached"
        )
