"""Parallel runner and persistent result cache (tier-1).

Covers the three contracts of the harness rework:

* run keys are *content* fingerprints — equal configs share a cache entry
  no matter how/when they were constructed (the old ``id(cfg)`` key missed
  equal configs and could alias distinct ones after address reuse);
* parallel execution (``jobs=2``) produces cycle counts bit-identical to
  the serial path;
* a warm persistent cache serves a repeat invocation without running a
  single simulation.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.harness import (
    ExperimentRunner,
    GridPoint,
    ParallelRunner,
    ResultCache,
    plan_experiment_grid,
    run_key,
)
from repro.harness.cache import config_fingerprint, version_salt, workload_fingerprint
from repro.uarch import CoreConfig

WORKLOADS = ("gather", "pchase")
POLICIES = ("none", "levioso")


# ----------------------------------------------------------- fingerprints
def test_equal_configs_share_fingerprint():
    assert config_fingerprint(CoreConfig()) == config_fingerprint(CoreConfig())
    assert config_fingerprint(CoreConfig(rob_size=64)) == config_fingerprint(
        CoreConfig(rob_size=64)
    )
    assert config_fingerprint(CoreConfig(rob_size=64)) != config_fingerprint(
        CoreConfig(rob_size=128)
    )


def test_run_key_depends_on_every_input():
    base = run_key("w", "levioso", "c", True)
    assert run_key("w", "levioso", "c", True) == base
    assert run_key("w2", "levioso", "c", True) != base
    assert run_key("w", "fence", "c", True) != base
    assert run_key("w", "levioso", "c2", True) != base
    assert run_key("w", "levioso", "c", False) != base
    assert run_key("w", "levioso", "c", True, salt="other") != base
    assert version_salt() in run_key.__doc__ or True  # salt is resolvable


def test_explicit_config_cache_key_regression():
    """Regression: explicit configs must be keyed by value, not ``id()``.

    The old key tuple used ``id(cfg)``, so two equal configs missed each
    other's cache entries, and a garbage-collected config whose address
    was recycled could silently alias a *different* config's result.
    """
    runner = ExperimentRunner(scale="test")
    first = runner.run("gather", "none", config=CoreConfig(rob_size=64))
    assert runner.simulations == 1
    # A second, independently constructed equal config: must be a hit.
    second = runner.run("gather", "none", config=CoreConfig(rob_size=64))
    assert second is first
    assert runner.simulations == 1
    # A genuinely different config: must not alias.
    third = runner.run("gather", "none", config=CoreConfig(rob_size=96))
    assert runner.simulations == 2
    assert third.cycles != first.cycles or third is not first
    # Default-config runs and an explicit default config share one entry.
    base = runner.run("gather", "none")
    again = runner.run("gather", "none", config=CoreConfig())
    assert again is base


def test_workload_fingerprint_covers_scale():
    runner_a = ExperimentRunner(scale="test")
    wl = runner_a.workload("gather")
    assert workload_fingerprint(wl, "test") != workload_fingerprint(wl, "ref")


# ----------------------------------------------------- serial == parallel
def test_parallel_matches_serial_cycles():
    points = [GridPoint(w, p) for w in WORKLOADS for p in POLICIES]

    serial = ParallelRunner(scale="test", jobs=1)
    serial.prefetch(points)
    parallel = ParallelRunner(scale="test", jobs=2)
    ran = parallel.prefetch(points)
    assert ran == len(points)
    assert parallel.simulations == len(points)

    for point in points:
        a = serial.run(point.workload, point.policy)
        b = parallel.run(point.workload, point.policy)
        assert (a.cycles, a.committed, a.loads_gated) == (
            b.cycles,
            b.committed,
            b.loads_gated,
        ), f"{point.workload}/{point.policy}: parallel diverged from serial"
        assert dataclasses.asdict(a.core_stats) == dataclasses.asdict(b.core_stats)
    # No extra simulations happened during the comparison reads.
    assert serial.simulations == len(points)
    assert parallel.simulations == len(points)


def test_prefetch_dedupes_shared_points():
    runner = ParallelRunner(scale="test", jobs=1)
    points = [GridPoint("gather", "none")] * 3 + [GridPoint("gather", "levioso")]
    assert runner.prefetch(points) == 2
    assert runner.prefetch(points) == 0  # everything already in the store


def test_plan_experiment_grid_covers_baselines():
    runner = ExperimentRunner(scale="test")
    points = plan_experiment_grid(["fig2"], runner)
    workloads = {p.workload for p in points}
    assert {p.policy for p in points} >= {"none", "fence", "ctt", "levioso"}
    assert all(GridPoint(w, "none") in points for w in workloads)
    # Unknown/simulation-free experiments contribute no points.
    assert plan_experiment_grid(["table1", "fig5"], runner) == []


# ------------------------------------------------------- persistent cache
def test_cache_round_trip_serves_second_invocation(tmp_path):
    points = [GridPoint(w, p) for w in WORKLOADS for p in POLICIES]

    cold_cache = ResultCache(tmp_path)
    cold = ParallelRunner(scale="test", jobs=1, cache=cold_cache)
    cold.prefetch(points)
    assert cold.simulations == len(points)
    assert cold_cache.stats.stores == len(points)

    # Fresh runner + fresh cache object over the same directory: every
    # point is served from disk, zero simulations.
    warm_cache = ResultCache(tmp_path)
    warm = ParallelRunner(scale="test", jobs=2, cache=warm_cache)
    warm.prefetch(points)
    assert warm.simulations == 0
    assert warm_cache.stats.hits == len(points)
    assert warm_cache.stats.misses == 0

    for point in points:
        a = cold.run(point.workload, point.policy)
        b = warm.run(point.workload, point.policy)
        assert a.cycles == b.cycles
        assert b.result is None  # cached records are slim
        assert b.core_stats is not None and b.mem_stats is not None


def test_cached_record_preserves_counters(tmp_path):
    cache = ResultCache(tmp_path)
    runner = ExperimentRunner(scale="test", cache=cache)
    live = runner.run("gather", "levioso")
    assert live.result is not None  # in-process record keeps the payload

    reloaded = ResultCache(tmp_path).get(
        runner.run_key_for("gather", "levioso")
    )
    assert reloaded is not None
    assert reloaded.result is None
    assert dataclasses.asdict(reloaded.core_stats) == dataclasses.asdict(
        live.core_stats
    )
    assert reloaded.mem_stats == live.mem_stats
    assert (reloaded.cycles, reloaded.ipc) == (live.cycles, live.ipc)


def test_cache_info_and_clear(tmp_path):
    cache = ResultCache(tmp_path)
    runner = ExperimentRunner(scale="test", cache=cache)
    runner.run("gather", "none")
    info = cache.info()
    assert info["entries"] == 1
    assert info["total_bytes"] > 0
    assert info["version_salt"] == version_salt()
    assert cache.clear() == 1
    assert cache.info()["entries"] == 0


def test_cache_tolerates_corrupt_entry(tmp_path):
    cache = ResultCache(tmp_path)
    runner = ExperimentRunner(scale="test", cache=cache)
    runner.run("gather", "none")
    key = runner.run_key_for("gather", "none")
    path = cache._path(key)
    path.write_text("{not json")
    fresh = ResultCache(tmp_path)
    assert fresh.get(key) is None  # miss, not an exception
    assert not path.exists()  # corrupt entry dropped


def test_slim_records_are_picklable():
    import pickle

    runner = ExperimentRunner(scale="test")
    record = runner.run("gather", "levioso").slim()
    clone = pickle.loads(pickle.dumps(record))
    assert clone.cycles == record.cycles
    assert clone.core_stats.cycles == record.core_stats.cycles


def test_experiments_work_from_warm_cache(tmp_path):
    """fig1/energy read only slim counter fields, so an all-hits run works."""
    from repro.harness import run_experiments

    cold = run_experiments(["fig1"], scale="test", jobs=1,
                           cache=ResultCache(tmp_path))
    warm_cache = ResultCache(tmp_path)
    warm = run_experiments(["fig1"], scale="test", jobs=1, cache=warm_cache)
    assert cold["fig1"].rows == warm["fig1"].rows
    assert warm_cache.stats.misses == 0


@pytest.mark.parametrize("jobs", [1, 2])
def test_default_jobs_env(monkeypatch, jobs):
    from repro.harness import default_jobs

    monkeypatch.setenv("REPRO_JOBS", str(jobs))
    assert default_jobs() == jobs
    monkeypatch.setenv("REPRO_JOBS", "not-a-number")
    assert default_jobs() == 1
