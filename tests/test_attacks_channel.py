"""Covert-channel receiver unit tests."""

from repro.attacks import PROBE_STRIDE, ChannelReading, read_probe_array
from repro.attacks.gadgets import spectre_v1
from repro.mem import MemoryHierarchy


def test_reading_recovers_single_hot_slot():
    reading = ChannelReading(hot_slots=[0, 0x42])
    assert reading.recovered_value == 0x42
    assert reading.leaked


def test_reading_rejects_ambiguity():
    assert ChannelReading(hot_slots=[0x11, 0x22]).recovered_value is None
    assert ChannelReading(hot_slots=[]).recovered_value is None
    assert ChannelReading(hot_slots=[0]).recovered_value is None  # training noise


def test_read_probe_array_sees_planted_line():
    program = spectre_v1(0x3C)
    hierarchy = MemoryHierarchy()
    probe = program.address_of("probe")
    hierarchy.warm_line(probe + 0x3C * PROBE_STRIDE)
    reading = read_probe_array(hierarchy, program)
    assert reading.recovered_value == 0x3C


def test_read_probe_array_empty_cache():
    program = spectre_v1(0x3C)
    hierarchy = MemoryHierarchy()
    reading = read_probe_array(hierarchy, program)
    assert not reading.leaked
