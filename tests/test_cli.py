"""CLI command coverage."""

import json

import pytest

from repro.cli import build_parser, main


@pytest.fixture
def prog(tmp_path):
    path = tmp_path / "prog.s"
    path.write_text("""
    .data
    v: .dword 5
    .text
        la t0, v
        ld a0, 0(t0)
        addi a0, a0, 1
        beqz a0, dead
        addi a0, a0, 1
    dead:
        halt
    """)
    return str(path)


def test_parser_rejects_unknown_subcommand():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["frobnicate"])


def test_run_json(prog, capsys):
    assert main(["run", prog, "--json", "--policy", "levioso"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["policy"] == "levioso"
    assert payload["committed"] == 6
    assert "memory" in payload


def test_run_functional(prog, capsys):
    assert main(["run", prog, "--functional"]) == 0
    out = capsys.readouterr().out
    assert "instructions: 6" in out
    assert "a0=0x7" in out


def test_attack_exit_codes(capsys):
    # blocked -> 0; leaked -> 1
    assert main(["attack", "spectre_v1", "--policy", "levioso"]) == 0
    assert main(["attack", "spectre_v1", "--policy", "none"]) == 1


def test_experiment_table1(capsys):
    assert main(["experiment", "table1"]) == 0
    assert "ROB" in capsys.readouterr().out


def test_pipeline_command(prog, capsys):
    assert main(["pipeline", prog, "--policy", "fence", "--count", "6"]) == 0
    out = capsys.readouterr().out
    assert "cycles" in out


def test_error_paths_return_2(tmp_path, capsys):
    bad = tmp_path / "bad.s"
    bad.write_text(".text\n  bogus\n")
    assert main(["run", str(bad)]) == 2
    assert "error:" in capsys.readouterr().err


def test_analyze_exit_codes(prog, capsys):
    # 0 = clean + sound metadata; 1 = findings; 2 = error.
    assert main(["analyze", prog]) == 0
    assert main(["analyze", "matmul"]) == 0
    assert main(["analyze", "spectre_v1"]) == 1
    assert main(["analyze", "no_such_target"]) == 2
    assert "error:" in capsys.readouterr().err


def test_analyze_json_payload(capsys):
    assert main(["analyze", "spectre_v1_ct", "--json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["verifier"]["sound"] is True
    assert payload["scan"]["clean"] is False
    assert payload["scan"]["flagged_transmitters"] >= 1
    kinds = {f["kind"] for f in payload["scan"]["findings"]}
    assert "spectre-v1-ct" in kinds


def test_lint_expectation_gating(capsys):
    assert main(["lint", "matmul", "crc", "--expect", "clean"]) == 0
    assert main(["lint", "spectre_v1", "spectre_v2", "--expect", "findings"]) == 0
    # Expectation violated in both directions:
    assert main(["lint", "spectre_v1", "--expect", "clean"]) == 1
    assert main(["lint", "matmul", "--expect", "findings"]) == 1
    # Default gate: any finding fails.
    capsys.readouterr()
    assert main(["lint", "matmul"]) == 0
    assert main(["lint", "matmul", "spectre_v1"]) == 1


def test_lint_json(capsys):
    assert main(["lint", "cipher", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload[0]["target"] == "cipher"
    assert payload[0]["scan"]["clean"] is True
    assert payload[0]["verifier"]["sound"] is True


def test_version_flag(capsys):
    from repro import __version__

    with pytest.raises(SystemExit) as exc_info:
        main(["--version"])
    assert exc_info.value.code == 0
    assert capsys.readouterr().out.strip() == f"repro {__version__}"


def test_keyboard_interrupt_exits_130(monkeypatch, capsys):
    def interrupted(args):
        raise KeyboardInterrupt

    monkeypatch.setattr("repro.cli.cmd_run", interrupted)
    assert main(["run", "gather"]) == 130
    assert "interrupted" in capsys.readouterr().err
