"""Security evaluation: who leaks, who blocks (the paper's guarantee)."""

import pytest

from repro.attacks import run_attack
from repro.functional import run_program
from repro.attacks.gadgets import spectre_v1, spectre_v1_ct


def test_spectre_v1_leaks_on_unprotected_core():
    outcome = run_attack("spectre_v1", "none", secret=0x5A)
    assert outcome.leaked
    assert outcome.reading.recovered_value == 0x5A


def test_spectre_v1_ct_leaks_on_unprotected_core():
    outcome = run_attack("spectre_v1_ct", "none", secret=0xA7)
    assert outcome.leaked


@pytest.mark.parametrize("policy", ["fence", "dom", "stt", "ctt", "levioso"])
def test_spectre_v1_blocked_by_all_defenses(policy):
    outcome = run_attack("spectre_v1", policy, secret=0x5A)
    assert not outcome.leaked, f"{policy} leaked via spectre_v1"


@pytest.mark.parametrize("policy", ["fence", "dom", "ctt", "levioso"])
def test_spectre_v1_ct_blocked_by_comprehensive_defenses(policy):
    outcome = run_attack("spectre_v1_ct", policy, secret=0xA7)
    assert not outcome.leaked, f"{policy} leaked a non-speculative secret"


def test_spectre_v1_ct_defeats_stt():
    """The paper's motivation: STT's guarantee does not cover constant-time
    (non-speculatively loaded) secrets."""
    outcome = run_attack("spectre_v1_ct", "stt", secret=0xA7)
    assert outcome.leaked


def test_spectre_v2_leaks_on_unprotected_core():
    outcome = run_attack("spectre_v2", "none", secret=0xB4)
    assert outcome.leaked
    assert outcome.reading.recovered_value == 0xB4


@pytest.mark.parametrize("policy", ["stt", "nda"])
def test_spectre_v2_defeats_speculative_only_defenses(policy):
    """BTB injection transmits an architectural (non-speculative) secret:
    expiring-taint and propagation-blocking schemes cannot see it."""
    outcome = run_attack("spectre_v2", policy, secret=0xB4)
    assert outcome.leaked


@pytest.mark.parametrize("policy", ["fence", "dom", "ctt", "levioso"])
def test_spectre_v2_blocked_by_comprehensive_defenses(policy):
    outcome = run_attack("spectre_v2", policy, secret=0xB4)
    assert not outcome.leaked, f"{policy} leaked via spectre_v2"


@pytest.mark.parametrize("secret", [0x01, 0x42, 0xFF])
def test_v1_recovers_arbitrary_secret_bytes(secret):
    outcome = run_attack("spectre_v1", "none", secret=secret)
    assert outcome.reading.recovered_value == secret


def test_attack_programs_are_architecturally_silent():
    """The gadgets must never architecturally touch a non-zero probe slot."""
    for builder, secret in ((spectre_v1, 0x33), (spectre_v1_ct, 0x77)):
        program = builder(secret)
        result = run_program(program)
        # Functional (non-speculative) execution leaves no secret trace:
        # nothing in the architectural state depends on the secret slot.
        probe = program.address_of("probe")
        for slot in (secret, secret ^ 0x01):
            assert result.state.memory.read_int(probe + slot * 64, 8) == 0


def test_unknown_attack_rejected():
    with pytest.raises(KeyError):
        run_attack("spectre_v9", "none")


def test_secret_byte_validation():
    with pytest.raises(ValueError):
        spectre_v1(0)
    with pytest.raises(ValueError):
        spectre_v1_ct(256)
