"""Direction predictors, BTB, RAS."""

import pytest

from repro.branch import (
    BimodalPredictor,
    BranchTargetBuffer,
    GsharePredictor,
    ReturnAddressStack,
    SaturatingCounter,
    TagePredictor,
    TournamentPredictor,
    make_predictor,
)


def test_saturating_counter_saturates():
    table = SaturatingCounter(4, initial=0)
    for _ in range(10):
        table.update(0, True)
    assert table.counter(0) == 3
    for _ in range(10):
        table.update(0, False)
    assert table.counter(0) == 0


def test_bimodal_learns_bias():
    pred = BimodalPredictor(64)
    pc = 0x1000
    for _ in range(4):
        pred.update(pc, True)
    assert pred.predict(pc)[0] is True
    for _ in range(8):
        pred.update(pc, False)
    assert pred.predict(pc)[0] is False


def test_bimodal_hysteresis():
    pred = BimodalPredictor(64)
    pc = 0x1000
    for _ in range(4):
        pred.update(pc, True)
    pred.update(pc, False)  # single anomaly must not flip a strong counter
    assert pred.predict(pc)[0] is True


@pytest.mark.parametrize("name", ["bimodal", "gshare", "tournament", "tage"])
def test_predictors_learn_alternating_pattern(name):
    """History-based predictors should master T,N,T,N...; bimodal cannot."""
    pred = make_predictor(name)
    pc = 0x2000
    outcome = True
    correct = 0
    total = 400
    for i in range(total):
        guess, ctx = pred.predict(pc)
        if guess == outcome:
            correct += 1
        pred.on_speculative_branch(pc, outcome)  # perfect-fetch assumption
        pred.update(pc, outcome, ctx)
        outcome = not outcome
    accuracy = correct / total
    if name == "bimodal":
        assert accuracy < 0.7
    else:
        assert accuracy > 0.8, f"{name} accuracy {accuracy}"


def test_gshare_history_checkpoint_roundtrip():
    pred = GsharePredictor(64, history_bits=8)
    for taken in (True, False, True, True):
        pred.on_speculative_branch(0x100, taken)
    snap = pred.history_checkpoint()
    pred.on_speculative_branch(0x100, False)
    assert pred.history_checkpoint() != snap
    pred.history_restore(snap)
    assert pred.history_checkpoint() == snap


def test_btb_lookup_and_update():
    btb = BranchTargetBuffer(16)
    assert btb.lookup(0x1000) is None
    btb.update(0x1000, 0x2000)
    assert btb.lookup(0x1000) == 0x2000
    # Aliasing entry with same index but different pc must not false-hit.
    assert btb.lookup(0x1000 + 16 * 4) is None


def test_ras_push_pop_order():
    ras = ReturnAddressStack(4)
    ras.push(0x10)
    ras.push(0x20)
    assert ras.pop() == 0x20
    assert ras.pop() == 0x10
    assert ras.pop() is None


def test_ras_overflow_drops_oldest():
    ras = ReturnAddressStack(2)
    ras.push(1)
    ras.push(2)
    ras.push(3)
    assert ras.pop() == 3
    assert ras.pop() == 2
    assert ras.pop() is None


def test_ras_checkpoint_restore():
    ras = ReturnAddressStack(8)
    ras.push(1)
    snap = ras.checkpoint()
    ras.push(2)
    ras.restore(snap)
    assert ras.pop() == 1


def test_tournament_prefers_better_component():
    pred = TournamentPredictor(256, history_bits=8)
    # A strongly biased branch: both components handle it; accuracy high.
    pc = 0x3000
    correct = 0
    for i in range(200):
        guess, ctx = pred.predict(pc)
        if guess:
            correct += 1 if i >= 4 else 0
        pred.on_speculative_branch(pc, True)
        pred.update(pc, True, ctx)
    assert pred.predict(pc)[0] is True


def test_tage_allocates_on_mispredict():
    pred = TagePredictor(256, 64)
    pc = 0x4000
    # Pattern with period 4 needs history: NNNT repeated.
    pattern = [False, False, False, True]
    correct = 0
    total = 600
    for i in range(total):
        outcome = pattern[i % 4]
        guess, ctx = pred.predict(pc)
        if guess == outcome:
            correct += 1
        pred.on_speculative_branch(pc, outcome)
        pred.update(pc, outcome, ctx)
    assert correct / total > 0.75


def test_make_predictor_unknown_name():
    with pytest.raises(ValueError):
        make_predictor("oracle")
