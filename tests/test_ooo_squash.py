"""Targeted squash-recovery scenarios on the OoO core."""

from repro.asm import assemble
from repro.functional import run_program
from repro.secure import make_policy
from repro.uarch import CoreConfig, OooCore


def check(source, policy="none", **kwargs):
    program = assemble(source)
    functional = run_program(program)
    core = OooCore(program, policy=make_policy(policy), **kwargs)
    result = core.run()
    assert result.regs == functional.regs
    assert result.memory.equal_contents(functional.state.memory)
    return core, result


def test_nested_mispredicts_recover():
    """Two data-dependent unpredictable branches back to back."""
    source = """
    .data
    vals: .dword 7, 2, 9, 4, 1, 8, 3, 6, 5, 0, 11, 13, 12, 15, 14, 10
    .text
        la s0, vals
        li s1, 0
        li s2, 16
        li a0, 0
    loop:
        slli t0, s1, 3
        add t0, s0, t0
        ld t1, 0(t0)
        andi t2, t1, 1
        beqz t2, even
        andi t3, t1, 2
        beqz t3, odd_small
        addi a0, a0, 3
        j next
    odd_small:
        addi a0, a0, 1
        j next
    even:
        addi a0, a0, 10
    next:
        addi s1, s1, 1
        bne s1, s2, loop
        halt
    """
    core, result = check(source)
    assert result.stats.branch_mispredicts >= 2


def test_wrong_path_stores_never_commit():
    """Stores fetched down a mispredicted path must not touch memory."""
    source = """
    .data
    guard: .dword 1
    victim: .dword 0x1111
    .text
        la t0, guard
        la t1, victim
        cflush 0(t0)
        fence
        ld t2, 0(t0)       # slow: branch resolves late
        bnez t2, safe      # taken architecturally; cold predictor says no
        li t3, 0xDEAD
        sd t3, 0(t1)       # wrong-path store
    safe:
        ld a0, 0(t1)
        halt
    """
    core, result = check(source)
    assert result.regs[10] == 0x1111  # never 0xDEAD


def test_squash_restores_rename_for_repeated_reg():
    """Wrong path overwrites a register many times; recovery must restore
    the right producer."""
    source = """
    .data
    guard: .dword 5
    .text
        la t0, guard
        li a0, 42
        cflush 0(t0)
        fence
        ld t2, 0(t0)
        beqz t2, skip      # not taken architecturally (t2=5), cold predictor
                           # agrees... exercise the other direction below
        addi a0, a0, 1     # executes architecturally
    skip:
        li t3, 1
        bnez t3, over      # always taken, cold predictor says not-taken
        li a0, 0           # wrong path clobbers a0 repeatedly
        li a0, 1
        li a0, 2
        li a0, 3
    over:
        addi a0, a0, 100
        halt
    """
    _, result = check(source)
    assert result.regs[10] == 143


def test_ras_corruption_recovers():
    """Wrong-path call pushes onto the RAS; squash must restore it."""
    source = """
    .data
    guard: .dword 1
    .text
        la t0, guard
        cflush 0(t0)
        fence
        ld t1, 0(t0)
        li a0, 0
        call work          # legitimate call
        bnez t1, fin       # taken; cold predictor mispredicts to fallthrough
        call work          # wrong-path call corrupts the RAS
        call work
    fin:
        addi a0, a0, 1000
        halt
    work:
        addi a0, a0, 7
        ret
    """
    _, result = check(source)
    assert result.regs[10] == 1007


def test_deep_speculation_with_tiny_fetch_queue():
    source = """
    .text
        li a0, 0
        li a1, 300
    loop:
        andi t0, a0, 7
        beqz t0, bump
        addi a0, a0, 1
        j cont
    bump:
        addi a0, a0, 2
    cont:
        blt a0, a1, loop
        halt
    """
    config = CoreConfig(fetch_queue_size=4, rob_size=32, iq_size=16,
                        lq_size=8, sq_size=8)
    check(source, config=config)


def test_mispredict_under_every_policy():
    source = """
    .data
    data: .dword 3, 1, 4, 1, 5, 9, 2, 6
    .text
        la s0, data
        li s1, 0
        li s2, 8
        li a0, 0
    loop:
        slli t0, s1, 3
        add t0, s0, t0
        ld t1, 0(t0)
        andi t2, t1, 1
        beqz t2, skip
        add a0, a0, t1
    skip:
        addi s1, s1, 1
        bne s1, s2, loop
        halt
    """
    for policy in ("none", "fence", "dom", "nda", "stt", "ctt", "levioso"):
        check(source, policy=policy)
