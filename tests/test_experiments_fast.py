"""Fast experiment-module tests (the slow ones live in benchmarks/)."""

from repro.harness.experiments import fig5, table1, table2


def test_table1_renders():
    result = table1.run()
    text = result.text()
    assert "Simulated processor configuration" in text
    assert "192" in text  # ROB size appears


def test_table2_runs_at_test_scale():
    result = table2.run(scale="test")
    assert len(result.rows) == 14
    names = {row[0] for row in result.rows}
    assert "gather" in names and "cipher" in names


def test_fig5_matrix_shape():
    result = fig5.run(policies=("none", "stt", "levioso"), secrets=(0x5A,))
    rates = result.extras["leak_rates"]
    assert rates[("spectre_v1", "none")] == 1.0
    assert rates[("spectre_v1", "levioso")] == 0.0
    assert rates[("spectre_v1_ct", "stt")] == 1.0
    # Rendered cells say LEAK/safe
    flat = result.text()
    assert "LEAK" in flat and "safe" in flat
