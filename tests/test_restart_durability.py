"""Restart durability: state that must survive a SIGKILL.

Two persistence layers make interrupted work cheap to finish:

* the daemon's on-disk :class:`ResultCache` — a killed-and-restarted
  ``repro serve`` with the same ``--cache-dir`` answers previously
  completed keys as cache hits without re-simulating;
* the :class:`RunJournal` — a batch invocation killed mid-grid leaves a
  fsynced manifest, and ``--resume`` re-simulates only the points whose
  results never landed, including when the kill interrupts a *lockstep
  batch* (whole-batch completions journal per member, so a half-done
  batch is simply absent and reruns).
"""

from __future__ import annotations

import os
import re
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.harness.cache import ResultCache
from repro.harness.parallel import GridPoint, ParallelRunner
from repro.harness.resilience import RunJournal
from repro.harness.runner import ExperimentRunner
from repro.service.client import ServiceClient

RUNS = [
    {"workload": "gather", "policy": "none", "scale": "test"},
    {"workload": "gather", "policy": "levioso", "scale": "test"},
]


def _repro_env() -> dict:
    import repro

    env = dict(os.environ)
    pkg_root = str(Path(repro.__file__).resolve().parent.parent)
    env["PYTHONPATH"] = pkg_root + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _spawn_daemon(cache_dir: Path, log_path: Path) -> tuple:
    """Start ``repro serve --port 0`` and parse the bound URL from its
    startup line (written before the daemon accepts work)."""
    log = open(log_path, "a")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--jobs", "1", "--cache-dir", str(cache_dir)],
        stdout=subprocess.PIPE, stderr=log, text=True, env=_repro_env(),
    )
    assert proc.stdout is not None
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            break
        log.write(line)
        match = re.search(r"listening on (http://\S+)", line)
        if match:
            return proc, match.group(1)
    proc.kill()
    raise AssertionError(f"daemon never announced its port; see {log_path}")


def test_daemon_restart_serves_completed_keys_from_disk(tmp_path):
    cache_dir = tmp_path / "cache"
    proc, url = _spawn_daemon(cache_dir, tmp_path / "serve1.log")
    try:
        client = ServiceClient(url)
        first = client.run_grid(RUNS, timeout=120.0)
        baseline = {
            (j["request"]["workload"], j["request"]["policy"]):
                ResultCache.serialize(r)
            for j, r in first
        }
        assert not any(j["cached"] for j, _ in first)
    finally:
        proc.kill()         # SIGKILL: no drain, no atexit, no flush
    assert proc.wait(timeout=30) == -signal.SIGKILL

    proc, url = _spawn_daemon(cache_dir, tmp_path / "serve2.log")
    try:
        client = ServiceClient(url)
        again = client.run_grid(RUNS, timeout=60.0)
        for job, record in again:
            # Served straight from the persistent result cache: the job
            # is answered at submit time, no flight, no simulation.
            assert job["cached"], job
            key = (job["request"]["workload"], job["request"]["policy"])
            assert ResultCache.serialize(record) == baseline[key]
        metrics = client.metrics()
        assert metrics["repro_service_cache_hits_total"] == len(RUNS)
        proc.send_signal(signal.SIGTERM)
        assert proc.wait(timeout=60) == 0   # clean drain on the way out
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=30)


# Two workloads x several policies -> two lockstep batches under
# REPRO_NO_LOCKSTEP=0 (points sharing a workload share a program image).
# gather's batch finishes fast; bsearch's batch runs long enough that a
# kill fired right after gather's journal entries lands mid-batch.
RESUME_GRID = [
    ("gather", "none"), ("gather", "levioso"),
    ("bsearch", "none"), ("bsearch", "fence"), ("bsearch", "levioso"),
]

_CHILD_SCRIPT = """
import os
from repro.harness.cache import ResultCache
from repro.harness.parallel import GridPoint, ParallelRunner
from repro.harness.resilience import RunJournal

cache = ResultCache(os.environ["DRILL_CACHE"])
journal = RunJournal(os.environ["DRILL_JOURNAL"])
runner = ParallelRunner(scale="test", jobs=1, cache=cache, journal=journal)
grid = [GridPoint(w, p) for w, p in [
    ("gather", "none"), ("gather", "levioso"),
    ("bsearch", "none"), ("bsearch", "fence"), ("bsearch", "levioso"),
]]
runner.prefetch(grid)
print("GRID DONE", flush=True)
"""


@pytest.mark.skipif(os.environ.get("REPRO_NO_LOCKSTEP") == "1",
                    reason="drill targets the lockstep batch path")
def test_journal_resume_after_kill_mid_lockstep_batch(tmp_path):
    cache_dir = tmp_path / "cache"
    journal_path = tmp_path / "journal.jsonl"
    env = _repro_env()
    env["DRILL_CACHE"] = str(cache_dir)
    env["DRILL_JOURNAL"] = str(journal_path)
    env.pop("REPRO_NO_LOCKSTEP", None)

    proc = subprocess.Popen(
        [sys.executable, "-c", _CHILD_SCRIPT],
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL, env=env,
    )
    journal = RunJournal(journal_path)
    try:
        # The journal fsyncs every append: the instant gather's batch
        # completes, its two entries are readable here — and bsearch's
        # three-point batch is still simulating.  Kill right then.
        deadline = time.monotonic() + 120.0
        while time.monotonic() < deadline:
            if len(journal.completed()) >= 2:
                break
            if proc.poll() is not None:
                raise AssertionError("child finished before the kill — "
                                     "grid too fast for this machine?")
            time.sleep(0.01)
        proc.kill()
    finally:
        if proc.poll() is None:
            proc.kill()
        proc.wait(timeout=30)

    done = journal.completed()
    assert len(done) >= 2, "first lockstep batch never journaled"

    cache = ResultCache(cache_dir)
    keyer = ParallelRunner(scale="test", jobs=1, cache=cache)
    keys = {
        (w, p): keyer.run_key_for(w, p, keyer.config, True)
        for w, p in RESUME_GRID
    }
    missing = [k for k in keys.values() if cache.get(k) is None]
    assert missing, "kill landed after the whole grid completed"
    # Journaled keys must actually have their results on disk — the
    # journal never gets ahead of the cache (record is written after
    # the cache put, and both are fsynced/atomic respectively).
    for key in done:
        assert cache.get(key) is not None

    resumed = ParallelRunner(scale="test", jobs=1, cache=cache,
                             journal=RunJournal(journal_path), resume=True)
    resumed.prefetch([GridPoint(w, p) for w, p in RESUME_GRID])
    # Resume re-simulates exactly the points that never landed: the
    # interrupted batch's members, never the completed batch's.
    assert resumed.simulations == len(missing)
    assert journal.completed() >= set(keys.values())

    serial = ExperimentRunner(scale="test")
    for (w, p), key in keys.items():
        assert ResultCache.serialize(resumed.run(w, p).slim()) \
            == ResultCache.serialize(serial.run(w, p).slim())
