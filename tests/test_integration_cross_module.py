"""Cross-module integration tests: toolchain -> compiler -> core -> harness."""

import pytest

from repro import (
    CoreConfig,
    ExperimentRunner,
    OooCore,
    assemble,
    build_workload,
    make_policy,
    run_levioso_pass,
    run_program,
)
from repro.attacks import run_attack
from repro.compiler import static_stats


def test_public_api_surface():
    import repro

    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_end_to_end_pipeline_on_workload():
    """One workload through every layer: assemble, analyze, run both sims."""
    workload = build_workload("sandbox", scale="test")
    program = workload.assemble()
    info = run_levioso_pass(program)
    assert info.reconv_pc  # analysis produced metadata
    functional = run_program(program)
    assert workload.validate(functional.regs)
    result = OooCore(program, policy=make_policy("levioso")).run()
    assert result.regs == functional.regs
    assert result.stats.committed == functional.instructions


def test_analysis_shared_across_cores():
    """The Levioso pass runs once per Program, not once per core."""
    program = build_workload("cipher", scale="test").assemble()
    core_a = OooCore(program, policy=make_policy("levioso"))
    analysis = program.analysis
    core_b = OooCore(program, policy=make_policy("ctt"))
    assert program.analysis is analysis


def test_same_program_multiple_cores_independent():
    program = build_workload("branchy", scale="test").assemble()
    r1 = OooCore(program, policy=make_policy("none")).run()
    r2 = OooCore(program, policy=make_policy("fence")).run()
    # The first run must not have perturbed the second (fresh memory/caches).
    assert r1.regs == r2.regs
    assert r1.memory.equal_contents(r2.memory)


def test_runner_and_direct_runs_agree():
    runner = ExperimentRunner(scale="test")
    record = runner.run("cipher", "none")
    program = build_workload("cipher", scale="test").assemble()
    direct = OooCore(program, policy=make_policy("none")).run()
    assert record.cycles == direct.cycles  # determinism across paths


def test_attack_respects_custom_config():
    small = CoreConfig(rob_size=64, iq_size=32, lq_size=16, sq_size=16)
    outcome = run_attack("spectre_v1", "none", secret=0x2B, config=small)
    # A 64-entry window is still deep enough for the v1 gadget.
    assert outcome.leaked


def test_static_stats_scale_invariance():
    """Static analysis results depend on code shape, not data scale."""
    small = static_stats(build_workload("branchy", scale="test").assemble())
    large = static_stats(build_workload("branchy", scale="ref").assemble())
    assert small.static_branches == large.static_branches
    assert small.reconvergence_coverage == large.reconvergence_coverage


@pytest.mark.parametrize("policy", ["none", "levioso"])
def test_cli_run_equivalent_flow(tmp_path, policy, capsys):
    from repro.cli import main

    source = """
    .text
        li a0, 6
        li a1, 7
        mul a0, a0, a1
        halt
    """
    path = tmp_path / "prog.s"
    path.write_text(source)
    assert main(["run", str(path), "--policy", policy]) == 0
    out = capsys.readouterr().out
    assert "a0=0x2a" in out


def test_cli_analyze_and_disasm(tmp_path, capsys):
    from repro.cli import main

    path = tmp_path / "prog.s"
    path.write_text("""
    .text
        li a0, 1
        beqz a0, out
        addi a0, a0, 1
    out:
        halt
    """)
    assert main(["analyze", str(path)]) == 0
    out = capsys.readouterr().out
    assert "conditional branches: 1" in out
    assert main(["disasm", str(path)]) == 0
    out = capsys.readouterr().out
    assert "beq" in out
