"""Secure-compiler mitigation subsystem: passes, certification, plumbing."""

import pytest

from repro.adversarial.oracle import program_verdict
from repro.adversarial.repair import repair_program
from repro.analysis.scanner import scan_program
from repro.asm import assemble
from repro.compiler.mitigations import (
    MITIGATION_PASSES,
    PASS_VERSIONS,
    apply_mitigation,
    build_mitigated_workload,
    certify_mitigation,
    mitigation_tag,
    parse_mit_name,
)
from repro.compiler.mitigations.certify import architecturally_equivalent
from repro.compiler.rewriter import ProgramRewriter, image_fingerprint
from repro.errors import AnalysisError
from repro.functional import run_program
from repro.harness.cache import ResultCache, workload_fingerprint
from repro.harness.runner import ExperimentRunner, RunRecord
from repro.isa import Opcode
from repro.service.jobs import is_valid_workload
from repro.workloads import WORKLOAD_NAMES, build_workload

GADGETS = ("spectre_v1", "spectre_v1_ct", "spectre_v2")


def _gadget(name):
    from repro.attacks import ATTACKS

    return ATTACKS[name]()


# ------------------------------------------------------------------ rewriter
@pytest.mark.parametrize("target", ["spectre_v1", "spectre_v1_ct", "spectre_v2"])
def test_identity_rewrite_is_bit_identical(target):
    program = _gadget(target)
    rewritten = ProgramRewriter(program).rewrite()
    assert image_fingerprint(rewritten) == image_fingerprint(program)


@pytest.mark.parametrize("name", ["pchase", "bsearch", "sandbox"])
def test_identity_rewrite_on_workloads(name):
    program = build_workload(name, "test").assemble()
    rewritten = ProgramRewriter(program).rewrite()
    assert image_fingerprint(rewritten) == image_fingerprint(program)


def test_rewriter_requires_source():
    program = _gadget("spectre_v1")
    stripped = type(program)(
        instructions=program.instructions,
        data=program.data,
        symbols=program.symbols,
        name="nosource",
    )
    with pytest.raises(AnalysisError):
        ProgramRewriter(stripped)


def test_rewriter_pc_map_tracks_insertions():
    program = assemble(
        ".text\n"
        "start:\n"
        "    li a0, 1\n"
        "    li a1, 2\n"
        "    halt\n",
        name="tiny",
    )
    rw = ProgramRewriter(program)
    second = program.instructions[1].pc
    rw.insert_before(second, "addi a2, zero, 3")
    out = rw.rewrite()
    # First instruction unmoved; the second's continuation is the inserted
    # line (a return address would resume there); halt shifted by one slot.
    assert rw.pc_map[program.instructions[0].pc] == out.instructions[0].pc
    assert out.inst_at(rw.pc_map[second]).opcode is Opcode.ADDI
    assert out.inst_at(rw.pc_map[program.instructions[2].pc]).opcode is Opcode.HALT


# ------------------------------------------------------- gadget certification
@pytest.mark.parametrize("pass_name", MITIGATION_PASSES)
@pytest.mark.parametrize("target", sorted(GADGETS))
def test_every_pass_certifies_every_gadget(target, pass_name):
    result, cert = certify_mitigation(_gadget(target), pass_name)
    assert cert.equivalent, f"{pass_name} broke {target} architecturally"
    assert cert.oracle_verdict == "SECURE"
    assert cert.scanner_clean and cert.findings_left == 0
    assert cert.certified
    assert result.changed
    assert result.tag == mitigation_tag(pass_name)


@pytest.mark.parametrize("pass_name", MITIGATION_PASSES)
def test_passes_are_identity_or_idempotent_on_clean_code(pass_name):
    program = assemble(".text\n    li a0, 7\n    halt\n", name="clean")
    result = apply_mitigation(program, pass_name)
    # Scanner-led passes skip clean programs entirely.
    if pass_name in ("slh-lifted", "selective"):
        assert not result.changed
    assert run_program(result.program).regs == run_program(program).regs


def test_slh_emits_slhmask_and_scanner_honors_it():
    result = apply_mitigation(_gadget("spectre_v1"), "slh")
    assert result.program.slh_mask is not None
    assert ".slhmask" in result.program.source
    assert scan_program(result.program).clean
    # Round-trip through source keeps the contract.
    again = assemble(result.program.source, name="roundtrip")
    assert again.slh_mask == result.program.slh_mask
    assert scan_program(again).clean


# --------------------------------------------------- workload equivalence
@pytest.mark.parametrize("name", WORKLOAD_NAMES)
def test_passes_preserve_kernel_state_bit_identical(name):
    baseline = build_workload(name, "test").assemble()
    base = run_program(baseline)
    for pass_name in MITIGATION_PASSES:
        result = apply_mitigation(baseline, pass_name)
        mit = run_program(result.program)
        # Kernels hold no code pointers: strict bit-for-bit equality.
        assert mit.regs == base.regs, f"{pass_name} diverged on {name}"
        assert mit.state.memory.equal_contents(base.state.memory)


# ------------------------------------------------------- workload plumbing
def test_parse_mit_name():
    assert parse_mit_name("mit/fence/pchase") == ("fence", "pchase")
    assert parse_mit_name("mit/slh-lifted/fuzz/s1/i0/f41") == (
        "slh-lifted", "fuzz/s1/i0/f41",
    )
    assert parse_mit_name("pchase") is None
    with pytest.raises(AnalysisError):
        parse_mit_name("mit/bogus/pchase")


def test_mitigated_workload_builds_and_validates():
    workload = build_workload("mit/fence/pchase", "test")
    assert workload.mitigation == mitigation_tag("fence")
    assert "fence" in workload.source
    base = build_workload("pchase", "test")
    assert workload.check_reg == base.check_reg
    assert workload.check_value == base.check_value
    result = run_program(workload.assemble())
    assert workload.validate(result.regs)


def test_mitigated_fuzz_workload_builds():
    workload = build_mitigated_workload("mit/selective/fuzz/s7/i0/f41")
    assert workload.mitigation == mitigation_tag("selective")
    assert scan_program(workload.assemble()).clean


def test_mitigation_distinguishes_fingerprints():
    base = build_workload("pchase", "test")
    mitigated = build_workload("mit/fence/pchase", "test")
    assert workload_fingerprint(base, "test") != workload_fingerprint(
        mitigated, "test"
    )
    # The tag itself is load-bearing: same source, different tag -> distinct.
    import dataclasses

    retagged = dataclasses.replace(mitigated, mitigation="fence@v999")
    assert workload_fingerprint(mitigated, "test") != workload_fingerprint(
        retagged, "test"
    )


def test_run_record_carries_mitigation_through_cache(tmp_path):
    runner = ExperimentRunner(scale="test")
    record = runner.run("mit/selective/pchase", "none")
    assert record.mitigation == mitigation_tag("selective")
    plain = runner.run("pchase", "none")
    assert plain.mitigation is None
    cache = ResultCache(tmp_path)
    cache.put("k" * 16, record.slim())
    loaded = cache.get("k" * 16)
    assert loaded is not None and loaded.mitigation == record.mitigation
    # Legacy records without the field deserialize with the default.
    payload = cache.serialize(plain.slim())
    payload.pop("mitigation", None)
    legacy = cache.deserialize(payload)
    assert legacy.mitigation is None


def test_is_valid_workload_accepts_mit_names():
    assert is_valid_workload("mit/fence/pchase")
    assert is_valid_workload("mit/slh/fuzz/s3/i2/f41")
    assert not is_valid_workload("mit/bogus/pchase")
    assert not is_valid_workload("mit/fence/nosuch")
    assert not is_valid_workload("mit/fence/")


# ------------------------------------------------------------------- repair
@pytest.mark.parametrize("strategy", ["slh", "selective"])
def test_mitigation_repair_strategies(strategy):
    outcome = repair_program(_gadget("spectre_v1"), strategy=strategy)
    assert outcome.clean
    assert outcome.mitigation
    assert not program_verdict(outcome.program, "none").leaks


def test_cheapest_picks_non_fence_for_some_gadget():
    picked = set()
    for name in sorted(GADGETS):
        outcome = repair_program(_gadget(name), strategy="cheapest")
        assert outcome.clean
        picked.add(outcome.strategy)
    assert picked - {"load", "branch"}, (
        f"cheapest never chose a mitigation pass (picked {picked})"
    )


def test_pass_versions_registry_consistent():
    assert set(PASS_VERSIONS) == set(MITIGATION_PASSES)
    for name in MITIGATION_PASSES:
        assert mitigation_tag(name).startswith(f"{name}@v")


# ---------------------------------------------------------------------- CLI
def test_cli_mitigate_smoke(capsys):
    from repro.cli import main

    code = main(["mitigate", "spectre_v1", "--pass", "selective", "--json"])
    out = capsys.readouterr().out
    assert code == 0
    import json

    payload = json.loads(out)
    assert payload["certified"] is True
    assert payload["pass"] == "selective"
    assert payload["oracle_verdict"] == "SECURE"


def test_cli_resolves_mit_targets(capsys):
    from repro.cli import main

    code = main(["analyze", "mit/fence/pchase", "--json"])
    assert code == 0


# ----------------------------------------------------------------- property
def test_passes_secure_synthesized_leaky_gadgets():
    pytest.importorskip("hypothesis")
    from hypothesis import HealthCheck, given, settings
    from hypothesis import strategies as st

    from repro.adversarial.synth import synth_source, synthesize_item

    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(seed=st.integers(0, 2**16), index=st.integers(0, 11))
    def inner(seed, index):
        spec = synthesize_item(seed, index)
        program = assemble(
            synth_source(spec, 0x41), name=spec.workload_name(0x41)
        )
        for pass_name in ("fence", "slh"):
            result = apply_mitigation(program, pass_name)
            # Functional final state is preserved (up to code relocation).
            assert architecturally_equivalent(
                program, result.program, pc_map=result.pc_map
            ), f"{pass_name} broke {spec.name}"
            # And the hardened program never leaks, even when the input
            # was synthesized leaky.
            assert not program_verdict(result.program, "none").leaks

    inner()
