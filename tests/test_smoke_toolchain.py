"""End-to-end smoke tests: assemble + run small programs functionally."""

from repro.asm import assemble
from repro.functional import run_program

SUM_LOOP = """
.data
result: .dword 0
.text
    li a0, 0          # sum
    li a1, 1          # i
    li a2, 101        # limit
loop:
    add a0, a0, a1
    addi a1, a1, 1
    bne a1, a2, loop
    la t0, result
    sd a0, 0(t0)
    halt
"""


def test_sum_loop_computes_gauss():
    program = assemble(SUM_LOOP)
    result = run_program(program)
    assert result.state.read_reg(10) == 5050  # a0
    addr = program.address_of("result")
    assert result.state.memory.read_int(addr, 8) == 5050


def test_instruction_count_is_sane():
    program = assemble(SUM_LOOP)
    result = run_program(program)
    # 3 setup + 100 iterations * 3 + 3 tail
    assert result.instructions == 3 + 100 * 3 + 3


def test_call_ret_and_stack():
    source = """
    .text
        li a0, 7
        call double
        call double
        halt
    double:
        addi sp, sp, -8
        sd ra, 0(sp)
        add a0, a0, a0
        ld ra, 0(sp)
        addi sp, sp, 8
        ret
    """
    result = run_program(assemble(source))
    assert result.state.read_reg(10) == 28
