"""Event-horizon cycle skipping: bit-identical equivalence + safety.

The engine in :mod:`repro.uarch.horizon` warps ``self._cycle`` over quiet
stretches (and the DynInst free list recycles committed records), so the
contract is absolute: a warped run must be *bit-identical* to a stepped
run — same cycle count, same CoreStats, same architectural registers,
same memory-hierarchy counters — for every workload and every policy.

Three layers of defense here:

* the full SPEClite suite x every policy, fast mode vs reference mode
  (``cycle_skip=False, recycle_dyninsts=False``);
* a hypothesis property over random programs *and* random core
  geometries, with an instrumented warp asserting the engine never skips
  past a scheduled completion; and
* timeout equivalence — both modes must raise the same enriched
  :class:`SimulationTimeout` at the same limit.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

import repro.uarch.core as core_mod
from repro.asm import assemble
from repro.errors import SimulationTimeout
from repro.secure import ALL_POLICY_NAMES, make_policy
from repro.testing import programs
from repro.uarch import CoreConfig, OooCore
from repro.workloads import WORKLOAD_NAMES, build_workload

POLICIES = tuple(sorted(ALL_POLICY_NAMES))

#: Workloads whose test-scale runs are dominated by DRAM-latency waits, so
#: the engine must actually warp (not merely be allowed to).
MEMORY_BOUND = ("pchase", "gather", "treewalk", "listupd")


def _run_pair(program, policy_name, config=None, max_cycles=5_000_000):
    fast = OooCore(
        program, config=config, policy=make_policy(policy_name)
    )
    ref = OooCore(
        program,
        config=config,
        policy=make_policy(policy_name),
        cycle_skip=False,
        recycle_dyninsts=False,
    )
    return fast, fast.run(max_cycles=max_cycles), ref.run(max_cycles=max_cycles)


@pytest.mark.parametrize("name", WORKLOAD_NAMES)
def test_suite_equivalence_under_every_policy(name):
    """Fast mode is bit-identical to stepped mode: stats, regs, memory."""
    workload = build_workload(name, "test")
    program = workload.assemble()
    for policy_name in POLICIES:
        fast_core, fast, ref = _run_pair(program, policy_name)
        label = f"{name}/{policy_name}"
        assert fast.stats == ref.stats, label
        assert fast.regs == ref.regs, label
        assert fast.stats_dict() == ref.stats_dict(), label
        assert workload.validate(fast.regs), label
        # Reference mode must really be stepping.
        assert fast_core.warp_stats.warps >= 0  # engine present
    # The warp counters are diagnostics, not simulated state: they must
    # never leak into CoreStats (that would break the equality above).
    assert not hasattr(fast.stats, "cycles_skipped")


@pytest.mark.parametrize("name", MEMORY_BOUND)
def test_memory_bound_workloads_actually_warp(name):
    """DRAM-latency-dominated kernels must skip a meaningful cycle share."""
    program = build_workload(name, "test").assemble()
    core = OooCore(program, policy=make_policy("levioso"))
    result = core.run()
    warp = core.warp_stats
    assert warp.warps > 0
    assert 0 < warp.cycles_skipped < result.stats.cycles
    assert sum(warp.reasons.values()) == warp.warps


def test_reference_mode_never_warps():
    program = build_workload("gather", "test").assemble()
    core = OooCore(program, policy=make_policy("levioso"), cycle_skip=False)
    core.run()
    assert core.warp_stats.warps == 0
    assert core.warp_stats.cycles_skipped == 0


@st.composite
def _small_configs(draw):
    """Random cramped-to-roomy core geometries; stress every stall path."""
    iq_size = draw(st.integers(4, 32))
    return CoreConfig(
        fetch_width=draw(st.integers(1, 4)),
        dispatch_width=draw(st.integers(1, 4)),
        issue_width=draw(st.integers(1, 4)),
        commit_width=draw(st.integers(1, 4)),
        rob_size=draw(st.integers(iq_size, 64)),
        iq_size=iq_size,
        lq_size=draw(st.integers(2, 16)),
        sq_size=draw(st.integers(2, 16)),
        fetch_queue_size=draw(st.integers(2, 16)),
        frontend_latency=draw(st.integers(1, 8)),
    )


@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(
    source=programs(),
    policy_name=st.sampled_from(POLICIES),
    config=_small_configs(),
)
def test_warp_never_skips_past_a_completion(source, policy_name, config):
    """Property: every warp lands at or before the next scheduled event,
    and the warped run stays bit-identical to the stepped run."""
    program = assemble(source, name="hypothesis")
    real_warp = core_mod.warp_to_horizon
    observed = []

    def checked_warp(core, limit):
        skipped = real_warp(core, limit)
        if skipped:
            observed.append(skipped)
            assert core.cycle <= limit
            completions = core.completions
            assert not completions or completions[0][0] >= core.cycle, (
                "warped past a scheduled completion"
            )
        return skipped

    core_mod.warp_to_horizon = checked_warp
    try:
        fast = OooCore(
            program, config=config, policy=make_policy(policy_name)
        ).run(max_cycles=2_000_000)
    finally:
        core_mod.warp_to_horizon = real_warp
    ref = OooCore(
        program,
        config=config,
        policy=make_policy(policy_name),
        cycle_skip=False,
        recycle_dyninsts=False,
    ).run(max_cycles=2_000_000)
    assert fast.stats == ref.stats
    assert fast.regs == ref.regs


def test_timeout_is_bit_identical_and_enriched():
    """Both modes hit the limit at the same point with the same message,
    and the exception carries committed count and current fetch PC."""
    program = build_workload("treewalk", "test").assemble()
    limit = 500
    errors = []
    for kwargs in ({}, {"cycle_skip": False, "recycle_dyninsts": False}):
        core = OooCore(program, policy=make_policy("levioso"), **kwargs)
        with pytest.raises(SimulationTimeout) as exc_info:
            core.run(max_cycles=limit)
        errors.append(exc_info.value)
    fast_err, ref_err = errors
    assert str(fast_err) == str(ref_err)
    assert fast_err.limit == ref_err.limit == limit
    assert fast_err.committed == ref_err.committed
    assert fast_err.pc == ref_err.pc
    assert f"committed {fast_err.committed}" in str(fast_err)
    assert f"{fast_err.pc:#x}" in str(fast_err)


def test_env_overrides_force_reference_paths(monkeypatch):
    program = build_workload("gather", "test").assemble()
    monkeypatch.setenv("REPRO_NO_CYCLE_SKIP", "1")
    monkeypatch.setenv("REPRO_NO_DYN_POOL", "1")
    core = OooCore(program, policy=make_policy("levioso"))
    assert not core._cycle_skip
    assert not core._recycle
    result = core.run()
    assert core.warp_stats.warps == 0
    monkeypatch.delenv("REPRO_NO_CYCLE_SKIP")
    monkeypatch.delenv("REPRO_NO_DYN_POOL")
    fast = OooCore(program, policy=make_policy("levioso")).run()
    assert fast.stats == result.stats
    assert fast.regs == result.regs
