"""Pipeline-timeline rendering."""

from repro.asm import assemble
from repro.secure import make_policy
from repro.uarch import OooCore, gate_summary, render_timeline

SOURCE = """
.data
a: .dword 1,2,3,4,5,6,7,8
g: .dword a
.text
    la gp, g
    ld s0, 0(gp)
    li s3, 0
    li s4, 8
loop:
    slli t0, s3, 3
    add t0, s0, t0
    ld t1, 0(t0)
    add a0, a0, t1
    addi s3, s3, 1
    bne s3, s4, loop
    halt
"""


def run_recorded(policy="none"):
    core = OooCore(
        assemble(SOURCE), policy=make_policy(policy), record_pipeline=True
    )
    core.run()
    return core


def test_retired_list_populated_in_order():
    core = run_recorded()
    seqs = [d.seq for d in core.retired]
    assert seqs == sorted(seqs)
    assert len(core.retired) == core.stats.committed


def test_timeline_contains_lifecycle_markers():
    core = run_recorded()
    text = render_timeline(core.retired, start=0, count=10)
    assert "F" in text and "R" in text
    assert "cycles" in text.splitlines()[0]
    # One line per rendered instruction plus the header.
    assert len(text.splitlines()) == 11


def test_timeline_scales_long_windows():
    core = run_recorded()
    text = render_timeline(core.retired, count=len(core.retired), max_width=40)
    assert "1 char =" in text.splitlines()[0]
    assert all(len(line) < 140 for line in text.splitlines())


def test_timeline_empty_range():
    core = run_recorded()
    assert "no retired" in render_timeline(core.retired, start=10_000)


def test_gate_summary_reports_fence_delays():
    core = run_recorded("fence")
    summary = gate_summary(core.retired)
    assert "gated" in summary
    none_core = run_recorded("none")
    assert gate_summary(none_core.retired) == "no instructions were gated"


def test_recording_off_by_default():
    core = OooCore(assemble(SOURCE))
    core.run()
    assert core.retired == []
