"""L1 instruction cache behaviour."""

from repro.asm import assemble
from repro.functional import run_program
from repro.mem import MemoryHierarchy
from repro.uarch import OooCore


def test_icache_fetch_hit_is_free():
    hier = MemoryHierarchy()
    first = hier.fetch(0x1000, cycle=0)
    assert first > 0  # cold miss pays the fill path
    second = hier.fetch(0x1000, cycle=first)
    assert second == first  # hit: no stall


def test_icache_appears_in_stats():
    hier = MemoryHierarchy()
    hier.fetch(0x1000, 0)
    stats = hier.stats()
    assert stats["l1i"]["misses"] == 1


def test_core_pays_icache_cold_misses_once():
    source = """
    .text
        li a0, 0
        li a1, 50
    loop:
        addi a0, a0, 1
        bne a0, a1, loop
        halt
    """
    program = assemble(source)
    core = OooCore(program)
    result = core.run()
    assert result.regs == run_program(program).regs
    icache = core.hierarchy.l1i.stats
    # The tiny loop occupies one line: exactly a couple of cold misses,
    # then hits forever.
    assert 1 <= icache.misses <= 3
    assert icache.hits > icache.misses


def test_long_code_footprint_misses_more():
    body = "\n".join("    addi a0, a0, 1" for _ in range(600))  # ~2.4 KiB
    program = assemble(f".text\n{body}\n    halt\n")
    core = OooCore(program)
    core.run()
    # 600 instructions * 4 B / 64 B lines ~= 38 cold misses.
    assert core.hierarchy.l1i.stats.misses >= 30
