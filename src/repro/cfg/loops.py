"""Natural-loop detection (back edges via dominators).

Used by compiler statistics (loop depth per branch) and by workload-suite
reports; the Levioso pass itself needs only post-dominators, but loop
structure is what makes its reconvergence behaviour interesting, so the
analysis is part of the toolkit.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .basic_block import EXIT_BLOCK, FunctionCFG
from .dom import DominatorInfo


@dataclass
class NaturalLoop:
    """One natural loop: header block + body block set."""

    header: int
    body: set[int] = field(default_factory=set)

    @property
    def size(self) -> int:
        return len(self.body)


def find_back_edges(cfg: FunctionCFG, dom: DominatorInfo) -> list[tuple[int, int]]:
    """Edges (tail -> header) where header dominates tail."""
    edges = []
    for block in cfg.blocks:
        for succ in block.successors:
            if succ == EXIT_BLOCK or succ not in dom.idom or block.bid not in dom.idom:
                continue
            if dom.dominates(succ, block.bid):
                edges.append((block.bid, succ))
    return edges


def find_natural_loops(cfg: FunctionCFG, dom: DominatorInfo | None = None) -> list[NaturalLoop]:
    """All natural loops, one per header (bodies of shared headers merged)."""
    if dom is None:
        dom = DominatorInfo(cfg)
    loops: dict[int, NaturalLoop] = {}
    for tail, header in find_back_edges(cfg, dom):
        loop = loops.setdefault(header, NaturalLoop(header, {header}))
        # Walk predecessors backwards from the tail until the header.
        work = [tail]
        while work:
            node = work.pop()
            if node in loop.body:
                continue
            loop.body.add(node)
            work.extend(cfg.blocks[node].predecessors)
    return list(loops.values())


def loop_depth_of_blocks(cfg: FunctionCFG) -> dict[int, int]:
    """Nesting depth of every block (0 = not in any loop)."""
    loops = find_natural_loops(cfg)
    depth = {block.bid: 0 for block in cfg.blocks}
    for loop in loops:
        for bid in loop.body:
            depth[bid] += 1
    return depth
