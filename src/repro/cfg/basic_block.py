"""Basic blocks and per-function control-flow graphs."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..isa import Instruction

EXIT_BLOCK = -1
"""Virtual exit node id used by the post-dominator analysis.

Return instructions, ``halt`` and indirect jumps with unknown targets edge
to this node.
"""


@dataclass
class BasicBlock:
    """A maximal straight-line instruction sequence.

    Attributes:
        bid: dense block id within its function's CFG.
        instructions: the block body in program order.
        successors: block ids (may include :data:`EXIT_BLOCK`).
        predecessors: block ids.
    """

    bid: int
    instructions: list[Instruction]
    successors: list[int] = field(default_factory=list)
    predecessors: list[int] = field(default_factory=list)

    @property
    def start_pc(self) -> int:
        return self.instructions[0].pc

    @property
    def end_pc(self) -> int:
        """PC of the last instruction (the terminator if control flow)."""
        return self.instructions[-1].pc

    @property
    def terminator(self) -> Instruction:
        return self.instructions[-1]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BasicBlock(bid={self.bid}, pcs={self.start_pc:#x}..{self.end_pc:#x}, "
            f"succ={self.successors})"
        )


@dataclass
class FunctionCFG:
    """The control-flow graph of one function.

    Block 0 is always the entry block.  Edges to :data:`EXIT_BLOCK` represent
    function exit (return, halt, unanalyzable indirect jump).
    """

    name: str
    entry_pc: int
    blocks: list[BasicBlock]
    block_of_pc: dict[int, int]

    def block(self, bid: int) -> BasicBlock:
        return self.blocks[bid]

    def block_at(self, pc: int) -> BasicBlock:
        """The block containing instruction ``pc``."""
        return self.blocks[self.block_of_pc[pc]]

    def conditional_branches(self) -> list[Instruction]:
        """All conditional-branch instructions in this function."""
        return [
            inst
            for block in self.blocks
            for inst in block.instructions
            if inst.is_branch
        ]

    @property
    def num_blocks(self) -> int:
        return len(self.blocks)

    def edges(self) -> list[tuple[int, int]]:
        """All (src, dst) edges, including edges to EXIT_BLOCK."""
        out = []
        for block in self.blocks:
            for succ in block.successors:
                out.append((block.bid, succ))
        return out
