"""Control-flow graph construction and graph analyses."""

from .basic_block import EXIT_BLOCK, BasicBlock, FunctionCFG
from .builder import build_all_cfgs, build_function_cfg, find_function_entries
from .dom import DominatorInfo, PostDominatorInfo, compute_idoms
from .loops import NaturalLoop, find_back_edges, find_natural_loops, loop_depth_of_blocks

__all__ = [
    "BasicBlock",
    "DominatorInfo",
    "EXIT_BLOCK",
    "FunctionCFG",
    "NaturalLoop",
    "PostDominatorInfo",
    "build_all_cfgs",
    "build_function_cfg",
    "compute_idoms",
    "find_back_edges",
    "find_function_entries",
    "find_natural_loops",
    "loop_depth_of_blocks",
]
