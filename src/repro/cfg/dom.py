"""Dominator and post-dominator analysis.

Implements the Cooper-Harvey-Kennedy iterative algorithm ("A Simple, Fast
Dominance Algorithm") over a generic successor map, then instantiates it for
dominators and — on the reversed CFG with the virtual exit as root — for
post-dominators.  The *immediate post-dominator of a branch block* is the
branch's **reconvergence point**, the object at the heart of Levioso's
compiler analysis.
"""

from __future__ import annotations

from ..errors import AnalysisError
from .basic_block import EXIT_BLOCK, FunctionCFG

Node = int


def _reverse_postorder(root: Node, succs: dict[Node, list[Node]]) -> list[Node]:
    """Reverse post-order over the graph reachable from ``root``.

    Iterative DFS so pathological CFGs cannot overflow Python's stack.
    """
    order: list[Node] = []
    visited: set[Node] = set()
    # stack holds (node, iterator over successors)
    stack: list[tuple[Node, int]] = [(root, 0)]
    visited.add(root)
    while stack:
        node, idx = stack[-1]
        children = succs.get(node, [])
        if idx < len(children):
            stack[-1] = (node, idx + 1)
            child = children[idx]
            if child not in visited:
                visited.add(child)
                stack.append((child, 0))
        else:
            stack.pop()
            order.append(node)
    order.reverse()
    return order


def compute_idoms(root: Node, succs: dict[Node, list[Node]]) -> dict[Node, Node]:
    """Immediate dominators for every node reachable from ``root``.

    Returns a map ``node -> idom``; the root maps to itself.
    """
    rpo = _reverse_postorder(root, succs)
    index = {node: i for i, node in enumerate(rpo)}
    preds: dict[Node, list[Node]] = {node: [] for node in rpo}
    for node in rpo:
        for succ in succs.get(node, []):
            if succ in index:
                preds[succ].append(node)

    idom: dict[Node, Node] = {root: root}

    def intersect(a: Node, b: Node) -> Node:
        while a != b:
            while index[a] > index[b]:
                a = idom[a]
            while index[b] > index[a]:
                b = idom[b]
        return a

    changed = True
    while changed:
        changed = False
        for node in rpo:
            if node == root:
                continue
            candidates = [p for p in preds[node] if p in idom]
            if not candidates:
                continue
            new_idom = candidates[0]
            for p in candidates[1:]:
                new_idom = intersect(new_idom, p)
            if idom.get(node) != new_idom:
                idom[node] = new_idom
                changed = True
    return idom


class DominatorInfo:
    """Dominator tree of a :class:`FunctionCFG`."""

    def __init__(self, cfg: FunctionCFG):
        self.cfg = cfg
        root = cfg.block_of_pc[cfg.entry_pc]
        succs = {b.bid: [s for s in b.successors if s != EXIT_BLOCK] for b in cfg.blocks}
        self.root = root
        self.idom = compute_idoms(root, succs)

    def dominates(self, a: Node, b: Node) -> bool:
        """Does block ``a`` dominate block ``b``?"""
        if b not in self.idom:
            raise AnalysisError(f"block {b} unreachable from entry")
        node = b
        while True:
            if node == a:
                return True
            parent = self.idom[node]
            if parent == node:
                return False
            node = parent


class PostDominatorInfo:
    """Post-dominator tree, rooted at the virtual exit node.

    Every block with no intra-function successors (returns, halt, indirect
    jumps) edges to :data:`EXIT_BLOCK`; the analysis runs on the reversed
    graph from that node.  Blocks that cannot reach the exit (infinite
    loops) have no post-dominator and report ``None``.
    """

    def __init__(self, cfg: FunctionCFG):
        self.cfg = cfg
        # Reversed graph: successors of N are N's CFG predecessors.
        rsuccs: dict[Node, list[Node]] = {EXIT_BLOCK: []}
        for block in cfg.blocks:
            rsuccs.setdefault(block.bid, [])
        for block in cfg.blocks:
            for succ in block.successors:
                rsuccs.setdefault(succ, []).append(block.bid)
        self.ipdom = compute_idoms(EXIT_BLOCK, rsuccs)

    def immediate_postdominator(self, bid: Node) -> Node | None:
        """The ipdom block of ``bid``.

        Returns :data:`EXIT_BLOCK` when the only post-dominator is the
        function exit, and None when the block cannot reach the exit at all.
        """
        if bid not in self.ipdom:
            return None
        parent = self.ipdom[bid]
        return parent

    def postdominates(self, a: Node, b: Node) -> bool:
        """Does ``a`` post-dominate ``b``?"""
        if b not in self.ipdom:
            return False
        node = b
        while True:
            if node == a:
                return True
            parent = self.ipdom.get(node)
            if parent is None or parent == node:
                return False
            node = parent
