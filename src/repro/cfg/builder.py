"""CFG construction from assembled programs.

The analysis is intraprocedural, mirroring the paper's compiler pass:

* **Function discovery** — a function entry is the program entry point or the
  target of any ``jal`` with a link register (``rd != x0``; the assembler's
  ``call`` pseudo-op).  ``jal x0, target`` (the ``j`` pseudo-op) is an
  intra-function jump.
* **Call edges** — a call falls through to its return address; the callee is
  analysed separately.
* **Exits** — ``jalr`` (returns and indirect jumps), ``halt`` and running off
  analysed code edge to the virtual :data:`~repro.cfg.basic_block.EXIT_BLOCK`.
  Indirect jumps are conservative exits: branches before them never
  reconverge, exactly as a production compiler must assume.
"""

from __future__ import annotations

from ..asm.program import Program
from ..isa import INSTRUCTION_BYTES, Instruction, Opcode
from .basic_block import EXIT_BLOCK, BasicBlock, FunctionCFG


def _is_call(inst: Instruction) -> bool:
    return inst.opcode is Opcode.JAL and inst.rd != 0


def _is_intra_jump(inst: Instruction) -> bool:
    return inst.opcode is Opcode.JAL and inst.rd == 0


def find_function_entries(program: Program) -> list[int]:
    """Entry PCs of all functions: program entry + every call target."""
    entries = {program.entry}
    for inst in program.instructions:
        if _is_call(inst):
            entries.add(inst.imm)
    return sorted(entries)


def _function_pcs(program: Program, entry: int) -> set[int]:
    """Instruction PCs intraprocedurally reachable from ``entry``."""
    seen: set[int] = set()
    work = [entry]
    while work:
        pc = work.pop()
        if pc in seen:
            continue
        inst = program.try_inst_at(pc)
        if inst is None:
            continue  # fell off the text segment: treated as exit
        seen.add(pc)
        op = inst.opcode
        if op is Opcode.HALT or op is Opcode.JALR:
            continue  # function exit (return / indirect jump)
        if _is_intra_jump(inst):
            work.append(inst.imm)
            continue
        if inst.is_branch:
            work.append(inst.branch_target)
        # calls, branches (not-taken) and straight-line code fall through
        work.append(pc + INSTRUCTION_BYTES)
    return seen


def build_function_cfg(program: Program, entry: int, name: str = "") -> FunctionCFG:
    """Build the CFG of the function whose entry is ``entry``."""
    pcs = _function_pcs(program, entry)

    # Leaders: entry, control-flow targets, and fallthroughs of terminators.
    leaders = {entry}
    for pc in pcs:
        inst = program.inst_at(pc)
        if inst.is_branch:
            leaders.add(inst.branch_target)
            leaders.add(pc + INSTRUCTION_BYTES)
        elif _is_intra_jump(inst):
            leaders.add(inst.imm)
        elif inst.opcode in (Opcode.JALR, Opcode.HALT):
            fall = pc + INSTRUCTION_BYTES
            if fall in pcs:
                leaders.add(fall)
    leaders &= pcs

    # Carve blocks out of the sorted PC list.
    ordered = sorted(pcs)
    blocks: list[BasicBlock] = []
    block_of_pc: dict[int, int] = {}
    current: list[Instruction] = []

    def finish() -> None:
        if current:
            bid = len(blocks)
            blocks.append(BasicBlock(bid, list(current)))
            for inst in current:
                block_of_pc[inst.pc] = bid
            current.clear()

    for i, pc in enumerate(ordered):
        inst = program.inst_at(pc)
        if pc in leaders:
            finish()
        current.append(inst)
        next_pc = ordered[i + 1] if i + 1 < len(ordered) else None
        ends_block = (
            inst.is_branch
            or _is_intra_jump(inst)
            or inst.opcode in (Opcode.JALR, Opcode.HALT)
            or next_pc != pc + INSTRUCTION_BYTES  # discontiguous region
        )
        if ends_block:
            finish()
    finish()

    # Wire edges.
    for block in blocks:
        term = block.terminator
        succ: list[int] = []
        if term.is_branch:
            taken = block_of_pc.get(term.branch_target, EXIT_BLOCK)
            fall = block_of_pc.get(term.fallthrough, EXIT_BLOCK)
            succ = [taken, fall]
        elif _is_intra_jump(term):
            succ = [block_of_pc.get(term.imm, EXIT_BLOCK)]
        elif term.opcode in (Opcode.JALR, Opcode.HALT):
            succ = [EXIT_BLOCK]
        else:
            # straight-line block boundary (leader split or call fallthrough)
            succ = [block_of_pc.get(term.fallthrough, EXIT_BLOCK)]
        block.successors = succ
    for block in blocks:
        for s in block.successors:
            if s != EXIT_BLOCK:
                blocks[s].predecessors.append(block.bid)

    if not name:
        label_names = {
            addr: sym for sym, addr in program.symbols.items()
        }
        name = label_names.get(entry, f"func_{entry:#x}")
    return FunctionCFG(name=name, entry_pc=entry, blocks=blocks, block_of_pc=block_of_pc)


def build_all_cfgs(program: Program) -> list[FunctionCFG]:
    """Build the CFG of every function in the program."""
    return [build_function_cfg(program, entry) for entry in find_function_entries(program)]
