"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without accidentally swallowing Python
built-in errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class IsaError(ReproError):
    """Invalid use of the ISA layer (bad register, opcode, operand)."""


class EncodingError(IsaError):
    """An instruction cannot be encoded/decoded (field overflow, bad word)."""


class AssemblerError(ReproError):
    """Syntax or semantic error in assembly source.

    Carries the source line number when available.
    """

    def __init__(self, message: str, line: int | None = None):
        self.line = line
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


class LinkError(ReproError):
    """An undefined or duplicate symbol was referenced at assembly time."""


class SimulationError(ReproError):
    """The simulated machine reached an illegal state (bad PC, fault)."""


class MemoryFault(SimulationError):
    """Access to unmapped or misaligned memory."""

    def __init__(self, address: int, reason: str = "unmapped"):
        self.address = address
        super().__init__(f"memory fault at {address:#x}: {reason}")


class SimulationTimeout(SimulationError):
    """The simulation exceeded its instruction or cycle budget.

    Carries structured triage context so hung-workload reports (and the
    harness ``--timeout`` resilience path) can say *where* the run was
    stuck, not just that it was: the cycle ``limit`` that was hit, the
    ``committed`` instruction count at that point, the current fetch
    ``pc``, and — when raised inside a lockstep batch — the ``point``
    label of the grid point whose core hit the limit, so a multi-point
    worker failure is attributed to the right run key.  All are optional
    keywords — the rendered message is the only required state, which
    keeps the exception picklable across worker processes on the default
    (args-based) reduce path.
    """

    def __init__(
        self,
        message: str,
        *,
        limit: int | None = None,
        committed: int | None = None,
        pc: int | None = None,
        point: str | None = None,
    ):
        self.limit = limit
        self.committed = committed
        self.pc = pc
        self.point = point
        super().__init__(message)


#: Deprecated alias of :class:`SimulationTimeout`; kept so existing callers
#: (and pickled exceptions from old worker processes) keep resolving.
TimeoutError_ = SimulationTimeout


class AnalysisError(ReproError):
    """A compiler/CFG analysis was asked something it cannot answer."""


class ConfigError(ReproError):
    """Inconsistent or out-of-range microarchitecture configuration."""


class PolicyError(ReproError):
    """A security policy was configured or used incorrectly."""


class HarnessError(ReproError):
    """The experiment harness failed operationally.

    Raised for supervisor-level problems — grid points that exhausted
    their retry budget, a resume journal that cannot be used, a worker
    pool that could not be kept alive — as opposed to errors *inside* a
    simulation (those are :class:`SimulationError`).
    """


class CacheCorruptionError(HarnessError):
    """A persistent cache entry failed an integrity check.

    Covers truncated or non-JSON files, checksum mismatches, and
    version-salt mismatches.  :meth:`ResultCache.get` never lets this
    escape (corrupt entries are quarantined and reported as misses); it
    surfaces from ``repro cache verify`` and strict loads.
    """


class InjectedFault(ReproError):
    """An artificial failure raised by the fault-injection plan.

    Only ever raised when a :class:`repro.faults.FaultPlan` is active
    (chaos tests / ``repro chaos``); production runs never see it.
    """
