"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without accidentally swallowing Python
built-in errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class IsaError(ReproError):
    """Invalid use of the ISA layer (bad register, opcode, operand)."""


class EncodingError(IsaError):
    """An instruction cannot be encoded/decoded (field overflow, bad word)."""


class AssemblerError(ReproError):
    """Syntax or semantic error in assembly source.

    Carries the source line number when available.
    """

    def __init__(self, message: str, line: int | None = None):
        self.line = line
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


class LinkError(ReproError):
    """An undefined or duplicate symbol was referenced at assembly time."""


class SimulationError(ReproError):
    """The simulated machine reached an illegal state (bad PC, fault)."""


class MemoryFault(SimulationError):
    """Access to unmapped or misaligned memory."""

    def __init__(self, address: int, reason: str = "unmapped"):
        self.address = address
        super().__init__(f"memory fault at {address:#x}: {reason}")


class TimeoutError_(SimulationError):
    """The simulation exceeded its instruction or cycle budget."""


class AnalysisError(ReproError):
    """A compiler/CFG analysis was asked something it cannot answer."""


class ConfigError(ReproError):
    """Inconsistent or out-of-range microarchitecture configuration."""


class PolicyError(ReproError):
    """A security policy was configured or used incorrectly."""
