"""Three-level cache hierarchy + DRAM, the load/store timing path.

L1D -> L2 -> LLC -> DRAM, non-inclusive, write-allocate/write-back, with L1
MSHRs bounding memory-level parallelism and an optional prefetcher training
on demand loads.  Presence-only caches (see :mod:`repro.mem.cache`): data
correctness lives in the backing memory, this module answers *when*.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .cache import Cache, CacheGeometry
from .dram import DramModel
from .mshr import MshrFile
from .prefetch import Prefetcher, make_prefetcher


@dataclass(frozen=True)
class MemHierarchyConfig:
    """Geometry of the whole memory system (Table 1 rows).

    The defaults are a *scaled-down* hierarchy (1/2 the usual sizes at each
    level) matching SPEClite's scaled-down footprints — the standard
    reduced-configuration methodology, so the suite exercises the same
    miss-rate regimes SPEC exercises on full-size caches.
    """

    l1i: CacheGeometry = CacheGeometry("l1i", 16 * 1024, 4, hit_latency=1)
    l1d: CacheGeometry = CacheGeometry("l1d", 16 * 1024, 4, hit_latency=3)
    l2: CacheGeometry = CacheGeometry("l2", 128 * 1024, 8, hit_latency=12)
    llc: CacheGeometry = CacheGeometry("llc", 1024 * 1024, 16, hit_latency=30)
    dram_latency: int = 120
    dram_cycles_per_access: int = 4
    mshr_entries: int = 16
    prefetcher: str = "none"
    prefetch_degree: int = 1


class MemoryHierarchy:
    """The data-side memory system of one core."""

    def __init__(self, config: MemHierarchyConfig | None = None):
        self.config = config or MemHierarchyConfig()
        self.l1i = Cache(self.config.l1i)
        self.l1d = Cache(self.config.l1d)
        self.l2 = Cache(self.config.l2)
        self.llc = Cache(self.config.llc)
        self.dram = DramModel(
            latency=self.config.dram_latency,
            cycles_per_access=self.config.dram_cycles_per_access,
        )
        self.mshrs = MshrFile(self.config.mshr_entries)
        if self.config.prefetcher == "next_line":
            self.prefetcher: Prefetcher = make_prefetcher(
                "next_line",
                line_bytes=self.config.l1d.line_bytes,
                degree=self.config.prefetch_degree,
            )
        elif self.config.prefetcher == "stride":
            self.prefetcher = make_prefetcher(
                "stride", degree=self.config.prefetch_degree
            )
        else:
            self.prefetcher = make_prefetcher(self.config.prefetcher)

    # ------------------------------------------------------------ demand path
    def load(self, address: int, cycle: int, pc: int = 0) -> int:
        """Demand load; returns the data-ready cycle."""
        ready = self._access(address, cycle, is_write=False)
        for target in self.prefetcher.observe(pc, address):
            self._prefetch_fill(target)
        return ready

    def fetch(self, address: int, cycle: int) -> int:
        """Instruction fetch; returns the cycle the line is available.

        Hits are free (the front end overlaps the L1I hit latency); misses
        walk the shared L2/LLC/DRAM path and fill the L1I.
        """
        if self.l1i.access(address, is_write=False):
            return cycle
        ready = self._fill_path(address, cycle)
        self.l1i.fill(address)
        return ready

    def store(self, address: int, cycle: int) -> int:
        """Committed store (write-allocate); returns completion cycle.

        Store latency is mostly hidden by the store buffer; callers treat
        the returned cycle as the L1 port occupancy, not a stall.
        """
        if self.l1d.access(address, is_write=True):
            return cycle + self.config.l1d.hit_latency
        # Write-allocate: bring the line in through the hierarchy.
        ready = self._fill_path(address, cycle)
        self.l1d.fill(address, dirty=True)
        return ready

    def _access(self, address: int, cycle: int, is_write: bool) -> int:
        if self.l1d.access(address, is_write=is_write):
            return cycle + self.config.l1d.hit_latency
        line = self.l1d.line_of(address)
        merged = self.mshrs.lookup(line, cycle)
        if merged is not None:
            self.mshrs.stats.merges += 1
            return merged
        fill_ready = self._fill_path(address, cycle)
        ready = self.mshrs.allocate(line, cycle, fill_ready - cycle)
        self.l1d.fill(address, dirty=is_write)
        return ready

    def _fill_path(self, address: int, cycle: int) -> int:
        """Latency below L1: L2 -> LLC -> DRAM, filling on the way back."""
        if self.l2.access(address, is_write=False):
            return cycle + self.config.l2.hit_latency
        if self.llc.access(address, is_write=False):
            self.l2.fill(address)
            return cycle + self.config.llc.hit_latency
        ready = self.dram.access(address, cycle + self.config.llc.hit_latency)
        self.llc.fill(address)
        self.l2.fill(address)
        return ready

    def _prefetch_fill(self, address: int) -> None:
        """Timing-free prefetch into L2/LLC."""
        if not self.l2.contains(address):
            self.llc.fill(address)
            self.l2.fill(address)

    # --------------------------------------------------------------- queries
    def peek_l1_hit(self, address: int) -> bool:
        """Would this load hit in L1?  No side effects (Delay-on-Miss gate)."""
        return self.l1d.contains(address)

    def probe_level(self, address: int) -> str | None:
        """Highest level holding the line (attack receivers / tests)."""
        if self.l1d.contains(address):
            return "l1d"
        if self.l2.contains(address):
            return "l2"
        if self.llc.contains(address):
            return "llc"
        return None

    # -------------------------------------------------------------- mutation
    def flush_address(self, address: int) -> None:
        """clflush semantics: evict the line from every level."""
        self.l1d.invalidate(address)
        self.l2.invalidate(address)
        self.llc.invalidate(address)

    def warm_line(self, address: int) -> None:
        """Test/attack-harness helper: install a line everywhere."""
        self.llc.fill(address)
        self.l2.fill(address)
        self.l1d.fill(address)

    # ------------------------------------------------------------------ stats
    def stats(self) -> dict[str, dict[str, float]]:
        return {
            "l1i": self.l1i.stats.as_dict(),
            "l1d": self.l1d.stats.as_dict(),
            "l2": self.l2.stats.as_dict(),
            "llc": self.llc.stats.as_dict(),
            "dram": {
                "requests": self.dram.stats.requests,
                "row_hits": self.dram.stats.row_hits,
                "queue_cycles": self.dram.stats.queue_cycles,
            },
            "mshr": {
                "allocations": self.mshrs.stats.allocations,
                "merges": self.mshrs.stats.merges,
                "full_stall_cycles": self.mshrs.stats.full_stall_cycles,
            },
        }
