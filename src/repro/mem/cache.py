"""Set-associative cache model (presence + timing).

A deliberate and documented simplification (DESIGN.md): caches track *which
lines are present and dirty* but hold no data — architectural data always
comes from the backing :class:`~repro.mem.backing.SparseMemory` plus the
core's store queue.  This is exactly the fidelity cache side channels need
(flush+reload and prime+probe only observe line presence and latency) while
keeping coherence trivially correct.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ConfigError
from .replacement import make_replacement


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0
    flushes: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def as_dict(self) -> dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "writebacks": self.writebacks,
            "miss_rate": self.miss_rate,
        }


@dataclass(frozen=True)
class CacheGeometry:
    """Size parameters of one cache level."""

    name: str
    size_bytes: int
    assoc: int
    line_bytes: int = 64
    hit_latency: int = 3
    replacement: str = "lru"

    @property
    def num_sets(self) -> int:
        sets = self.size_bytes // (self.assoc * self.line_bytes)
        if sets <= 0 or sets & (sets - 1):
            raise ConfigError(
                f"{self.name}: {self.size_bytes}B/{self.assoc}way/"
                f"{self.line_bytes}B gives non-power-of-two set count {sets}"
            )
        return sets


class Cache:
    """One level of set-associative cache."""

    def __init__(self, geometry: CacheGeometry):
        self.geometry = geometry
        self.num_sets = geometry.num_sets
        self.line_bits = geometry.line_bytes.bit_length() - 1
        if (1 << self.line_bits) != geometry.line_bytes:
            raise ConfigError(f"line size {geometry.line_bytes} not a power of two")
        # num_sets is a power of two (CacheGeometry enforces it), so the
        # set/tag split is a mask + shift.
        self._set_mask = self.num_sets - 1
        self._set_bits = self.num_sets.bit_length() - 1
        self._tags: list[list[int]] = [[0] * geometry.assoc for _ in range(self.num_sets)]
        self._valid: list[list[bool]] = [
            [False] * geometry.assoc for _ in range(self.num_sets)
        ]
        self._dirty: list[list[bool]] = [
            [False] * geometry.assoc for _ in range(self.num_sets)
        ]
        # Presence index: per-set {tag: way}, kept in sync with the way
        # arrays by fill/invalidate so the per-access way search is one
        # dict probe instead of an associativity-wide scan.
        self._map: list[dict[int, int]] = [{} for _ in range(self.num_sets)]
        self._repl = make_replacement(geometry.replacement, self.num_sets, geometry.assoc)
        self.stats = CacheStats()

    # ----------------------------------------------------------- addressing
    def line_of(self, address: int) -> int:
        return address >> self.line_bits

    def _set_tag(self, line: int) -> tuple[int, int]:
        return line & self._set_mask, line >> self._set_bits

    def _find(self, line: int) -> tuple[int, int | None]:
        set_index = line & self._set_mask
        return set_index, self._map[set_index].get(line >> self._set_bits)

    # -------------------------------------------------------------- queries
    def contains(self, address: int) -> bool:
        """Presence probe with NO side effects (attack receivers use this)."""
        _, way = self._find(self.line_of(address))
        return way is not None

    # -------------------------------------------------------------- accesses
    def access(self, address: int, is_write: bool) -> bool:
        """Look up the line; updates recency and stats.  True on hit."""
        line = address >> self.line_bits
        set_index = line & self._set_mask
        way = self._map[set_index].get(line >> self._set_bits)
        if way is None:
            self.stats.misses += 1
            return False
        self.stats.hits += 1
        self._repl.on_access(set_index, way)
        if is_write:
            self._dirty[set_index][way] = True
        return True

    def fill(self, address: int, dirty: bool = False) -> int | None:
        """Install the line; returns the evicted line number (or None).

        Counts a writeback when the victim was dirty.
        """
        line = self.line_of(address)
        set_index, way = self._find(line)
        if way is not None:
            # Already present (e.g. race between demand fill and prefetch).
            self._repl.on_access(set_index, way)
            if dirty:
                self._dirty[set_index][way] = True
            return None
        tag = line >> self._set_bits
        victim_way = self._repl.victim(set_index, self._valid[set_index])
        evicted: int | None = None
        tag_map = self._map[set_index]
        if self._valid[set_index][victim_way]:
            self.stats.evictions += 1
            if self._dirty[set_index][victim_way]:
                self.stats.writebacks += 1
            victim_tag = self._tags[set_index][victim_way]
            evicted = victim_tag * self.num_sets + set_index
            del tag_map[victim_tag]
        self._tags[set_index][victim_way] = tag
        self._valid[set_index][victim_way] = True
        self._dirty[set_index][victim_way] = dirty
        tag_map[tag] = victim_way
        self._repl.on_fill(set_index, victim_way)
        return evicted

    def invalidate(self, address: int) -> bool:
        """Drop the line if present; True if it was present."""
        line = self.line_of(address)
        set_index, way = self._find(line)
        if way is None:
            return False
        if self._dirty[set_index][way]:
            self.stats.writebacks += 1
        self._valid[set_index][way] = False
        self._dirty[set_index][way] = False
        del self._map[set_index][line >> self._set_bits]
        self.stats.flushes += 1
        return True

    # ------------------------------------------------------------- utilities
    def resident_lines(self) -> set[int]:
        """All resident line numbers (test/debug aid)."""
        lines = set()
        for set_index in range(self.num_sets):
            for way in range(self.geometry.assoc):
                if self._valid[set_index][way]:
                    lines.add(self._tags[set_index][way] * self.num_sets + set_index)
        return lines
