"""Main-memory latency/bandwidth model.

Fixed access latency plus a single-channel occupancy model: each request
occupies the channel for ``cycles_per_access`` cycles, so bursts of misses
queue behind each other.  Optionally models an open-row bonus: consecutive
accesses to the same DRAM row are faster.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class DramStats:
    requests: int = 0
    row_hits: int = 0
    queue_cycles: int = 0


class DramModel:
    """Deterministic single-channel DRAM."""

    def __init__(
        self,
        latency: int = 120,
        cycles_per_access: int = 4,
        row_bytes: int = 4096,
        row_hit_discount: int = 40,
    ):
        self.latency = latency
        self.cycles_per_access = cycles_per_access
        self.row_bits = row_bytes.bit_length() - 1
        self.row_hit_discount = row_hit_discount
        self._channel_free = 0
        self._open_row: int | None = None
        self.stats = DramStats()

    def access(self, address: int, cycle: int) -> int:
        """Issue a request; returns its completion cycle."""
        self.stats.requests += 1
        start = max(cycle, self._channel_free)
        self.stats.queue_cycles += start - cycle
        row = address >> self.row_bits
        latency = self.latency
        if row == self._open_row:
            latency -= self.row_hit_discount
            self.stats.row_hits += 1
        self._open_row = row
        self._channel_free = start + self.cycles_per_access
        return start + latency
