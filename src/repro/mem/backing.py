"""Sparse byte-addressable backing memory.

Shared by the functional simulator (directly) and the timing memory
hierarchy (as the storage behind the caches).  Pages are allocated lazily so
programs can use a large, mostly-empty address space (stack at 8 MiB, data at
1 MiB) without cost.
"""

from __future__ import annotations

from ..errors import MemoryFault

PAGE_BITS = 12
PAGE_SIZE = 1 << PAGE_BITS
PAGE_MASK = PAGE_SIZE - 1


class SparseMemory:
    """Little-endian sparse memory with lazy 4 KiB pages."""

    def __init__(self) -> None:
        self._pages: dict[int, bytearray] = {}

    def _page(self, address: int) -> bytearray:
        page = self._pages.get(address >> PAGE_BITS)
        if page is None:
            page = bytearray(PAGE_SIZE)
            self._pages[address >> PAGE_BITS] = page
        return page

    # ------------------------------------------------------------- block ops
    def load_image(self, base: int, image: bytes) -> None:
        """Copy an initial image (e.g. the program's data segment) in."""
        offset = 0
        total = len(image)
        while offset < total:
            address = base + offset
            start = address & PAGE_MASK
            chunk = min(PAGE_SIZE - start, total - offset)
            self._page(address)[start:start + chunk] = image[offset:offset + chunk]
            offset += chunk

    def read_bytes(self, address: int, size: int) -> bytes:
        if address < 0:
            raise MemoryFault(address, "negative address")
        start = address & PAGE_MASK
        if start + size <= PAGE_SIZE:  # fast path: within one page
            page = self._pages.get(address >> PAGE_BITS)
            if page is None:
                return bytes(size)
            return bytes(page[start:start + size])
        out = bytearray(size)
        for i in range(size):
            a = address + i
            page = self._pages.get(a >> PAGE_BITS)
            out[i] = page[a & PAGE_MASK] if page is not None else 0
        return bytes(out)

    def write_bytes(self, address: int, data: bytes) -> None:
        if address < 0:
            raise MemoryFault(address, "negative address")
        size = len(data)
        start = address & PAGE_MASK
        if start + size <= PAGE_SIZE:  # fast path: within one page
            self._page(address)[start:start + size] = data
            return
        for i, byte in enumerate(data):
            a = address + i
            self._page(a)[a & PAGE_MASK] = byte

    # -------------------------------------------------------------- word ops
    def read_int(self, address: int, size: int, signed: bool = False) -> int:
        return int.from_bytes(
            self.read_bytes(address, size), "little", signed=signed
        )

    def write_int(self, address: int, value: int, size: int) -> None:
        mask = (1 << (size * 8)) - 1
        self.write_bytes(address, (value & mask).to_bytes(size, "little"))

    # ------------------------------------------------------------- utilities
    def copy(self) -> "SparseMemory":
        """Deep copy (used to snapshot state for differential tests)."""
        clone = SparseMemory()
        clone._pages = {k: bytearray(v) for k, v in self._pages.items()}
        return clone

    def touched_pages(self) -> list[int]:
        """Page numbers that have been allocated, in order."""
        return sorted(self._pages)

    def equal_contents(self, other: "SparseMemory") -> bool:
        """Content equality that ignores untouched-but-allocated zero pages."""
        zero = bytes(PAGE_SIZE)
        pages = set(self._pages) | set(other._pages)
        for number in pages:
            mine = bytes(self._pages.get(number, zero))
            theirs = bytes(other._pages.get(number, zero))
            if mine != theirs:
                return False
        return True
