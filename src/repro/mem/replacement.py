"""Cache replacement policies.

Policies manage per-set recency metadata; the cache asks them which way to
victimize on a fill.  All policies are deterministic (the "random" policy is
a seeded xorshift) so simulations reproduce exactly.
"""

from __future__ import annotations

import abc


class ReplacementPolicy(abc.ABC):
    """Per-set replacement state for ``num_sets`` sets of ``num_ways`` ways."""

    def __init__(self, num_sets: int, num_ways: int):
        self.num_sets = num_sets
        self.num_ways = num_ways

    @abc.abstractmethod
    def on_access(self, set_index: int, way: int) -> None:
        """A hit touched this way."""

    @abc.abstractmethod
    def victim(self, set_index: int, valid: list[bool]) -> int:
        """Choose a way to evict (prefer invalid ways)."""

    def on_fill(self, set_index: int, way: int) -> None:
        """A fill installed into this way (default: treat as access)."""
        self.on_access(set_index, way)


class LruPolicy(ReplacementPolicy):
    """True LRU via per-set recency stamps."""

    def __init__(self, num_sets: int, num_ways: int):
        super().__init__(num_sets, num_ways)
        self._stamps = [[0] * num_ways for _ in range(num_sets)]
        self._clock = 0

    def on_access(self, set_index: int, way: int) -> None:
        self._clock += 1
        self._stamps[set_index][way] = self._clock

    def victim(self, set_index: int, valid: list[bool]) -> int:
        for way, v in enumerate(valid):
            if not v:
                return way
        stamps = self._stamps[set_index]
        return stamps.index(min(stamps))


class TreePlruPolicy(ReplacementPolicy):
    """Tree pseudo-LRU (binary decision tree per set); ways must be 2^k."""

    def __init__(self, num_sets: int, num_ways: int):
        super().__init__(num_sets, num_ways)
        if num_ways & (num_ways - 1):
            raise ValueError("tree PLRU requires power-of-two associativity")
        self._bits = [[False] * max(1, num_ways - 1) for _ in range(num_sets)]

    def on_access(self, set_index: int, way: int) -> None:
        bits = self._bits[set_index]
        node = 0
        low, high = 0, self.num_ways
        while high - low > 1:
            mid = (low + high) // 2
            went_right = way >= mid
            bits[node] = not went_right  # point away from the accessed half
            node = 2 * node + (2 if went_right else 1)
            if went_right:
                low = mid
            else:
                high = mid

    def victim(self, set_index: int, valid: list[bool]) -> int:
        for way, v in enumerate(valid):
            if not v:
                return way
        bits = self._bits[set_index]
        node = 0
        low, high = 0, self.num_ways
        while high - low > 1:
            mid = (low + high) // 2
            go_right = bits[node]
            node = 2 * node + (2 if go_right else 1)
            if go_right:
                low = mid
            else:
                high = mid
        return low


class SeededRandomPolicy(ReplacementPolicy):
    """Deterministic pseudo-random replacement (xorshift64)."""

    def __init__(self, num_sets: int, num_ways: int, seed: int = 0x9E3779B9):
        super().__init__(num_sets, num_ways)
        self._state = seed or 1

    def _next(self) -> int:
        x = self._state
        x ^= (x << 13) & 0xFFFFFFFFFFFFFFFF
        x ^= x >> 7
        x ^= (x << 17) & 0xFFFFFFFFFFFFFFFF
        self._state = x
        return x

    def on_access(self, set_index: int, way: int) -> None:
        pass

    def victim(self, set_index: int, valid: list[bool]) -> int:
        for way, v in enumerate(valid):
            if not v:
                return way
        return self._next() % self.num_ways


POLICIES = {
    "lru": LruPolicy,
    "tree_plru": TreePlruPolicy,
    "random": SeededRandomPolicy,
}


def make_replacement(name: str, num_sets: int, num_ways: int) -> ReplacementPolicy:
    if name not in POLICIES:
        raise ValueError(f"unknown replacement policy {name!r}")
    return POLICIES[name](num_sets, num_ways)
