"""Hardware prefetchers (optional, used by the memory-system ablation).

Prefetchers observe demand loads and suggest lines to pull into the L2.
They are timing-free (fills are modeled as arriving instantly), which makes
them slightly optimistic; the experiments that compare security policies run
with prefetching off by default so the policy effect is isolated.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass


class Prefetcher(abc.ABC):
    """Interface: observe a demand access, propose prefetch addresses."""

    name = "none"

    @abc.abstractmethod
    def observe(self, pc: int, address: int) -> list[int]:
        """Return addresses to prefetch after this demand access."""


class NullPrefetcher(Prefetcher):
    name = "none"

    def observe(self, pc: int, address: int) -> list[int]:
        return []


class NextLinePrefetcher(Prefetcher):
    """Prefetch the sequentially next N lines."""

    name = "next_line"

    def __init__(self, line_bytes: int = 64, degree: int = 1):
        self.line_bytes = line_bytes
        self.degree = degree

    def observe(self, pc: int, address: int) -> list[int]:
        base = (address // self.line_bytes) * self.line_bytes
        return [base + self.line_bytes * (i + 1) for i in range(self.degree)]


@dataclass
class _StrideEntry:
    last_address: int
    stride: int = 0
    confidence: int = 0


class StridePrefetcher(Prefetcher):
    """PC-indexed stride prefetcher with 2-bit confidence."""

    name = "stride"

    def __init__(self, table_entries: int = 256, degree: int = 2, threshold: int = 2):
        self._mask = table_entries - 1
        self._table: dict[int, _StrideEntry] = {}
        self.degree = degree
        self.threshold = threshold

    def observe(self, pc: int, address: int) -> list[int]:
        key = (pc >> 2) & self._mask
        entry = self._table.get(key)
        if entry is None:
            self._table[key] = _StrideEntry(address)
            return []
        stride = address - entry.last_address
        if stride != 0 and stride == entry.stride:
            entry.confidence = min(entry.confidence + 1, 3)
        else:
            entry.confidence = max(entry.confidence - 1, 0)
            entry.stride = stride
        entry.last_address = address
        if entry.confidence >= self.threshold and entry.stride:
            return [address + entry.stride * (i + 1) for i in range(self.degree)]
        return []


PREFETCHERS = {
    "none": NullPrefetcher,
    "next_line": NextLinePrefetcher,
    "stride": StridePrefetcher,
}


def make_prefetcher(name: str, **kwargs) -> Prefetcher:
    if name not in PREFETCHERS:
        raise ValueError(f"unknown prefetcher {name!r}")
    return PREFETCHERS[name](**kwargs)
