"""Memory subsystem: backing store, caches, MSHRs, DRAM, prefetchers."""

from .backing import PAGE_SIZE, SparseMemory
from .cache import Cache, CacheGeometry, CacheStats
from .dram import DramModel
from .hierarchy import MemHierarchyConfig, MemoryHierarchy
from .mshr import MshrFile
from .prefetch import (
    NextLinePrefetcher,
    NullPrefetcher,
    Prefetcher,
    StridePrefetcher,
    make_prefetcher,
)
from .replacement import (
    LruPolicy,
    ReplacementPolicy,
    SeededRandomPolicy,
    TreePlruPolicy,
    make_replacement,
)

__all__ = [
    "Cache",
    "CacheGeometry",
    "CacheStats",
    "DramModel",
    "LruPolicy",
    "MemHierarchyConfig",
    "MemoryHierarchy",
    "MshrFile",
    "NextLinePrefetcher",
    "NullPrefetcher",
    "PAGE_SIZE",
    "Prefetcher",
    "ReplacementPolicy",
    "SeededRandomPolicy",
    "SparseMemory",
    "StridePrefetcher",
    "TreePlruPolicy",
    "make_prefetcher",
    "make_replacement",
]
