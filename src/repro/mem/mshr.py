"""Miss-status holding registers: outstanding-miss tracking and merging.

Bounds the memory-level parallelism of the L1 data cache.  A second access
to a line that is already in flight *merges* (it completes when the first
fill arrives); when every register is busy a new miss must wait for the
earliest completion, which is how MSHR pressure turns into stall cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class MshrStats:
    allocations: int = 0
    merges: int = 0
    full_stall_cycles: int = 0


class MshrFile:
    """Outstanding misses keyed by line number."""

    def __init__(self, entries: int = 16):
        self.entries = entries
        self._pending: dict[int, int] = {}  # line -> fill-complete cycle
        self.stats = MshrStats()

    def _prune(self, cycle: int) -> None:
        if len(self._pending) > 2 * self.entries:
            self._pending = {
                line: ready for line, ready in self._pending.items() if ready > cycle
            }

    def outstanding(self, cycle: int) -> int:
        return sum(1 for ready in self._pending.values() if ready > cycle)

    def lookup(self, line: int, cycle: int) -> int | None:
        """If the line is already in flight, its completion cycle."""
        ready = self._pending.get(line)
        if ready is not None and ready > cycle:
            return ready
        return None

    def allocate(self, line: int, cycle: int, fill_latency: int) -> int:
        """Start a miss; returns its completion cycle.

        Merges with an in-flight miss to the same line.  When all registers
        are busy the miss starts only when the earliest one retires.
        """
        self._prune(cycle)
        merged = self.lookup(line, cycle)
        if merged is not None:
            self.stats.merges += 1
            return merged
        start = cycle
        busy = sorted(r for r in self._pending.values() if r > cycle)
        if len(busy) >= self.entries:
            # Wait for enough registers to free up.
            start = busy[len(busy) - self.entries]
            self.stats.full_stall_cycles += start - cycle
        ready = start + fill_latency
        self._pending[line] = ready
        self.stats.allocations += 1
        return ready
