"""Architectural semantics of the mini-RISC ISA.

One shared implementation used by the functional golden model *and* the
out-of-order core's execution units — a single source of truth means the
differential tests compare timing models, never two ALU implementations.

All register values are handled as unsigned 64-bit Python ints
(``0 .. 2**64-1``); helpers convert to signed where an opcode requires it.
Division semantics follow RISC-V: divide-by-zero yields all-ones / the
dividend, and ``INT_MIN / -1`` wraps.
"""

from __future__ import annotations

from ..errors import SimulationError
from ..isa import Opcode, to_signed, to_unsigned

_SHIFT_MASK = 63
_INT_MIN = -(1 << 63)


def alu_result(opcode: Opcode, a: int, b: int, imm: int, pc: int) -> int:
    """Compute the register result of a non-memory, non-branch opcode.

    ``a``/``b`` are the rs1/rs2 values (unsigned domain); ``imm`` the
    immediate; ``pc`` the instruction's own address (needed for link
    registers).
    """
    if opcode is Opcode.ADD:
        return to_unsigned(a + b)
    if opcode is Opcode.SUB:
        return to_unsigned(a - b)
    if opcode is Opcode.AND:
        return a & b
    if opcode is Opcode.OR:
        return a | b
    if opcode is Opcode.XOR:
        return a ^ b
    if opcode is Opcode.SLL:
        return to_unsigned(a << (b & _SHIFT_MASK))
    if opcode is Opcode.SRL:
        return a >> (b & _SHIFT_MASK)
    if opcode is Opcode.SRA:
        return to_unsigned(to_signed(a) >> (b & _SHIFT_MASK))
    if opcode is Opcode.SLT:
        return 1 if to_signed(a) < to_signed(b) else 0
    if opcode is Opcode.SLTU:
        return 1 if a < b else 0
    if opcode is Opcode.MUL:
        return to_unsigned(a * b)
    if opcode is Opcode.MULH:
        return to_unsigned((to_signed(a) * to_signed(b)) >> 64)
    if opcode is Opcode.DIV:
        sa, sb = to_signed(a), to_signed(b)
        if sb == 0:
            return to_unsigned(-1)
        if sa == _INT_MIN and sb == -1:
            return to_unsigned(_INT_MIN)
        return to_unsigned(int(sa / sb))  # C-style truncation toward zero
    if opcode is Opcode.REM:
        sa, sb = to_signed(a), to_signed(b)
        if sb == 0:
            return to_unsigned(sa)
        if sa == _INT_MIN and sb == -1:
            return 0
        return to_unsigned(sa - int(sa / sb) * sb)

    if opcode is Opcode.ADDI:
        return to_unsigned(a + imm)
    if opcode is Opcode.ANDI:
        return a & to_unsigned(imm)
    if opcode is Opcode.ORI:
        return a | to_unsigned(imm)
    if opcode is Opcode.XORI:
        return a ^ to_unsigned(imm)
    if opcode is Opcode.SLLI:
        return to_unsigned(a << (imm & _SHIFT_MASK))
    if opcode is Opcode.SRLI:
        return a >> (imm & _SHIFT_MASK)
    if opcode is Opcode.SRAI:
        return to_unsigned(to_signed(a) >> (imm & _SHIFT_MASK))
    if opcode is Opcode.SLTI:
        return 1 if to_signed(a) < imm else 0
    if opcode is Opcode.LI:
        return to_unsigned(imm)
    if opcode is Opcode.NOP:
        return 0
    if opcode in (Opcode.JAL, Opcode.JALR):
        return to_unsigned(pc + 4)
    raise SimulationError(f"alu_result called with {opcode.mnemonic}")


def branch_taken(opcode: Opcode, a: int, b: int) -> bool:
    """Evaluate a conditional branch's predicate."""
    if opcode is Opcode.BEQ:
        return a == b
    if opcode is Opcode.BNE:
        return a != b
    if opcode is Opcode.BLT:
        return to_signed(a) < to_signed(b)
    if opcode is Opcode.BGE:
        return to_signed(a) >= to_signed(b)
    if opcode is Opcode.BLTU:
        return a < b
    if opcode is Opcode.BGEU:
        return a >= b
    raise SimulationError(f"branch_taken called with {opcode.mnemonic}")


def effective_address(base: int, imm: int) -> int:
    """Compute a load/store effective address (wraps at 64 bits)."""
    return to_unsigned(base + imm)


def load_is_signed(opcode: Opcode) -> bool:
    """Sign-extension behaviour of a load opcode."""
    return opcode in (Opcode.LB, Opcode.LH, Opcode.LW, Opcode.LD)
