"""Architectural semantics of the mini-RISC ISA.

One shared implementation used by the functional golden model *and* the
out-of-order core's execution units — a single source of truth means the
differential tests compare timing models, never two ALU implementations.

All register values are handled as unsigned 64-bit Python ints
(``0 .. 2**64-1``); helpers convert to signed where an opcode requires it.
Division semantics follow RISC-V: divide-by-zero yields all-ones / the
dividend, and ``INT_MIN / -1`` wraps.
"""

from __future__ import annotations

from ..errors import SimulationError
from ..isa import Opcode, to_signed, to_unsigned

_SHIFT_MASK = 63
_INT_MIN = -(1 << 63)


def _div(a: int, b: int, imm: int, pc: int) -> int:
    sa, sb = to_signed(a), to_signed(b)
    if sb == 0:
        return to_unsigned(-1)
    if sa == _INT_MIN and sb == -1:
        return to_unsigned(_INT_MIN)
    return to_unsigned(int(sa / sb))  # C-style truncation toward zero


def _rem(a: int, b: int, imm: int, pc: int) -> int:
    sa, sb = to_signed(a), to_signed(b)
    if sb == 0:
        return to_unsigned(sa)
    if sa == _INT_MIN and sb == -1:
        return 0
    return to_unsigned(sa - int(sa / sb) * sb)


# Dispatch table instead of a ~25-arm if-chain: alu_result runs once per
# executed ALU instruction, and the average chain depth was costing more
# than the operation itself.  Semantics are unchanged.
_ALU_OPS: dict[Opcode, object] = {
    Opcode.ADD: lambda a, b, imm, pc: to_unsigned(a + b),
    Opcode.SUB: lambda a, b, imm, pc: to_unsigned(a - b),
    Opcode.AND: lambda a, b, imm, pc: a & b,
    Opcode.OR: lambda a, b, imm, pc: a | b,
    Opcode.XOR: lambda a, b, imm, pc: a ^ b,
    Opcode.SLL: lambda a, b, imm, pc: to_unsigned(a << (b & _SHIFT_MASK)),
    Opcode.SRL: lambda a, b, imm, pc: a >> (b & _SHIFT_MASK),
    Opcode.SRA: lambda a, b, imm, pc: to_unsigned(to_signed(a) >> (b & _SHIFT_MASK)),
    Opcode.SLT: lambda a, b, imm, pc: 1 if to_signed(a) < to_signed(b) else 0,
    Opcode.SLTU: lambda a, b, imm, pc: 1 if a < b else 0,
    Opcode.MUL: lambda a, b, imm, pc: to_unsigned(a * b),
    Opcode.MULH: lambda a, b, imm, pc: to_unsigned((to_signed(a) * to_signed(b)) >> 64),
    Opcode.DIV: _div,
    Opcode.REM: _rem,
    Opcode.ADDI: lambda a, b, imm, pc: to_unsigned(a + imm),
    Opcode.ANDI: lambda a, b, imm, pc: a & to_unsigned(imm),
    Opcode.ORI: lambda a, b, imm, pc: a | to_unsigned(imm),
    Opcode.XORI: lambda a, b, imm, pc: a ^ to_unsigned(imm),
    Opcode.SLLI: lambda a, b, imm, pc: to_unsigned(a << (imm & _SHIFT_MASK)),
    Opcode.SRLI: lambda a, b, imm, pc: a >> (imm & _SHIFT_MASK),
    Opcode.SRAI: lambda a, b, imm, pc: to_unsigned(to_signed(a) >> (imm & _SHIFT_MASK)),
    Opcode.SLTI: lambda a, b, imm, pc: 1 if to_signed(a) < imm else 0,
    Opcode.LI: lambda a, b, imm, pc: to_unsigned(imm),
    Opcode.NOP: lambda a, b, imm, pc: 0,
    Opcode.JAL: lambda a, b, imm, pc: to_unsigned(pc + 4),
    Opcode.JALR: lambda a, b, imm, pc: to_unsigned(pc + 4),
}


def alu_result(opcode: Opcode, a: int, b: int, imm: int, pc: int) -> int:
    """Compute the register result of a non-memory, non-branch opcode.

    ``a``/``b`` are the rs1/rs2 values (unsigned domain); ``imm`` the
    immediate; ``pc`` the instruction's own address (needed for link
    registers).
    """
    op = _ALU_OPS.get(opcode)
    if op is None:
        raise SimulationError(f"alu_result called with {opcode.mnemonic}")
    return op(a, b, imm, pc)


_BRANCH_OPS: dict[Opcode, object] = {
    Opcode.BEQ: lambda a, b: a == b,
    Opcode.BNE: lambda a, b: a != b,
    Opcode.BLT: lambda a, b: to_signed(a) < to_signed(b),
    Opcode.BGE: lambda a, b: to_signed(a) >= to_signed(b),
    Opcode.BLTU: lambda a, b: a < b,
    Opcode.BGEU: lambda a, b: a >= b,
}


def branch_taken(opcode: Opcode, a: int, b: int) -> bool:
    """Evaluate a conditional branch's predicate."""
    op = _BRANCH_OPS.get(opcode)
    if op is None:
        raise SimulationError(f"branch_taken called with {opcode.mnemonic}")
    return op(a, b)


def effective_address(base: int, imm: int) -> int:
    """Compute a load/store effective address (wraps at 64 bits)."""
    return to_unsigned(base + imm)


def load_is_signed(opcode: Opcode) -> bool:
    """Sign-extension behaviour of a load opcode."""
    return opcode in (Opcode.LB, Opcode.LH, Opcode.LW, Opcode.LD)
