"""Architectural machine state: registers + memory + PC."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..asm.program import STACK_TOP, Program
from ..isa import NUM_REGS, ZERO_REG, register_name, to_unsigned
from ..mem.backing import SparseMemory


@dataclass
class ArchState:
    """The architectural state the two simulators must agree on."""

    regs: list[int] = field(default_factory=lambda: [0] * NUM_REGS)
    memory: SparseMemory = field(default_factory=SparseMemory)
    pc: int = 0
    halted: bool = False

    @classmethod
    def boot(cls, program: Program) -> "ArchState":
        """Initial state for a program: data image loaded, sp set, PC at entry."""
        state = cls()
        state.memory.load_image(program.data_base, program.data)
        state.pc = program.entry
        state.write_reg(2, STACK_TOP)  # sp
        return state

    def read_reg(self, index: int) -> int:
        if index == ZERO_REG:
            return 0
        return self.regs[index]

    def write_reg(self, index: int, value: int) -> None:
        if index != ZERO_REG:
            self.regs[index] = to_unsigned(value)

    def snapshot_regs(self) -> tuple[int, ...]:
        return tuple(self.regs)

    def dump_regs(self) -> str:
        """Readable register dump for debugging failed differential tests."""
        parts = []
        for i in range(NUM_REGS):
            if self.regs[i]:
                parts.append(f"{register_name(i)}={self.regs[i]:#x}")
        return " ".join(parts) or "(all zero)"
