"""Architectural golden model and shared ISA semantics."""

from .semantics import alu_result, branch_taken, effective_address, load_is_signed
from .simulator import (
    DEFAULT_MAX_INSTRUCTIONS,
    FunctionalResult,
    FunctionalSimulator,
    TraceEntry,
    run_program,
)
from .state import ArchState

__all__ = [
    "ArchState",
    "DEFAULT_MAX_INSTRUCTIONS",
    "FunctionalResult",
    "FunctionalSimulator",
    "TraceEntry",
    "alu_result",
    "branch_taken",
    "effective_address",
    "load_is_signed",
    "run_program",
]
