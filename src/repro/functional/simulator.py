"""Functional (architectural) simulator — the golden model.

Executes one instruction per step with no timing.  Used for:

* validating workloads while developing them,
* differential testing of the out-of-order core (identical architectural
  results required under every security policy),
* fast production of committed-path instruction traces for compiler
  statistics (e.g. Fig. 1's dynamic dependency measurements).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..asm.program import Program
from ..errors import SimulationError, SimulationTimeout
from ..isa import Instruction, Opcode
from . import semantics
from .state import ArchState

DEFAULT_MAX_INSTRUCTIONS = 5_000_000


@dataclass
class TraceEntry:
    """One retired instruction, as recorded by the tracing mode."""

    pc: int
    opcode: Opcode
    rd_value: int | None = None
    mem_address: int | None = None
    taken: bool | None = None


@dataclass
class FunctionalResult:
    """Outcome of a functional run."""

    state: ArchState
    instructions: int
    trace: list[TraceEntry] = field(default_factory=list)

    @property
    def regs(self) -> tuple[int, ...]:
        return self.state.snapshot_regs()


class FunctionalSimulator:
    """In-order, 1-instruction-per-step architectural simulator."""

    def __init__(self, program: Program, trace: bool = False):
        self.program = program
        self.state = ArchState.boot(program)
        self.trace_enabled = trace
        self.trace: list[TraceEntry] = []
        self.instruction_count = 0

    # ----------------------------------------------------------------- stepping
    def step(self) -> TraceEntry | None:
        """Execute one instruction; returns its trace entry (always built).

        Returns None when already halted.
        """
        state = self.state
        if state.halted:
            return None
        inst = self.program.inst_at(state.pc)
        entry = self._execute(inst)
        self.instruction_count += 1
        if self.trace_enabled:
            self.trace.append(entry)
        return entry

    def _execute(self, inst: Instruction) -> TraceEntry:
        state = self.state
        op = inst.opcode
        entry = TraceEntry(pc=inst.pc, opcode=op)

        if op is Opcode.HALT:
            state.halted = True
            return entry
        if op is Opcode.FENCE or op is Opcode.NOP:
            state.pc = inst.fallthrough
            return entry
        if op is Opcode.RDCYCLE:
            # Architecturally a monotonic counter; the functional model
            # exposes retired-instruction count.
            state.write_reg(inst.rd, self.instruction_count)
            entry.rd_value = state.read_reg(inst.rd)
            state.pc = inst.fallthrough
            return entry

        a = state.read_reg(inst.rs1)
        b = state.read_reg(inst.rs2)

        if op is Opcode.CFLUSH:
            # Cache-line flush: architecturally a no-op.
            entry.mem_address = semantics.effective_address(a, inst.imm)
            state.pc = inst.fallthrough
            return entry

        if op.is_load:
            address = semantics.effective_address(a, inst.imm)
            size = op.access_size
            value = state.memory.read_int(
                address, size, signed=semantics.load_is_signed(op)
            )
            state.write_reg(inst.rd, value)
            entry.mem_address = address
            entry.rd_value = state.read_reg(inst.rd)
            state.pc = inst.fallthrough
            return entry

        if op.is_store:
            address = semantics.effective_address(a, inst.imm)
            state.memory.write_int(address, b, op.access_size)
            entry.mem_address = address
            state.pc = inst.fallthrough
            return entry

        if op.is_branch:
            taken = semantics.branch_taken(op, a, b)
            entry.taken = taken
            state.pc = inst.branch_target if taken else inst.fallthrough
            return entry

        if op is Opcode.JAL:
            state.write_reg(inst.rd, inst.pc + 4)
            entry.rd_value = state.read_reg(inst.rd)
            entry.taken = True
            state.pc = inst.imm
            return entry

        if op is Opcode.JALR:
            target = semantics.effective_address(a, inst.imm)
            state.write_reg(inst.rd, inst.pc + 4)
            entry.rd_value = state.read_reg(inst.rd)
            entry.taken = True
            state.pc = target
            return entry

        # Plain ALU op
        value = semantics.alu_result(op, a, b, inst.imm, inst.pc)
        state.write_reg(inst.rd, value)
        entry.rd_value = state.read_reg(inst.rd)
        state.pc = inst.fallthrough
        return entry

    # ---------------------------------------------------------------- running
    def run(self, max_instructions: int = DEFAULT_MAX_INSTRUCTIONS) -> FunctionalResult:
        """Run until HALT or the instruction budget is exhausted."""
        while not self.state.halted:
            if self.instruction_count >= max_instructions:
                raise SimulationTimeout(
                    f"functional run exceeded {max_instructions} instructions "
                    f"(pc={self.state.pc:#x})"
                )
            self.step()
        return FunctionalResult(
            state=self.state,
            instructions=self.instruction_count,
            trace=self.trace,
        )


def run_program(
    program: Program,
    max_instructions: int = DEFAULT_MAX_INSTRUCTIONS,
    trace: bool = False,
) -> FunctionalResult:
    """One-shot functional execution of a program."""
    return FunctionalSimulator(program, trace=trace).run(max_instructions)
