"""Tournament predictor: bimodal vs gshare with a chooser table."""

from __future__ import annotations

from dataclasses import dataclass

from .bimodal import BimodalPredictor
from .gshare import GsharePredictor
from .predictor import DirectionPredictor, SaturatingCounter


@dataclass(frozen=True, slots=True)
class _TournamentContext:
    bimodal_pred: bool
    gshare_pred: bool
    gshare_ctx: object


class TournamentPredictor(DirectionPredictor):
    """Alpha-21264-style hybrid.

    The chooser counter trains toward whichever component was correct when
    they disagreed at fetch time (captured in the prediction context).
    """

    name = "tournament"

    def __init__(self, entries: int = 4096, history_bits: int = 12):
        self._bimodal = BimodalPredictor(entries)
        self._gshare = GsharePredictor(entries, history_bits)
        self._chooser = SaturatingCounter(entries)  # >=2 -> use gshare

    def predict(self, pc: int) -> tuple[bool, object]:
        bimodal_pred, _ = self._bimodal.predict(pc)
        gshare_pred, gshare_ctx = self._gshare.predict(pc)
        chosen = gshare_pred if self._chooser.predict(pc >> 2) else bimodal_pred
        return chosen, _TournamentContext(bimodal_pred, gshare_pred, gshare_ctx)

    def on_speculative_branch(self, pc: int, predicted_taken: bool) -> None:
        self._gshare.on_speculative_branch(pc, predicted_taken)

    def update(self, pc: int, taken: bool, context: object = None) -> None:
        if isinstance(context, _TournamentContext):
            if context.bimodal_pred != context.gshare_pred:
                self._chooser.update(pc >> 2, context.gshare_pred == taken)
            self._gshare.update(pc, taken, context.gshare_ctx)
        else:
            self._gshare.update(pc, taken)
        self._bimodal.update(pc, taken)

    def history_checkpoint(self) -> int:
        return self._gshare.history_checkpoint()

    def history_restore(self, checkpoint: int) -> None:
        self._gshare.history_restore(checkpoint)
