"""Tournament predictor: bimodal vs gshare with a chooser table."""

from __future__ import annotations

from .bimodal import BimodalPredictor
from .gshare import GsharePredictor
from .predictor import _TAKEN_THRESHOLD, DirectionPredictor, SaturatingCounter


class TournamentPredictor(DirectionPredictor):
    """Alpha-21264-style hybrid.

    The chooser counter trains toward whichever component was correct when
    they disagreed at fetch time (captured in the prediction context, a
    ``(bimodal_pred, gshare_pred, gshare_index)`` tuple).

    ``predict`` is among the hottest calls in the simulator's front end
    (once per fetched conditional branch), so the component tables are
    flattened into local aliases here instead of chaining through three
    sub-predictor calls.  The component objects still own their tables —
    ``SaturatingCounter`` mutates its list in place and never rebinds it,
    so the aliases stay coherent with component-level training.
    """

    name = "tournament"

    def __init__(self, entries: int = 4096, history_bits: int = 12):
        self._bimodal = BimodalPredictor(entries)
        self._gshare = GsharePredictor(entries, history_bits)
        self._chooser = SaturatingCounter(entries)  # >=2 -> use gshare
        # Flattened table aliases for the fetch-path fast reads.
        self._bim_table = self._bimodal._counters._table
        self._bim_mask = self._bimodal._counters._mask
        self._gsh_table = self._gshare._counters._table
        self._gsh_mask = self._gshare._counters._mask
        self._cho_table = self._chooser._table
        self._cho_mask = self._chooser._mask

    def predict(self, pc: int) -> tuple[bool, object]:
        i = pc >> 2
        gshare_index = i ^ self._gshare._history
        bimodal_pred = self._bim_table[i & self._bim_mask] >= _TAKEN_THRESHOLD
        gshare_pred = (
            self._gsh_table[gshare_index & self._gsh_mask] >= _TAKEN_THRESHOLD
        )
        chosen = (
            gshare_pred
            if self._cho_table[i & self._cho_mask] >= _TAKEN_THRESHOLD
            else bimodal_pred
        )
        return chosen, (bimodal_pred, gshare_pred, gshare_index)

    def on_speculative_branch(self, pc: int, predicted_taken: bool) -> None:
        g = self._gshare
        g._history = (
            (g._history << 1) | (1 if predicted_taken else 0)
        ) & g._history_mask

    def update(self, pc: int, taken: bool, context: object = None) -> None:
        if type(context) is tuple:
            bimodal_pred, gshare_pred, gshare_ctx = context
            if bimodal_pred != gshare_pred:
                self._chooser.update(pc >> 2, gshare_pred == taken)
            self._gshare.update(pc, taken, gshare_ctx)
        else:
            self._gshare.update(pc, taken)
        self._bimodal.update(pc, taken)

    def history_checkpoint(self) -> int:
        return self._gshare._history

    def history_restore(self, checkpoint: int) -> None:
        self._gshare._history = checkpoint
