"""Gshare direction predictor (global history XOR PC)."""

from __future__ import annotations

from .predictor import DirectionPredictor, SaturatingCounter


class GsharePredictor(DirectionPredictor):
    """Gshare with a speculative global-history register.

    The history register advances at *fetch* with the predicted direction
    (``on_speculative_branch``) and is repaired from a checkpoint on squash.
    The prediction context carries the fetch-time table index so training at
    resolve time hits the row that produced the prediction.
    """

    name = "gshare"

    def __init__(self, entries: int = 4096, history_bits: int = 12):
        self._counters = SaturatingCounter(entries)
        self._history_bits = history_bits
        self._history_mask = (1 << history_bits) - 1
        self._history = 0

    def _index(self, pc: int) -> int:
        return (pc >> 2) ^ self._history

    def predict(self, pc: int) -> tuple[bool, object]:
        index = self._index(pc)
        return self._counters.predict(index), index

    def on_speculative_branch(self, pc: int, predicted_taken: bool) -> None:
        self._history = ((self._history << 1) | int(predicted_taken)) & self._history_mask

    def update(self, pc: int, taken: bool, context: object = None) -> None:
        index = context if context is not None else self._index(pc)
        self._counters.update(index, taken)

    def history_checkpoint(self) -> int:
        return self._history

    def history_restore(self, checkpoint: int) -> None:
        self._history = checkpoint
