"""Branch prediction: direction predictors, BTB, return-address stack."""

from .bimodal import BimodalPredictor
from .gshare import GsharePredictor
from .predictor import (
    AlwaysNotTaken,
    AlwaysTaken,
    BranchTargetBuffer,
    DirectionPredictor,
    ReturnAddressStack,
    SaturatingCounter,
)
from .tage import TagePredictor
from .tournament import TournamentPredictor

PREDICTORS = {
    "bimodal": BimodalPredictor,
    "gshare": GsharePredictor,
    "tournament": TournamentPredictor,
    "tage": TagePredictor,
    "always_taken": AlwaysTaken,
    "always_not_taken": AlwaysNotTaken,
}


def make_predictor(name: str, **kwargs) -> DirectionPredictor:
    """Instantiate a direction predictor by registry name."""
    if name not in PREDICTORS:
        raise ValueError(f"unknown predictor {name!r}; know {sorted(PREDICTORS)}")
    return PREDICTORS[name](**kwargs)


__all__ = [
    "AlwaysNotTaken",
    "AlwaysTaken",
    "BimodalPredictor",
    "BranchTargetBuffer",
    "DirectionPredictor",
    "GsharePredictor",
    "PREDICTORS",
    "ReturnAddressStack",
    "SaturatingCounter",
    "TagePredictor",
    "TournamentPredictor",
    "make_predictor",
]
