"""Bimodal (PC-indexed 2-bit counter) direction predictor."""

from __future__ import annotations

from .predictor import DirectionPredictor, SaturatingCounter


class BimodalPredictor(DirectionPredictor):
    """Classic per-PC 2-bit saturating-counter predictor.

    History-free, so its training context is empty.
    """

    name = "bimodal"

    def __init__(self, entries: int = 4096):
        self._counters = SaturatingCounter(entries)

    def predict(self, pc: int) -> tuple[bool, object]:
        return self._counters.predict(pc >> 2), None

    def update(self, pc: int, taken: bool, context: object = None) -> None:
        self._counters.update(pc >> 2, taken)
