"""TAGE-lite: tagged geometric-history predictor.

A compact TAGE with a bimodal base and four tagged components whose history
lengths grow geometrically.  Captures the essential TAGE behaviours (longest
matching history wins, useful-bit guarded allocation) without the full
complexity of the championship versions — sufficient for the simulated
cores, where the interesting property is *when* branches resolve, not squeezing
the last 0.1 MPKI.
"""

from __future__ import annotations

from dataclasses import dataclass

from .bimodal import BimodalPredictor
from .predictor import DirectionPredictor

_CTR_MAX = 3
_CTR_MIN = -4


@dataclass
class _TageEntry:
    tag: int = 0
    ctr: int = 0       # signed: >=0 predicts taken
    useful: int = 0


class _TaggedTable:
    def __init__(self, entries: int, history_length: int, tag_bits: int = 10):
        self._mask = entries - 1
        self.history_length = history_length
        self._tag_mask = (1 << tag_bits) - 1
        self._entries = [_TageEntry() for _ in range(entries)]

    def _fold(self, history: int) -> int:
        h = history & ((1 << self.history_length) - 1)
        folded = 0
        while h:
            folded ^= h & self._mask
            h >>= self._mask.bit_length()
        return folded

    def index(self, pc: int, history: int) -> int:
        return ((pc >> 2) ^ self._fold(history)) & self._mask

    def tag(self, pc: int, history: int) -> int:
        return ((pc >> 2) ^ (self._fold(history) * 3)) & self._tag_mask

    def lookup(self, pc: int, history: int) -> _TageEntry | None:
        entry = self._entries[self.index(pc, history)]
        if entry.tag == self.tag(pc, history):
            return entry
        return None

    def entry_at(self, pc: int, history: int) -> _TageEntry:
        return self._entries[self.index(pc, history)]


class TagePredictor(DirectionPredictor):
    """TAGE-lite with 4 tagged tables (history lengths 4/8/16/32)."""

    name = "tage"

    def __init__(self, base_entries: int = 4096, table_entries: int = 1024):
        self._base = BimodalPredictor(base_entries)
        self._tables = [
            _TaggedTable(table_entries, length) for length in (4, 8, 16, 32)
        ]
        self._history = 0
        self._history_mask = (1 << 64) - 1

    # ---------------------------------------------------------------- predict
    def _provider(self, pc: int, history: int) -> tuple[int | None, _TageEntry | None]:
        """Longest-history matching component, or (None, None)."""
        for i in reversed(range(len(self._tables))):
            entry = self._tables[i].lookup(pc, history)
            if entry is not None:
                return i, entry
        return None, None

    def predict(self, pc: int) -> tuple[bool, object]:
        history = self._history
        _, entry = self._provider(pc, history)
        if entry is not None:
            return entry.ctr >= 0, history
        base_pred, _ = self._base.predict(pc)
        return base_pred, history

    def on_speculative_branch(self, pc: int, predicted_taken: bool) -> None:
        self._history = ((self._history << 1) | int(predicted_taken)) & self._history_mask

    # ------------------------------------------------------------------ train
    def update(self, pc: int, taken: bool, context: object = None) -> None:
        history = context if isinstance(context, int) else self._history
        provider_idx, entry = self._provider(pc, history)
        if entry is not None:
            predicted = entry.ctr >= 0
            if predicted == taken:
                entry.useful = min(entry.useful + 1, 3)
            entry.ctr = max(_CTR_MIN, min(_CTR_MAX, entry.ctr + (1 if taken else -1)))
            correct = predicted == taken
        else:
            base_pred, _ = self._base.predict(pc)
            correct = base_pred == taken
            self._base.update(pc, taken)

        # On a mispredict, allocate in a longer-history table.
        if not correct:
            start = (provider_idx + 1) if provider_idx is not None else 0
            for i in range(start, len(self._tables)):
                table = self._tables[i]
                victim = table.entry_at(pc, history)
                if victim.useful == 0:
                    victim.tag = table.tag(pc, history)
                    victim.ctr = 0 if taken else -1
                    victim.useful = 0
                    break
                victim.useful -= 1

    def history_checkpoint(self) -> int:
        return self._history

    def history_restore(self, checkpoint: int) -> None:
        self._history = checkpoint
