"""Branch-prediction framework: direction predictors, BTB, RAS.

The out-of-order front end asks three questions every fetch cycle:

1. *direction* of a conditional branch (:class:`DirectionPredictor`),
2. *target* of an indirect jump (:class:`BranchTargetBuffer`),
3. *return address* of a ``ret`` (:class:`ReturnAddressStack`).

Direction predictors keep their tables non-speculative (trained at resolve
time); the global-history predictors additionally keep a *speculative*
history register that the core checkpoints and restores on squash, which is
how real front ends behave.
"""

from __future__ import annotations

import abc

_COUNTER_MAX = 3  # 2-bit saturating counters
_TAKEN_THRESHOLD = 2


class SaturatingCounter:
    """Table of 2-bit saturating counters, the workhorse of all predictors."""

    def __init__(self, entries: int, initial: int = 1):
        if entries & (entries - 1):
            raise ValueError("counter table size must be a power of two")
        self._mask = entries - 1
        self._table = [initial] * entries

    def predict(self, index: int) -> bool:
        return self._table[index & self._mask] >= _TAKEN_THRESHOLD

    def update(self, index: int, taken: bool) -> None:
        i = index & self._mask
        value = self._table[i]
        if taken:
            if value < _COUNTER_MAX:
                self._table[i] = value + 1
        elif value > 0:
            self._table[i] = value - 1

    def counter(self, index: int) -> int:
        return self._table[index & self._mask]


class DirectionPredictor(abc.ABC):
    """Interface every conditional-branch direction predictor implements.

    ``predict`` returns ``(direction, context)``.  The context captures
    whatever fetch-time state (history, table indices) the predictor needs
    to train the *right* entries at resolve time — by then the speculative
    history register has moved on, so training from current state would hit
    the wrong rows (the classic gshare update-skew bug).
    """

    name = "base"

    @abc.abstractmethod
    def predict(self, pc: int) -> tuple[bool, object]:
        """Predicted direction + opaque training context for ``pc``."""

    @abc.abstractmethod
    def update(self, pc: int, taken: bool, context: object = None) -> None:
        """Train with the resolved outcome using the fetch-time context."""

    # Global-history hooks; table-only predictors ignore them. ------------
    def on_speculative_branch(self, pc: int, predicted_taken: bool) -> None:
        """Called at fetch when a branch enters the pipeline."""

    def history_checkpoint(self) -> int:
        """Opaque speculative-history snapshot (restored on squash)."""
        return 0

    def history_restore(self, checkpoint: int) -> None:
        """Restore a snapshot taken by :meth:`history_checkpoint`."""


class BranchTargetBuffer:
    """Direct-mapped BTB with partial tags; predicts indirect-jump targets."""

    def __init__(self, entries: int = 1024):
        if entries & (entries - 1):
            raise ValueError("BTB size must be a power of two")
        self._mask = entries - 1
        self._tags: list[int | None] = [None] * entries
        self._targets: list[int] = [0] * entries
        self.hits = 0
        self.misses = 0

    def _index(self, pc: int) -> int:
        return (pc >> 2) & self._mask

    def lookup(self, pc: int) -> int | None:
        i = self._index(pc)
        if self._tags[i] == pc:
            self.hits += 1
            return self._targets[i]
        self.misses += 1
        return None

    def update(self, pc: int, target: int) -> None:
        i = self._index(pc)
        self._tags[i] = pc
        self._targets[i] = target


class ReturnAddressStack:
    """Bounded return-address stack operated speculatively at fetch.

    The state is a persistent (immutable) tuple rebuilt on push/pop, which
    makes :meth:`checkpoint` a zero-copy reference grab.  The core snapshots
    once per fetched branch/jalr but mutates only on calls and returns, so
    snapshots vastly outnumber mutations; the stack depth is small, keeping
    the rebuilt tuples cheap.
    """

    def __init__(self, depth: int = 16):
        self.depth = depth
        self._stack: tuple[int, ...] = ()

    def push(self, return_pc: int) -> None:
        stack = self._stack
        if len(stack) == self.depth:
            stack = stack[1:]
        self._stack = stack + (return_pc,)

    def pop(self) -> int | None:
        stack = self._stack
        if stack:
            self._stack = stack[:-1]
            return stack[-1]
        return None

    def checkpoint(self) -> tuple[int, ...]:
        return self._stack

    def restore(self, checkpoint: tuple[int, ...]) -> None:
        self._stack = tuple(checkpoint)


class AlwaysTaken(DirectionPredictor):
    """Degenerate predictor, useful in unit tests."""

    name = "always_taken"

    def predict(self, pc: int) -> tuple[bool, object]:
        return True, None

    def update(self, pc: int, taken: bool, context: object = None) -> None:
        pass


class AlwaysNotTaken(DirectionPredictor):
    """Degenerate predictor, useful in unit tests."""

    name = "always_not_taken"

    def predict(self, pc: int) -> tuple[bool, object]:
        return False, None

    def update(self, pc: int, taken: bool, context: object = None) -> None:
        pass
