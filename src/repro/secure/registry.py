"""Policy registry: names -> policy factories."""

from __future__ import annotations

from ..errors import PolicyError
from .baselines import (
    CttPolicy,
    DelayOnMissPolicy,
    FencePolicy,
    NdaPolicy,
    NoProtection,
    SttPolicy,
)
from .levioso import LeviosoPolicy
from .policy import SpeculationPolicy

POLICY_CLASSES: dict[str, type[SpeculationPolicy]] = {
    NoProtection.name: NoProtection,
    FencePolicy.name: FencePolicy,
    DelayOnMissPolicy.name: DelayOnMissPolicy,
    NdaPolicy.name: NdaPolicy,
    SttPolicy.name: SttPolicy,
    CttPolicy.name: CttPolicy,
    LeviosoPolicy.name: LeviosoPolicy,
}

ALL_POLICY_NAMES = tuple(POLICY_CLASSES)

COMPREHENSIVE_POLICY_NAMES = tuple(
    name
    for name, cls in POLICY_CLASSES.items()
    if cls.protects_speculative_secrets and cls.protects_nonspeculative_secrets
)


def make_policy(name: str, **kwargs) -> SpeculationPolicy:
    """Instantiate a policy by name.

    Raises :class:`PolicyError` for unknown names so harness typos fail
    loudly rather than silently running unprotected.
    """
    if name not in POLICY_CLASSES:
        raise PolicyError(
            f"unknown policy {name!r}; available: {sorted(POLICY_CLASSES)}"
        )
    return POLICY_CLASSES[name](**kwargs)
