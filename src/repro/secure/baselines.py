"""Baseline secure-speculation policies.

These are the designs Levioso is compared against (DESIGN.md, experiment
index).  Ordered by decreasing conservatism:

* :class:`NoProtection` — the unsafe reference core.
* :class:`FencePolicy` — delay every load until it is non-speculative
  (no older unresolved branch or indirect jump); the classic
  "fence-after-every-branch" comprehensive defense and our "~51%" baseline.
* :class:`DelayOnMissPolicy` — speculative loads may proceed when they hit
  in the L1; misses wait for non-speculation (Sakalis et al. style).
* :class:`SttPolicy` — Speculative Taint Tracking: delay transmitters whose
  *address* descends from a speculatively-loaded value that has not reached
  its visibility point.  Protects speculative secrets only.
* :class:`CttPolicy` — comprehensive taint tracking (SPT-flavoured): any
  loaded value is a potential secret forever (covers non-speculatively
  loaded secrets, i.e. constant-time code), so a load with a memory-derived
  address must wait until it is non-speculative.  Our "~43%" baseline.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .policy import SpeculationPolicy

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..uarch.core import OooCore
    from ..uarch.dyninst import DynInst


class NoProtection(SpeculationPolicy):
    """Unsafe baseline: every load issues as soon as it is ready."""

    name = "none"
    uses_taint_roots = False

    def may_issue_load(self, dyn: "DynInst", core: "OooCore") -> bool:
        return True


class FencePolicy(SpeculationPolicy):
    """Delay *every* speculative transmitter until non-speculative.

    Models the no-taint-hardware conservative design point: with no way to
    tell secret-derived operands apart, every speculative load must wait and
    every speculative branch resolution (a fetch-visible channel) must wait.
    Its gate set is a superset of :class:`CttPolicy`'s, so ``fence >= ctt``
    holds structurally, mirroring the paper's 51% vs 43% baseline pair.
    """

    name = "fence"
    uses_taint_roots = False
    protects_speculative_secrets = True
    protects_nonspeculative_secrets = True

    def may_issue_load(self, dyn: "DynInst", core: "OooCore") -> bool:
        return not core.has_unresolved_ctrl_older_than(dyn.seq)

    def may_issue_branch(self, dyn: "DynInst", core: "OooCore") -> bool:
        return not core.has_unresolved_ctrl_older_than(dyn.seq)


class DelayOnMissPolicy(SpeculationPolicy):
    """Speculative L1 hits proceed; speculative misses wait.

    Protects the cache-presence channel this simulator's receivers observe
    (a hit does not change which lines are resident).  Recency-channel
    caveats are discussed in DESIGN.md.
    """

    name = "dom"
    uses_taint_roots = False
    protects_speculative_secrets = True
    protects_nonspeculative_secrets = True

    def may_issue_load(self, dyn: "DynInst", core: "OooCore") -> bool:
        if not core.has_unresolved_ctrl_older_than(dyn.seq):
            return True
        address = dyn.mem_address
        if address is None:
            return False
        return core.hierarchy.peek_l1_hit(address)

    def may_issue_branch(self, dyn: "DynInst", core: "OooCore") -> bool:
        # No taint hardware: like fence, speculative resolution waits.
        return not core.has_unresolved_ctrl_older_than(dyn.seq)


class NdaPolicy(SpeculationPolicy):
    """NDA-style propagation blocking (Weisse et al., MICRO'19 flavour).

    Speculative loads *execute* freely, but their results are withheld from
    dependents until the load becomes non-speculative — the transmit
    instruction of a Spectre gadget can never even compute its address.
    Protects speculatively accessed secrets only: values already in the
    architectural state (constant-time keys) propagate freely.
    """

    name = "nda"
    uses_taint_roots = False
    protects_speculative_secrets = True
    protects_nonspeculative_secrets = False

    def may_issue_load(self, dyn: "DynInst", core: "OooCore") -> bool:
        return True  # access is unrestricted; propagation is the gate

    def defers_wakeup(self, dyn: "DynInst", core: "OooCore") -> bool:
        return core.has_unresolved_ctrl_older_than(dyn.seq)

    def may_propagate(self, dyn: "DynInst", core: "OooCore") -> bool:
        return not core.has_unresolved_ctrl_older_than(dyn.seq)


class SttPolicy(SpeculationPolicy):
    """Speculative Taint Tracking (speculative secrets only).

    A transmitter is delayed while its address lineage contains a load that
    is still speculative (in flight and younger than an unresolved control
    instruction).  Once every root reaches its visibility point the taint
    expires and the transmitter proceeds — even if itself speculative.
    """

    name = "stt"
    protects_speculative_secrets = True
    protects_nonspeculative_secrets = False

    def may_issue_load(self, dyn: "DynInst", core: "OooCore") -> bool:
        if not core.has_unresolved_ctrl_older_than(dyn.seq):
            return True
        return not any(core.is_load_root_unsafe(root) for root in dyn.addr_roots())

    def may_issue_branch(self, dyn: "DynInst", core: "OooCore") -> bool:
        if not core.has_unresolved_ctrl_older_than(dyn.seq):
            return True
        return not any(
            core.is_load_root_unsafe(root) for root in dyn.operand_roots()
        )


class CttPolicy(SpeculationPolicy):
    """Comprehensive taint tracking — the conservative-hardware baseline.

    Every loaded value is treated as a potential secret (this is what
    protecting constant-time code requires), so the taint is structural and
    never expires: a speculative transmitter with a memory-derived address
    waits until **all** older control instructions resolve.  Levioso keeps
    this guarantee but shrinks "all older" to "truly depended-on".
    """

    name = "ctt"
    uses_taint_roots = False
    protects_speculative_secrets = True
    protects_nonspeculative_secrets = True

    def may_issue_load(self, dyn: "DynInst", core: "OooCore") -> bool:
        if not dyn.addr_tainted():
            return True
        return not core.has_unresolved_ctrl_older_than(dyn.seq)

    def may_issue_branch(self, dyn: "DynInst", core: "OooCore") -> bool:
        if not dyn.operand_tainted():
            return True
        return not core.has_unresolved_ctrl_older_than(dyn.seq)
