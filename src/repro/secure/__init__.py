"""Secure-speculation policies: the paper's contribution and its baselines."""

from .baselines import (
    CttPolicy,
    DelayOnMissPolicy,
    FencePolicy,
    NdaPolicy,
    NoProtection,
    SttPolicy,
)
from .levioso import LeviosoPolicy
from .policy import PolicyStats, SpeculationPolicy
from .registry import (
    ALL_POLICY_NAMES,
    COMPREHENSIVE_POLICY_NAMES,
    POLICY_CLASSES,
    make_policy,
)

__all__ = [
    "ALL_POLICY_NAMES",
    "COMPREHENSIVE_POLICY_NAMES",
    "CttPolicy",
    "DelayOnMissPolicy",
    "FencePolicy",
    "LeviosoPolicy",
    "NdaPolicy",
    "NoProtection",
    "POLICY_CLASSES",
    "PolicyStats",
    "SpeculationPolicy",
    "SttPolicy",
    "make_policy",
]
