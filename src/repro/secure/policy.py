"""Secure-speculation policy framework.

A policy is a pure predicate over the core's speculation-tracking state: it
decides, each time a transmitter (load / cflush) asks to issue, whether the
access may proceed.  Policies never change architectural behaviour — only
timing — which the differential tests enforce.

The core exposes three queries policies build on:

* ``core.has_unresolved_ctrl_older_than(seq)`` — is the instruction younger
  than any in-flight unresolved branch/indirect jump? (the conservative
  notion of "speculative" used by fence/STT/CTT)
* ``dyn`` lineage sets (finalized at producer completion, see
  :mod:`repro.uarch.dyninst`): ``addr_deps`` (true branch dependencies of
  the address operand + the instruction's own control dependencies),
  ``addr_roots`` (in-flight load seqs in the address lineage),
  ``addr_tainted`` (address derived from any loaded data, persistent
  across commit via architectural taint bits)
* ``core.is_load_root_unsafe(root_seq)`` — STT visibility: the root load is
  still in flight and younger than an unresolved control instruction.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..uarch.core import OooCore
    from ..uarch.dyninst import DynInst


@dataclass
class PolicyStats:
    """Per-run accounting of what the policy blocked."""

    loads_gated: int = 0            # loads that were blocked at least once
    gate_cycles: int = 0            # total cycles loads spent blocked
    gate_checks: int = 0            # gate evaluations
    gate_denials: int = 0           # evaluations that said "wait"
    branches_gated: int = 0         # branches blocked at least once
    branch_gate_cycles: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "loads_gated": self.loads_gated,
            "gate_cycles": self.gate_cycles,
            "gate_checks": self.gate_checks,
            "gate_denials": self.gate_denials,
            "branches_gated": self.branches_gated,
            "branch_gate_cycles": self.branch_gate_cycles,
        }


class SpeculationPolicy(abc.ABC):
    """Base class of all secure-speculation policies."""

    name = "base"
    protects_speculative_secrets = False
    protects_nonspeculative_secrets = False
    #: Does this policy consult STT-style expiring taint roots
    #: (``addr_roots``/``operand_roots``)?  When False the core elides
    #: root-set construction entirely (lineage sets stay empty along the
    #: whole dependence chain), which is invisible to the policy and to
    #: CoreStats.  Conservative default: a new policy must opt out
    #: explicitly after checking it never reads roots.
    uses_taint_roots = True

    def __init__(self) -> None:
        self.stats = PolicyStats()

    @property
    def comprehensive(self) -> bool:
        """Protects both threat models (the paper's guarantee)."""
        return (
            self.protects_speculative_secrets
            and self.protects_nonspeculative_secrets
        )

    @abc.abstractmethod
    def may_issue_load(self, dyn: "DynInst", core: "OooCore") -> bool:
        """May this transmitter access the memory hierarchy now?"""

    def may_issue_branch(self, dyn: "DynInst", core: "OooCore") -> bool:
        """May this branch/indirect jump execute (resolve) now?

        Branch direction and indirect targets are transmission channels too
        (resolution redirects fetch, trains predictors, triggers squashes):
        comprehensive taint-based policies delay resolution of branches whose
        *condition operands* are potentially secret.  Default: no gating.
        """
        return True

    def defers_wakeup(self, dyn: "DynInst", core: "OooCore") -> bool:
        """Should this load's completed value be withheld from consumers?

        NDA-style propagation blocking: the load executes and its value is
        written, but dependents are not woken until :meth:`may_propagate`
        says the value is safe.  Default: never defer.
        """
        return False

    def may_propagate(self, dyn: "DynInst", core: "OooCore") -> bool:
        """May a deferred value now be forwarded to dependents?"""
        return True

    def checked_may_issue_load(self, dyn: "DynInst", core: "OooCore") -> bool:
        """Gate + stats wrapper used by the core."""
        self.stats.gate_checks += 1
        allowed = self.may_issue_load(dyn, core)
        if not allowed:
            self.stats.gate_denials += 1
        return allowed

    def checked_may_issue_branch(self, dyn: "DynInst", core: "OooCore") -> bool:
        """Branch-gate + stats wrapper used by the core."""
        self.stats.gate_checks += 1
        allowed = self.may_issue_branch(dyn, core)
        if not allowed:
            self.stats.gate_denials += 1
        return allowed

    def describe(self) -> str:
        scope = (
            "comprehensive"
            if self.comprehensive
            else "speculative-only"
            if self.protects_speculative_secrets
            else "no protection"
        )
        return f"{self.name} ({scope})"
