"""The Levioso policy: compiler-informed comprehensive secure speculation.

Levioso provides the same guarantee as :class:`~repro.secure.baselines.CttPolicy`
— no transmitter may reveal a (speculative or non-speculative) secret while
its execution is still contingent on unresolved speculation — but replaces
the conservative "younger than any unresolved branch" test with the **true
dependency** test built from compiler metadata:

* an instruction's *control dependencies* are the in-flight branches whose
  reconvergence point had not been fetched when the instruction entered the
  pipeline (tracked by the front end from the compiler's reconvergence PCs),
* its *data dependencies* fold in the dependencies of every producer in its
  operand lineage (tracked through rename, execution and store-forwarding).

A transmitter with a memory-derived (potentially secret) address is delayed
only while one of its *true* branch dependencies is unresolved.  A load past
the reconvergence point of every unresolved branch, whose address does not
descend from any value produced under those branches, executes identically
on every outstanding speculative path — so it can reveal no more than the
committed execution would, under either threat model.

Security argument (paper Section 3, reconstructed): leakage requires the
transmitted address to differ across speculative outcomes of some unresolved
branch B.  That requires either (a) the transmitter executing on one outcome
of B but not the other — control dependence, or (b) the address value being
produced differently under B's outcomes — data dependence on a B-dependent
producer.  Both are exactly the dependencies tracked here; with none
present, the transmission is outcome-invariant and therefore safe.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .policy import SpeculationPolicy

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..uarch.core import OooCore
    from ..uarch.dyninst import DynInst


class LeviosoPolicy(SpeculationPolicy):
    """Compiler-informed comprehensive secure speculation.

    ``max_tracked_deps`` models a bounded hardware dependency matrix: when
    an instruction's true-dependency set exceeds the matrix width, the
    hardware cannot represent it precisely and must fall back to the
    conservative rule (wait for *all* older control instructions) — the
    storage-budget ablation. ``None`` models the paper's full tracking.
    """

    name = "levioso"
    uses_taint_roots = False
    protects_speculative_secrets = True
    protects_nonspeculative_secrets = True

    def __init__(self, max_tracked_deps: int | None = None):
        super().__init__()
        self.max_tracked_deps = max_tracked_deps

    def _deps_safe(self, deps, dyn: "DynInst", core: "OooCore") -> bool:
        width = self.max_tracked_deps
        if width is None:
            return not core.any_unresolved(deps)
        # Matrix columns exist per *unresolved* branch and clear at
        # resolution, so the width bound applies to live dependencies only.
        live = deps & core.unresolved_ctrl
        if len(live) > width:
            # More live dependencies than columns: conservative fallback.
            return not core.has_unresolved_ctrl_older_than(dyn.seq)
        return not live

    def may_issue_load(self, dyn: "DynInst", core: "OooCore") -> bool:
        # Fused form of ``addr_tainted()`` + ``addr_deps()``: one producer
        # walk instead of two (this gate runs once per load issue attempt).
        producer = dyn.src1_producer
        if producer is not None:
            if not producer.out_tainted:
                # Address provably derives from no memory value:
                # transmitting it reveals only register-computed data,
                # public in both models.
                return True
            deps = producer.out_deps
            addr_deps = dyn.control_deps | deps if deps else dyn.control_deps
        else:
            if not dyn.src1_arf_tainted:
                return True
            addr_deps = dyn.control_deps
        return self._deps_safe(addr_deps, dyn, core)

    def may_issue_branch(self, dyn: "DynInst", core: "OooCore") -> bool:
        # Fused form of ``operand_tainted()`` + ``input_deps()``.
        p1 = dyn.src1_producer
        p2 = dyn.src2_producer
        t1 = p1.out_tainted if p1 is not None else dyn.src1_arf_tainted
        t2 = p2.out_tainted if p2 is not None else dyn.src2_arf_tainted
        if not (t1 or t2):
            return True
        deps = dyn.control_deps
        if p1 is not None and p1.out_deps:
            deps = deps | p1.out_deps
        if p2 is not None and p2.out_deps:
            deps = deps | p2.out_deps
        return self._deps_safe(deps, dyn, core)
