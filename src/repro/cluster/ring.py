"""Consistent-hash ring over run-cache content keys.

Classic Karger-style ring with virtual nodes: each worker owns
``replicas`` points on a 64-bit circle (sha256 of ``"{node}#{i}"``), and
a content key routes to the first node point at or after the key's own
hash.  Properties the cluster leans on:

* **Stability** — adding or removing one node remaps only the keys in
  the arcs it owned (~1/N of the space), so a node death does not
  reshuffle the whole fleet's cache locality, and a resurrected node
  gets its old arcs (and its warm :class:`ResultCache`) back.
* **Determinism** — placement is a pure function of the membership set,
  never of arrival order, so a coordinator restart routes identically.

Pure data structure: membership state machines live in
:mod:`repro.cluster.membership`, failover policy in the coordinator.
"""

from __future__ import annotations

import bisect
import hashlib


def _hash64(text: str) -> int:
    return int.from_bytes(
        hashlib.sha256(text.encode()).digest()[:8], "big")


class HashRing:
    """Consistent-hash ring mapping string keys to node ids."""

    def __init__(self, replicas: int = 64):
        self.replicas = replicas
        self._points: list[int] = []       # sorted virtual-node hashes
        self._owners: dict[int, str] = {}  # hash -> node id
        self._nodes: set[str] = set()

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node_id: str) -> bool:
        return node_id in self._nodes

    def nodes(self) -> set[str]:
        return set(self._nodes)

    def add(self, node_id: str) -> None:
        if node_id in self._nodes:
            return
        self._nodes.add(node_id)
        for i in range(self.replicas):
            point = _hash64(f"{node_id}#{i}")
            # 64-bit sha256 collisions are negligible, but deterministic
            # tie-breaking keeps placement independent of insert order.
            while point in self._owners and self._owners[point] != node_id:
                point = (point + 1) % (1 << 64)
            if point not in self._owners:
                bisect.insort(self._points, point)
                self._owners[point] = node_id

    def remove(self, node_id: str) -> None:
        if node_id not in self._nodes:
            return
        self._nodes.discard(node_id)
        dead = [p for p, owner in self._owners.items() if owner == node_id]
        for point in dead:
            del self._owners[point]
        dead_set = set(dead)
        self._points = [p for p in self._points if p not in dead_set]

    def node_for(self, key: str) -> str | None:
        """The node owning ``key``, or None on an empty ring."""
        if not self._points:
            return None
        index = bisect.bisect_right(self._points, _hash64(key))
        if index == len(self._points):
            index = 0   # wrap around the circle
        return self._owners[self._points[index]]

    def preference(self, key: str, n: int | None = None) -> list[str]:
        """Distinct nodes in ring order from ``key`` — the failover
        sequence: ``preference(k)[0] == node_for(k)``, and a flight that
        keeps failing walks down this list."""
        if not self._points:
            return []
        want = len(self._nodes) if n is None else min(n, len(self._nodes))
        out: list[str] = []
        start = bisect.bisect_right(self._points, _hash64(key))
        for offset in range(len(self._points)):
            owner = self._owners[
                self._points[(start + offset) % len(self._points)]]
            if owner not in out:
                out.append(owner)
                if len(out) == want:
                    break
        return out
