"""/metrics federation: one scrape surface for the whole fleet.

The coordinator's ``/metrics`` response is three sections:

1. its own ``repro_cluster_*`` registry (flights, failovers, node
   gauges), rendered by the normal :class:`MetricsRegistry`;
2. the fleet aggregate — every ``repro_service_*`` sample scraped from
   the workers, summed across nodes by full sample key (name + label
   string), so ``repro_service_simulations_total`` reads as a cluster
   total exactly like a Prometheus ``sum by`` would;
3. per-node reachability: ``repro_cluster_node_up{node="..."} 0|1``.

Summing is the right fold for counters and for the gauge shapes the
workers export (queue depths add; the ``_info`` gauge sums to the node
count, which is itself informative).  Histogram ``_bucket``/``_sum``/
``_count`` samples are cumulative per label set, so they also sum
correctly across nodes.
"""

from __future__ import annotations

from typing import Iterable, Mapping


def merge_samples(texts: Iterable[str]) -> dict[str, float]:
    """Sum Prometheus text-format samples across nodes by sample key."""
    merged: dict[str, float] = {}
    for text in texts:
        for line in text.splitlines():
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            name, _, value = line.rpartition(" ")
            try:
                merged[name] = merged.get(name, 0.0) + float(value)
            except ValueError:
                continue
    return merged


def _format_value(value: float) -> str:
    return str(int(value)) if value == int(value) else repr(value)


def render_federated(own_text: str,
                     node_texts: Mapping[str, str | None]) -> str:
    """Coordinator metrics + summed fleet samples + node_up flags.

    ``node_texts`` maps node id -> scraped /metrics body (None for a
    node that could not be scraped this time — it still gets a
    ``node_up 0`` sample, which is the signal an operator alerts on).
    """
    lines = [own_text.rstrip("\n")] if own_text.strip() else []
    merged = merge_samples(t for t in node_texts.values() if t)
    if merged:
        lines.append("# Fleet aggregate: per-node samples summed across "
                     f"{sum(1 for t in node_texts.values() if t)} node(s).")
        for name in sorted(merged):
            lines.append(f"{name} {_format_value(merged[name])}")
    for node_id in sorted(node_texts):
        up = 1 if node_texts[node_id] else 0
        lines.append(f'repro_cluster_node_up{{node="{node_id}"}} {up}')
    return "\n".join(lines) + "\n"
