"""The cluster coordinator daemon behind ``repro coordinate``.

Speaks the *same* client-facing API as a single ``repro serve`` daemon
(POST/GET ``/v1/runs``, ``/healthz``, ``/metrics``) — an existing
:class:`~repro.service.client.ServiceClient` pointed at a coordinator
cannot tell the difference — plus the fleet-facing membership surface::

    POST   /v1/nodes                 worker joins: {"id": ..., "url": ...}
    POST   /v1/nodes/{id}/heartbeat  liveness + load report (404 -> worker
                                     must re-register: "I don't know you")
    DELETE /v1/nodes/{id}            drain-aware departure (stop routing,
                                     do NOT fail over: the worker finishes
                                     its accepted jobs during its drain)
    GET    /v1/nodes                 the membership table

Routing: content keys are placed on a consistent-hash ring
(:mod:`repro.cluster.ring`) over routable nodes, so a key lands on the
worker whose persistent :class:`ResultCache` most likely already holds
it.  One *cluster flight* exists per unresolved key no matter how many
clients ask (cluster-wide coalescing); each flight runs as one asyncio
task that forwards the request, polls the worker, and owns failover.

Failure model, reusing the charged/uncharged taxonomy of PR 3/5:

* a worker answering 4xx/5xx for the *job itself* is a **charged**
  failure — the worker already burned its own retry budget;
* a node dying under a flight (connection failure, heartbeat timeout,
  a poll meeting a new incarnation) is **uncharged** — the flight is
  resubmitted to the next surviving shard, bounded by
  ``max_failovers`` only as a runaway guard;
* zero routable nodes degrades the coordinator to a serial in-process
  executor, so the cluster keeps answering (slowly) through a full
  fleet outage — the same ladder the single-node pool walks when it
  degrades to serial.

Simulations are pure functions of the content key, so reroutes, orphan
re-executions and local fallback can never change a result —
bit-identity to a clean serial run survives any failure schedule.
"""

from __future__ import annotations

import asyncio
import concurrent.futures as cf
import dataclasses
import os
import signal
import sys
import threading
import time
import traceback

from .. import __version__
from ..harness.resilience import simulate_point
from ..harness.runner import RunRecord
from ..service.httpd import HttpError, JsonHttpServer, json_bytes
from ..service.jobs import (
    DONE,
    FAILED,
    RUNNING,
    BadRequest,
    BatchTooLarge,
    Job,
    JobStore,
    RunKeyer,
    RunRequest,
    parse_submission,
)
from ..service.metrics import MetricsRegistry
from ..service.queue import QueueFull
from .federation import render_federated
from .membership import ALIVE, DEAD, SUSPECT, Membership, Node
from .ring import HashRing
from .transport import request_json

MAX_BATCH = 1024


def _env_float(name: str, default: float) -> float:
    try:
        return float(os.environ[name])
    except (KeyError, ValueError):
        return default


def _env_nodes() -> tuple[str, ...]:
    raw = os.environ.get("REPRO_CLUSTER_NODES", "")
    return tuple(u for u in raw.replace(",", " ").split() if u)


@dataclasses.dataclass
class CoordinatorConfig:
    """Everything ``repro coordinate`` can tune."""

    host: str = "127.0.0.1"
    port: int = 8770
    #: Static worker URLs (probed via /healthz since they never
    #: heartbeat); dynamic workers self-register on top of these.
    nodes: tuple[str, ...] = dataclasses.field(default_factory=_env_nodes)
    heartbeat_interval: float = dataclasses.field(
        default_factory=lambda: _env_float("REPRO_HEARTBEAT_INTERVAL", 1.0))
    node_timeout: float = dataclasses.field(
        default_factory=lambda: _env_float("REPRO_NODE_TIMEOUT", 5.0))
    max_flights: int = 256         # open-flight admission cap (backpressure)
    max_failovers: int = 16        # uncharged reroutes per flight (runaway guard)
    submit_retries: int = 20       # 429-from-worker waits before rerouting
    poll_interval: float = 0.05    # worker job-status poll cadence
    request_timeout: float = 10.0  # per intra-cluster HTTP call
    drain_timeout: float = 60.0    # grace period on SIGTERM
    history: int = 4096            # completed jobs kept addressable
    local_fallback: bool = True    # serial in-process execution at 0 nodes


class _NodeFailure(Exception):
    """A flight's current node let it down; decide failover upstream."""

    def __init__(self, reason: str, declare_dead: bool = False):
        super().__init__(reason)
        self.reason = reason
        self.declare_dead = declare_dead


@dataclasses.dataclass
class ClusterFlight:
    """One unresolved content key and every job coalesced onto it."""

    key: str
    request: RunRequest
    jobs: list[Job] = dataclasses.field(default_factory=list)
    node_id: str | None = None     # current assignment (None: local/unplaced)
    remote_id: str | None = None   # worker-side job id of the live attempt
    failovers: int = 0             # uncharged reroutes so far
    abandoned: asyncio.Event = dataclasses.field(
        default_factory=asyncio.Event)

    def attach(self, job: Job) -> None:
        self.jobs.append(job)
        job.flight = self  # type: ignore[assignment]


class ClusterCoordinator(JsonHttpServer):
    """Owns membership, the ring, global flights and the HTTP front end."""

    server_label = "repro-coordinate"

    def __init__(self, config: CoordinatorConfig | None = None,
                 metrics: MetricsRegistry | None = None):
        super().__init__()
        self.config = config or CoordinatorConfig()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.keyer = RunKeyer()
        self.store = JobStore(history=self.config.history)
        self.results: dict[str, RunRecord] = {}
        self.flights: dict[str, ClusterFlight] = {}
        self.membership = Membership(
            heartbeat_interval=self.config.heartbeat_interval,
            node_timeout=self.config.node_timeout)
        self.ring = HashRing()
        self.draining = False
        self._stopped = asyncio.Event()
        self._monitor_task: asyncio.Task | None = None
        self._flight_tasks: set[asyncio.Task] = set()
        self._local_pool: cf.ThreadPoolExecutor | None = None

        m = self.metrics
        self.m_requests = m.counter(
            "repro_cluster_http_requests_total",
            "HTTP requests served by the coordinator.",
            labelnames=("endpoint", "code"))
        self.m_submitted = m.counter(
            "repro_cluster_jobs_submitted_total",
            "Jobs accepted by the coordinator.")
        self.m_coalesced = m.counter(
            "repro_cluster_cross_node_coalesced_total",
            "Jobs attached to a key already in flight somewhere in the "
            "fleet (cluster-wide coalescing).")
        self.m_cache_hits = m.counter(
            "repro_cluster_cache_hits_total",
            "Jobs answered from the coordinator's result store.")
        self.m_rejected = m.counter(
            "repro_cluster_jobs_rejected_total",
            "Submissions rejected by flight admission (HTTP 429).")
        self.m_completed = m.counter(
            "repro_cluster_jobs_completed_total",
            "Jobs reaching a terminal state.", labelnames=("state",))
        self.m_failovers = m.counter(
            "repro_cluster_failovers_total",
            "In-flight jobs rerouted off a failed node (uncharged retries).")
        self.m_forwards = m.counter(
            "repro_cluster_forwards_total",
            "Flight submissions forwarded to a worker node.",
            labelnames=("node",))
        self.m_local = m.counter(
            "repro_cluster_local_runs_total",
            "Flights executed in-process because no node was routable.")
        self.m_nodes_alive = m.gauge(
            "repro_cluster_nodes_alive", "Nodes currently heartbeating.")
        self.m_nodes_suspect = m.gauge(
            "repro_cluster_nodes_suspect",
            "Nodes past the suspicion threshold but not yet dead.")
        self.m_open_flights = m.gauge(
            "repro_cluster_open_flights", "Unresolved cluster flights.")
        self.m_degraded = m.gauge(
            "repro_cluster_degraded",
            "1 while the fleet is empty and flights run in-process.")
        m.gauge("repro_cluster_info", "Static coordinator metadata.",
                labelnames=("version",)).set(1, version=__version__)

    # ------------------------------------------------------------ lifecycle
    async def start(self) -> None:
        await self.bind(self.config.host, self.config.port)
        for url in self.config.nodes:
            node_id = f"static:{url.rstrip('/').rsplit('/', 1)[-1]}"
            self._admit_node(node_id, url.rstrip("/"), static=True)
        self._monitor_task = asyncio.get_running_loop().create_task(
            self._monitor_loop())

    async def drain_and_stop(self) -> bool:
        """Stop admission, let open flights resolve, shut down.  True iff
        every accepted job resolved inside the drain budget."""
        if self.draining:
            await self._stopped.wait()
            return True
        self.draining = True
        await self.close_server()
        tasks = list(self._flight_tasks)
        drained = True
        if tasks:
            _done, pending = await asyncio.wait(
                tasks, timeout=self.config.drain_timeout)
            drained = not pending
            for task in pending:
                task.cancel()
        if self._monitor_task is not None:
            self._monitor_task.cancel()
            try:
                await self._monitor_task
            except asyncio.CancelledError:
                pass
        if self._local_pool is not None:
            self._local_pool.shutdown(wait=False)
        self._stopped.set()
        return drained

    # ----------------------------------------------------------- membership
    def _admit_node(self, node_id: str, url: str, static: bool = False
                    ) -> Node:
        node = self.membership.register(node_id, url, static=static)
        self.ring.add(node_id)
        self._update_node_gauges()
        return node

    def _node_dead(self, node_id: str, reason: str) -> None:
        """Declare a node dead and abandon its in-flight flights (their
        tasks observe the event and reroute, uncharged)."""
        node = self.membership.mark_dead(node_id)
        self.ring.remove(node_id)
        self._update_node_gauges()
        if node is None:
            return
        for flight in self.flights.values():
            if flight.node_id == node_id:
                flight.abandoned.set()

    def _node_left(self, node_id: str) -> Node | None:
        """Drain-aware departure: unroutable, flights NOT abandoned —
        the departing worker resolves them during its drain window."""
        node = self.membership.deregister(node_id)
        self.ring.remove(node_id)
        self._update_node_gauges()
        return node

    def _update_node_gauges(self) -> None:
        counts = self.membership.counts()
        self.m_nodes_alive.set(counts[ALIVE])
        self.m_nodes_suspect.set(counts[SUSPECT])

    async def _monitor_loop(self) -> None:
        """Sweep heartbeat timeouts; probe static nodes via /healthz."""
        period = max(min(self.config.heartbeat_interval / 2, 1.0), 0.05)
        while True:
            await asyncio.sleep(period)
            statics = [n for n in self.membership.routable() if n.static]
            if statics:
                await asyncio.gather(
                    *(self._probe(node) for node in statics))
            for node in self.membership.sweep():
                self._node_dead(node.node_id, "heartbeat timeout")
            self._update_node_gauges()

    async def _probe(self, node: Node) -> None:
        try:
            status, _, _ = await request_json(
                "GET", node.url + "/healthz",
                timeout=max(self.config.heartbeat_interval, 1.0))
        except (OSError, asyncio.TimeoutError):
            return  # silence counts; the sweep applies the timeout
        if status == 200:
            self.membership.heartbeat(node.node_id)

    # ------------------------------------------------------------ admission
    def submit(self, requests: list[RunRequest]) -> list[Job]:
        """Admit a batch (all-or-nothing).  Mirrors the single-node
        daemon's plan-then-commit shape and runs synchronously on the
        event loop so the plan cannot be invalidated mid-batch."""
        if self.draining:
            raise HttpError(503, "coordinator is draining")
        plans: list[tuple[RunRequest, str, str]] = []
        novel: dict[str, None] = {}
        for request in requests:
            key = self.keyer.key_for(request)
            if key in novel:
                how = "coalesce"
            elif key in self.results:
                how = "cached"
            elif key in self.flights:
                how = "coalesce"
            else:
                how = "new"
                novel[key] = None
            plans.append((request, key, how))
        room = self.config.max_flights - len(self.flights)
        if len(novel) > room:
            self.m_rejected.inc(len(requests))
            raise QueueFull(self.config.max_flights, self._retry_after())

        loop = asyncio.get_running_loop()
        jobs: list[Job] = []
        opened: dict[str, ClusterFlight] = {}
        for request, key, how in plans:
            job = Job(request=request, key=key)
            self.store.add(job)
            self.m_submitted.inc()
            if how == "cached":
                job.cached = True
                job.state = DONE
                job.record = self.results[key]
                job.finished = job.created
                self.m_cache_hits.inc()
            elif how == "coalesce" or key in opened:
                job.coalesced = True
                (self.flights.get(key) or opened[key]).attach(job)
                self.m_coalesced.inc()
            else:
                flight = ClusterFlight(key=key, request=request)
                flight.attach(job)
                self.flights[key] = flight
                opened[key] = flight
                task = loop.create_task(self._run_flight(flight))
                self._flight_tasks.add(task)
                task.add_done_callback(self._flight_tasks.discard)
            jobs.append(job)
        self.m_open_flights.set(len(self.flights))
        return jobs

    def _retry_after(self) -> float:
        """Backpressure hint: open flights per routable worker, at an
        assumed fraction of a second per simulation."""
        nodes = max(len(self.ring), 1)
        return max(1.0, round(0.5 * len(self.flights) / nodes, 1))

    # -------------------------------------------------------------- flights
    async def _run_flight(self, flight: ClusterFlight) -> None:
        record: RunRecord | None = None
        error = ""
        try:
            while True:
                node = self._pick_node(flight)
                if node is None:
                    if not self.config.local_fallback:
                        error = "no routable nodes and local fallback disabled"
                        break
                    record, error = await self._run_local(flight)
                    break
                flight.node_id = node.node_id
                flight.abandoned = asyncio.Event()
                try:
                    record, error = await self._run_on_node(flight, node)
                    break
                except _NodeFailure as exc:
                    if exc.declare_dead:
                        self._node_dead(node.node_id, exc.reason)
                    flight.node_id = None
                    flight.remote_id = None
                    flight.failovers += 1
                    self.m_failovers.inc(len(flight.jobs))
                    if flight.failovers > self.config.max_failovers:
                        error = (f"gave up after {flight.failovers} "
                                 f"reroutes; last: {exc.reason}")
                        break
        except asyncio.CancelledError:
            error = error or "cancelled at shutdown"
        except Exception:
            error = traceback.format_exc()
        self._resolve(flight, record, error)

    def _pick_node(self, flight: ClusterFlight) -> Node | None:
        node_id = self.ring.node_for(flight.key)
        if node_id is None:
            return None
        return self.membership.get(node_id)

    async def _wait_abandoned(self, flight: ClusterFlight,
                              delay: float) -> None:
        """Sleep ``delay`` unless the flight's node dies first."""
        try:
            await asyncio.wait_for(flight.abandoned.wait(), delay)
        except asyncio.TimeoutError:
            return
        raise _NodeFailure("assigned node declared dead", declare_dead=False)

    async def _run_on_node(self, flight: ClusterFlight, node: Node
                           ) -> tuple[RunRecord | None, str]:
        """Forward one flight to ``node`` and poll it to resolution.

        Raises :class:`_NodeFailure` for anything that warrants a
        reroute; returns ``(record, "")`` or ``(None, error)`` for a
        charged terminal failure.
        """
        base = node.url
        generation = node.generation
        timeout = self.config.request_timeout
        payload = {"runs": [flight.request.describe()]}
        waits = 0
        while True:
            if flight.abandoned.is_set():
                raise _NodeFailure("assigned node declared dead")
            try:
                status, headers, data = await request_json(
                    "POST", base + "/v1/runs", payload, timeout=timeout)
            except (OSError, asyncio.TimeoutError) as exc:
                raise _NodeFailure(
                    f"submit to {node.node_id} failed: {exc}",
                    declare_dead=True) from exc
            if status == 429:
                waits += 1
                if waits > self.config.submit_retries:
                    # Saturated but alive: reroute without declaring dead.
                    raise _NodeFailure(
                        f"{node.node_id} kept answering 429")
                retry_after = float(headers.get("retry-after", "1") or "1")
                await self._wait_abandoned(flight, min(retry_after, 2.0))
                continue
            if status == 503:
                # Draining worker that hasn't deregistered yet.
                self._node_left(node.node_id)
                raise _NodeFailure(f"{node.node_id} is draining")
            if status >= 400 or not data or not data.get("jobs"):
                return None, (f"{node.node_id} rejected the request: "
                              f"{(data or {}).get('error', status)}")
            flight.remote_id = data["jobs"][0]["id"]
            self.m_forwards.inc(node=node.node_id)
            for job in flight.jobs:
                if job.state not in (DONE, FAILED):
                    job.state = RUNNING
                    job.started = job.started or time.time()
            break

        while True:
            await self._wait_abandoned(flight, self.config.poll_interval)
            live = self.membership.get(node.node_id)
            if live is None or live.generation != generation:
                raise _NodeFailure(
                    f"{node.node_id} was reincarnated under the flight")
            try:
                status, _, job = await request_json(
                    "GET", f"{base}/v1/runs/{flight.remote_id}",
                    timeout=timeout)
            except (OSError, asyncio.TimeoutError) as exc:
                raise _NodeFailure(
                    f"poll on {node.node_id} failed: {exc}",
                    declare_dead=True) from exc
            if status == 404:
                # Restarted (or aged-out) worker lost the job: resubmit.
                raise _NodeFailure(f"{node.node_id} lost job "
                                   f"{flight.remote_id}")
            if status != 200 or not isinstance(job, dict):
                raise _NodeFailure(
                    f"{node.node_id} answered {status} to a status poll")
            state = job.get("state")
            if state == "done":
                from ..harness.cache import ResultCache

                return ResultCache.deserialize(job["result"]), ""
            if state == "failed":
                # The worker burned its own retry budget: charged.
                return None, (job.get("error")
                              or f"job failed on {node.node_id}")

    async def _run_local(self, flight: ClusterFlight
                         ) -> tuple[RunRecord | None, str]:
        """Degraded mode: the fleet is empty, simulate in-process.

        A single-thread executor keeps local execution strictly serial —
        the coordinator is a router, not a compute node; this path
        exists so a full fleet outage degrades to "slow" instead of
        "down"."""
        self.m_degraded.set(1)
        self.m_local.inc()
        if self._local_pool is None:
            self._local_pool = cf.ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="repro-coord-local")
        for job in flight.jobs:
            if job.state not in (DONE, FAILED):
                job.state = RUNNING
        loop = asyncio.get_running_loop()
        try:
            record = await loop.run_in_executor(
                self._local_pool, simulate_point,
                (flight.request.scale, flight.request.grid_point(), None))
            return record, ""
        except Exception:
            return None, traceback.format_exc()

    def _resolve(self, flight: ClusterFlight, record: RunRecord | None,
                 error: str) -> None:
        self.flights.pop(flight.key, None)
        now = time.time()
        if record is not None:
            self.results[flight.key] = record
        for job in flight.jobs:
            if job.state in (DONE, FAILED):
                continue
            job.finished = now
            if record is not None:
                job.state = DONE
                job.record = record
            else:
                job.state = FAILED
                job.error = error or "unknown failure"
            self.m_completed.inc(state=job.state)
        self.m_open_flights.set(len(self.flights))
        if self.ring:
            self.m_degraded.set(0)

    # ------------------------------------------------------------ endpoints
    def _healthz(self) -> dict:
        counts = self.membership.counts()
        return {
            "status": "draining" if self.draining else "ok",
            "role": "coordinator",
            "version": __version__,
            "nodes": counts,
            "routable": len(self.ring),
            "open_flights": len(self.flights),
            "jobs_tracked": len(self.store),
            "results_stored": len(self.results),
            "degraded": bool(self.flights) and not len(self.ring),
        }

    def _runs_index(self) -> dict:
        jobs = self.store.jobs()
        return {
            "jobs": [j.describe(include_result=False) for j in jobs[-100:]],
            "total": len(jobs),
            "evicted": self.store.evicted,
        }

    async def _federated_metrics(self) -> tuple[int, dict, bytes, str]:
        texts: dict[str, str | None] = {}

        async def scrape(node: Node) -> None:
            from .transport import request

            try:
                status, _, body = await request(
                    "GET", node.url + "/metrics", timeout=2.0)
                texts[node.node_id] = (body.decode()
                                       if status == 200 else None)
            except (OSError, asyncio.TimeoutError):
                texts[node.node_id] = None

        await asyncio.gather(
            *(scrape(n) for n in self.membership.routable()))
        for node in self.membership.nodes.values():
            # Dead nodes stay visible as node_up 0 — the alerting
            # signal — instead of silently vanishing from the sum.
            # (LEFT nodes departed cleanly and really are gone.)
            if node.state == DEAD:
                texts.setdefault(node.node_id, None)
        self._update_node_gauges()
        self.m_open_flights.set(len(self.flights))
        text = render_federated(self.metrics.render(), texts)
        return 200, {
            "Content-Type": "text/plain; version=0.0.4; charset=utf-8",
        }, text.encode(), "/metrics"

    def on_response(self, endpoint: str, status: int) -> None:
        self.m_requests.inc(endpoint=endpoint, code=str(status))

    def route(self, method: str, path: str, body: bytes):
        if path == "/healthz":
            if method != "GET":
                raise HttpError(405, "healthz is GET-only")
            return 200, {}, json_bytes(self._healthz()), "/healthz"
        if path == "/metrics":
            if method != "GET":
                raise HttpError(405, "metrics is GET-only")
            return self._federated_metrics()
        if path == "/v1/runs":
            if method == "GET":
                return 200, {}, json_bytes(self._runs_index()), "/v1/runs"
            if method != "POST":
                raise HttpError(405, "use POST to submit, GET to list")
            try:
                requests = parse_submission(body, max_batch=MAX_BATCH)
            except BatchTooLarge as exc:
                raise HttpError(413, str(exc)) from exc
            except BadRequest as exc:
                raise HttpError(400, str(exc)) from exc
            try:
                jobs = self.submit(requests)
            except QueueFull as exc:
                raise HttpError(
                    429, str(exc),
                    headers={"Retry-After": str(int(exc.retry_after + 0.5))},
                ) from exc
            accepted = {
                "jobs": [j.describe(include_result=False) for j in jobs],
            }
            return 202, {}, json_bytes(accepted), "/v1/runs"
        if path.startswith("/v1/runs/"):
            if method != "GET":
                raise HttpError(405, "job status is GET-only")
            job = self.store.get(path[len("/v1/runs/"):])
            if job is None:
                raise HttpError(404, "no such job (it may have aged out)")
            return 200, {}, json_bytes(job.describe()), "/v1/runs/{id}"
        if path == "/v1/nodes":
            if method == "GET":
                return 200, {}, json_bytes(
                    {"nodes": self.membership.describe(),
                     "routable": sorted(self.ring.nodes())}), "/v1/nodes"
            if method != "POST":
                raise HttpError(405, "use POST to register, GET to list")
            return self._handle_register(body)
        if path.startswith("/v1/nodes/"):
            rest = path[len("/v1/nodes/"):]
            if rest.endswith("/heartbeat") and method == "POST":
                return self._handle_heartbeat(
                    rest[: -len("/heartbeat")], body)
            if method == "DELETE":
                node = self._node_left(rest)
                if node is None:
                    raise HttpError(404, f"unknown node {rest!r}")
                return 200, {}, json_bytes(
                    {"id": rest, "state": node.state}), "/v1/nodes/{id}"
            raise HttpError(405, "POST {id}/heartbeat or DELETE {id}")
        raise HttpError(404, f"no route for {path}")

    def _handle_register(self, body: bytes):
        import json as json_mod

        try:
            payload = json_mod.loads(body.decode() or "null")
        except (ValueError, UnicodeDecodeError) as exc:
            raise HttpError(400, f"body is not valid JSON: {exc}") from exc
        if not isinstance(payload, dict):
            raise HttpError(400, "registration must be an object")
        node_id = payload.get("id")
        url = payload.get("url")
        if not node_id or not isinstance(node_id, str):
            raise HttpError(400, 'registration needs an "id" string')
        if not url or not isinstance(url, str) \
                or not url.startswith("http://"):
            # The intra-cluster transport speaks plain http only; reject
            # unroutable URLs at the door instead of at first forward.
            raise HttpError(400, 'registration needs a "url" like '
                                 '"http://host:port"')
        node = self._admit_node(node_id, url.rstrip("/"))
        return 200, {}, json_bytes({
            "id": node.node_id,
            "state": node.state,
            "generation": node.generation,
            "heartbeat_interval": self.config.heartbeat_interval,
        }), "/v1/nodes"

    def _handle_heartbeat(self, node_id: str, body: bytes):
        import json as json_mod

        try:
            load = json_mod.loads(body.decode() or "null")
        except (ValueError, UnicodeDecodeError):
            load = None
        node = self.membership.heartbeat(
            node_id, load if isinstance(load, dict) else None)
        if node is None:
            raise HttpError(404, f"unknown node {node_id!r}; re-register")
        if node.node_id not in self.ring:
            # Resurrection or first beat after a coordinator restart.
            self.ring.add(node.node_id)
        self._update_node_gauges()
        return 200, {}, json_bytes(
            {"id": node_id, "state": node.state}), "/v1/nodes/{id}/heartbeat"


# ----------------------------------------------------------------- serving
async def _coordinate(config: CoordinatorConfig, ready=None) -> int:
    coordinator = ClusterCoordinator(config)
    await coordinator.start()
    loop = asyncio.get_running_loop()
    drain_task: list[asyncio.Task] = []

    def request_drain(signame: str) -> None:
        if not drain_task:
            print(f"repro coordinate: {signame} received, draining "
                  f"({len(coordinator.flights)} open flight(s))...",
                  file=sys.stderr, flush=True)
            drain_task.append(
                loop.create_task(coordinator.drain_and_stop()))

    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(
                sig, request_drain, signal.Signals(sig).name)
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            pass

    print(f"repro coordinate: listening on "
          f"http://{config.host}:{coordinator.port} "
          f"({len(config.nodes)} static node(s), "
          f"heartbeat {config.heartbeat_interval:g}s, "
          f"node timeout {config.node_timeout:g}s)",
          flush=True)
    if ready is not None:
        ready(coordinator)
    await coordinator._stopped.wait()
    drained = True
    if drain_task:
        drained = drain_task[0].result()
    print("repro coordinate: drained clean, bye" if drained
          else "repro coordinate: drain timeout hit, flights unresolved",
          file=sys.stderr, flush=True)
    return 0 if drained else 1


def coordinate(config: CoordinatorConfig | None = None) -> int:
    """Blocking entrypoint behind ``repro coordinate``."""
    return asyncio.run(_coordinate(config or CoordinatorConfig()))


class CoordinatorThread:
    """A :class:`ClusterCoordinator` on a background thread + event loop.

    The in-process harness for tests, the cluster load benchmark and
    the chaos drill — mirrors
    :class:`~repro.service.daemon.ServiceThread`.
    """

    def __init__(self, config: CoordinatorConfig | None = None):
        self.config = config or CoordinatorConfig(port=0)
        self.coordinator: ClusterCoordinator | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self.drained: bool | None = None

    @property
    def base_url(self) -> str:
        assert (self.coordinator is not None
                and self.coordinator.port is not None)
        return f"http://{self.config.host}:{self.coordinator.port}"

    def start(self) -> "CoordinatorThread":
        def runner() -> None:
            loop = asyncio.new_event_loop()
            self._loop = loop
            asyncio.set_event_loop(loop)

            async def boot():
                self.coordinator = ClusterCoordinator(self.config)
                await self.coordinator.start()
                self._ready.set()
                await self.coordinator._stopped.wait()

            try:
                loop.run_until_complete(boot())
            finally:
                loop.close()

        self._thread = threading.Thread(
            target=runner, name="repro-coordinate", daemon=True)
        self._thread.start()
        if not self._ready.wait(30.0):
            raise RuntimeError("coordinator failed to start within 30s")
        return self

    def call(self, fn, *args):
        """Run ``fn(coordinator, *args)`` on the loop; returns its value."""
        assert self._loop is not None

        async def wrapper():
            return fn(self.coordinator, *args)

        return asyncio.run_coroutine_threadsafe(
            wrapper(), self._loop).result(30.0)

    def stop(self, timeout: float = 60.0) -> bool:
        assert self._loop is not None and self._thread is not None
        future = asyncio.run_coroutine_threadsafe(
            self.coordinator.drain_and_stop(), self._loop)
        self.drained = future.result(timeout)
        self._thread.join(timeout)
        return bool(self.drained)

    def __enter__(self) -> "CoordinatorThread":
        return self.start()

    def __exit__(self, *exc) -> None:
        if self._thread is not None and self._thread.is_alive():
            self.stop()
