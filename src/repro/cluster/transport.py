"""Async JSON-over-HTTP client for intra-cluster calls.

The daemons' HTTP dialect is deliberately tiny (HTTP/1.1, one request
per connection, ``Connection: close``), so the matching client is a
hundred lines over ``asyncio.open_connection`` — no thread pool detour
through ``urllib``, which matters because the coordinator drives dozens
of concurrent worker calls from one event loop.

Raises the usual connection-shaped exceptions (:class:`OSError`,
:class:`asyncio.TimeoutError`) on transport failure; HTTP error statuses
are *returned*, not raised — the caller decides what a 404 or 429 from a
worker means for routing.
"""

from __future__ import annotations

import asyncio
import json
import urllib.parse
from typing import Any


async def request(method: str, url: str, payload: Any | None = None,
                  timeout: float = 10.0) -> tuple[int, dict[str, str], bytes]:
    """One HTTP exchange; returns (status, lowercase headers, body)."""
    parts = urllib.parse.urlsplit(url)
    if parts.scheme != "http":
        raise OSError(f"unsupported URL scheme in {url!r} (http only)")
    host = parts.hostname or "127.0.0.1"
    port = parts.port or 80
    path = parts.path or "/"
    if parts.query:
        path += "?" + parts.query
    body = json.dumps(payload).encode() if payload is not None else b""

    async def exchange() -> tuple[int, dict[str, str], bytes]:
        reader, writer = await asyncio.open_connection(host, port)
        try:
            head = [
                f"{method} {path} HTTP/1.1",
                f"Host: {host}:{port}",
                "Connection: close",
                f"Content-Length: {len(body)}",
            ]
            if body:
                head.append("Content-Type: application/json")
            writer.write(("\r\n".join(head) + "\r\n\r\n").encode() + body)
            await writer.drain()

            status_line = await reader.readline()
            parts_ = status_line.decode("latin-1").split(None, 2)
            if len(parts_) < 2 or not parts_[1].isdigit():
                raise OSError(f"malformed status line from {url!r}: "
                              f"{status_line!r}")
            status = int(parts_[1])
            headers: dict[str, str] = {}
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _, value = line.decode("latin-1").partition(":")
                headers[name.strip().lower()] = value.strip()
            length = headers.get("content-length")
            data = (await reader.readexactly(int(length))
                    if length is not None else await reader.read())
            return status, headers, data
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    try:
        return await asyncio.wait_for(exchange(), timeout)
    except asyncio.IncompleteReadError as exc:
        raise OSError(f"connection to {url!r} closed mid-response") from exc


async def request_json(method: str, url: str, payload: Any | None = None,
                       timeout: float = 10.0
                       ) -> tuple[int, dict[str, str], Any]:
    """Like :func:`request` but decodes the body as JSON (None if empty
    or undecodable — callers branch on the status first)."""
    status, headers, body = await request(method, url, payload, timeout)
    try:
        data = json.loads(body.decode() or "null")
    except (ValueError, UnicodeDecodeError):
        data = None
    return status, headers, data
