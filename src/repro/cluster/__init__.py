"""Fault-tolerant simulation fleet: coordinator, membership, routing.

The cluster layer promotes :mod:`repro.service` from one daemon to a
fleet: a coordinator (``repro coordinate``) consistent-hashes run-cache
content keys across N registered ``repro serve`` workers, tracks node
health by heartbeat, fails a dead node's in-flight jobs over to
surviving shards as *uncharged* retries, coalesces duplicate keys
cluster-wide, degrades to in-process serial execution when the fleet
shrinks to zero, and federates ``/metrics`` across the fleet.

Because simulations are pure functions of the content key, none of that
machinery can change a result — only where and how many times it is
computed.  See ``DESIGN.md`` §10 for the membership/failover protocol.

Lazy exports (PEP 562), mirroring :mod:`repro.service`.
"""

from __future__ import annotations

_EXPORTS = {
    "HashRing": "ring",
    "Membership": "membership",
    "Node": "membership",
    "ALIVE": "membership",
    "SUSPECT": "membership",
    "DEAD": "membership",
    "LEFT": "membership",
    "ClusterCoordinator": "coordinator",
    "CoordinatorConfig": "coordinator",
    "CoordinatorThread": "coordinator",
    "coordinate": "coordinator",
    "merge_samples": "federation",
    "render_federated": "federation",
    "request_json": "transport",
    "cluster_chaos_smoke": "chaos",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    module = importlib.import_module(f".{module_name}", __name__)
    value = getattr(module, name)
    globals()[name] = value  # cache for the next lookup
    return value


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
