"""Fleet membership: who is in the cluster and how sure we are.

Heartbeat-based failure detection with an intermediate *suspect* state,
mirroring the two-threshold design of SWIM-style detectors but kept
deliberately centralized (the coordinator is the only observer — no
gossip needed at this fleet size):

``ALIVE``    heartbeating inside ``suspect_after``
``SUSPECT``  one missed beat past ``suspect_after`` — still routable
             (new flights may land on it) but flagged in gauges; real
             fleets page on suspects long before deads
``DEAD``     silent past ``node_timeout`` — unroutable, and every
             in-flight job assigned to it is failed over
``LEFT``     deregistered through the drain path — unroutable, but
             *not* failed over eagerly (the departing worker finishes
             its accepted jobs during its drain window)

A dead or left node that heartbeats again is *resurrected*: same id,
``generation + 1``.  The generation bump lets the coordinator discard
stale state tied to the previous incarnation (e.g. a poll loop that
slept through death and rebirth must not mistake the new process for
the one that owned its job).

The clock is injectable for deterministic tests; production uses
``time.monotonic``.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Any, Callable

ALIVE, SUSPECT, DEAD, LEFT = "alive", "suspect", "dead", "left"


@dataclasses.dataclass
class Node:
    """One worker daemon as the coordinator sees it."""

    node_id: str
    url: str
    state: str = ALIVE
    static: bool = False       # from --nodes/$REPRO_CLUSTER_NODES (probed,
    #                            not heartbeating)
    generation: int = 0        # bumps on resurrection
    registered_at: float = 0.0
    last_heartbeat: float = 0.0
    heartbeats: int = 0
    load: dict[str, Any] = dataclasses.field(default_factory=dict)

    def describe(self, now: float) -> dict:
        return {
            "id": self.node_id,
            "url": self.url,
            "state": self.state,
            "static": self.static,
            "generation": self.generation,
            "heartbeats": self.heartbeats,
            "age": round(now - self.registered_at, 3),
            "silent_for": round(now - self.last_heartbeat, 3),
            "load": self.load,
        }


class Membership:
    """The coordinator's node table + the ALIVE/SUSPECT/DEAD/LEFT machine.

    Pure bookkeeping: :meth:`sweep` *reports* transitions and the
    coordinator acts on them (ring updates, failover) — keeping policy
    out of this class makes the state machine unit-testable with a fake
    clock.
    """

    def __init__(self, heartbeat_interval: float = 1.0,
                 node_timeout: float = 5.0,
                 clock: Callable[[], float] = time.monotonic):
        self.heartbeat_interval = heartbeat_interval
        # Suspect after ~2 missed beats, dead after node_timeout; keep
        # the thresholds ordered even with odd configurations.
        self.node_timeout = max(node_timeout, heartbeat_interval * 2)
        self.suspect_after = min(
            max(heartbeat_interval * 2.5, 0.1), self.node_timeout * 0.75)
        self.clock = clock
        self.nodes: dict[str, Node] = {}

    # ------------------------------------------------------------- queries
    def get(self, node_id: str) -> Node | None:
        return self.nodes.get(node_id)

    def routable(self) -> list[Node]:
        """Nodes new flights may be sent to (alive or merely suspect)."""
        return [n for n in self.nodes.values()
                if n.state in (ALIVE, SUSPECT)]

    def counts(self) -> dict[str, int]:
        out = {ALIVE: 0, SUSPECT: 0, DEAD: 0, LEFT: 0}
        for node in self.nodes.values():
            out[node.state] += 1
        return out

    def describe(self) -> list[dict]:
        now = self.clock()
        return [node.describe(now)
                for node in sorted(self.nodes.values(),
                                   key=lambda n: n.node_id)]

    # --------------------------------------------------------- transitions
    def register(self, node_id: str, url: str, static: bool = False) -> Node:
        """Join (or rejoin) the fleet.  Rejoining a dead/left id is a
        resurrection: the generation bumps so stale per-incarnation
        state can be recognized and discarded."""
        now = self.clock()
        node = self.nodes.get(node_id)
        if node is None:
            node = Node(node_id=node_id, url=url, static=static,
                        registered_at=now, last_heartbeat=now)
            self.nodes[node_id] = node
            return node
        if node.state in (DEAD, LEFT):
            node.generation += 1
            node.registered_at = now
        node.url = url
        node.static = static or node.static
        node.state = ALIVE
        node.last_heartbeat = now
        return node

    def heartbeat(self, node_id: str,
                  load: dict[str, Any] | None = None) -> Node | None:
        """Record a beat; None for an unknown id (the caller answers 404
        so the worker re-registers).  A beat from a dead/left node is a
        resurrection via :meth:`register`."""
        node = self.nodes.get(node_id)
        if node is None:
            return None
        if node.state in (DEAD, LEFT):
            self.register(node_id, node.url, static=node.static)
        node.state = ALIVE
        node.last_heartbeat = self.clock()
        node.heartbeats += 1
        if load is not None:
            node.load = load
        return node

    def deregister(self, node_id: str) -> Node | None:
        """Drain-aware departure: unroutable, but not failed over."""
        node = self.nodes.get(node_id)
        if node is not None and node.state != DEAD:
            node.state = LEFT
        return node

    def mark_dead(self, node_id: str) -> Node | None:
        """Direct declaration (connection refused beats the sweep to it).
        Returns the node iff this call performed the ALIVE/SUSPECT→DEAD
        transition — the caller owes a failover exactly then."""
        node = self.nodes.get(node_id)
        if node is None or node.state in (DEAD, LEFT):
            return None
        node.state = DEAD
        return node

    def sweep(self) -> list[Node]:
        """Apply the timeout thresholds; returns the *newly dead* nodes
        (suspect flips happen silently — they only move gauges)."""
        now = self.clock()
        died: list[Node] = []
        for node in self.nodes.values():
            if node.state not in (ALIVE, SUSPECT):
                continue
            silent = now - node.last_heartbeat
            if silent >= self.node_timeout:
                node.state = DEAD
                died.append(node)
            elif silent >= self.suspect_after:
                node.state = SUSPECT
        return died
