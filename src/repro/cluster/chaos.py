"""Cluster chaos drill: kill and partition workers mid-campaign.

``repro chaos --cluster`` is the fleet-level analog of the batch and
service drills: with a *seeded* fault plan installed, a real coordinator
routes a duplicated grid across real worker subprocesses while

* one worker is SIGKILLed by a ``node_kill`` fault on a specific
  heartbeat (deterministically mid-campaign — the fault key is
  ``"{node_id}/hb{seq}"``), and
* another worker is partitioned by a ``heartbeat_loss`` fault — its
  membership loop goes silent long enough to be declared dead while the
  process keeps running (orphaned jobs keep simulating; wasted, never
  wrong).

The fleet walks the whole degradation ladder — failover to the
surviving shard, then (both nodes unroutable) in-process serial
fallback at the coordinator — and the drill passes iff **every**
submitted job completes with results bit-identical to a clean serial
in-process run, the killed worker really died by SIGKILL, the
partitioned worker still drains cleanly on SIGTERM, and the coordinator
drains clean.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path
from typing import Callable

from ..faults import FaultPlan, FaultSpec, uninstall
from ..harness.cache import ResultCache
from ..harness.parallel import ParallelRunner
from ..service.client import ServiceClient
from .coordinator import CoordinatorConfig, CoordinatorThread

#: Drill cadence: fast heartbeats so death detection fits in seconds.
HEARTBEAT = 0.5
NODE_TIMEOUT = 2.0


def cluster_chaos_plan(seed: int = 0,
                       state_dir: str | Path | None = None) -> FaultPlan:
    """Partition w2 early, SIGKILL w1 a beat later.

    Beat 4 lands ~2s into the worker's life — inside the campaign for
    any grid that keeps a one-core fleet busy a few seconds.  The
    partition outlives the campaign (``hang_seconds``) so the fleet
    really shrinks to zero and the local-fallback path runs.
    """
    return FaultPlan(
        seed=seed,
        state_dir=state_dir,
        specs=[
            FaultSpec(site="node", kind="heartbeat_loss", match="w2/hb4",
                      times=1, hang_seconds=8.0),
            FaultSpec(site="node", kind="node_kill", match="w1/hb6",
                      times=1),
        ],
    )


def _spawn_worker(node_id: str, coordinator_url: str, log_path: Path,
                  cache_dir: Path) -> subprocess.Popen:
    """Start a real ``repro serve`` worker subprocess joined to the
    coordinator; inherits $REPRO_FAULTS so node faults fire in it."""
    import repro

    env = dict(os.environ)
    pkg_root = str(Path(repro.__file__).resolve().parent.parent)
    env["PYTHONPATH"] = pkg_root + os.pathsep + env.get("PYTHONPATH", "")
    log = open(log_path, "w")
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", "0", "--jobs", "1", "--retries", "3",
            "--cache-dir", str(cache_dir / node_id),
            "--register", coordinator_url,
            "--node-id", node_id,
            "--heartbeat-interval", str(HEARTBEAT),
        ],
        stdout=log, stderr=subprocess.STDOUT, env=env,
    )


def cluster_chaos_smoke(
    seed: int = 0,
    scale: str = "test",
    workloads: tuple[str, ...] = ("gather", "pchase", "bsearch"),
    policies: tuple[str, ...] = ("none", "fence", "levioso"),
    log: Callable[[str], None] | None = print,
) -> bool:
    """Seeded fleet fault drill; True iff recovery was bit-identical."""

    def say(message: str) -> None:
        if log is not None:
            log(message)

    pairs = [(w, p) for w in workloads for p in policies]

    uninstall()
    reference = ParallelRunner(scale=scale, jobs=1)
    expected = {
        (w, p): ResultCache.serialize(reference.run(w, p).slim())
        for w, p in pairs
    }
    say(f"reference: {reference.simulations} clean serial simulations")

    work_dir = Path(tempfile.mkdtemp(prefix="repro-cluster-chaos-"))
    plan = cluster_chaos_plan(seed, state_dir=work_dir / "faults").install()
    workers: dict[str, subprocess.Popen] = {}
    ok = True
    try:
        config = CoordinatorConfig(
            port=0, heartbeat_interval=HEARTBEAT, node_timeout=NODE_TIMEOUT,
            max_flights=max(len(pairs) * 2, 16), drain_timeout=120.0)
        with CoordinatorThread(config) as coord:
            client = ServiceClient(coord.base_url)
            for node_id in ("w1", "w2"):
                workers[node_id] = _spawn_worker(
                    node_id, coord.base_url, work_dir / f"{node_id}.log",
                    work_dir / "caches")
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                if client.healthz()["nodes"]["alive"] >= 2:
                    break
                time.sleep(0.1)
            else:
                say("FLEET NEVER FORMED: workers did not register in 30s")
                return False
            say(f"fleet formed: 2 workers registered at {coord.base_url}")

            runs = [
                {"workload": w, "policy": p, "scale": scale}
                for w, p in pairs
            ] * 2  # duplicates: cluster-wide coalescing under fire too
            results = client.run_grid(runs, timeout=240.0)
            say(f"cluster resolved {len(results)} job(s) under chaos; "
                f"faults fired: {plan.fired()}")
            for job, record in results:
                got = ResultCache.serialize(record)
                want = expected[(job["request"]["workload"],
                                 job["request"]["policy"])]
                if got != want:
                    say(f"MISMATCH {job['request']['workload']}/"
                        f"{job['request']['policy']}: cluster record "
                        f"differs from clean serial run")
                    ok = False

            metrics = client.metrics()
            failovers = metrics.get("repro_cluster_failovers_total", 0.0)
            coalesced = metrics.get(
                "repro_cluster_cross_node_coalesced_total", 0.0)
            say(f"failovers: {failovers:g}, cross-node coalesced: "
                f"{coalesced:g}, nodes alive: "
                f"{metrics.get('repro_cluster_nodes_alive', 0):g}")
            if failovers < 1:
                say("NO FAILOVER: the node kill never rerouted a flight "
                    "(campaign may have finished before the fault)")
                ok = False
            if coalesced < 1:
                say("NO CLUSTER COALESCING observed for duplicates")
                ok = False
            if plan.fired() < 2:
                say(f"FAULTS DID NOT ALL FIRE: {plan.fired()}/2")
                ok = False

            # The killed worker must be SIGKILL-dead; the partitioned
            # one must still drain clean on SIGTERM (exit 0).
            killed = workers["w1"].wait(timeout=30)
            if killed != -signal.SIGKILL:
                say(f"w1 exit {killed}, expected -SIGKILL")
                ok = False
            workers["w2"].send_signal(signal.SIGTERM)
            survivor = workers["w2"].wait(timeout=60)
            if survivor != 0:
                say(f"SURVIVOR DRAIN FAILED: w2 exit {survivor}")
                ok = False
            drained = coord.stop()
        if not drained:
            say("COORDINATOR DRAIN FAILED: flights left unresolved")
            ok = False
        say("cluster chaos: " + (
            "PASS — fleet-served results bit-identical to the clean "
            "serial run through a node kill and a partition" if ok
            else "FAIL"))
        if not ok:
            for node_id in ("w1", "w2"):
                log_path = work_dir / f"{node_id}.log"
                if log_path.exists():
                    say(f"--- {node_id} log ---\n{log_path.read_text()}")
        return ok
    finally:
        uninstall()
        for proc in workers.values():
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)
        import shutil

        shutil.rmtree(work_dir, ignore_errors=True)
