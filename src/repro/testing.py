"""Hypothesis strategies for differential testing.

Generates structured, always-terminating mini-RISC programs: straight-line
ALU blocks, scratch-buffer loads/stores (including pointer-like tainted
addressing), if/else diamonds and fixed-trip-count loops.  Used by this
repository's property tests, and exported so downstream users extending the
core or adding policies can differential-test their changes the same way::

    from repro.testing import programs

    @given(source=programs())
    def test_my_policy_is_timing_only(source): ...

Requires ``hypothesis`` (a dev dependency, not needed at runtime).
"""

from __future__ import annotations

from hypothesis import strategies as st

# Registers the generator may clobber freely.
DATA_REGS = ["t0", "t1", "t2", "a0", "a1", "a2", "a3", "s0", "s1", "s2"]
# s8 = scratch base, s9/s10 = loop counters, s11 = generator temp.
SCRATCH_SLOTS = 16

_label_counter = 0


def _label() -> str:
    global _label_counter
    _label_counter += 1
    return f"H{_label_counter}"


reg = st.sampled_from(DATA_REGS)
imm = st.integers(min_value=-64, max_value=64)
slot = st.integers(min_value=0, max_value=SCRATCH_SLOTS - 1)


@st.composite
def alu_stmt(draw) -> list[str]:
    op = draw(st.sampled_from(["add", "sub", "and", "or", "xor", "mul"]))
    rd, rs1, rs2 = draw(reg), draw(reg), draw(reg)
    return [f"    {op} {rd}, {rs1}, {rs2}"]


@st.composite
def alui_stmt(draw) -> list[str]:
    op = draw(st.sampled_from(["addi", "andi", "ori", "xori"]))
    rd, rs1 = draw(reg), draw(reg)
    value = draw(imm)
    return [f"    {op} {rd}, {rs1}, {value}"]


@st.composite
def store_stmt(draw) -> list[str]:
    rs = draw(reg)
    offset = draw(slot) * 8
    return [f"    sd {rs}, {offset}(s8)"]


@st.composite
def load_stmt(draw) -> list[str]:
    rd = draw(reg)
    offset = draw(slot) * 8
    return [f"    ld {rd}, {offset}(s8)"]


@st.composite
def tainted_load_stmt(draw) -> list[str]:
    """Pointer-like access: index computed from previously loaded data."""
    rd, rs = draw(reg), draw(reg)
    offset = draw(slot) * 8
    return [
        f"    ld s11, {offset}(s8)",
        f"    andi s11, s11, {(SCRATCH_SLOTS - 1) * 8}",
        "    andi s11, s11, -8",
        "    add s11, s11, s8",
        f"    ld {rd}, 0(s11)",
        f"    add {rd}, {rd}, {rs}",
    ]


@st.composite
def diamond_stmt(draw) -> list[str]:
    cond_reg = draw(reg)
    opcode = draw(st.sampled_from(["beqz", "bnez"]))
    then_body = draw(st.lists(simple_stmt(), min_size=1, max_size=3))
    else_body = draw(st.lists(simple_stmt(), min_size=0, max_size=3))
    else_label, join_label = _label(), _label()
    lines = [f"    {opcode} {cond_reg}, {else_label}"]
    for body in then_body:
        lines.extend(body)
    lines.append(f"    j {join_label}")
    lines.append(f"{else_label}:")
    for body in else_body:
        lines.extend(body)
    lines.append(f"{join_label}:")
    return lines


@st.composite
def loop_stmt(draw) -> list[str]:
    trips = draw(st.integers(min_value=1, max_value=6))
    body = draw(st.lists(simple_stmt(), min_size=1, max_size=4))
    head = _label()
    lines = [f"    li s9, {trips}", f"{head}:"]
    for stmt in body:
        lines.extend(stmt)
    lines.append("    addi s9, s9, -1")
    lines.append(f"    bnez s9, {head}")
    return lines


def simple_stmt():
    return st.one_of(alu_stmt(), alui_stmt(), store_stmt(), load_stmt())


def top_stmt():
    return st.one_of(
        alu_stmt(),
        alui_stmt(),
        store_stmt(),
        load_stmt(),
        tainted_load_stmt(),
        diamond_stmt(),
        loop_stmt(),
    )


@st.composite
def programs(draw) -> str:
    """A complete assembly source: prologue + random body + halt."""
    seeds = draw(st.lists(imm, min_size=3, max_size=6))
    body = draw(st.lists(top_stmt(), min_size=3, max_size=10))
    lines = [
        ".data",
        f"scratch: .zero {SCRATCH_SLOTS * 8}",
        ".text",
        "    la s8, scratch",
    ]
    for i, value in enumerate(seeds):
        lines.append(f"    li {DATA_REGS[i % len(DATA_REGS)]}, {value}")
    for stmt in body:
        lines.extend(stmt)
    lines.append("    halt")
    return "\n".join(lines)
