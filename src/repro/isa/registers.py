"""Architectural register file definition for the mini-RISC ISA.

The ISA has 32 general-purpose 64-bit integer registers, ``x0``-``x31``.
``x0`` is hardwired to zero, like RISC-V.  A RISC-V-flavoured ABI naming
scheme is provided so that hand-written assembly stays readable.
"""

from __future__ import annotations

from ..errors import IsaError

NUM_REGS = 32

XLEN = 64
"""Register width in bits."""

WORD_MASK = (1 << XLEN) - 1
"""Mask used to wrap arithmetic to 64 bits."""

ZERO_REG = 0
"""Index of the hardwired-zero register."""

_ABI_NAMES = (
    "zero", "ra", "sp", "gp", "tp",
    "t0", "t1", "t2",
    "s0", "s1",
    "a0", "a1", "a2", "a3", "a4", "a5", "a6", "a7",
    "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "s10", "s11",
    "t3", "t4", "t5", "t6",
)

ABI_NAMES: tuple[str, ...] = _ABI_NAMES
"""ABI name of register ``i`` is ``ABI_NAMES[i]``."""

_NAME_TO_INDEX: dict[str, int] = {}
for _i, _name in enumerate(_ABI_NAMES):
    _NAME_TO_INDEX[_name] = _i
for _i in range(NUM_REGS):
    _NAME_TO_INDEX[f"x{_i}"] = _i
# 'fp' is the conventional alias for s0.
_NAME_TO_INDEX["fp"] = 8


def parse_register(name: str) -> int:
    """Resolve a register name (``x7``, ``a0``, ``fp``...) to its index.

    Raises :class:`IsaError` for unknown names or out-of-range ``xN``.
    """
    key = name.strip().lower()
    if key in _NAME_TO_INDEX:
        return _NAME_TO_INDEX[key]
    raise IsaError(f"unknown register {name!r}")


def register_name(index: int) -> str:
    """Return the ABI name for a register index."""
    if not 0 <= index < NUM_REGS:
        raise IsaError(f"register index {index} out of range 0..{NUM_REGS - 1}")
    return _ABI_NAMES[index]


def to_signed(value: int) -> int:
    """Interpret a 64-bit unsigned word as a signed two's-complement value."""
    value &= WORD_MASK
    if value >= 1 << (XLEN - 1):
        value -= 1 << XLEN
    return value


def to_unsigned(value: int) -> int:
    """Wrap a Python int into the unsigned 64-bit register domain."""
    return value & WORD_MASK
