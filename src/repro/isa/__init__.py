"""Mini-RISC instruction-set architecture.

The contract between the compiler toolchain (:mod:`repro.asm`,
:mod:`repro.compiler`) and the machines (:mod:`repro.functional`,
:mod:`repro.uarch`).
"""

from .instruction import INSTRUCTION_BYTES, Instruction
from .opcodes import CODE_TO_OPCODE, MNEMONIC_TO_OPCODE, FuncClass, Opcode, OperandFormat
from .registers import (
    ABI_NAMES,
    NUM_REGS,
    WORD_MASK,
    XLEN,
    ZERO_REG,
    parse_register,
    register_name,
    to_signed,
    to_unsigned,
)

__all__ = [
    "ABI_NAMES",
    "CODE_TO_OPCODE",
    "FuncClass",
    "INSTRUCTION_BYTES",
    "Instruction",
    "MNEMONIC_TO_OPCODE",
    "NUM_REGS",
    "Opcode",
    "OperandFormat",
    "WORD_MASK",
    "XLEN",
    "ZERO_REG",
    "parse_register",
    "register_name",
    "to_signed",
    "to_unsigned",
]
