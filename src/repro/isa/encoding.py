"""Binary encoding of instructions.

Instructions are encoded into fixed 12-byte records: a 32-bit header packing
``opcode/rd/rs1/rs2`` followed by a 64-bit little-endian immediate.  The
encoded form is a *serialization artifact* (program images on disk, hashing,
round-trip testing); architecturally each instruction still occupies 4 bytes
of PC space, mirroring how gem5 decouples its decoded micro-op objects from
the fetch stream.
"""

from __future__ import annotations

import struct

from ..errors import EncodingError
from .instruction import Instruction
from .opcodes import CODE_TO_OPCODE

RECORD_BYTES = 12
"""Size of one encoded instruction record."""

_HEADER = struct.Struct("<I")
_IMM = struct.Struct("<q")

_IMM_MIN = -(1 << 63)
_IMM_MAX = (1 << 63) - 1


def encode(inst: Instruction) -> bytes:
    """Encode one instruction into its 12-byte record."""
    if not _IMM_MIN <= inst.imm <= _IMM_MAX:
        raise EncodingError(
            f"immediate {inst.imm} of {inst.opcode.mnemonic} exceeds 64-bit signed range"
        )
    header = (
        (inst.opcode.code & 0xFF)
        | ((inst.rd & 0x1F) << 8)
        | ((inst.rs1 & 0x1F) << 13)
        | ((inst.rs2 & 0x1F) << 18)
    )
    return _HEADER.pack(header) + _IMM.pack(inst.imm)


def decode(record: bytes, pc: int = 0) -> Instruction:
    """Decode a 12-byte record back into an :class:`Instruction`."""
    if len(record) != RECORD_BYTES:
        raise EncodingError(f"expected {RECORD_BYTES} bytes, got {len(record)}")
    (header,) = _HEADER.unpack(record[:4])
    (imm,) = _IMM.unpack(record[4:])
    code = header & 0xFF
    if code not in CODE_TO_OPCODE:
        raise EncodingError(f"unknown opcode value {code}")
    return Instruction(
        opcode=CODE_TO_OPCODE[code],
        rd=(header >> 8) & 0x1F,
        rs1=(header >> 13) & 0x1F,
        rs2=(header >> 18) & 0x1F,
        imm=imm,
        pc=pc,
    )


def encode_program_text(instructions: list[Instruction]) -> bytes:
    """Encode an instruction sequence into a flat image."""
    return b"".join(encode(inst) for inst in instructions)


def decode_program_text(image: bytes, base_pc: int) -> list[Instruction]:
    """Decode a flat image produced by :func:`encode_program_text`.

    PCs are reassigned sequentially from ``base_pc`` with the architectural
    4-byte stride.
    """
    if len(image) % RECORD_BYTES:
        raise EncodingError(
            f"image length {len(image)} is not a multiple of {RECORD_BYTES}"
        )
    out = []
    for i in range(0, len(image), RECORD_BYTES):
        out.append(decode(image[i : i + RECORD_BYTES], pc=base_pc + (i // RECORD_BYTES) * 4))
    return out
