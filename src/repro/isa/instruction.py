"""The :class:`Instruction` record shared by assembler, compiler and cores.

An instruction is immutable once assembled.  Dynamic (per-execution) state
lives in the simulators, never here, so one :class:`~repro.asm.program.Program`
can be executed concurrently by many simulator instances.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import IsaError
from .opcodes import Opcode, OperandFormat
from .registers import ZERO_REG, register_name

INSTRUCTION_BYTES = 4
"""Architectural size of one instruction; PCs advance by this amount."""


@dataclass(frozen=True)
class Instruction:
    """One static instruction.

    Attributes:
        opcode: the operation.
        rd: destination register index (0 when unused).
        rs1: first source register index (0 when unused).
        rs2: second source register index (0 when unused).
        imm: immediate operand / branch displacement in *bytes* / absolute
            jump target for ``JAL`` (we store resolved absolute targets for
            control flow to keep the simulators simple).
        pc: byte address of this instruction, filled in at layout time.
        label: label attached to this address in the source, if any.
        source_line: 1-based line in the assembly source, for diagnostics.
    """

    opcode: Opcode
    rd: int = 0
    rs1: int = 0
    rs2: int = 0
    imm: int = 0
    pc: int = 0
    label: str | None = field(default=None, compare=False)
    source_line: int | None = field(default=None, compare=False)

    def __post_init__(self) -> None:
        for name in ("rd", "rs1", "rs2"):
            reg = getattr(self, name)
            if not 0 <= reg < 32:
                raise IsaError(f"{name}={reg} out of range for {self.opcode.mnemonic}")
        # Precompute the classification flags the simulators query millions
        # of times per run; enum-property chains are too slow on this path.
        op = self.opcode
        set_attr = object.__setattr__
        set_attr(self, "is_load", op.is_load)
        set_attr(self, "is_store", op.is_store)
        set_attr(self, "is_mem", op.is_mem)
        set_attr(self, "is_branch", op.is_branch)
        set_attr(self, "is_jump", op.is_jump)
        set_attr(self, "is_control", op.is_control)
        set_attr(self, "is_halt", op is Opcode.HALT)
        set_attr(self, "is_indirect_jump", op is Opcode.JALR)
        set_attr(self, "mem_size", op.access_size if op.is_mem else None)
        set_attr(self, "fallthrough", self.pc + INSTRUCTION_BYTES)
        dest = self.rd if (op.writes_rd and self.rd != ZERO_REG) else None
        set_attr(self, "_dest", dest)
        sources = []
        if op.reads_rs1 and self.rs1 != ZERO_REG:
            sources.append(self.rs1)
        if op.reads_rs2 and self.rs2 != ZERO_REG:
            sources.append(self.rs2)
        set_attr(self, "_sources", tuple(sources))

    @property
    def branch_target(self) -> int:
        """Absolute taken-target for branches/JAL (stored resolved in imm)."""
        if not (self.is_branch or self.opcode is Opcode.JAL):
            raise IsaError(f"{self.opcode.mnemonic} has no static branch target")
        return self.imm

    def dest_reg(self) -> int | None:
        """Architectural destination register, or None (x0 writes discarded)."""
        return self._dest

    def source_regs(self) -> tuple[int, ...]:
        """Architectural source registers actually read (x0 excluded)."""
        return self._sources

    # ------------------------------------------------------------------ text
    def text(self) -> str:
        """Disassemble to canonical assembly text (resolved targets as hex)."""
        op = self.opcode
        fmt = op.fmt
        r = register_name
        if op is Opcode.CFLUSH:
            return f"{op.mnemonic} {self.imm}({r(self.rs1)})"
        if op is Opcode.RDCYCLE:
            return f"{op.mnemonic} {r(self.rd)}"
        if fmt is OperandFormat.R:
            return f"{op.mnemonic} {r(self.rd)}, {r(self.rs1)}, {r(self.rs2)}"
        if fmt is OperandFormat.I:
            return f"{op.mnemonic} {r(self.rd)}, {r(self.rs1)}, {self.imm}"
        if fmt is OperandFormat.LI:
            return f"{op.mnemonic} {r(self.rd)}, {self.imm}"
        if fmt is OperandFormat.MEM:
            data_reg = self.rd if op.is_load else self.rs2
            return f"{op.mnemonic} {r(data_reg)}, {self.imm}({r(self.rs1)})"
        if fmt is OperandFormat.B:
            return f"{op.mnemonic} {r(self.rs1)}, {r(self.rs2)}, {self.imm:#x}"
        if fmt is OperandFormat.J:
            return f"{op.mnemonic} {r(self.rd)}, {self.imm:#x}"
        if fmt is OperandFormat.JR:
            return f"{op.mnemonic} {r(self.rd)}, {r(self.rs1)}, {self.imm}"
        return op.mnemonic

    def __str__(self) -> str:
        return f"{self.pc:#06x}: {self.text()}"
