"""Opcode definitions and static instruction properties.

Each opcode carries a :class:`FuncClass` (which execution unit runs it and,
indirectly, its latency) and an :class:`OperandFormat` (how its assembly
operands map onto ``rd/rs1/rs2/imm``).  Keeping these as data on the opcode
lets the assembler, the functional simulator and the out-of-order core share
a single source of truth about instruction shape.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import IsaError


class FuncClass(enum.Enum):
    """Functional class — selects execution unit and default latency."""

    INT_ALU = "int_alu"
    INT_MUL = "int_mul"
    INT_DIV = "int_div"
    LOAD = "load"
    STORE = "store"
    BRANCH = "branch"
    JUMP = "jump"
    SYSTEM = "system"


class OperandFormat(enum.Enum):
    """Assembly-operand shapes.

    ``R``     rd, rs1, rs2          (add a0, a1, a2)
    ``I``     rd, rs1, imm          (addi a0, a1, 8)
    ``LI``    rd, imm               (li a0, 1234)
    ``MEM``   rd, imm(rs1)          (ld a0, 8(sp)) / store: rs2, imm(rs1)
    ``B``     rs1, rs2, target      (beq a0, a1, label)
    ``J``     rd, target            (jal ra, label)
    ``JR``    rd, rs1, imm          (jalr ra, t0, 0)
    ``NONE``  no operands           (nop, halt)
    """

    R = "r"
    I = "i"  # noqa: E741 - conventional ISA format name
    LI = "li"
    MEM = "mem"
    B = "b"
    J = "j"
    JR = "jr"
    NONE = "none"


@dataclass(frozen=True)
class OpcodeInfo:
    """Static properties of one opcode."""

    mnemonic: str
    func_class: FuncClass
    fmt: OperandFormat
    writes_rd: bool
    reads_rs1: bool
    reads_rs2: bool
    code: int  # numeric encoding value


class Opcode(enum.Enum):
    """All opcodes of the mini-RISC ISA.

    The enum *value* is the :class:`OpcodeInfo` record; helper properties
    expose the common queries.
    """

    # -- integer ALU, register-register ------------------------------------
    ADD = OpcodeInfo("add", FuncClass.INT_ALU, OperandFormat.R, True, True, True, 1)
    SUB = OpcodeInfo("sub", FuncClass.INT_ALU, OperandFormat.R, True, True, True, 2)
    AND = OpcodeInfo("and", FuncClass.INT_ALU, OperandFormat.R, True, True, True, 3)
    OR = OpcodeInfo("or", FuncClass.INT_ALU, OperandFormat.R, True, True, True, 4)
    XOR = OpcodeInfo("xor", FuncClass.INT_ALU, OperandFormat.R, True, True, True, 5)
    SLL = OpcodeInfo("sll", FuncClass.INT_ALU, OperandFormat.R, True, True, True, 6)
    SRL = OpcodeInfo("srl", FuncClass.INT_ALU, OperandFormat.R, True, True, True, 7)
    SRA = OpcodeInfo("sra", FuncClass.INT_ALU, OperandFormat.R, True, True, True, 8)
    SLT = OpcodeInfo("slt", FuncClass.INT_ALU, OperandFormat.R, True, True, True, 9)
    SLTU = OpcodeInfo("sltu", FuncClass.INT_ALU, OperandFormat.R, True, True, True, 10)
    MUL = OpcodeInfo("mul", FuncClass.INT_MUL, OperandFormat.R, True, True, True, 11)
    MULH = OpcodeInfo("mulh", FuncClass.INT_MUL, OperandFormat.R, True, True, True, 12)
    DIV = OpcodeInfo("div", FuncClass.INT_DIV, OperandFormat.R, True, True, True, 13)
    REM = OpcodeInfo("rem", FuncClass.INT_DIV, OperandFormat.R, True, True, True, 14)

    # -- integer ALU, register-immediate ------------------------------------
    ADDI = OpcodeInfo("addi", FuncClass.INT_ALU, OperandFormat.I, True, True, False, 20)
    ANDI = OpcodeInfo("andi", FuncClass.INT_ALU, OperandFormat.I, True, True, False, 21)
    ORI = OpcodeInfo("ori", FuncClass.INT_ALU, OperandFormat.I, True, True, False, 22)
    XORI = OpcodeInfo("xori", FuncClass.INT_ALU, OperandFormat.I, True, True, False, 23)
    SLLI = OpcodeInfo("slli", FuncClass.INT_ALU, OperandFormat.I, True, True, False, 24)
    SRLI = OpcodeInfo("srli", FuncClass.INT_ALU, OperandFormat.I, True, True, False, 25)
    SRAI = OpcodeInfo("srai", FuncClass.INT_ALU, OperandFormat.I, True, True, False, 26)
    SLTI = OpcodeInfo("slti", FuncClass.INT_ALU, OperandFormat.I, True, True, False, 27)
    LI = OpcodeInfo("li", FuncClass.INT_ALU, OperandFormat.LI, True, False, False, 28)

    # -- memory --------------------------------------------------------------
    LB = OpcodeInfo("lb", FuncClass.LOAD, OperandFormat.MEM, True, True, False, 30)
    LH = OpcodeInfo("lh", FuncClass.LOAD, OperandFormat.MEM, True, True, False, 31)
    LW = OpcodeInfo("lw", FuncClass.LOAD, OperandFormat.MEM, True, True, False, 32)
    LD = OpcodeInfo("ld", FuncClass.LOAD, OperandFormat.MEM, True, True, False, 33)
    LBU = OpcodeInfo("lbu", FuncClass.LOAD, OperandFormat.MEM, True, True, False, 34)
    LHU = OpcodeInfo("lhu", FuncClass.LOAD, OperandFormat.MEM, True, True, False, 35)
    LWU = OpcodeInfo("lwu", FuncClass.LOAD, OperandFormat.MEM, True, True, False, 36)
    SB = OpcodeInfo("sb", FuncClass.STORE, OperandFormat.MEM, False, True, True, 37)
    SH = OpcodeInfo("sh", FuncClass.STORE, OperandFormat.MEM, False, True, True, 38)
    SW = OpcodeInfo("sw", FuncClass.STORE, OperandFormat.MEM, False, True, True, 39)
    SD = OpcodeInfo("sd", FuncClass.STORE, OperandFormat.MEM, False, True, True, 40)

    # -- control flow ----------------------------------------------------------
    BEQ = OpcodeInfo("beq", FuncClass.BRANCH, OperandFormat.B, False, True, True, 50)
    BNE = OpcodeInfo("bne", FuncClass.BRANCH, OperandFormat.B, False, True, True, 51)
    BLT = OpcodeInfo("blt", FuncClass.BRANCH, OperandFormat.B, False, True, True, 52)
    BGE = OpcodeInfo("bge", FuncClass.BRANCH, OperandFormat.B, False, True, True, 53)
    BLTU = OpcodeInfo("bltu", FuncClass.BRANCH, OperandFormat.B, False, True, True, 54)
    BGEU = OpcodeInfo("bgeu", FuncClass.BRANCH, OperandFormat.B, False, True, True, 55)
    JAL = OpcodeInfo("jal", FuncClass.JUMP, OperandFormat.J, True, False, False, 56)
    JALR = OpcodeInfo("jalr", FuncClass.JUMP, OperandFormat.JR, True, True, False, 57)

    # -- system ---------------------------------------------------------------
    NOP = OpcodeInfo("nop", FuncClass.INT_ALU, OperandFormat.NONE, False, False, False, 60)
    HALT = OpcodeInfo("halt", FuncClass.SYSTEM, OperandFormat.NONE, False, False, False, 61)
    FENCE = OpcodeInfo("fence", FuncClass.SYSTEM, OperandFormat.NONE, False, False, False, 62)
    # cflush: clflush-style line invalidate; executes like a load (address =
    # rs1+imm, gated by security policies as a transmitter) but writes no
    # register and returns no data.
    CFLUSH = OpcodeInfo("cflush", FuncClass.LOAD, OperandFormat.MEM, False, True, False, 63)
    # rdcycle: serializing read of the cycle counter (rdtscp-style); issues
    # only as the oldest instruction so in-program timing is meaningful.
    RDCYCLE = OpcodeInfo("rdcycle", FuncClass.SYSTEM, OperandFormat.LI, True, False, False, 64)

    # ------------------------------------------------------------------ helpers
    # mnemonic/func_class/fmt/code/writes_rd/reads_rs1/reads_rs2 and the
    # is_* classification flags are materialized as plain member attributes
    # below (after the class body): the simulators query them millions of
    # times per run, and a stored attribute beats a property chain ~5x.
    mnemonic: str
    func_class: FuncClass
    fmt: OperandFormat
    code: int
    writes_rd: bool
    reads_rs1: bool
    reads_rs2: bool
    is_load: bool
    is_store: bool
    is_mem: bool
    is_branch: bool
    is_jump: bool
    is_control: bool

    @property
    def access_size(self) -> int:
        """Bytes touched by a memory opcode (1/2/4/8); raises otherwise."""
        size = _ACCESS_SIZES.get(self)
        if size is None:
            raise IsaError(f"{self.mnemonic} is not a memory opcode")
        return size


_ACCESS_SIZES: dict[Opcode, int] = {
    Opcode.LB: 1, Opcode.LBU: 1, Opcode.SB: 1,
    Opcode.LH: 2, Opcode.LHU: 2, Opcode.SH: 2,
    Opcode.LW: 4, Opcode.LWU: 4, Opcode.SW: 4,
    Opcode.LD: 8, Opcode.SD: 8,
    Opcode.CFLUSH: 1,
}

for _op in Opcode:
    _info = _op.value
    _op.mnemonic = _info.mnemonic
    _op.func_class = _info.func_class
    _op.fmt = _info.fmt
    _op.code = _info.code
    _op.writes_rd = _info.writes_rd
    _op.reads_rs1 = _info.reads_rs1
    _op.reads_rs2 = _info.reads_rs2
    _op.is_load = _info.func_class is FuncClass.LOAD
    _op.is_store = _info.func_class is FuncClass.STORE
    _op.is_mem = _op.is_load or _op.is_store
    _op.is_branch = _info.func_class is FuncClass.BRANCH
    _op.is_jump = _info.func_class is FuncClass.JUMP
    _op.is_control = _op.is_branch or _op.is_jump or _op is Opcode.HALT
del _op, _info

MNEMONIC_TO_OPCODE: dict[str, Opcode] = {op.mnemonic: op for op in Opcode}
"""Lookup used by the assembler."""

CODE_TO_OPCODE: dict[int, Opcode] = {op.code: op for op in Opcode}
"""Lookup used by the instruction decoder."""
