"""Spectre attack gadget builders.

Two victims, matching the paper's two threat models:

* :func:`spectre_v1` — **speculatively accessed secret** (sandbox model):
  a bounds-check-bypass gadget.  The branch is trained in-bounds inside the
  program; the final, out-of-bounds trigger is architecturally skipped but
  speculatively executed, loading the secret and transmitting it through
  the probe array.
* :func:`spectre_v1_ct` — **non-speculatively accessed secret**
  (constant-time model): the victim legitimately loads its key into a
  register (as constant-time crypto code does); an attacker-shaped
  cold-predictor branch then mispredicts into architecturally dead code
  that transmits the key register.  STT-class defenses do *not* stop this;
  comprehensive ones (fence/dom/ctt/levioso) must.

Both gadgets delay branch resolution by ``cflush``-ing the condition's cache
line, exactly like real exploits, so the speculative window is wide enough
for the transmission.
"""

from __future__ import annotations

from ..asm import assemble
from ..asm.program import Program
from .channel import PROBE_SLOTS, PROBE_STRIDE


def spectre_v1(secret_byte: int = 0x5A, train_rounds: int = 24) -> Program:
    """Bounds-check bypass leaking a byte placed just past a public array.

    The public array holds zeros, so training transmissions only ever touch
    probe slot 0; a successful attack lights exactly one other slot —
    ``secret_byte``.
    """
    if not 1 <= secret_byte <= 255:
        raise ValueError("secret byte must be in 1..255 (slot 0 is training noise)")
    bound = 16
    # idx sequence: `train_rounds` in-bounds accesses, then the OOB trigger.
    idxs = [i % bound for i in range(train_rounds)]
    oob = 8 * bound  # byte offset of `secret` right past the dword array
    idxs.append(oob)

    idx_words = ", ".join(str(i) for i in idxs)
    source = f"""
.data
array:
    .zero {bound * 8}
.secret v1_secret
secret:
    .dword {secret_byte}
.public
warm_neighbor:
    .dword 0              # public data sharing the secret's cache line
.align 6
probe:
    .zero {PROBE_SLOTS * PROBE_STRIDE}
.align 6
bound:
    .dword {bound * 8}
.align 6
idx_seq:
    .dword {idx_words}
.text
    la s0, array
    la s1, probe
    la s2, idx_seq
    la s3, bound
    # The victim has recently used its secret: its cache line is warm
    # (standard Spectre-v1 precondition; modeled by touching public data
    # that shares the line).
    la t0, warm_neighbor
    ld t1, 0(t0)
    li s4, 0              # i
    li s5, {len(idxs)}
loop:
    slli t0, s4, 3
    add t0, s2, t0
    ld s6, 0(t0)          # attacker-controlled index
    cflush 0(s3)          # slow down the bounds check
    fence                 # order the flush before the bound load
    ld t1, 0(s3)          # bound (misses)
    bgeu s6, t1, skip     # bounds check: trained not-taken, trigger is taken
    add t2, s0, s6
    lbu t3, 0(t2)         # speculative secret access on the trigger
    slli t4, t3, 6        # * PROBE_STRIDE
    add t5, s1, t4
    lb t6, 0(t5)          # transmit
skip:
    addi s4, s4, 1
    bne s4, s5, loop
    halt
"""
    return assemble(source, name="spectre_v1")


def spectre_v2(secret_byte: int = 0xB4, train_rounds: int = 12) -> Program:
    """Branch-target injection (Spectre v2): BTB-trained indirect call.

    Phase 1 (attacker-controlled inputs): the victim's indirect call is
    repeatedly steered to a harmless stub — while the to-be-leaked register
    still holds a public value — training the BTB.
    Phase 2: the victim loads its key (non-speculatively) and makes the same
    indirect call with a *benign* target whose pointer load is slow; the BTB
    predicts the stub, which speculatively transmits the key register.

    Like :func:`spectre_v1_ct`, this leaks a non-speculatively accessed
    secret: STT- and NDA-class defenses do not stop it.
    """
    if not 1 <= secret_byte <= 255:
        raise ValueError("secret byte must be in 1..255")
    rounds = train_rounds + 1  # final round is the attack
    target_syms = ", ".join(["stub"] * train_rounds + ["benign"])
    value_syms = ", ".join(["public_zero"] * train_rounds + ["key"])
    source = f"""
.text
    la s1, probe
    la s0, call_targets
    la s5, value_ptrs
    # The victim has used its key recently: its line is warm (same
    # precondition as spectre_v1).
    la t0, key_warm
    ld t1, 0(t0)
    li s9, 0
    li s10, {rounds}
loop:
    slli t0, s9, 3
    add t1, s0, t0
    cflush 0(t1)          # make the target-pointer load slow every round
    fence
    add t3, s5, t0
    ld t4, 0(t3)
    ld s11, 0(t4)         # 0 during training; the key on the final round
    ld t2, 0(t1)          # call target: stub x N, then benign (resolves late)
    jalr ra, t2, 0        # ONE static call site: the BTB aliases the phases
    addi s9, s9, 1
    bne s9, s10, loop
    halt

stub:                     # harmless while s11 is public; gadget on the last
    andi t2, s11, 0xff
    slli t3, t2, 6
    add t4, s1, t3
    lb t5, 0(t4)          # transmit
    ret
benign:
    ret

.data
.secret v2_key
key:
    .dword {secret_byte}
.public
key_warm:
    .dword 0              # public data sharing the key's cache line
.align 6
public_zero:
    .dword 0
.align 6
probe:
    .zero {PROBE_SLOTS * PROBE_STRIDE}
.align 6
call_targets:
    .dword {target_syms}
value_ptrs:
    .dword {value_syms}
"""
    return assemble(source, name="spectre_v2")


def spectre_v1_ct(secret_byte: int = 0xA7) -> Program:
    """Leak of a *non-speculatively* loaded secret (constant-time model).

    The victim loads its key register legitimately.  A never-taken-path
    gadget sits under a branch that is architecturally always taken but
    cold in the predictor (predicted weakly not-taken on first sight), so
    the gadget runs exactly once, speculatively.
    """
    if not 1 <= secret_byte <= 255:
        raise ValueError("secret byte must be in 1..255")
    source = f"""
.data
.secret ct_key
key:
    .dword {secret_byte}
.public
.align 6
probe:
    .zero {PROBE_SLOTS * PROBE_STRIDE}
.align 6
cond:
    .dword 1
.text
    # --- constant-time victim: loads its key non-speculatively ---
    la t0, key
    ld s11, 0(t0)         # the secret, now in a register
    li s10, 0
    addi s10, s10, 7      # some register-only work
    xor s10, s10, s11
    # --- attacker-shaped control flow ---
    la s1, probe
    la s2, cond
    cflush 0(s2)          # make the condition load slow
    fence                 # order the flush before the condition load
    ld t1, 0(s2)          # cond == 1, but resolves late
    bnez t1, after        # always taken; cold predictor says not-taken
    # architecturally dead gadget (speculated into exactly once):
    andi t2, s11, 0xff
    slli t3, t2, 6
    add t4, s1, t3
    lb t5, 0(t4)          # transmit the key byte
after:
    halt
"""
    return assemble(source, name="spectre_v1_ct")
