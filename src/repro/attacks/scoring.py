"""Attack evaluation harness (Fig. 5 data).

Runs a gadget under every policy and scores whether the planted secret was
recovered from the cache covert channel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..asm.program import Program
from ..secure import make_policy
from ..uarch import CoreConfig, OooCore
from .channel import ChannelReading, read_probe_array
from .gadgets import spectre_v1, spectre_v1_ct, spectre_v2

ATTACKS: dict[str, Callable[[int], Program]] = {
    "spectre_v1": spectre_v1,
    "spectre_v2": spectre_v2,
    "spectre_v1_ct": spectre_v1_ct,
}


@dataclass
class AttackOutcome:
    """One (attack, policy) cell of the security matrix."""

    attack: str
    policy: str
    secret: int
    reading: ChannelReading

    @property
    def leaked(self) -> bool:
        return self.reading.recovered_value == self.secret

    @property
    def verdict(self) -> str:
        return "LEAKED" if self.leaked else "blocked"


def run_attack(
    attack: str,
    policy: str,
    secret: int = 0x5A,
    config: CoreConfig | None = None,
) -> AttackOutcome:
    """Execute one attack under one policy and read the channel."""
    if attack not in ATTACKS:
        raise KeyError(f"unknown attack {attack!r}; know {sorted(ATTACKS)}")
    program = ATTACKS[attack](secret)
    core = OooCore(program, config=config, policy=make_policy(policy))
    result = core.run()
    reading = read_probe_array(result.hierarchy, program)
    return AttackOutcome(attack=attack, policy=policy, secret=secret, reading=reading)


def security_matrix(
    policies: tuple[str, ...],
    secrets: tuple[int, ...] = (0x5A, 0xA7, 0x11),
    config: CoreConfig | None = None,
) -> dict[tuple[str, str], list[AttackOutcome]]:
    """Full attack x policy matrix, several secrets per cell."""
    matrix: dict[tuple[str, str], list[AttackOutcome]] = {}
    for attack in ATTACKS:
        for policy in policies:
            outcomes = [
                run_attack(attack, policy, secret=s, config=config) for s in secrets
            ]
            matrix[(attack, policy)] = outcomes
    return matrix


def leak_rate(outcomes: list[AttackOutcome]) -> float:
    """Fraction of trials that recovered the planted secret."""
    if not outcomes:
        return 0.0
    return sum(1 for o in outcomes if o.leaked) / len(outcomes)
