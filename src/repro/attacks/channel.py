"""Cache covert-channel receiver.

The transmitter side is victim code touching ``probe[value * STRIDE]``; the
receiver inspects which probe line became resident after the run — the
simulator-level equivalent of the flush+reload timing loop (our cache model
is presence-exact, see DESIGN.md).  An in-simulation timing receiver using
``rdcycle`` is demonstrated in ``examples/spectre_demo.py``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..asm.program import Program
from ..mem.hierarchy import MemoryHierarchy

PROBE_SLOTS = 256
PROBE_STRIDE = 64  # one cache line per encodable value


@dataclass
class ChannelReading:
    """Which probe slots were found resident after a victim run."""

    hot_slots: list[int]

    @property
    def recovered_value(self) -> int | None:
        """The transmitted byte, if exactly one non-zero slot lit up.

        Slot 0 is excluded: training accesses legitimately touch it.
        """
        nonzero = [s for s in self.hot_slots if s != 0]
        if len(nonzero) == 1:
            return nonzero[0]
        return None

    @property
    def leaked(self) -> bool:
        return self.recovered_value is not None


def read_probe_array(
    hierarchy: MemoryHierarchy, program: Program, symbol: str = "probe"
) -> ChannelReading:
    """Scan the probe array for resident lines (the receiver)."""
    base = program.address_of(symbol)
    hot = [
        slot
        for slot in range(PROBE_SLOTS)
        if hierarchy.probe_level(base + slot * PROBE_STRIDE) is not None
    ]
    return ChannelReading(hot_slots=hot)
