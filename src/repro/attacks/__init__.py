"""Spectre attacks and the cache covert channel (security evaluation)."""

from .channel import PROBE_SLOTS, PROBE_STRIDE, ChannelReading, read_probe_array
from .gadgets import spectre_v1, spectre_v1_ct, spectre_v2
from .scoring import ATTACKS, AttackOutcome, leak_rate, run_attack, security_matrix

__all__ = [
    "ATTACKS",
    "AttackOutcome",
    "ChannelReading",
    "PROBE_SLOTS",
    "PROBE_STRIDE",
    "leak_rate",
    "read_probe_array",
    "run_attack",
    "security_matrix",
    "spectre_v1",
    "spectre_v1_ct",
    "spectre_v2",
]
