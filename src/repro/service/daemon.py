"""Simulation-as-a-service: the asyncio HTTP daemon behind ``repro serve``.

A long-running process that turns the one-shot experiment harness into a
serving layer: clients POST (workload, policy, config-override) requests
and poll job ids, while the daemon keeps a warm worker pool, an
in-memory result store and (optionally) the persistent
:class:`~repro.harness.cache.ResultCache` across requests.  Stdlib only
— the HTTP layer is a minimal HTTP/1.1 implementation over
``asyncio.start_server`` (one request per connection, ``Connection:
close``), which is all the JSON + Prometheus endpoints need.

Endpoints::

    POST /v1/runs        submit one request object or {"runs": [...]}
                         -> 202 {"jobs": [{id, state, coalesced, cached}]}
                         -> 400 on malformed requests
                         -> 429 + Retry-After when the queue is full
                            (batch admission is all-or-nothing: a batch
                            is never half-accepted)
                         -> 503 while draining
    GET  /v1/runs        queue/job table summary
    GET  /v1/runs/{id}   job status; includes the serialized RunRecord
                         once the job is done
    GET  /healthz        liveness + queue/worker gauges
    GET  /metrics        Prometheus text format

**Coalescing**: requests are keyed by the run-cache content key.  A key
with a stored result is answered immediately (``cached``); a key with a
queued/in-flight flight attaches the new job to it (``coalesced``);
only novel keys consume queue capacity.  Because simulations are pure
functions of the key, results served any of the three ways are
bit-identical to a serial in-process run.

**Drain**: SIGTERM/SIGINT stop admission (503), let queued + in-flight
jobs finish (bounded by ``drain_timeout``), then exit 0 — an accepted
job is never dropped by shutdown short of the timeout.

**Cluster membership**: with ``register_url`` set the daemon becomes a
fleet worker — it registers with a :mod:`repro.cluster` coordinator,
heartbeats on an interval, re-registers after a coordinator restart or
a partition (a heartbeat answered 404 means "I don't know you"), and
deregisters *before* draining so the coordinator stops routing to it.
The membership loop consults the fault plan at the ``node`` site once
per heartbeat (key ``"{node_id}/hb{seq}"``), which is how the cluster
chaos drill kills a worker or partitions it mid-campaign.
"""

from __future__ import annotations

import asyncio
import dataclasses
import os
import signal
import sys
import threading
import uuid

from .. import __version__
from ..harness.cache import ResultCache
from ..harness.resilience import RetryPolicy
from ..harness.runner import RunRecord
from .httpd import HttpError, JsonHttpServer, json_bytes
from .jobs import (
    DONE,
    BadRequest,
    BatchTooLarge,
    Flight,
    Job,
    JobStore,
    RunKeyer,
    RunRequest,
    parse_submission,
)
from .metrics import MetricsRegistry, record_cache_stats
from .queue import AdmissionQueue, QueueFull
from .scheduler import Scheduler

#: Largest accepted batch; beyond this a client should chunk.
MAX_BATCH = 1024

# Compatibility aliases — the HTTP plumbing moved to .httpd.
_HttpError = HttpError
_json_bytes = json_bytes


def default_heartbeat_interval() -> float:
    try:
        return float(os.environ.get("REPRO_HEARTBEAT_INTERVAL", ""))
    except ValueError:
        return 1.0


@dataclasses.dataclass
class ServiceConfig:
    """Everything ``repro serve`` can tune."""

    host: str = "127.0.0.1"
    port: int = 8765
    jobs: int = 2                  # worker processes
    queue_depth: int = 64          # max queued flights (backpressure)
    retries: int = 2               # per-flight retries after first attempt
    timeout: float | None = None   # per-flight wall-clock seconds
    cache_dir: str | None = None   # persistent ResultCache root
    use_cache: bool = False        # persist results across restarts
    drain_timeout: float = 60.0    # grace period on SIGTERM
    history: int = 4096            # completed jobs kept addressable
    # --- cluster membership (all optional; None = standalone daemon) ---
    register_url: str | None = None   # coordinator base URL to join
    node_id: str | None = None        # stable fleet identity (default: random)
    advertise_url: str | None = None  # URL the coordinator reaches us at
    heartbeat_interval: float | None = None  # default: $REPRO_HEARTBEAT_INTERVAL or 1s

    def retry_policy(self) -> RetryPolicy:
        return RetryPolicy(max_attempts=max(self.retries + 1, 1),
                           timeout=self.timeout)


class SimulationService(JsonHttpServer):
    """Owns the queue, scheduler, job store and HTTP front end."""

    server_label = "repro-serve"

    def __init__(self, config: ServiceConfig | None = None,
                 metrics: MetricsRegistry | None = None):
        super().__init__()
        self.config = config or ServiceConfig()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.keyer = RunKeyer()
        self.store = JobStore(history=self.config.history)
        self.results: dict[str, RunRecord] = {}
        self.queue = AdmissionQueue(self.config.queue_depth)
        self.cache = (
            ResultCache(self.config.cache_dir)
            if (self.config.use_cache or self.config.cache_dir)
            else None
        )
        self.scheduler = Scheduler(
            self.queue, self.store, self.results, self.metrics,
            jobs=self.config.jobs,
            retry_policy=self.config.retry_policy(),
            cache=self.cache,
        )
        self.draining = False
        self._stopped = asyncio.Event()
        self.node_id = (self.config.node_id
                        or f"node-{uuid.uuid4().hex[:8]}")
        self.heartbeat_interval = (
            self.config.heartbeat_interval
            if self.config.heartbeat_interval is not None
            else default_heartbeat_interval())
        self.heartbeats_sent = 0
        self._membership_task: asyncio.Task | None = None
        self._registered = False

        m = self.metrics
        self.m_requests = m.counter(
            "repro_service_http_requests_total",
            "HTTP requests served, by endpoint and status code.",
            labelnames=("endpoint", "code"))
        self.m_submitted = m.counter(
            "repro_service_jobs_submitted_total",
            "Jobs accepted by the service (cached + coalesced + simulated).")
        self.m_coalesced = m.counter(
            "repro_service_jobs_coalesced_total",
            "Jobs attached to an already queued/in-flight identical request.")
        self.m_cache_hits = m.counter(
            "repro_service_cache_hits_total",
            "Jobs answered from the result store without queueing.")
        self.m_rejected = m.counter(
            "repro_service_jobs_rejected_total",
            "Submissions rejected by admission control (HTTP 429).")
        self.m_queue_depth = m.gauge(
            "repro_service_queue_depth", "Flights waiting in the job queue.")
        self.m_workers = m.gauge(
            "repro_service_workers", "Configured worker processes.")
        self.m_workers.set(self.config.jobs)
        m.gauge("repro_service_info",
                "Static service metadata.",
                labelnames=("version",)).set(1, version=__version__)

    # ------------------------------------------------------------ lifecycle
    async def start(self) -> None:
        self.scheduler.start()
        await self.bind(self.config.host, self.config.port)
        if self.config.register_url:
            self._membership_task = asyncio.get_running_loop().create_task(
                self._membership_loop())

    async def drain_and_stop(self) -> bool:
        """Stop admission, finish accepted work, shut down.  True iff
        everything accepted was resolved inside the drain budget."""
        if self.draining:
            await self._stopped.wait()
            return True
        self.draining = True
        await self._leave_cluster()
        await self.close_server()
        drained = await self.scheduler.drain(self.config.drain_timeout)
        await self.scheduler.stop(wait_workers=drained)
        self._stopped.set()
        return drained

    # ----------------------------------------------------------- membership
    async def _leave_cluster(self) -> None:
        """Drain-aware deregistration: tell the coordinator we're leaving
        *before* the socket closes, so it stops routing to us instead of
        declaring us dead and re-running our in-flight work."""
        if self._membership_task is not None:
            self._membership_task.cancel()
            try:
                await self._membership_task
            except (asyncio.CancelledError, Exception):
                pass
            self._membership_task = None
        if not self._registered:
            return
        from ..cluster.transport import request_json

        base = self.config.register_url.rstrip("/")
        try:
            await request_json(
                "DELETE", f"{base}/v1/nodes/{self.node_id}", timeout=3.0)
        except (OSError, asyncio.TimeoutError):
            pass  # coordinator gone; its sweep will notice anyway
        self._registered = False

    async def _membership_loop(self) -> None:
        """Register with the coordinator, then heartbeat forever.

        Self-healing by design: a failed or 404'd heartbeat flips back to
        the register step, so the worker survives coordinator restarts
        and rejoins after a partition.  Each beat consults the fault plan
        (site ``node``, key ``{node_id}/hb{seq}``) — ``node_kill``
        SIGKILLs this process inside :func:`repro.faults.maybe_fault`;
        ``heartbeat_loss`` is passive, so we go silent here instead.
        """
        from ..cluster.transport import request_json
        from ..faults import maybe_fault

        base = self.config.register_url.rstrip("/")
        advertise = (self.config.advertise_url
                     or f"http://{self.config.host}:{self.port}")
        interval = max(self.heartbeat_interval, 0.05)
        while not self.draining:
            self.heartbeats_sent += 1
            spec = maybe_fault("node", f"{self.node_id}/hb{self.heartbeats_sent}")
            if spec is not None and spec.kind == "heartbeat_loss":
                await asyncio.sleep(spec.hang_seconds)
                self._registered = False  # assume we were declared dead
                continue
            try:
                if not self._registered:
                    status, _, _ = await request_json(
                        "POST", base + "/v1/nodes",
                        {"id": self.node_id, "url": advertise},
                        timeout=5.0)
                    self._registered = status < 400
                if self._registered:
                    status, _, _ = await request_json(
                        "POST", f"{base}/v1/nodes/{self.node_id}/heartbeat",
                        {
                            "queue_depth": len(self.queue),
                            "running": len(self.scheduler.inflight),
                            "draining": self.draining,
                        },
                        timeout=5.0)
                    if status == 404:   # coordinator restarted: re-register
                        self._registered = False
                        continue
            except (OSError, asyncio.TimeoutError):
                pass  # coordinator unreachable; keep trying
            await asyncio.sleep(interval)

    # ------------------------------------------------------------ admission
    def submit(self, requests: list[RunRequest]) -> list[Job]:
        """Admit a batch (all-or-nothing); raises :class:`QueueFull`.

        Runs synchronously on the event loop — no awaits — so the plan
        (which keys are cached / coalescible / novel) cannot be
        invalidated by a flight resolving mid-batch.
        """
        if self.draining:
            raise _HttpError(503, "service is draining")
        open_flights = {f.key: f for f in self.queue.flights()}
        open_flights.update(self.scheduler.inflight)
        plans: list[tuple[RunRequest, str, str]] = []  # (request, key, how)
        novel: dict[str, None] = {}   # insertion-ordered unique new keys
        for request in requests:
            key = self.keyer.key_for(request)
            if key in novel:
                how = "coalesce"      # duplicate within this very batch
            elif key in self.results:
                how = "cached"
            elif key in open_flights:
                how = "coalesce"
            else:
                record = self.cache.get(key) if self.cache is not None else None
                if record is not None:
                    self.results[key] = record
                    how = "cached"
                else:
                    how = "new"
                    novel[key] = None
            plans.append((request, key, how))
        if not self.queue.has_room_for(len(novel)):
            self.m_rejected.inc(len(requests))
            raise QueueFull(self.queue.depth, self._retry_after())

        jobs: list[Job] = []
        for request, key, how in plans:
            job = Job(request=request, key=key)
            self.store.add(job)
            self.m_submitted.inc()
            if how == "cached":
                job.cached = True
                job.state = DONE
                job.record = self.results[key]
                job.finished = job.created
                self.m_cache_hits.inc()
            elif how == "coalesce" or key in open_flights:
                job.coalesced = True
                flight = open_flights[key]
                before = flight.priority
                flight.attach(job)
                if flight.priority < before:
                    self.queue.reprioritize(flight)
                self.m_coalesced.inc()
            else:
                flight = Flight(key=key, request=request,
                                priority=request.priority)
                flight.attach(job)
                open_flights[key] = flight
                self.queue.push(flight)
            jobs.append(job)
        self.m_queue_depth.set(len(self.queue))
        if novel:
            self.scheduler.notify()
        return jobs

    def _retry_after(self) -> float:
        """Backpressure hint: median sim time x queue depth / workers."""
        per_sim = self.scheduler.m_sim_seconds.quantile(0.5) or 0.5
        return max(1.0, round(
            per_sim * self.queue.depth / max(self.config.jobs, 1), 1))

    # ------------------------------------------------------------- endpoints
    def _healthz(self) -> dict:
        return {
            "status": "draining" if self.draining else "ok",
            "version": __version__,
            "node_id": self.node_id,
            "queue_depth": len(self.queue),
            "queue_capacity": self.queue.depth,
            "running": len(self.scheduler.inflight),
            "workers": self.config.jobs,
            "degraded": self.scheduler.pool.degraded,
            "jobs_tracked": len(self.store),
            "results_stored": len(self.results),
        }

    def _runs_index(self) -> dict:
        jobs = self.store.jobs()
        return {
            "jobs": [j.describe(include_result=False) for j in jobs[-100:]],
            "total": len(jobs),
            "evicted": self.store.evicted,
        }

    def _metrics_text(self) -> str:
        self.m_queue_depth.set(len(self.queue))
        if self.cache is not None:
            record_cache_stats(self.cache.stats, self.metrics)
        return self.metrics.render()

    def _parse_submission(self, body: bytes) -> list[RunRequest]:
        try:
            return parse_submission(body, max_batch=MAX_BATCH)
        except BatchTooLarge as exc:
            raise _HttpError(413, str(exc)) from exc
        except BadRequest as exc:
            raise _HttpError(400, str(exc)) from exc

    def on_response(self, endpoint: str, status: int) -> None:
        self.m_requests.inc(endpoint=endpoint, code=str(status))

    def route(self, method: str, path: str, body: bytes
              ) -> tuple[int, dict[str, str], bytes, str]:
        """Dispatch; returns (status, extra headers, body, endpoint label)."""
        if path == "/healthz":
            if method != "GET":
                raise _HttpError(405, "healthz is GET-only")
            payload = self._healthz()
            return 200, {}, _json_bytes(payload), "/healthz"
        if path == "/metrics":
            if method != "GET":
                raise _HttpError(405, "metrics is GET-only")
            text = self._metrics_text().encode()
            return 200, {
                "Content-Type": "text/plain; version=0.0.4; charset=utf-8",
            }, text, "/metrics"
        if path == "/v1/runs":
            if method == "GET":
                return 200, {}, _json_bytes(self._runs_index()), "/v1/runs"
            if method != "POST":
                raise _HttpError(405, "use POST to submit, GET to list")
            requests = self._parse_submission(body)
            try:
                jobs = self.submit(requests)
            except QueueFull as exc:
                raise _HttpError(
                    429, str(exc),
                    headers={"Retry-After": str(int(exc.retry_after + 0.5))},
                ) from exc
            accepted = {
                "jobs": [j.describe(include_result=False) for j in jobs],
            }
            return 202, {}, _json_bytes(accepted), "/v1/runs"
        if path.startswith("/v1/runs/"):
            if method != "GET":
                raise _HttpError(405, "job status is GET-only")
            job = self.store.get(path[len("/v1/runs/"):])
            if job is None:
                raise _HttpError(404, "no such job (it may have aged out)")
            return 200, {}, _json_bytes(job.describe()), "/v1/runs/{id}"
        raise _HttpError(404, f"no route for {path}")


# ----------------------------------------------------------------- serving
async def _serve(config: ServiceConfig, ready=None) -> int:
    service = SimulationService(config)
    await service.start()
    loop = asyncio.get_running_loop()
    drain_task: list[asyncio.Task] = []

    def request_drain(signame: str) -> None:
        if not drain_task:
            print(f"repro serve: {signame} received, draining "
                  f"({len(service.queue)} queued, "
                  f"{len(service.scheduler.inflight)} running)...",
                  file=sys.stderr, flush=True)
            drain_task.append(loop.create_task(service.drain_and_stop()))

    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(
                sig, request_drain, signal.Signals(sig).name)
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            pass

    print(f"repro serve: listening on http://{config.host}:{service.port} "
          f"({config.jobs} worker(s), queue depth {config.queue_depth})",
          flush=True)
    if config.register_url:
        print(f"repro serve: joining cluster at {config.register_url} "
              f"as {service.node_id} "
              f"(heartbeat {service.heartbeat_interval:g}s)",
              flush=True)
    if ready is not None:
        ready(service)
    await service._stopped.wait()
    drained = True
    if drain_task:
        drained = drain_task[0].result()
    print("repro serve: drained clean, bye" if drained
          else "repro serve: drain timeout hit, some jobs unresolved",
          file=sys.stderr, flush=True)
    return 0 if drained else 1


def serve(config: ServiceConfig | None = None) -> int:
    """Blocking entrypoint behind ``repro serve``; returns the exit code."""
    return asyncio.run(_serve(config or ServiceConfig()))


class ServiceThread:
    """A :class:`SimulationService` on a background thread + event loop.

    The in-process harness used by tests, the load generator and the
    service chaos drill: ``start()`` returns once the port is bound;
    ``stop()`` drains and joins.  Use ``base_url`` with
    :class:`~repro.service.client.ServiceClient`.
    """

    def __init__(self, config: ServiceConfig | None = None):
        self.config = config or ServiceConfig(port=0)
        self.service: SimulationService | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self.drained: bool | None = None

    @property
    def base_url(self) -> str:
        assert self.service is not None and self.service.port is not None
        return f"http://{self.config.host}:{self.service.port}"

    def start(self) -> "ServiceThread":
        def runner() -> None:
            loop = asyncio.new_event_loop()
            self._loop = loop
            asyncio.set_event_loop(loop)

            async def boot():
                self.service = SimulationService(self.config)
                await self.service.start()
                self._ready.set()
                await self.service._stopped.wait()

            try:
                loop.run_until_complete(boot())
            finally:
                loop.close()

        self._thread = threading.Thread(
            target=runner, name="repro-serve", daemon=True)
        self._thread.start()
        if not self._ready.wait(30.0):
            raise RuntimeError("service failed to start within 30s")
        return self

    def call(self, fn, *args):
        """Run ``fn(service, *args)`` on the service loop; returns its value."""
        assert self._loop is not None

        async def wrapper():
            return fn(self.service, *args)

        return asyncio.run_coroutine_threadsafe(
            wrapper(), self._loop).result(30.0)

    def pause(self) -> None:
        self.call(lambda s: s.scheduler.pause())

    def resume(self) -> None:
        self.call(lambda s: s.scheduler.resume())

    def stop(self, timeout: float = 60.0) -> bool:
        """Drain + stop + join; True iff the drain completed cleanly."""
        assert self._loop is not None and self._thread is not None
        future = asyncio.run_coroutine_threadsafe(
            self.service.drain_and_stop(), self._loop)
        self.drained = future.result(timeout)
        self._thread.join(timeout)
        return bool(self.drained)

    def __enter__(self) -> "ServiceThread":
        return self.start()

    def __exit__(self, *exc) -> None:
        if self._thread is not None and self._thread.is_alive():
            self.stop()
