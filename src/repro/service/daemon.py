"""Simulation-as-a-service: the asyncio HTTP daemon behind ``repro serve``.

A long-running process that turns the one-shot experiment harness into a
serving layer: clients POST (workload, policy, config-override) requests
and poll job ids, while the daemon keeps a warm worker pool, an
in-memory result store and (optionally) the persistent
:class:`~repro.harness.cache.ResultCache` across requests.  Stdlib only
— the HTTP layer is a minimal HTTP/1.1 implementation over
``asyncio.start_server`` (one request per connection, ``Connection:
close``), which is all the JSON + Prometheus endpoints need.

Endpoints::

    POST /v1/runs        submit one request object or {"runs": [...]}
                         -> 202 {"jobs": [{id, state, coalesced, cached}]}
                         -> 400 on malformed requests
                         -> 429 + Retry-After when the queue is full
                            (batch admission is all-or-nothing: a batch
                            is never half-accepted)
                         -> 503 while draining
    GET  /v1/runs        queue/job table summary
    GET  /v1/runs/{id}   job status; includes the serialized RunRecord
                         once the job is done
    GET  /healthz        liveness + queue/worker gauges
    GET  /metrics        Prometheus text format

**Coalescing**: requests are keyed by the run-cache content key.  A key
with a stored result is answered immediately (``cached``); a key with a
queued/in-flight flight attaches the new job to it (``coalesced``);
only novel keys consume queue capacity.  Because simulations are pure
functions of the key, results served any of the three ways are
bit-identical to a serial in-process run.

**Drain**: SIGTERM/SIGINT stop admission (503), let queued + in-flight
jobs finish (bounded by ``drain_timeout``), then exit 0 — an accepted
job is never dropped by shutdown short of the timeout.
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import signal
import sys
import threading

from .. import __version__
from ..harness.cache import ResultCache
from ..harness.resilience import RetryPolicy
from ..harness.runner import RunRecord
from .jobs import (
    DONE,
    BadRequest,
    Flight,
    Job,
    JobStore,
    RunKeyer,
    RunRequest,
)
from .metrics import MetricsRegistry, record_cache_stats
from .queue import AdmissionQueue, QueueFull
from .scheduler import Scheduler

MAX_BODY_BYTES = 4 * 1024 * 1024
#: Largest accepted batch; beyond this a client should chunk.
MAX_BATCH = 1024


@dataclasses.dataclass
class ServiceConfig:
    """Everything ``repro serve`` can tune."""

    host: str = "127.0.0.1"
    port: int = 8765
    jobs: int = 2                  # worker processes
    queue_depth: int = 64          # max queued flights (backpressure)
    retries: int = 2               # per-flight retries after first attempt
    timeout: float | None = None   # per-flight wall-clock seconds
    cache_dir: str | None = None   # persistent ResultCache root
    use_cache: bool = False        # persist results across restarts
    drain_timeout: float = 60.0    # grace period on SIGTERM
    history: int = 4096            # completed jobs kept addressable

    def retry_policy(self) -> RetryPolicy:
        return RetryPolicy(max_attempts=max(self.retries + 1, 1),
                           timeout=self.timeout)


class _HttpError(Exception):
    def __init__(self, status: int, message: str,
                 headers: dict[str, str] | None = None):
        self.status = status
        self.message = message
        self.headers = headers or {}


_REASONS = {
    200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 413: "Payload Too Large",
    429: "Too Many Requests", 500: "Internal Server Error",
    503: "Service Unavailable",
}


class SimulationService:
    """Owns the queue, scheduler, job store and HTTP front end."""

    def __init__(self, config: ServiceConfig | None = None,
                 metrics: MetricsRegistry | None = None):
        self.config = config or ServiceConfig()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.keyer = RunKeyer()
        self.store = JobStore(history=self.config.history)
        self.results: dict[str, RunRecord] = {}
        self.queue = AdmissionQueue(self.config.queue_depth)
        self.cache = (
            ResultCache(self.config.cache_dir)
            if (self.config.use_cache or self.config.cache_dir)
            else None
        )
        self.scheduler = Scheduler(
            self.queue, self.store, self.results, self.metrics,
            jobs=self.config.jobs,
            retry_policy=self.config.retry_policy(),
            cache=self.cache,
        )
        self.draining = False
        self._server: asyncio.AbstractServer | None = None
        self._stopped = asyncio.Event()
        self.port: int | None = None   # bound port (after start)

        m = self.metrics
        self.m_requests = m.counter(
            "repro_service_http_requests_total",
            "HTTP requests served, by endpoint and status code.",
            labelnames=("endpoint", "code"))
        self.m_submitted = m.counter(
            "repro_service_jobs_submitted_total",
            "Jobs accepted by the service (cached + coalesced + simulated).")
        self.m_coalesced = m.counter(
            "repro_service_jobs_coalesced_total",
            "Jobs attached to an already queued/in-flight identical request.")
        self.m_cache_hits = m.counter(
            "repro_service_cache_hits_total",
            "Jobs answered from the result store without queueing.")
        self.m_rejected = m.counter(
            "repro_service_jobs_rejected_total",
            "Submissions rejected by admission control (HTTP 429).")
        self.m_queue_depth = m.gauge(
            "repro_service_queue_depth", "Flights waiting in the job queue.")
        self.m_workers = m.gauge(
            "repro_service_workers", "Configured worker processes.")
        self.m_workers.set(self.config.jobs)
        m.gauge("repro_service_info",
                "Static service metadata.",
                labelnames=("version",)).set(1, version=__version__)

    # ------------------------------------------------------------ lifecycle
    async def start(self) -> None:
        self.scheduler.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def drain_and_stop(self) -> bool:
        """Stop admission, finish accepted work, shut down.  True iff
        everything accepted was resolved inside the drain budget."""
        if self.draining:
            await self._stopped.wait()
            return True
        self.draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        drained = await self.scheduler.drain(self.config.drain_timeout)
        await self.scheduler.stop(wait_workers=drained)
        self._stopped.set()
        return drained

    # ------------------------------------------------------------ admission
    def submit(self, requests: list[RunRequest]) -> list[Job]:
        """Admit a batch (all-or-nothing); raises :class:`QueueFull`.

        Runs synchronously on the event loop — no awaits — so the plan
        (which keys are cached / coalescible / novel) cannot be
        invalidated by a flight resolving mid-batch.
        """
        if self.draining:
            raise _HttpError(503, "service is draining")
        open_flights = {f.key: f for f in self.queue.flights()}
        open_flights.update(self.scheduler.inflight)
        plans: list[tuple[RunRequest, str, str]] = []  # (request, key, how)
        novel: dict[str, None] = {}   # insertion-ordered unique new keys
        for request in requests:
            key = self.keyer.key_for(request)
            if key in novel:
                how = "coalesce"      # duplicate within this very batch
            elif key in self.results:
                how = "cached"
            elif key in open_flights:
                how = "coalesce"
            else:
                record = self.cache.get(key) if self.cache is not None else None
                if record is not None:
                    self.results[key] = record
                    how = "cached"
                else:
                    how = "new"
                    novel[key] = None
            plans.append((request, key, how))
        if not self.queue.has_room_for(len(novel)):
            self.m_rejected.inc(len(requests))
            raise QueueFull(self.queue.depth, self._retry_after())

        jobs: list[Job] = []
        for request, key, how in plans:
            job = Job(request=request, key=key)
            self.store.add(job)
            self.m_submitted.inc()
            if how == "cached":
                job.cached = True
                job.state = DONE
                job.record = self.results[key]
                job.finished = job.created
                self.m_cache_hits.inc()
            elif how == "coalesce" or key in open_flights:
                job.coalesced = True
                flight = open_flights[key]
                before = flight.priority
                flight.attach(job)
                if flight.priority < before:
                    self.queue.reprioritize(flight)
                self.m_coalesced.inc()
            else:
                flight = Flight(key=key, request=request,
                                priority=request.priority)
                flight.attach(job)
                open_flights[key] = flight
                self.queue.push(flight)
            jobs.append(job)
        self.m_queue_depth.set(len(self.queue))
        if novel:
            self.scheduler.notify()
        return jobs

    def _retry_after(self) -> float:
        """Backpressure hint: median sim time x queue depth / workers."""
        per_sim = self.scheduler.m_sim_seconds.quantile(0.5) or 0.5
        return max(1.0, round(
            per_sim * self.queue.depth / max(self.config.jobs, 1), 1))

    # ------------------------------------------------------------- endpoints
    def _healthz(self) -> dict:
        return {
            "status": "draining" if self.draining else "ok",
            "version": __version__,
            "queue_depth": len(self.queue),
            "queue_capacity": self.queue.depth,
            "running": len(self.scheduler.inflight),
            "workers": self.config.jobs,
            "degraded": self.scheduler.pool.degraded,
            "jobs_tracked": len(self.store),
            "results_stored": len(self.results),
        }

    def _runs_index(self) -> dict:
        jobs = self.store.jobs()
        return {
            "jobs": [j.describe(include_result=False) for j in jobs[-100:]],
            "total": len(jobs),
            "evicted": self.store.evicted,
        }

    def _metrics_text(self) -> str:
        self.m_queue_depth.set(len(self.queue))
        if self.cache is not None:
            record_cache_stats(self.cache.stats, self.metrics)
        return self.metrics.render()

    def _parse_submission(self, body: bytes) -> list[RunRequest]:
        try:
            payload = json.loads(body.decode() or "null")
        except (ValueError, UnicodeDecodeError) as exc:
            raise _HttpError(400, f"body is not valid JSON: {exc}") from exc
        if isinstance(payload, dict) and "runs" in payload:
            runs = payload["runs"]
            if not isinstance(runs, list) or not runs:
                raise _HttpError(400, '"runs" must be a non-empty array')
        elif isinstance(payload, dict):
            runs = [payload]
        else:
            raise _HttpError(
                400, "body must be a run object or {\"runs\": [...]}")
        if len(runs) > MAX_BATCH:
            raise _HttpError(413, f"batch too large (max {MAX_BATCH})")
        try:
            return [RunRequest.from_dict(r) for r in runs]
        except BadRequest as exc:
            raise _HttpError(400, str(exc)) from exc

    def _route(self, method: str, path: str, body: bytes
               ) -> tuple[int, dict[str, str], bytes, str]:
        """Dispatch; returns (status, extra headers, body, endpoint label)."""
        if path == "/healthz":
            if method != "GET":
                raise _HttpError(405, "healthz is GET-only")
            payload = self._healthz()
            return 200, {}, _json_bytes(payload), "/healthz"
        if path == "/metrics":
            if method != "GET":
                raise _HttpError(405, "metrics is GET-only")
            text = self._metrics_text().encode()
            return 200, {
                "Content-Type": "text/plain; version=0.0.4; charset=utf-8",
            }, text, "/metrics"
        if path == "/v1/runs":
            if method == "GET":
                return 200, {}, _json_bytes(self._runs_index()), "/v1/runs"
            if method != "POST":
                raise _HttpError(405, "use POST to submit, GET to list")
            requests = self._parse_submission(body)
            try:
                jobs = self.submit(requests)
            except QueueFull as exc:
                raise _HttpError(
                    429, str(exc),
                    headers={"Retry-After": str(int(exc.retry_after + 0.5))},
                ) from exc
            accepted = {
                "jobs": [j.describe(include_result=False) for j in jobs],
            }
            return 202, {}, _json_bytes(accepted), "/v1/runs"
        if path.startswith("/v1/runs/"):
            if method != "GET":
                raise _HttpError(405, "job status is GET-only")
            job = self.store.get(path[len("/v1/runs/"):])
            if job is None:
                raise _HttpError(404, "no such job (it may have aged out)")
            return 200, {}, _json_bytes(job.describe()), "/v1/runs/{id}"
        raise _HttpError(404, f"no route for {path}")

    # ------------------------------------------------------------------ http
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        endpoint = "?"
        try:
            status, headers, payload, endpoint = await self._handle_request(
                reader)
        except _HttpError as exc:
            status = exc.status
            headers = dict(exc.headers)
            payload = _json_bytes({"error": exc.message, "status": status})
        except (asyncio.IncompleteReadError, ConnectionError,
                asyncio.TimeoutError):
            writer.close()
            return
        except Exception as exc:  # never let one request kill the daemon
            status, headers = 500, {}
            payload = _json_bytes({"error": f"internal error: {exc}",
                                   "status": 500})
        self.m_requests.inc(endpoint=endpoint, code=str(status))
        reason = _REASONS.get(status, "Unknown")
        head = [f"HTTP/1.1 {status} {reason}"]
        base = {
            "Content-Type": "application/json; charset=utf-8",
            "Content-Length": str(len(payload)),
            "Connection": "close",
            "Server": f"repro-serve/{__version__}",
        }
        base.update(headers)
        head += [f"{k}: {v}" for k, v in base.items()]
        try:
            writer.write(("\r\n".join(head) + "\r\n\r\n").encode() + payload)
            await writer.drain()
            writer.close()
            await writer.wait_closed()
        except (ConnectionError, BrokenPipeError):
            pass

    async def _handle_request(self, reader: asyncio.StreamReader
                              ) -> tuple[int, dict[str, str], bytes, str]:
        request_line = await asyncio.wait_for(reader.readline(), 30.0)
        parts = request_line.decode("latin-1").split()
        if len(parts) != 3:
            raise _HttpError(400, "malformed request line")
        method, target, _version = parts
        headers: dict[str, str] = {}
        while True:
            line = await asyncio.wait_for(reader.readline(), 30.0)
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > MAX_BODY_BYTES:
            raise _HttpError(413, f"body too large (max {MAX_BODY_BYTES}B)")
        body = (await asyncio.wait_for(reader.readexactly(length), 30.0)
                if length else b"")
        path = target.split("?", 1)[0]
        return self._route(method.upper(), path, body)


def _json_bytes(payload) -> bytes:
    return (json.dumps(payload, indent=2) + "\n").encode()


# ----------------------------------------------------------------- serving
async def _serve(config: ServiceConfig, ready=None) -> int:
    service = SimulationService(config)
    await service.start()
    loop = asyncio.get_running_loop()
    drain_task: list[asyncio.Task] = []

    def request_drain(signame: str) -> None:
        if not drain_task:
            print(f"repro serve: {signame} received, draining "
                  f"({len(service.queue)} queued, "
                  f"{len(service.scheduler.inflight)} running)...",
                  file=sys.stderr, flush=True)
            drain_task.append(loop.create_task(service.drain_and_stop()))

    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(
                sig, request_drain, signal.Signals(sig).name)
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            pass

    print(f"repro serve: listening on http://{config.host}:{service.port} "
          f"({config.jobs} worker(s), queue depth {config.queue_depth})",
          flush=True)
    if ready is not None:
        ready(service)
    await service._stopped.wait()
    drained = True
    if drain_task:
        drained = drain_task[0].result()
    print("repro serve: drained clean, bye" if drained
          else "repro serve: drain timeout hit, some jobs unresolved",
          file=sys.stderr, flush=True)
    return 0 if drained else 1


def serve(config: ServiceConfig | None = None) -> int:
    """Blocking entrypoint behind ``repro serve``; returns the exit code."""
    return asyncio.run(_serve(config or ServiceConfig()))


class ServiceThread:
    """A :class:`SimulationService` on a background thread + event loop.

    The in-process harness used by tests, the load generator and the
    service chaos drill: ``start()`` returns once the port is bound;
    ``stop()`` drains and joins.  Use ``base_url`` with
    :class:`~repro.service.client.ServiceClient`.
    """

    def __init__(self, config: ServiceConfig | None = None):
        self.config = config or ServiceConfig(port=0)
        self.service: SimulationService | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self.drained: bool | None = None

    @property
    def base_url(self) -> str:
        assert self.service is not None and self.service.port is not None
        return f"http://{self.config.host}:{self.service.port}"

    def start(self) -> "ServiceThread":
        def runner() -> None:
            loop = asyncio.new_event_loop()
            self._loop = loop
            asyncio.set_event_loop(loop)

            async def boot():
                self.service = SimulationService(self.config)
                await self.service.start()
                self._ready.set()
                await self.service._stopped.wait()

            try:
                loop.run_until_complete(boot())
            finally:
                loop.close()

        self._thread = threading.Thread(
            target=runner, name="repro-serve", daemon=True)
        self._thread.start()
        if not self._ready.wait(30.0):
            raise RuntimeError("service failed to start within 30s")
        return self

    def call(self, fn, *args):
        """Run ``fn(service, *args)`` on the service loop; returns its value."""
        assert self._loop is not None

        async def wrapper():
            return fn(self.service, *args)

        return asyncio.run_coroutine_threadsafe(
            wrapper(), self._loop).result(30.0)

    def pause(self) -> None:
        self.call(lambda s: s.scheduler.pause())

    def resume(self) -> None:
        self.call(lambda s: s.scheduler.resume())

    def stop(self, timeout: float = 60.0) -> bool:
        """Drain + stop + join; True iff the drain completed cleanly."""
        assert self._loop is not None and self._thread is not None
        future = asyncio.run_coroutine_threadsafe(
            self.service.drain_and_stop(), self._loop)
        self.drained = future.result(timeout)
        self._thread.join(timeout)
        return bool(self.drained)

    def __enter__(self) -> "ServiceThread":
        return self.start()

    def __exit__(self, *exc) -> None:
        if self._thread is not None and self._thread.is_alive():
            self.stop()
