"""End-to-end chaos drill through the HTTP service path.

PR 3's ``repro chaos`` proves the *batch* harness recovers from worker
kills and cache corruption; this module asserts the same guarantees
hold end-to-end through the serving layer: with a seeded fault plan
active, jobs submitted over HTTP — including duplicates, so coalescing
is exercised under fire — must all complete, results must be
bit-identical to a clean serial run, and the surviving persistent cache
must pass a full integrity scan.

The fault plan travels through ``$REPRO_FAULTS``, which the service's
pool workers inherit exactly like the batch harness's workers do, so a
``worker``-site kill fires inside a service worker process and a
``cache.put``-site corruption garbles a service-written cache entry.
"""

from __future__ import annotations

import tempfile
from pathlib import Path
from typing import Callable

from ..faults import FaultPlan, FaultSpec, uninstall
from ..harness.cache import ResultCache
from ..harness.parallel import ParallelRunner
from .client import ServiceClient
from .daemon import ServiceConfig, ServiceThread
from .jobs import RunKeyer, RunRequest


def service_chaos_plan(seed: int = 0) -> FaultPlan:
    """Worker kill + crash + cache corruption aimed at the service path."""
    return FaultPlan(
        seed=seed,
        specs=[
            FaultSpec(site="worker", kind="exception", times=2),
            FaultSpec(site="worker", kind="kill", times=1),
            FaultSpec(site="cache.put", kind="corrupt", times=1),
            FaultSpec(site="cache.get", kind="io_error", times=1),
        ],
    )


def service_chaos_smoke(
    seed: int = 0,
    scale: str = "test",
    jobs: int = 2,
    workloads: tuple[str, ...] = ("gather", "pchase"),
    policies: tuple[str, ...] = ("none", "levioso"),
    cache_dir: str | Path | None = None,
    log: Callable[[str], None] | None = print,
) -> bool:
    """Seeded service-path fault drill; True iff recovery was bit-identical.

    Sequence: compute the clean serial reference in-process, install the
    fault plan, start a real daemon (ephemeral port, persistent cache),
    submit every grid point **twice** over HTTP while faults fire, wait,
    and verify every returned record — coalesced or not — equals the
    reference, the daemon drains clean, and the cache verifies clean.
    """

    def say(message: str) -> None:
        if log is not None:
            log(message)

    pairs = [(w, p) for w in workloads for p in policies]

    uninstall()
    reference = ParallelRunner(scale=scale, jobs=1)
    expected = {
        (w, p): ResultCache.serialize(reference.run(w, p).slim())
        for w, p in pairs
    }
    say(f"reference: {reference.simulations} clean serial simulations")

    own_dir = cache_dir is None
    cache_dir = Path(cache_dir) if cache_dir is not None else Path(
        tempfile.mkdtemp(prefix="repro-service-chaos-"))
    plan = service_chaos_plan(seed).install()
    ok = True
    try:
        config = ServiceConfig(
            port=0, jobs=jobs, queue_depth=max(len(pairs) * 2, 8),
            retries=4, timeout=5.0, cache_dir=str(cache_dir), use_cache=True,
        )
        with ServiceThread(config) as server:
            client = ServiceClient(server.base_url)
            runs = [
                {"workload": w, "policy": p, "scale": scale}
                for w, p in pairs
            ] * 2  # duplicates: coalescing must survive the chaos too
            results = client.run_grid(runs, timeout=120.0)
            say(f"service resolved {len(results)} job(s) under chaos; "
                f"faults fired: {plan.fired()}")
            for job, record in results:
                got = ResultCache.serialize(record)
                want = expected[(job["request"]["workload"],
                                 job["request"]["policy"])]
                if got != want:
                    say(f"MISMATCH {job['request']['workload']}/"
                        f"{job['request']['policy']}: service record "
                        f"differs from clean serial run")
                    ok = False
            metrics = client.metrics()
            coalesced = metrics.get(
                "repro_service_jobs_coalesced_total", 0.0)
            hits = metrics.get("repro_service_cache_hits_total", 0.0)
            if coalesced + hits <= 0:
                say("MISSING dedup: neither coalescing nor cache hits "
                    "observed for duplicate submissions")
                ok = False
            drained = server.stop()
        if not drained:
            say("DRAIN FAILED: accepted jobs left unresolved at shutdown")
            ok = False
        # Corrupt entries only quarantine when re-read (duplicates were
        # served from the in-memory store): warm re-read every key the
        # drill touched, then the surviving store must scan clean.
        uninstall()
        warm = ResultCache(cache_dir)
        keyer = RunKeyer()
        for w, p in pairs:
            warm.get(keyer.key_for(RunRequest(workload=w, policy=p,
                                              scale=scale)))
        if warm.stats.quarantined:
            say(f"quarantined {warm.stats.quarantined} corrupt cache "
                f"entr(ies) on warm re-read")
        verify = ResultCache(cache_dir).verify()
        if verify.corrupt:
            say(f"cache verify after drill: {verify.as_dict()}")
            ok = False
        say("service chaos: " + (
            "PASS — HTTP-served results bit-identical to the clean serial "
            "run" if ok else "FAIL"))
        return ok
    finally:
        uninstall()
        if own_dir:
            import shutil

            shutil.rmtree(cache_dir, ignore_errors=True)
