"""Thin stdlib HTTP client for the simulation service.

:class:`ServiceClient` wraps the daemon's JSON API (submit, poll, wait,
health, metrics) over ``urllib.request`` — blocking, dependency-free,
and safe to use from multiple threads (each request opens its own
connection, matching the daemon's one-request-per-connection HTTP).

Deserialized results come back as the same slim
:class:`~repro.harness.runner.RunRecord` objects the in-process harness
produces, so callers can compare service results to local runs field by
field (the acceptance bar for the whole serving layer).
"""

from __future__ import annotations

import json
import os
import time
import urllib.error
import urllib.request
from typing import Any, Iterable

from ..errors import ReproError
from ..harness.cache import ResultCache
from ..harness.resilience import RetryPolicy
from ..harness.runner import RunRecord

#: Default daemon location; override per-call or via ``$REPRO_SERVICE_URL``.
DEFAULT_URL = "http://127.0.0.1:8765"

#: Default transport retry: a handful of attempts with exponential
#: backoff + deterministic jitter, enough to ride out a daemon restart
#: or a dropped connection without masking a daemon that is really down.
DEFAULT_RETRY = RetryPolicy(max_attempts=4, base_delay=0.1, backoff=2.0,
                            max_delay=2.0, jitter=0.5)


class ServiceError(ReproError):
    """The service answered with an error status (or not at all)."""

    def __init__(self, message: str, status: int | None = None,
                 retry_after: float | None = None):
        self.status = status
        self.retry_after = retry_after
        super().__init__(message)


class ServiceQueueFull(ServiceError):
    """HTTP 429: admission control rejected the submission."""


class JobFailed(ServiceError):
    """A waited-on job reached the ``failed`` terminal state."""


def default_url() -> str:
    return os.environ.get("REPRO_SERVICE_URL") or DEFAULT_URL


def parse_metrics(text: str) -> dict[str, float]:
    """Prometheus text -> {sample name (with labels): value}.

    Good enough for tests and CI assertions; not a full parser (ignores
    HELP/TYPE lines, keeps label strings verbatim as part of the key).
    """
    samples: dict[str, float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        name, _, value = line.rpartition(" ")
        try:
            samples[name] = float(value)
        except ValueError:
            continue
    return samples


class ServiceClient:
    """Blocking client for one ``repro serve`` daemon.

    Transient transport failures (connection refused/reset mid-restart,
    dropped sockets) are retried per ``retry_policy`` with exponential
    backoff and deterministic jitter keyed on the request path — safe
    because every API call here is idempotent: submits are coalesced by
    content key server-side, and polls are pure reads.  HTTP error
    *responses* are never retried at this layer; they are real answers.
    """

    def __init__(self, base_url: str | None = None, timeout: float = 30.0,
                 retry_policy: RetryPolicy | None = None):
        self.base_url = (base_url or default_url()).rstrip("/")
        self.timeout = timeout
        self.retry_policy = DEFAULT_RETRY if retry_policy is None \
            else retry_policy
        self.transport_retries = 0   # observability: total retried sends

    # ------------------------------------------------------------ transport
    def _request(self, method: str, path: str,
                 payload: Any | None = None) -> tuple[int, dict, bytes]:
        body = json.dumps(payload).encode() if payload is not None else None
        policy = self.retry_policy
        last: Exception | None = None
        for attempt in range(max(policy.max_attempts, 1)):
            if attempt:
                self.transport_retries += 1
                time.sleep(policy.delay(attempt, key=f"{method} {path}"))
            request = urllib.request.Request(
                self.base_url + path, data=body, method=method,
                headers={"Content-Type": "application/json"} if body else {},
            )
            try:
                with urllib.request.urlopen(
                        request, timeout=self.timeout) as resp:
                    return resp.status, dict(resp.headers), resp.read()
            except urllib.error.HTTPError as exc:
                return exc.code, dict(exc.headers), exc.read()
            except (urllib.error.URLError, ConnectionResetError,
                    OSError) as exc:
                last = exc
        raise ServiceError(
            f"cannot reach service at {self.base_url} after "
            f"{max(policy.max_attempts, 1)} attempt(s): {last}") from last

    def _json(self, method: str, path: str,
              payload: Any | None = None) -> Any:
        status, headers, body = self._request(method, path, payload)
        try:
            data = json.loads(body.decode() or "null")
        except ValueError as exc:
            raise ServiceError(
                f"{method} {path}: non-JSON response (HTTP {status})",
                status=status) from exc
        if status == 429:
            retry_after = float(headers.get("Retry-After", "1") or "1")
            raise ServiceQueueFull(
                data.get("error", "queue full"), status=status,
                retry_after=retry_after)
        if status >= 400:
            raise ServiceError(
                data.get("error", f"HTTP {status}"), status=status)
        return data

    # ------------------------------------------------------------- frontend
    def healthz(self) -> dict:
        return self._json("GET", "/healthz")

    def metrics_text(self) -> str:
        status, _, body = self._request("GET", "/metrics")
        if status != 200:
            raise ServiceError(f"/metrics returned HTTP {status}",
                               status=status)
        return body.decode()

    def metrics(self) -> dict[str, float]:
        return parse_metrics(self.metrics_text())

    def submit(self, runs: Iterable[dict], priority: int | None = None,
               ) -> list[dict]:
        """Submit a batch; returns the accepted job descriptors.

        Each run is a dict with ``workload``/``policy`` and optional
        ``scale``/``config``/``use_compiler_info``/``priority`` keys.
        Raises :class:`ServiceQueueFull` (with ``retry_after``) on 429.
        """
        batch = []
        for run in runs:
            run = dict(run)
            if priority is not None:
                run.setdefault("priority", priority)
            batch.append(run)
        if not batch:
            return []
        data = self._json("POST", "/v1/runs", {"runs": batch})
        return data["jobs"]

    def submit_one(self, workload: str, policy: str, **fields) -> dict:
        return self.submit([{"workload": workload, "policy": policy,
                             **fields}])[0]

    def status(self, job_id: str) -> dict:
        return self._json("GET", f"/v1/runs/{job_id}")

    def jobs(self) -> dict:
        return self._json("GET", "/v1/runs")

    def wait(self, job_ids: Iterable[str], timeout: float = 300.0,
             poll: float = 0.05) -> dict[str, dict]:
        """Poll until every job is terminal; {id: final job dict}.

        Raises :class:`JobFailed` if any job failed, :class:`ServiceError`
        on timeout — callers that want partial results should poll
        :meth:`status` themselves.
        """
        deadline = time.monotonic() + timeout
        outstanding = list(dict.fromkeys(job_ids))
        done: dict[str, dict] = {}
        while outstanding:
            for job_id in list(outstanding):
                job = self.status(job_id)
                if job["state"] in ("done", "failed"):
                    done[job_id] = job
                    outstanding.remove(job_id)
            if not outstanding:
                break
            if time.monotonic() > deadline:
                raise ServiceError(
                    f"timed out waiting for {len(outstanding)} job(s) "
                    f"after {timeout}s: {', '.join(outstanding[:5])}")
            time.sleep(poll)
        failures = [j for j in done.values() if j["state"] == "failed"]
        if failures:
            first = failures[0]
            raise JobFailed(
                f"{len(failures)} job(s) failed; first: "
                f"{first['request']['workload']}/"
                f"{first['request']['policy']} — "
                f"{(first.get('error') or '').strip().splitlines()[-1:] or ['?']}"
            )
        return done

    def record_of(self, job: dict) -> RunRecord:
        """The slim :class:`RunRecord` embedded in a terminal job dict."""
        if job.get("result") is None:
            raise ServiceError(
                f"job {job.get('id')} has no result (state "
                f"{job.get('state')!r})")
        return ResultCache.deserialize(job["result"])

    def run_grid(self, runs: Iterable[dict], timeout: float = 300.0,
                 max_submit_retries: int = 10,
                 ) -> list[tuple[dict, RunRecord]]:
        """Submit + wait + deserialize: [(job dict, RunRecord)] in order.

        Retries the submission with the server's ``Retry-After`` hint on
        backpressure, so closed-loop callers (the load generator) obey
        admission control instead of hammering it.
        """
        attempts = 0
        while True:
            try:
                jobs = self.submit(runs)
                break
            except ServiceQueueFull as exc:
                attempts += 1
                if attempts > max_submit_retries:
                    raise
                time.sleep(min(exc.retry_after or 1.0, 5.0))
        finals = self.wait([j["id"] for j in jobs], timeout=timeout)
        return [(finals[j["id"]], self.record_of(finals[j["id"]]))
                for j in jobs]
