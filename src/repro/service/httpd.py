"""Shared stdlib asyncio HTTP/1.1 JSON server base.

Both daemons in the repo — the single-node simulation service
(:mod:`repro.service.daemon`) and the cluster coordinator
(:mod:`repro.cluster.coordinator`) — speak the same minimal protocol:
one request per connection, ``Connection: close``, JSON bodies, plus a
Prometheus ``/metrics`` text endpoint.  This module holds the protocol
plumbing once so the two front ends only differ in their route tables.

Subclasses implement :meth:`JsonHttpServer.route`; a route may return
either a ``(status, headers, body, endpoint_label)`` tuple or a
coroutine resolving to one (the coordinator's federated ``/metrics``
scrapes its workers concurrently, so it must be able to await).
"""

from __future__ import annotations

import asyncio
import json

from .. import __version__

MAX_BODY_BYTES = 4 * 1024 * 1024

REASONS = {
    200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 413: "Payload Too Large",
    429: "Too Many Requests", 500: "Internal Server Error",
    503: "Service Unavailable",
}


class HttpError(Exception):
    """Terminate request handling with a specific status + JSON error."""

    def __init__(self, status: int, message: str,
                 headers: dict[str, str] | None = None):
        self.status = status
        self.message = message
        self.headers = headers or {}


def json_bytes(payload) -> bytes:
    return (json.dumps(payload, indent=2) + "\n").encode()


class JsonHttpServer:
    """Minimal HTTP/1.1 front end over ``asyncio.start_server``.

    Owns only the wire protocol; subclasses own dispatch (:meth:`route`)
    and observability (:meth:`on_response`).
    """

    #: ``Server:`` header token; subclasses override.
    server_label = "repro"

    def __init__(self) -> None:
        self._server: asyncio.AbstractServer | None = None
        self.port: int | None = None   # bound port (after bind)

    async def bind(self, host: str, port: int) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, host, port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def close_server(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()

    # ------------------------------------------------------------- dispatch
    def route(self, method: str, path: str, body: bytes):
        """Return ``(status, extra headers, body, endpoint label)`` or a
        coroutine resolving to that tuple; raise :class:`HttpError`."""
        raise NotImplementedError

    def on_response(self, endpoint: str, status: int) -> None:
        """Observability hook: called once per response."""

    # ------------------------------------------------------------------ http
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        endpoint = "?"
        try:
            status, headers, payload, endpoint = await self._handle_request(
                reader)
        except HttpError as exc:
            status = exc.status
            headers = dict(exc.headers)
            payload = json_bytes({"error": exc.message, "status": status})
        except (asyncio.IncompleteReadError, ConnectionError,
                asyncio.TimeoutError):
            writer.close()
            return
        except Exception as exc:  # never let one request kill the daemon
            status, headers = 500, {}
            payload = json_bytes({"error": f"internal error: {exc}",
                                  "status": 500})
        self.on_response(endpoint, status)
        reason = REASONS.get(status, "Unknown")
        head = [f"HTTP/1.1 {status} {reason}"]
        base = {
            "Content-Type": "application/json; charset=utf-8",
            "Content-Length": str(len(payload)),
            "Connection": "close",
            "Server": f"{self.server_label}/{__version__}",
        }
        base.update(headers)
        head += [f"{k}: {v}" for k, v in base.items()]
        try:
            writer.write(("\r\n".join(head) + "\r\n\r\n").encode() + payload)
            await writer.drain()
            writer.close()
            await writer.wait_closed()
        except (ConnectionError, BrokenPipeError):
            pass

    async def _handle_request(self, reader: asyncio.StreamReader
                              ) -> tuple[int, dict[str, str], bytes, str]:
        request_line = await asyncio.wait_for(reader.readline(), 30.0)
        parts = request_line.decode("latin-1").split()
        if len(parts) != 3:
            raise HttpError(400, "malformed request line")
        method, target, _version = parts
        headers: dict[str, str] = {}
        while True:
            line = await asyncio.wait_for(reader.readline(), 30.0)
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > MAX_BODY_BYTES:
            raise HttpError(413, f"body too large (max {MAX_BODY_BYTES}B)")
        body = (await asyncio.wait_for(reader.readexactly(length), 30.0)
                if length else b"")
        path = target.split("?", 1)[0]
        result = self.route(method.upper(), path, body)
        if asyncio.iscoroutine(result):
            result = await result
        return result
