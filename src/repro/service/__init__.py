"""Simulation-as-a-service: job-queue daemon, client, metrics, chaos.

The serving layer over the experiment harness (see
:mod:`repro.service.daemon` for the architecture).  This package
``__init__`` is deliberately lazy (PEP 562): the harness feeds
:mod:`repro.service.metrics` from inside hot functions, and importing a
submodule executes this file first — pulling the asyncio daemon (and
back into the harness) eagerly here would be a cycle and a startup tax.
"""

from __future__ import annotations

_EXPORTS = {
    "MetricsRegistry": "metrics",
    "global_registry": "metrics",
    "record_grid_report": "metrics",
    "BadRequest": "jobs",
    "Job": "jobs",
    "RunRequest": "jobs",
    "AdmissionQueue": "queue",
    "QueueFull": "queue",
    "Scheduler": "scheduler",
    "WorkerPool": "scheduler",
    "ServiceConfig": "daemon",
    "ServiceThread": "daemon",
    "SimulationService": "daemon",
    "serve": "daemon",
    "JobFailed": "client",
    "ServiceClient": "client",
    "ServiceError": "client",
    "ServiceQueueFull": "client",
    "parse_metrics": "client",
    "service_chaos_smoke": "chaos",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    module = importlib.import_module(f".{module_name}", __name__)
    value = getattr(module, name)
    globals()[name] = value  # cache for the next lookup
    return value


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
