"""Bounded priority admission queue for simulation flights.

Backpressure lives here: the queue admits at most ``depth`` *flights*
(coalesced jobs ride along for free — attaching to an in-flight key
consumes no capacity, which is exactly why coalescing helps under
load).  A full queue raises :class:`QueueFull`, which the HTTP layer
translates into ``429 Too Many Requests`` with a ``Retry-After`` hint
derived from the observed service rate.

Ordering is (priority, arrival seq): lower priority numbers run sooner,
ties are FIFO.  A flight's priority can be *raised* after enqueue (a
high-priority job coalescing onto it); that is handled lazy-deletion
style — :meth:`AdmissionQueue.reprioritize` pushes a fresh heap entry
at the new priority and :meth:`AdmissionQueue.pop` discards entries for
flights already handed out, so a raised flight really does jump the
line instead of waiting for its stale entry to surface.  The structure
itself is not thread-safe — the daemon touches it only from its event
loop; unit tests exercise it directly.
"""

from __future__ import annotations

import heapq

from ..errors import ReproError
from .jobs import Flight


class QueueFull(ReproError):
    """Admission control rejected a submission (the 429 path).

    ``retry_after`` is the server's estimate, in seconds, of when
    capacity will exist again; clients should treat it as a hint.
    """

    def __init__(self, depth: int, retry_after: float):
        self.depth = depth
        self.retry_after = retry_after
        super().__init__(
            f"job queue full ({depth} flight(s) queued); "
            f"retry after {retry_after:.1f}s"
        )


class AdmissionQueue:
    """Bounded priority queue of :class:`Flight` objects.

    Flights are keyed by their run-cache content key; at most one queued
    flight per key (the daemon coalesces duplicates before pushing).
    """

    def __init__(self, depth: int = 64):
        if depth < 1:
            raise ValueError("queue depth must be >= 1")
        self.depth = depth
        self._heap: list[tuple[int, int, Flight]] = []
        self._queued: set[str] = set()   # keys currently waiting
        self.admitted = 0
        self.rejected = 0

    def __len__(self) -> int:
        # Heap entries over-count after a reprioritize; the key set is
        # the number of flights actually waiting.
        return len(self._queued)

    @property
    def full(self) -> bool:
        return len(self._queued) >= self.depth

    def has_room_for(self, new_flights: int) -> bool:
        """Whether a batch creating ``new_flights`` flights fits (all-or-
        nothing batch admission: a batch is never half-accepted)."""
        return len(self._queued) + new_flights <= self.depth

    def push(self, flight: Flight, retry_after: float = 1.0) -> None:
        if self.full:
            self.rejected += 1
            raise QueueFull(self.depth, retry_after)
        heapq.heappush(self._heap, (flight.priority, flight.seq, flight))
        self._queued.add(flight.key)
        self.admitted += 1

    def reprioritize(self, flight: Flight) -> None:
        """Re-place a still-queued flight whose priority was raised.

        No-op for flights already popped (in-flight or resolved) — their
        execution order is no longer the queue's business.  The old heap
        entry stays behind as garbage and is discarded by :meth:`pop`.
        """
        if flight.key in self._queued:
            heapq.heappush(self._heap, (flight.priority, flight.seq, flight))

    def pop(self) -> Flight | None:
        """Highest-priority flight, or ``None`` when empty.

        Skips lazy-deletion garbage: duplicate entries for a flight that
        already left the queue, and stale entries for a flight whose
        priority was raised without a :meth:`reprioritize` (those are
        re-pushed in the right place rather than served early... or
        late).
        """
        while self._heap:
            priority, seq, flight = heapq.heappop(self._heap)
            if flight.key not in self._queued:
                continue  # duplicate entry of an already-popped flight
            if flight.priority < priority:
                heapq.heappush(self._heap,
                               (flight.priority, flight.seq, flight))
                continue
            self._queued.discard(flight.key)
            return flight
        return None

    def pop_compatible(self, flight: Flight, max_more: int) -> list[Flight]:
        """Pop up to ``max_more`` flights batchable with ``flight``.

        Batchable means the same (workload, scale) — i.e. the same
        program image — so the scheduler can run them in one lockstep
        worker task (:mod:`repro.harness.lockstep`).  Selection is
        best-first (priority, then FIFO), so batching never runs a
        lower-priority flight before a higher-priority compatible one it
        left behind.  Popped flights leave ``_queued``; their heap
        entries become lazy-deletion garbage for :meth:`pop`.
        """
        if max_more <= 0:
            return []
        out: list[Flight] = []
        for candidate in self.flights():
            if len(out) >= max_more:
                break
            request = candidate.request
            if (request.workload == flight.request.workload
                    and request.scale == flight.request.scale):
                self._queued.discard(candidate.key)
                out.append(candidate)
        return out

    def flights(self) -> list[Flight]:
        """Queued flights, best-first, one entry per flight."""
        seen: set[str] = set()
        out: list[Flight] = []
        for _, _, flight in sorted(self._heap, key=lambda e: e[:2]):
            if flight.key in self._queued and flight.key not in seen:
                seen.add(flight.key)
                out.append(flight)
        return out
