"""Asynchronous flight scheduler over a supervised persistent worker pool.

This is the serving-path sibling of :func:`repro.harness.resilience.
execute_supervised`: same failure taxonomy, adapted from batch to
long-running.  Flights are popped from the :class:`AdmissionQueue` as
worker slots free up and executed on a persistent
``ProcessPoolExecutor`` via :func:`~repro.harness.resilience.
simulate_point` (the exact worker entrypoint the batch harness uses, so
a result computed through the service is bit-identical to a serial
in-process run by construction).  Supervision distinguishes:

* a worker exception — the flight's own fault; charged against its
  :class:`~repro.harness.resilience.RetryPolicy` budget and retried
  after deterministic backoff;
* ``BrokenProcessPool`` — some worker died; the pool is rebuilt, every
  flight that was in that pool generation is resubmitted **uncharged**
  (the victim cannot be identified);
* a per-flight deadline overrun — the worker is hung and cannot be
  killed portably, so the whole pool generation is abandoned: the hung
  flight is charged an attempt, innocents resubmit uncharged.

Pool deaths beyond ``RetryPolicy.max_pool_rebuilds`` degrade the
scheduler to a single in-process worker thread: throughput collapses
but the daemon stays up and every accepted job still completes —
admission control upstream is what keeps this path survivable.
"""

from __future__ import annotations

import asyncio
import concurrent.futures as cf
import time
import traceback
from concurrent.futures.process import BrokenProcessPool

from ..harness.cache import ResultCache
from ..harness.lockstep import LOCKSTEP_MAX, lockstep_enabled, simulate_batch
from ..harness.resilience import RetryPolicy, simulate_point
from ..harness.runner import RunRecord
from .jobs import DONE, FAILED, RUNNING, Flight, JobStore
from .metrics import MetricsRegistry
from .queue import AdmissionQueue


class WorkerPool:
    """A ``ProcessPoolExecutor`` with generation-tracked rebuilds.

    ``submit`` tags each future with the pool generation it entered;
    ``declare_dead(generation)`` rebuilds at most once per generation
    (concurrent flights observing the same death coalesce into one
    rebuild).  After ``max_rebuilds`` deaths the pool degrades to one
    in-process worker thread — no per-flight timeout is enforceable
    there, matching the batch harness's serial degradation.
    """

    def __init__(self, workers: int, max_rebuilds: int = 3):
        self.workers = max(workers, 1)
        self.max_rebuilds = max_rebuilds
        self.generation = 0
        self.rebuilds = 0
        self.degraded = False
        self._pool: cf.Executor = cf.ProcessPoolExecutor(
            max_workers=self.workers)

    def submit(self, args: tuple) -> tuple[cf.Future, int]:
        return self._pool.submit(simulate_point, args), self.generation

    def submit_batch(self, args: tuple) -> tuple[cf.Future, int]:
        """Submit one lockstep batch (``simulate_batch`` args)."""
        return self._pool.submit(simulate_batch, args), self.generation

    def declare_dead(self, generation: int) -> None:
        """Replace the pool if ``generation`` is still the live one."""
        if generation != self.generation or self.degraded:
            return
        self.generation += 1
        self.rebuilds += 1
        old, self._pool = self._pool, None  # type: ignore[assignment]
        old.shutdown(wait=False, cancel_futures=True)
        if self.rebuilds > self.max_rebuilds:
            self.degraded = True
            # One thread: simulations serialize in-process, the event
            # loop stays responsive for health checks and status reads.
            self._pool = cf.ThreadPoolExecutor(max_workers=1)
        else:
            self._pool = cf.ProcessPoolExecutor(max_workers=self.workers)

    def shutdown(self, wait: bool = True) -> None:
        # A clean stop joins the (idle, post-drain) workers so the
        # executor's atexit hook finds nothing half-dead; an unclean one
        # (drain timeout, hung degraded thread) must not block on them.
        self._pool.shutdown(wait=wait and not self.degraded,
                            cancel_futures=True)


class Scheduler:
    """Drains the admission queue through the worker pool, resolving jobs."""

    def __init__(
        self,
        queue: AdmissionQueue,
        store: JobStore,
        results: dict[str, RunRecord],
        metrics: MetricsRegistry,
        jobs: int = 2,
        retry_policy: RetryPolicy | None = None,
        cache: ResultCache | None = None,
    ):
        self.queue = queue
        self.store = store
        self.results = results          # key -> slim RunRecord (warm store)
        self.cache = cache              # optional persistent ResultCache
        self.metrics = metrics
        self.retry_policy = retry_policy or RetryPolicy()
        self.pool = WorkerPool(jobs, self.retry_policy.max_pool_rebuilds)
        self.inflight: dict[str, Flight] = {}   # key -> running flight
        self._wrapped: dict[str, asyncio.Future] = {}
        self._running = False
        self._paused = asyncio.Event()
        self._paused.set()              # set == not paused
        self._wakeup = asyncio.Event()
        self._idle = asyncio.Event()
        self._idle.set()
        self._slots = asyncio.Semaphore(max(jobs, 1))
        self._tasks: set[asyncio.Task] = set()
        self._loop_task: asyncio.Task | None = None

        m = self.metrics
        self.m_completed = m.counter(
            "repro_service_jobs_completed_total",
            "Jobs resolved by the service, by terminal state.",
            labelnames=("state",))
        self.m_simulations = m.counter(
            "repro_service_simulations_total",
            "Simulations actually executed by the worker pool.")
        self.m_retries = m.counter(
            "repro_service_retries_total",
            "Flight attempts retried after a worker failure.")
        self.m_restarts = m.counter(
            "repro_service_worker_restarts_total",
            "Worker-pool rebuilds after a death or hung worker.")
        self.m_running = m.gauge(
            "repro_service_jobs_running", "Flights currently simulating.")
        self.m_degraded = m.gauge(
            "repro_service_degraded",
            "1 when the pool has degraded to in-process serial mode.")
        self.m_latency = m.histogram(
            "repro_service_job_latency_seconds",
            "Submit-to-resolve latency of completed jobs.")
        self.m_sim_seconds = m.histogram(
            "repro_service_simulation_seconds",
            "Wall-clock duration of individual worker simulations.")

    # ------------------------------------------------------------ lifecycle
    def start(self) -> None:
        self._running = True
        self._loop_task = asyncio.get_running_loop().create_task(
            self._drain_loop())

    def pause(self) -> None:
        """Stop popping new flights (running ones finish); test hook."""
        self._paused.clear()

    def resume(self) -> None:
        self._paused.set()
        self._wakeup.set()

    def notify(self) -> None:
        """Wake the drain loop after an enqueue."""
        self._wakeup.set()

    @property
    def busy(self) -> bool:
        return bool(self.inflight) or len(self.queue) > 0

    async def drain(self, timeout: float | None = None) -> bool:
        """Wait for queue + in-flight work to finish; True on full drain."""
        deadline = (time.monotonic() + timeout) if timeout is not None else None
        while True:
            self._idle.clear()
            if not self.busy:  # checked after clear, so no lost wakeup
                return True
            wait = None
            if deadline is not None:
                wait = deadline - time.monotonic()
                if wait <= 0:
                    return False
            try:
                await asyncio.wait_for(self._idle.wait(), wait)
            except asyncio.TimeoutError:
                return False

    async def stop(self, wait_workers: bool = True) -> None:
        self._running = False
        self._wakeup.set()
        if self._loop_task is not None:
            self._loop_task.cancel()
            try:
                await self._loop_task
            except asyncio.CancelledError:
                pass
        for task in list(self._tasks):
            task.cancel()
        if self._tasks:
            await asyncio.gather(*self._tasks, return_exceptions=True)
        self.pool.shutdown(wait=wait_workers)

    # ----------------------------------------------------------- drain loop
    async def _drain_loop(self) -> None:
        while self._running:
            await self._paused.wait()
            await self._slots.acquire()
            flight = self.queue.pop() if self._paused.is_set() else None
            if flight is None:
                self._slots.release()
                self._wakeup.clear()
                await self._wakeup.wait()
                continue
            # Lockstep vectorization: pull queued flights that share the
            # popped flight's program image into one worker task.  The
            # batch occupies the one slot just acquired (it is one worker
            # process), so sibling slots keep draining other batches.
            siblings = (
                self.queue.pop_compatible(flight, LOCKSTEP_MAX - 1)
                if lockstep_enabled() and not self.pool.degraded
                else []
            )
            if siblings:
                flights = [flight, *siblings]
                for member in flights:
                    self.inflight[member.key] = member
                task = asyncio.get_running_loop().create_task(
                    self._run_batch(flights))
            else:
                self.inflight[flight.key] = flight
                task = asyncio.get_running_loop().create_task(
                    self._run_flight(flight))
            self._tasks.add(task)
            task.add_done_callback(self._tasks.discard)

    # -------------------------------------------------------------- flights
    async def _run_flight(self, flight: Flight) -> None:
        started = time.time()
        for job in flight.jobs:
            job.state = RUNNING
            job.started = started
        self.m_running.inc()
        try:
            record = await self._execute(flight)
        except Exception as exc:
            self._resolve(flight, None, error="".join(
                traceback.format_exception(type(exc), exc, exc.__traceback__)))
        else:
            self._resolve(flight, record)
        finally:
            self.m_running.dec()
            self.inflight.pop(flight.key, None)
            self._wrapped.pop(flight.key, None)
            self._slots.release()
            self._wakeup.set()
            if not self.busy:
                self._idle.set()

    async def _run_batch(self, flights: "list[Flight]") -> None:
        """Run compatible flights as one lockstep batch, with fallback.

        The batch is one *optimistic, uncharged* attempt: on success every
        member resolves from the shared worker call; on any failure —
        worker exception, hung batch, pool death — the members fall back
        to the classic per-flight supervised path (:meth:`_execute`),
        which attributes failures to individual flights and applies the
        full retry-policy machinery.  SimulationTimeout raised mid-batch
        carries the guilty member's run key in its ``point`` attribute.
        """
        started = time.time()
        for flight in flights:
            for job in flight.jobs:
                job.state = RUNNING
                job.started = started
        self.m_running.inc(len(flights))
        try:
            records = await self._execute_batch(flights)
            if records is not None:
                for flight in flights:
                    self._resolve(flight, records[flight.key])
            else:
                for flight in flights:
                    try:
                        record = await self._execute(flight)
                    except Exception as exc:
                        self._resolve(flight, None, error="".join(
                            traceback.format_exception(
                                type(exc), exc, exc.__traceback__)))
                    else:
                        self._resolve(flight, record)
        finally:
            self.m_running.dec(len(flights))
            for flight in flights:
                self.inflight.pop(flight.key, None)
                self._wrapped.pop(flight.key, None)
            self._slots.release()
            self._wakeup.set()
            if not self.busy:
                self._idle.set()

    async def _execute_batch(self, flights: "list[Flight]"):
        """One uncharged lockstep attempt; ``None`` means fall back."""
        policy = self.retry_policy
        args = (
            flights[0].request.scale,
            tuple(flight.request.grid_point() for flight in flights),
            None,
            tuple(flight.key for flight in flights),
        )
        submit_generation = self.pool.generation
        attempt_started = time.monotonic()
        try:
            future, generation = self.pool.submit_batch(args)
        except (BrokenProcessPool, RuntimeError):
            if self.pool.degraded:
                raise
            self._abandon_generation(submit_generation)
            await asyncio.sleep(0)
            return None
        for flight in flights:
            flight.generation = generation
        wrapped = asyncio.wrap_future(future)
        for flight in flights:
            self._wrapped[flight.key] = wrapped
        # The batch deadline scales with membership: N serial-equivalent
        # simulations legitimately take up to N single budgets.
        timeout = (None if self.pool.degraded or policy.timeout is None
                   else policy.timeout * len(flights))
        try:
            records = await asyncio.wait_for(wrapped, timeout)
        except asyncio.TimeoutError:
            # Hung batch, culprit member unknown: abandon the generation
            # and let every member retry individually, uncharged.
            self._abandon_generation(generation)
            return None
        except asyncio.CancelledError:
            if not any(flight.abandoned for flight in flights):
                raise  # real cancellation (service stopping)
            return None
        except BrokenProcessPool:
            self._abandon_generation(generation)
            return None
        except Exception:
            # Some member failed; the per-flight fallback attributes it.
            return None
        self.m_simulations.inc(len(flights))
        self.m_sim_seconds.observe(time.monotonic() - attempt_started)
        return records

    async def _execute(self, flight: Flight) -> RunRecord:
        """One flight to success or exhaustion, under supervision."""
        policy = self.retry_policy
        while True:
            flight.attempts += 1
            flight.abandoned = False
            attempt_started = time.monotonic()
            submit_generation = self.pool.generation
            try:
                future, generation = self.pool.submit(flight.worker_args())
            except (BrokenProcessPool, RuntimeError):
                # The pool broke under a sibling and we hit it before the
                # rebuild: submit() itself raises.  Same treatment as a
                # BrokenProcessPool from the future — rebuild (if nobody
                # beat us to it) and resubmit uncharged.  The degraded
                # thread pool cannot break this way; if it raises, the
                # scheduler is shutting down and the error is real.
                if self.pool.degraded:
                    raise
                self._abandon_generation(submit_generation)
                flight.attempts -= 1
                await asyncio.sleep(0)  # let the rebuild settle
                continue
            flight.generation = generation
            wrapped = asyncio.wrap_future(future)
            self._wrapped[flight.key] = wrapped
            timeout = None if self.pool.degraded else policy.timeout
            try:
                record = await asyncio.wait_for(wrapped, timeout)
            except asyncio.TimeoutError:
                # Hung worker: abandon the generation; this flight is the
                # culprit and is charged, siblings resubmit uncharged.
                self._abandon_generation(generation, culprit=flight)
                if flight.attempts >= policy.max_attempts:
                    raise TimeoutError(
                        f"{flight.request.workload}/{flight.request.policy} "
                        f"exceeded {policy.timeout}s wall-clock budget "
                        f"{flight.attempts} time(s)")
                self.m_retries.inc()
                await asyncio.sleep(policy.delay(flight.attempts, flight.key))
            except asyncio.CancelledError:
                if not flight.abandoned:
                    raise  # real cancellation (service stopping)
                flight.attempts -= 1  # collateral damage: uncharged
            except BrokenProcessPool:
                self._abandon_generation(generation)
                flight.attempts -= 1  # victim unidentifiable: uncharged
            except Exception:
                if flight.attempts >= policy.max_attempts:
                    raise
                self.m_retries.inc()
                await asyncio.sleep(policy.delay(flight.attempts, flight.key))
            else:
                self.m_simulations.inc()
                self.m_sim_seconds.observe(
                    time.monotonic() - attempt_started)
                return record

    def _abandon_generation(self, generation: int,
                            culprit: Flight | None = None) -> None:
        """Rebuild the pool; cancel + uncharge sibling flights of ``generation``."""
        if generation == self.pool.generation and not self.pool.degraded:
            self.m_restarts.inc()
        self.pool.declare_dead(generation)
        self.m_degraded.set(1 if self.pool.degraded else 0)
        for key, sibling in list(self.inflight.items()):
            if sibling is culprit or sibling.generation != generation:
                continue
            wrapped = self._wrapped.get(key)
            if wrapped is not None and not wrapped.done():
                sibling.abandoned = True
                wrapped.cancel()

    # -------------------------------------------------------------- resolve
    def _resolve(self, flight: Flight, record: RunRecord | None,
                 error: str = "") -> None:
        finished = time.time()
        if record is not None:
            self.results[flight.key] = record
            if self.cache is not None:
                self.cache.put(flight.key, record)
        for job in flight.jobs:
            job.attempts = flight.attempts
            job.finished = finished
            if record is not None:
                job.state = DONE
                job.record = record
            else:
                job.state = FAILED
                job.error = error
            self.m_completed.inc(state=job.state)
            if job.latency is not None:
                self.m_latency.observe(job.latency)
