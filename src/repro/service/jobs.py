"""Job and flight model for the simulation service.

Terminology, mirroring request-coalescing inference servers:

* a **job** is one client submission — it always gets its own id and its
  own status object, even when it never causes a simulation;
* a **flight** is one *underlying simulation*, keyed by the run-cache
  content key (:func:`repro.harness.cache.run_key`).  Every job whose
  request hashes to the same key while that key is unresolved attaches
  to the same flight (**coalescing**); once a key has a result, later
  jobs are answered straight from the result store (**cache hit**) and
  never enqueue at all.

Simulations are pure functions of the content key, so coalescing can
never change a result — only how many times it is computed.
"""

from __future__ import annotations

import dataclasses
import itertools
import json
import re
import time
import uuid
from typing import Any

from ..errors import ReproError
from ..harness.parallel import GridPoint
from ..harness.runner import ExperimentRunner, RunRecord
from ..secure import ALL_POLICY_NAMES
from ..uarch import CoreConfig
from ..workloads import WORKLOAD_NAMES

#: Job lifecycle states (terminal: done / failed).
QUEUED, RUNNING, DONE, FAILED = "queued", "running", "done", "failed"

SCALES = ("test", "ref")

#: Default priority; lower numbers run sooner.
DEFAULT_PRIORITY = 10


class BadRequest(ReproError):
    """A submission that can never be simulated (HTTP 400, not 429)."""


class BatchTooLarge(BadRequest):
    """More runs in one submission than the daemon accepts (HTTP 413)."""


#: Self-describing adversarial workload names (repro.adversarial.synth):
#: the name alone rebuilds the program, so any node can simulate it.
_FUZZ_NAME_RE = re.compile(
    r"^fuzz/s\d+/i\d+/f[0-9a-f]{2}(/repaired)?$")

#: Software-mitigated variants (repro.compiler.mitigations): the base may
#: itself be any valid workload name, including a fuzz one.
_MIT_PREFIX_RE = re.compile(r"^mit/(fence|slh|slh-lifted|selective)/(?P<base>.+)$")


def is_valid_workload(name: Any) -> bool:
    if not isinstance(name, str):
        return False
    mit = _MIT_PREFIX_RE.match(name)
    if mit is not None:
        name = mit.group("base")
    return name in WORKLOAD_NAMES or bool(_FUZZ_NAME_RE.match(name))


def _validated_config(overrides: dict[str, Any]) -> CoreConfig:
    """A :class:`CoreConfig` with scalar field overrides applied."""
    valid = {
        f.name: f for f in dataclasses.fields(CoreConfig)
    }
    clean: dict[str, Any] = {}
    for name, value in overrides.items():
        if name not in valid:
            raise BadRequest(f"unknown config field {name!r}")
        if not isinstance(value, (int, float, str, bool)):
            raise BadRequest(
                f"config field {name!r}: only scalar overrides are "
                f"supported, got {type(value).__name__}"
            )
        clean[name] = value
    try:
        return dataclasses.replace(CoreConfig(), **clean)
    except (TypeError, ValueError, ReproError) as exc:
        raise BadRequest(f"invalid config overrides: {exc}") from exc


@dataclasses.dataclass(frozen=True)
class RunRequest:
    """One validated (workload, policy, config, scale) simulation request."""

    workload: str
    policy: str
    scale: str = "test"
    use_compiler_info: bool = True
    config: CoreConfig | None = None
    priority: int = DEFAULT_PRIORITY

    @classmethod
    def from_dict(cls, payload: Any) -> "RunRequest":
        if not isinstance(payload, dict):
            raise BadRequest(f"run request must be an object, got "
                             f"{type(payload).__name__}")
        unknown = set(payload) - {
            "workload", "policy", "scale", "use_compiler_info", "config",
            "priority",
        }
        if unknown:
            raise BadRequest(f"unknown request field(s): "
                             f"{', '.join(sorted(unknown))}")
        workload = payload.get("workload")
        if not is_valid_workload(workload):
            raise BadRequest(
                f"unknown workload {workload!r} "
                f"(choices: {', '.join(WORKLOAD_NAMES)}, a "
                f"fuzz/s<seed>/i<index>/f<fill> adversarial name, or a "
                f"mit/<pass>/<base> software-mitigated variant)"
            )
        policy = payload.get("policy", "none")
        if policy not in ALL_POLICY_NAMES:
            raise BadRequest(
                f"unknown policy {policy!r} "
                f"(choices: {', '.join(ALL_POLICY_NAMES)})"
            )
        scale = payload.get("scale", "test")
        if scale not in SCALES:
            raise BadRequest(f"unknown scale {scale!r} (choices: test, ref)")
        use_compiler_info = payload.get("use_compiler_info", True)
        if not isinstance(use_compiler_info, bool):
            raise BadRequest("use_compiler_info must be a boolean")
        priority = payload.get("priority", DEFAULT_PRIORITY)
        if not isinstance(priority, int) or isinstance(priority, bool):
            raise BadRequest("priority must be an integer (lower runs sooner)")
        config = None
        overrides = payload.get("config")
        if overrides is not None:
            if not isinstance(overrides, dict):
                raise BadRequest("config must be an object of field overrides")
            if overrides:
                config = _validated_config(overrides)
        return cls(
            workload=workload, policy=policy, scale=scale,
            use_compiler_info=use_compiler_info, config=config,
            priority=priority,
        )

    def grid_point(self) -> GridPoint:
        return GridPoint(
            workload=self.workload,
            policy=self.policy,
            use_compiler_info=self.use_compiler_info,
            config=self.config,
        )

    def describe(self) -> dict:
        out: dict[str, Any] = {
            "workload": self.workload,
            "policy": self.policy,
            "scale": self.scale,
            "use_compiler_info": self.use_compiler_info,
            "priority": self.priority,
        }
        if self.config is not None:
            defaults = CoreConfig()
            out["config"] = {
                f.name: getattr(self.config, f.name)
                for f in dataclasses.fields(CoreConfig)
                if getattr(self.config, f.name) != getattr(defaults, f.name)
            }
        return out


def parse_submission(body: bytes, max_batch: int = 1024) -> list[RunRequest]:
    """Decode a POST /v1/runs body into validated requests.

    Shared by the single-node daemon and the cluster coordinator so the
    two front ends accept byte-identical submissions.  Raises
    :class:`BadRequest` (HTTP 400 shape) or :class:`BatchTooLarge`
    (HTTP 413 shape).
    """
    try:
        payload = json.loads(body.decode() or "null")
    except (ValueError, UnicodeDecodeError) as exc:
        raise BadRequest(f"body is not valid JSON: {exc}") from exc
    if isinstance(payload, dict) and "runs" in payload:
        runs = payload["runs"]
        if not isinstance(runs, list) or not runs:
            raise BadRequest('"runs" must be a non-empty array')
    elif isinstance(payload, dict):
        runs = [payload]
    else:
        raise BadRequest("body must be a run object or {\"runs\": [...]}")
    if len(runs) > max_batch:
        raise BatchTooLarge(f"batch too large (max {max_batch})")
    return [RunRequest.from_dict(r) for r in runs]


class RunKeyer:
    """Content keys for requests, sharing workload fingerprints per scale.

    A thin wrapper over :meth:`ExperimentRunner.run_key_for` — the runner
    memoizes workload assembly and fingerprints, so keying the thousandth
    request costs one dict lookup plus a config fingerprint.
    """

    def __init__(self):
        self._keyers: dict[str, ExperimentRunner] = {}

    def key_for(self, request: RunRequest) -> str:
        keyer = self._keyers.get(request.scale)
        if keyer is None:
            keyer = ExperimentRunner(scale=request.scale)
            self._keyers[request.scale] = keyer
        return keyer.run_key_for(
            request.workload, request.policy,
            request.config, request.use_compiler_info,
        )


_flight_seq = itertools.count()


@dataclasses.dataclass
class Flight:
    """One in-flight (or queued) simulation shared by coalesced jobs."""

    key: str
    request: RunRequest       # the first request that opened the flight
    priority: int
    seq: int = dataclasses.field(default_factory=lambda: next(_flight_seq))
    jobs: list["Job"] = dataclasses.field(default_factory=list)
    attempts: int = 0
    abandoned: bool = False   # set when the worker pool dies under it
    generation: int = -1      # pool generation of the in-flight attempt

    def worker_args(self) -> tuple:
        """Picklable args for :func:`repro.harness.resilience.simulate_point`."""
        return (self.request.scale, self.request.grid_point(), None)

    def attach(self, job: "Job") -> None:
        self.jobs.append(job)
        job.flight = self
        # A high-priority latecomer pulls the whole flight forward —
        # only raise, never lower, the effective priority.  The caller
        # must tell the queue (``AdmissionQueue.reprioritize``) when
        # this changes a still-queued flight.
        self.priority = min(self.priority, job.request.priority)


@dataclasses.dataclass
class Job:
    """One client submission and its lifecycle."""

    request: RunRequest
    key: str
    id: str = dataclasses.field(
        default_factory=lambda: uuid.uuid4().hex[:16])
    state: str = QUEUED
    coalesced: bool = False   # attached to an existing flight
    cached: bool = False      # answered from the result store, no flight
    attempts: int = 0
    error: str = ""
    created: float = dataclasses.field(default_factory=time.time)
    started: float | None = None
    finished: float | None = None
    flight: Flight | None = None
    record: RunRecord | None = None

    @property
    def latency(self) -> float | None:
        if self.finished is None:
            return None
        return self.finished - self.created

    def describe(self, include_result: bool = True) -> dict:
        from ..harness.cache import ResultCache

        out = {
            "id": self.id,
            "state": self.state,
            "key": self.key,
            "request": self.request.describe(),
            "coalesced": self.coalesced,
            "cached": self.cached,
            "attempts": self.attempts,
            "created": self.created,
            "started": self.started,
            "finished": self.finished,
            "latency": self.latency,
            "error": self.error or None,
        }
        if include_result and self.record is not None:
            out["result"] = ResultCache.serialize(self.record)
        return out


class JobStore:
    """Id-addressed job table with a bounded completed-job history.

    Terminal jobs beyond ``history`` are evicted oldest-first so a
    long-lived daemon cannot grow without bound; active jobs are never
    evicted (an accepted job must always be resolvable by id until it
    completes and ages out).
    """

    def __init__(self, history: int = 4096):
        self.history = history
        self._jobs: dict[str, Job] = {}   # insertion-ordered
        self.evicted = 0

    def add(self, job: Job) -> None:
        self._jobs[job.id] = job
        self._prune()

    def get(self, job_id: str) -> Job | None:
        return self._jobs.get(job_id)

    def __len__(self) -> int:
        return len(self._jobs)

    def jobs(self) -> list[Job]:
        return list(self._jobs.values())

    def active(self) -> list[Job]:
        return [j for j in self._jobs.values() if j.state in (QUEUED, RUNNING)]

    def _prune(self) -> None:
        overflow = len(self._jobs) - self.history
        if overflow <= 0:
            return
        for job_id in [
            jid for jid, job in self._jobs.items()
            if job.state in (DONE, FAILED)
        ][:overflow]:
            del self._jobs[job_id]
            self.evicted += 1
