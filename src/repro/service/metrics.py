"""Prometheus-style metrics primitives for the simulation service.

A :class:`MetricsRegistry` owns named :class:`Counter`, :class:`Gauge`
and :class:`Histogram` instruments and renders them in the Prometheus
text exposition format (version 0.0.4) for the daemon's ``GET /metrics``
endpoint.  Everything is stdlib: instruments are dicts guarded by one
lock per registry, so the harness's worker-callback threads and the
daemon's event loop can feed the same registry safely.

Two registries matter in practice:

* the **global** registry (:data:`GLOBAL`, via :func:`global_registry`)
  — fed by the harness itself (:func:`record_grid_report` is called at
  the end of every supervised grid execution, service or CLI alike), so
  ``repro serve`` surfaces batch-harness activity too;
* a **per-service** registry created by the daemon for its own queue /
  coalescing / latency instruments (kept separate so two services in one
  process — e.g. tests — never double-count).

This module must stay import-light: the harness imports it from inside
functions, and it must never import the harness back (or the daemon).
"""

from __future__ import annotations

import math
import threading
from typing import Iterable

#: Default latency buckets (seconds) — tuned to simulation runtimes at
#: ``test`` scale (0.05s..5s) with headroom for ``ref`` runs.
DEFAULT_BUCKETS = (
    0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0,
    2.5, 5.0, 10.0, 30.0, 60.0,
)


def _format_value(value: float) -> str:
    """Prometheus-compatible rendering of a sample value."""
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _escape_label(value: str) -> str:
    return (
        str(value).replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_labels(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{k}="{_escape_label(v)}"' for k, v in sorted(labels.items())
    )
    return "{" + inner + "}"


class _Instrument:
    """Shared bookkeeping: name, help text, label names, sample store."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "",
                 labelnames: Iterable[str] = ()):
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._lock = threading.Lock()
        #: label-values tuple -> numeric sample (or histogram state)
        self._samples: dict[tuple, float] = {}

    def _labelkey(self, labels: dict[str, str]) -> tuple:
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"{self.name}: expected labels {self.labelnames}, "
                f"got {tuple(sorted(labels))}"
            )
        return tuple(str(labels[k]) for k in self.labelnames)

    def _labeldict(self, key: tuple) -> dict[str, str]:
        return dict(zip(self.labelnames, key))

    def header(self) -> list[str]:
        lines = []
        if self.help:
            lines.append(f"# HELP {self.name} {self.help}")
        lines.append(f"# TYPE {self.name} {self.kind}")
        return lines


class Counter(_Instrument):
    """Monotonically increasing sample (optionally per label set)."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels) -> None:
        if amount < 0:
            raise ValueError(f"{self.name}: counters only go up")
        key = self._labelkey(labels)
        with self._lock:
            self._samples[key] = self._samples.get(key, 0.0) + amount

    def value(self, **labels) -> float:
        with self._lock:
            return self._samples.get(self._labelkey(labels), 0.0)

    def total(self) -> float:
        """Sum across every label set (convenience for tests/health)."""
        with self._lock:
            return sum(self._samples.values())

    def render(self) -> list[str]:
        lines = self.header()
        with self._lock:
            samples = dict(self._samples) or ({(): 0.0} if not self.labelnames else {})
        for key, value in sorted(samples.items()):
            lines.append(
                f"{self.name}{_format_labels(self._labeldict(key))} "
                f"{_format_value(value)}"
            )
        return lines


class Gauge(_Instrument):
    """A sample that can go up and down (queue depth, worker count)."""

    kind = "gauge"

    def set(self, value: float, **labels) -> None:
        key = self._labelkey(labels)
        with self._lock:
            self._samples[key] = float(value)

    def inc(self, amount: float = 1.0, **labels) -> None:
        key = self._labelkey(labels)
        with self._lock:
            self._samples[key] = self._samples.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels) -> float:
        with self._lock:
            return self._samples.get(self._labelkey(labels), 0.0)

    def render(self) -> list[str]:
        lines = self.header()
        with self._lock:
            samples = dict(self._samples) or ({(): 0.0} if not self.labelnames else {})
        for key, value in sorted(samples.items()):
            lines.append(
                f"{self.name}{_format_labels(self._labeldict(key))} "
                f"{_format_value(value)}"
            )
        return lines


class Histogram(_Instrument):
    """Cumulative-bucket histogram with quantile estimation.

    Samples are binned into fixed buckets at observation time (O(1)
    memory), and :meth:`quantile` answers p50/p99 queries by linear
    interpolation inside the winning bucket — coarse but dependency-free,
    which is all the latency reporting needs.
    """

    kind = "histogram"

    def __init__(self, name: str, help: str = "",
                 buckets: Iterable[float] = DEFAULT_BUCKETS):
        super().__init__(name, help)
        self.buckets = tuple(sorted(buckets))
        self._counts = [0] * (len(self.buckets) + 1)  # +Inf tail
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        with self._lock:
            self._sum += value
            self._count += 1
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    self._counts[i] += 1
                    return
            self._counts[-1] += 1

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def quantile(self, q: float) -> float:
        """Approximate q-quantile (0..1) from the bucket counts."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be within [0, 1]")
        with self._lock:
            total = self._count
            if total == 0:
                return 0.0
            rank = q * total
            cumulative = 0
            lower = 0.0
            for i, bound in enumerate(self.buckets):
                in_bucket = self._counts[i]
                if cumulative + in_bucket >= rank and in_bucket:
                    frac = (rank - cumulative) / in_bucket
                    return lower + (bound - lower) * min(max(frac, 0.0), 1.0)
                cumulative += in_bucket
                lower = bound
            return lower  # everything beyond the last finite bound

    def render(self) -> list[str]:
        lines = self.header()
        with self._lock:
            counts = list(self._counts)
            total, total_sum = self._count, self._sum
        cumulative = 0
        for i, bound in enumerate(self.buckets):
            cumulative += counts[i]
            lines.append(
                f'{self.name}_bucket{{le="{_format_value(bound)}"}} {cumulative}'
            )
        lines.append(f'{self.name}_bucket{{le="+Inf"}} {total}')
        lines.append(f"{self.name}_sum {_format_value(total_sum)}")
        lines.append(f"{self.name}_count {total}")
        return lines


class MetricsRegistry:
    """Named instruments + Prometheus text rendering.

    ``counter``/``gauge``/``histogram`` are get-or-create: asking twice
    for the same name returns the same instrument (so independent call
    sites can share one metric), but re-registering a name as a different
    kind is an error.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._instruments: dict[str, _Instrument] = {}

    def _get_or_create(self, cls, name: str, help: str, **kwargs):
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}, not {cls.kind}"
                    )
                return existing
            instrument = cls(name, help, **kwargs)
            self._instruments[name] = instrument
            return instrument

    def counter(self, name: str, help: str = "",
                labelnames: Iterable[str] = ()) -> Counter:
        return self._get_or_create(Counter, name, help, labelnames=labelnames)

    def gauge(self, name: str, help: str = "",
              labelnames: Iterable[str] = ()) -> Gauge:
        return self._get_or_create(Gauge, name, help, labelnames=labelnames)

    def histogram(self, name: str, help: str = "",
                  buckets: Iterable[float] = DEFAULT_BUCKETS) -> Histogram:
        return self._get_or_create(Histogram, name, help, buckets=buckets)

    def get(self, name: str) -> _Instrument | None:
        with self._lock:
            return self._instruments.get(name)

    def render(self) -> str:
        """The Prometheus text exposition of every registered metric."""
        with self._lock:
            instruments = sorted(self._instruments.values(),
                                 key=lambda m: m.name)
        lines: list[str] = []
        for instrument in instruments:
            lines.extend(instrument.render())
        return "\n".join(lines) + "\n"


#: Process-wide registry the harness feeds (see :func:`record_grid_report`).
GLOBAL = MetricsRegistry()


def global_registry() -> MetricsRegistry:
    return GLOBAL


def record_grid_report(report, registry: MetricsRegistry | None = None) -> None:
    """Fold a :class:`~repro.harness.resilience.ResilienceReport` into metrics.

    Called by the harness after every supervised grid execution (the
    service's scheduler maintains its own per-job instruments; this is
    the batch path: ``repro bench`` / ``repro experiment`` / prefetch).
    """
    registry = registry if registry is not None else GLOBAL
    outcomes = registry.counter(
        "repro_grid_points_total",
        "Grid points executed under harness supervision, by outcome.",
        labelnames=("status",),
    )
    for outcome in report.outcomes:
        outcomes.inc(status=outcome.status)
    if report.pool_rebuilds:
        registry.counter(
            "repro_pool_rebuilds_total",
            "Worker-pool rebuilds after a pool death or hung worker.",
        ).inc(report.pool_rebuilds)
    if report.degraded_to_serial:
        registry.counter(
            "repro_pool_degradations_total",
            "Times a grid execution degraded to in-process serial mode.",
        ).inc()


def record_cache_stats(stats, registry: MetricsRegistry | None = None) -> None:
    """Export a :class:`~repro.harness.cache.CacheStats` snapshot as gauges."""
    registry = registry if registry is not None else GLOBAL
    for name, value in stats.as_dict().items():
        registry.gauge(
            f"repro_result_cache_{name}",
            f"ResultCache session counter {name!r}.",
        ).set(value)
