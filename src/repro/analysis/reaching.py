"""Reaching definitions over a function CFG.

A *definition* is a ``(register, pc)`` pair; the definition reaches a
program point when some path from it to the point has no intervening write
of the same register.  Registers live-in at the function entry are modeled
by the pseudo-definition pc :data:`ENTRY_DEF`, so a use can always be traced
to at least one definition.
"""

from __future__ import annotations

from ..cfg.basic_block import FunctionCFG
from ..isa import NUM_REGS
from .dataflow import FORWARD, DataflowProblem, DataflowResult, solve

ENTRY_DEF = -1
"""Pseudo-pc of the definition every register carries at function entry."""


class ReachingDefinitions(DataflowProblem):
    """Forward may-analysis; facts are frozensets of ``(reg, pc)`` pairs."""

    direction = FORWARD

    def boundary(self, cfg: FunctionCFG) -> frozenset[tuple[int, int]]:
        return frozenset((reg, ENTRY_DEF) for reg in range(NUM_REGS))

    def meet(self, a, b):
        return a | b

    def transfer_inst(self, inst, fact):
        dest = inst.dest_reg()
        if dest is None:
            return fact
        return frozenset(d for d in fact if d[0] != dest) | {(dest, inst.pc)}


def reaching_definitions(cfg: FunctionCFG) -> DataflowResult:
    """Solve reaching definitions for ``cfg``."""
    return solve(cfg, ReachingDefinitions())


def definitions_reaching_use(result: DataflowResult, pc: int) -> dict[int, frozenset[int]]:
    """Definition pcs feeding each source register of the instruction at ``pc``.

    Returns ``{reg: frozenset of def pcs}`` for the registers the
    instruction actually reads (use-def chains for one use site).
    """
    inst = result.cfg.block_at(pc).instructions[0]
    for candidate in result.cfg.block_at(pc).instructions:
        if candidate.pc == pc:
            inst = candidate
            break
    fact = result.before(pc) or frozenset()
    chains: dict[int, frozenset[int]] = {}
    for reg in inst.source_regs():
        chains[reg] = frozenset(def_pc for d_reg, def_pc in fact if d_reg == reg)
    return chains
