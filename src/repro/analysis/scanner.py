"""Static Spectre-gadget scanner.

Flags *transmitters* — memory instructions (loads, stores, ``cflush``) whose
address derives from secret data — executing under a speculative window: the
control-dependence region of a conditional branch, or code reachable only
through an indirect jump (``jalr`` windows never reconverge).  These are the
v1 / v1-CT / v2 shapes the dynamic :mod:`repro.attacks` suite builds, found
ahead-of-time on the binary:

* ``spectre-v1`` — the address descends from a *speculatively* reachable
  secret (a non-constant-address load inside a branch window: the
  bounds-check-bypass access), and the transmit is itself under a window.
* ``spectre-v1-ct`` — the address descends from a *non-speculatively*
  loaded secret (a ``.secret``-range load), transmitted under a window:
  the constant-time threat model leak.
* ``spectre-v2`` — the transmit sits in code reachable only via an indirect
  jump target (BTB-injection landing pad), with secret data inherited from
  the registers live at the program's indirect call sites.

A program with no ``.secret`` regions can leak nothing and always scans
clean — the scanner is secret-aware, not pattern-paranoid.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

from ..asm.program import Program
from ..cfg.basic_block import FunctionCFG
from ..cfg.builder import build_all_cfgs, build_function_cfg
from ..compiler.control_dep import all_control_dependence
from ..compiler.pass_manager import ensure_analysis
from ..isa import Opcode
from .dataflow import DataflowResult, solve
from .taint import (
    NO_PCS,
    ZERO,
    AbsValue,
    RegState,
    SecretTaint,
    TaintContext,
    entry_state,
)
from .windows import open_windows

KIND_V1 = "spectre-v1"
KIND_V1_CT = "spectre-v1-ct"
KIND_V2 = "spectre-v2"


@dataclass(frozen=True)
class Finding:
    """One statically flagged transmitter."""

    kind: str                     # spectre-v1 / spectre-v1-ct / spectre-v2
    pc: int                       # transmitter pc
    function: str
    instruction: str              # disassembled text
    guards: tuple[int, ...]       # branch/jalr pcs opening the window
    secret_srcs: tuple[int, ...]  # load pcs where secrecy entered the lineage
    message: str

    @property
    def id(self) -> str:
        """Stable content-derived id: same gadget ⇒ same id across runs.

        Derived from the semantic fields only (not the prose message), so
        findings deduplicate across re-scans and feed the repair loop.
        """
        body = json.dumps(
            [
                self.kind,
                self.pc,
                self.function,
                self.instruction,
                sorted(self.guards),
                sorted(self.secret_srcs),
            ],
            separators=(",", ":"),
        )
        return hashlib.sha256(body.encode()).hexdigest()[:12]

    @property
    def branch_pc(self) -> int | None:
        """The earliest guard opening the window (the repairer's fence site)."""
        return min(self.guards) if self.guards else None

    @property
    def load_pc(self) -> int | None:
        """The earliest load where secrecy entered the flagged lineage."""
        return min(self.secret_srcs) if self.secret_srcs else None

    def to_dict(self) -> dict:
        return {
            "id": self.id,
            "kind": self.kind,
            "pc": self.pc,
            "branch_pc": self.branch_pc,
            "load_pc": self.load_pc,
            "function": self.function,
            "instruction": self.instruction,
            "guards": list(self.guards),
            "secret_srcs": list(self.secret_srcs),
            "message": self.message,
        }


@dataclass
class ScanReport:
    """Scanner output for one program."""

    program: str
    findings: list[Finding] = field(default_factory=list)
    functions_scanned: int = 0
    orphan_instructions: int = 0
    secret_ranges: int = 0

    @property
    def clean(self) -> bool:
        return not self.findings

    @property
    def flagged_transmitters(self) -> int:
        """Distinct transmitter pcs flagged (the Table 2 counter)."""
        return len({f.pc for f in self.findings})

    def counts_by_kind(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for finding in self.findings:
            counts[finding.kind] = counts.get(finding.kind, 0) + 1
        return counts

    def to_dict(self) -> dict:
        return {
            "program": self.program,
            "clean": self.clean,
            "flagged_transmitters": self.flagged_transmitters,
            "counts": self.counts_by_kind(),
            "functions_scanned": self.functions_scanned,
            "orphan_instructions": self.orphan_instructions,
            "secret_ranges": self.secret_ranges,
            "findings": [f.to_dict() for f in self.findings],
        }


def region_map(control_dep_pcs: dict[int, frozenset[int]]) -> dict[int, frozenset[int]]:
    """Invert branch->region metadata into pc -> guarding branch pcs."""
    guards: dict[int, set[int]] = {}
    for branch_pc, pcs in control_dep_pcs.items():
        for pc in pcs:
            guards.setdefault(pc, set()).add(branch_pc)
    return {pc: frozenset(s) for pc, s in guards.items()}


def _scan_function(
    program: Program,
    cfg: FunctionCFG,
    taint: DataflowResult,
    context: TaintContext,
    indirect_target: bool,
    report: ScanReport,
    seen: set[tuple[int, str]],
) -> None:
    """Walk one solved function, flagging secret-addressed transmitters."""
    problem: SecretTaint = taint.problem
    for block in cfg.blocks:
        state: RegState | None = taint.entry_facts.get(block.bid)
        if state is None:
            continue  # unreachable within this function
        for inst in block.instructions:
            if inst.is_mem and inst.opcode.reads_rs1:
                addr: AbsValue = state[inst.rs1]
                guards = context.transmit_guards_of(inst.pc)
                if addr.secret and guards:
                    if indirect_target:
                        kind = KIND_V2
                    elif addr.secret_direct:
                        kind = KIND_V1_CT
                    else:
                        kind = KIND_V1
                    key = (inst.pc, kind)
                    if key not in seen:
                        seen.add(key)
                        origin = (
                            "non-speculative .secret load"
                            if addr.secret_direct
                            else "speculatively reachable secret"
                        )
                        report.findings.append(
                            Finding(
                                kind=kind,
                                pc=inst.pc,
                                function=cfg.name,
                                instruction=inst.text(),
                                guards=tuple(sorted(guards)),
                                secret_srcs=tuple(sorted(addr.secret_srcs)),
                                message=(
                                    f"{inst.opcode.mnemonic} address derives from "
                                    f"{origin} (loaded at "
                                    f"{', '.join(hex(p) for p in sorted(addr.secret_srcs))}) "
                                    f"under unresolved window of "
                                    f"{', '.join(hex(p) for p in sorted(guards))}"
                                ),
                            )
                        )
            state = problem.transfer_inst(inst, state)


def _jalr_summary(
    cfgs: list[FunctionCFG], taints: dict[str, DataflowResult]
) -> RegState | None:
    """Join of register states at every indirect-jump site.

    This is what an injected indirect-branch target may observe: the
    registers live when any ``jalr`` in the program executes.
    """
    summary: RegState | None = None
    for cfg in cfgs:
        taint = taints.get(cfg.name)
        if taint is None:
            continue
        problem: SecretTaint = taint.problem
        for block in cfg.blocks:
            state = taint.entry_facts.get(block.bid)
            if state is None:
                continue
            for inst in block.instructions:
                if inst.opcode is Opcode.JALR:
                    summary = (
                        state if summary is None else problem.meet(summary, state)
                    )
                state = problem.transfer_inst(inst, state)
    return summary


def _widen(state: RegState) -> RegState:
    """Drop constants, keep taint/secrecy.

    An indirect-jump landing pad can be entered on *any* dynamic occurrence
    of any ``jalr``, so concrete register values seen at one static site are
    not stable — but taint and secrecy lineage joined over all sites is.
    """
    regs = [
        AbsValue(
            tainted=v.tainted,
            secret_direct=v.secret_direct,
            secret_spec=v.secret_spec,
            secret_srcs=v.secret_srcs,
        )
        for v in state
    ]
    regs[0] = ZERO
    return tuple(regs)


def _orphan_entries(program: Program, covered: set[int]) -> list[int]:
    """Entry pcs for text not reachable from any discovered function."""
    orphan = {
        inst.pc for inst in program.instructions if inst.pc not in covered
    }
    if not orphan:
        return []
    entries = sorted(
        addr for addr in program.symbols.values() if addr in orphan
    )
    remaining = set(orphan)
    result: list[int] = []
    for entry in entries:
        if entry not in remaining:
            continue
        result.append(entry)
        cfg = build_function_cfg(program, entry)
        remaining -= set(cfg.block_of_pc)
    while remaining:
        entry = min(remaining)
        result.append(entry)
        cfg = build_function_cfg(program, entry)
        remaining -= set(cfg.block_of_pc)
    return sorted(result)


def scan_program(program: Program) -> ScanReport:
    """Run the Spectre-gadget scanner over one assembled program."""
    info = ensure_analysis(program)
    cfgs = build_all_cfgs(program)
    guards_by_pc = region_map(info.control_dep_pcs)
    report = ScanReport(
        program=program.name, secret_ranges=len(program.secret_ranges)
    )
    seen: set[tuple[int, str]] = set()

    taints: dict[str, DataflowResult] = {}
    covered: set[int] = set()
    for cfg in cfgs:
        covered.update(cfg.block_of_pc)
        context = TaintContext(
            program=program,
            region_of=guards_by_pc,
            open_of=open_windows(cfg),
        )
        taint = solve(cfg, SecretTaint(context))
        taints[cfg.name] = taint
        report.functions_scanned += 1
        _scan_function(
            program, cfg, taint, context, indirect_target=False,
            report=report, seen=seen,
        )

    # Code reachable only through indirect jumps (the v2 landing pads):
    # scan under a permanent jalr speculation window, seeded with the join
    # of register states at every indirect call site.  Orphan code can
    # itself reach jalr sites (loop closers jumping back into discovered
    # functions, chained pads), so the summary is iterated to a fixpoint:
    # what flows into a pad may flow around and back into the next entry.
    orphan_entries = _orphan_entries(program, covered)
    if orphan_entries:
        window = frozenset(info.indirect_pcs)
        orphan_cfgs: list[tuple[FunctionCFG, TaintContext]] = []
        for entry in orphan_entries:
            cfg = build_function_cfg(program, entry)
            report.orphan_instructions += sum(
                1 for pc in cfg.block_of_pc if pc not in covered
            )
            local_guards = dict(guards_by_pc)
            for branch_pc, pcs in all_control_dependence(cfg).items():
                for pc in pcs:
                    local_guards[pc] = local_guards.get(pc, NO_PCS) | {branch_pc}
            orphan_cfgs.append(
                (
                    cfg,
                    TaintContext(
                        program=program,
                        region_of=local_guards,
                        always_speculative=window,
                        # Landing pads are entered mid-speculation: the
                        # injected jalr's window is open at their entry
                        # (until a fence inside the pad drains it).
                        open_of=open_windows(cfg, entry_guards=window),
                    ),
                )
            )

        all_cfgs = cfgs + [cfg for cfg, _ in orphan_cfgs]
        orphan_taints: dict[str, DataflowResult] = {}
        summary = _widen(_jalr_summary(cfgs, taints) or entry_state())
        for _ in range(8):  # joins are monotone: converges in a few rounds
            orphan_taints = {
                cfg.name: solve(cfg, SecretTaint(context, entry=summary))
                for cfg, context in orphan_cfgs
            }
            combined = {**taints, **orphan_taints}
            refined = _widen(
                _jalr_summary(all_cfgs, combined) or entry_state()
            )
            if refined == summary:
                break
            summary = refined
        for cfg, context in orphan_cfgs:
            _scan_function(
                program, cfg, orphan_taints[cfg.name], context,
                indirect_target=True, report=report, seen=seen,
            )

    report.findings.sort(key=lambda f: (f.pc, f.kind))
    return report


def scan_counters(program: Program) -> dict[str, int]:
    """Compact counters for harness tables (Table 2's new column)."""
    report = scan_program(program)
    counters = {"flagged_transmitters": report.flagged_transmitters}
    counters.update(report.counts_by_kind())
    return counters
