"""Fence-aware open-speculation-window analysis.

The control-dependence ``region_of`` map answers "which branches does this
instruction *structurally* sit under" — it is computed from the CFG alone
and deliberately ignores fences.  That raw map is the right input for
secrecy *creation* (a fence before a bounds-check-bypass load does not
make the load's value public), but it over-approximates which windows are
still *open* at a transmitter: a ``fence`` drains the pipeline, so every
branch fetched before it is resolved by the time anything after it issues.

:class:`OpenWindows` is the forward dataflow that refines this.  The fact
at a program point is the set of guard pcs (conditional branches and
``jalr`` sites) that were fetched on some path since the last ``fence``:

* ``meet``  — union (a window open on any incoming path is open);
* ``fence`` — resets the fact to the empty set;
* a conditional branch or ``jalr`` adds its own pc.

The scanner intersects this with the raw control-dependence guards at each
transmitter (:meth:`~repro.analysis.taint.TaintContext.transmit_guards_of`):
a transmitter is only under an *exploitable* window when some structural
guard is also still open.  This is exactly the property the repair pass
relies on — inserting a fence between a guard and its transmitter closes
the window and the finding disappears, with no change to where secrecy is
considered to originate.

Orphan landing pads (spectre-v2) are entered mid-speculation through an
injected BTB target, so their boundary fact is the set of indirect-jump
pcs rather than the empty set (``entry_guards``).
"""

from __future__ import annotations

from ..cfg.basic_block import FunctionCFG
from ..isa import Opcode
from .dataflow import FORWARD, DataflowProblem, solve
from .taint import NO_PCS


class OpenWindows(DataflowProblem):
    """Which guard pcs may still be unresolved at each program point."""

    direction = FORWARD

    def __init__(self, entry_guards: frozenset[int] = NO_PCS):
        self.entry_guards = entry_guards

    def boundary(self, cfg: FunctionCFG) -> frozenset[int]:
        return self.entry_guards

    def meet(self, a: frozenset[int], b: frozenset[int]) -> frozenset[int]:
        return a | b

    def transfer_inst(self, inst, fact: frozenset[int]) -> frozenset[int]:
        op = inst.opcode
        if op is Opcode.FENCE:
            return NO_PCS
        if op.is_branch or op is Opcode.JALR:
            return fact | {inst.pc}
        return fact


def open_windows(
    cfg: FunctionCFG, entry_guards: frozenset[int] = NO_PCS
) -> dict[int, frozenset[int]]:
    """Per-pc open-window sets (the fact *before* each instruction)."""
    problem = OpenWindows(entry_guards)
    result = solve(cfg, problem)
    out: dict[int, frozenset[int]] = {}
    for block in cfg.blocks:
        fact = result.entry_facts.get(block.bid)
        if fact is None:
            continue  # unreachable: no window can be open there
        for inst in block.instructions:
            out[inst.pc] = fact
            fact = problem.transfer_inst(inst, fact)
    return out
