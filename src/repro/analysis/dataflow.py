"""Generic worklist dataflow solver over :class:`~repro.cfg.FunctionCFG`.

A :class:`DataflowProblem` describes one analysis: direction, the meet
operator over its fact lattice, and a per-instruction transfer function.
:func:`solve` runs the classic worklist algorithm to the (unique, by
monotonicity) fixpoint; :func:`solve_round_robin` is the naive
iterate-until-stable reference used by the property tests to cross-check the
worklist scheduling.

Facts are opaque values compared with ``==``.  The unvisited state (the
lattice bottom with respect to ``meet``) is represented by ``None`` at the
solver level, so problems never have to define an explicit bottom element:
``meet(None, x) == x`` by construction.

A convergence guard bounds the total number of block visits: a transfer
function that is not monotone (or a meet that is not associative/idempotent)
oscillates instead of converging, and the solver raises
:class:`~repro.errors.AnalysisError` rather than spinning forever.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable

from ..cfg.basic_block import EXIT_BLOCK, BasicBlock, FunctionCFG
from ..errors import AnalysisError

Fact = Any

FORWARD = "forward"
BACKWARD = "backward"


class DataflowProblem:
    """One dataflow analysis: direction, lattice meet, transfer.

    Subclasses define:

    * ``direction`` — :data:`FORWARD` or :data:`BACKWARD`.
    * :meth:`boundary` — the fact entering the CFG (at the entry block for
      forward problems, at every exit edge for backward ones).
    * :meth:`meet` — combine two facts arriving over different edges.  Must
      be commutative, associative and idempotent.
    * :meth:`transfer_inst` — apply one instruction to a fact.  Must be
      monotone in the fact argument.

    The block-level transfer folds :meth:`transfer_inst` over the block in
    program order (forward) or reverse order (backward); override
    :meth:`transfer_block` only for analyses with genuine block-level
    summaries.
    """

    direction: str = FORWARD

    def boundary(self, cfg: FunctionCFG) -> Fact:
        raise NotImplementedError

    def meet(self, a: Fact, b: Fact) -> Fact:
        raise NotImplementedError

    def transfer_inst(self, inst, fact: Fact) -> Fact:
        raise NotImplementedError

    def transfer_block(self, block: BasicBlock, fact: Fact) -> Fact:
        instructions = block.instructions
        if self.direction == BACKWARD:
            instructions = reversed(instructions)
        for inst in instructions:
            fact = self.transfer_inst(inst, fact)
        return fact


@dataclass
class DataflowResult:
    """Fixpoint facts of one solved problem.

    ``entry_facts``/``exit_facts`` are keyed by block id and hold the fact
    at the block's entry (before its first instruction) and exit (after its
    last), independent of analysis direction.  Blocks unreachable along the
    analysis direction keep ``None``.
    """

    problem: DataflowProblem
    cfg: FunctionCFG
    entry_facts: dict[int, Fact] = field(default_factory=dict)
    exit_facts: dict[int, Fact] = field(default_factory=dict)
    visits: int = 0

    def before(self, pc: int) -> Fact:
        """The fact holding immediately before the instruction at ``pc``."""
        return self._at(pc, after=False)

    def after(self, pc: int) -> Fact:
        """The fact holding immediately after the instruction at ``pc``."""
        return self._at(pc, after=True)

    def _at(self, pc: int, after: bool) -> Fact:
        block = self.cfg.block_at(pc)
        problem = self.problem
        if problem.direction == FORWARD:
            fact = self.entry_facts.get(block.bid)
            if fact is None:
                return None
            for inst in block.instructions:
                if inst.pc == pc and not after:
                    return fact
                fact = problem.transfer_inst(inst, fact)
                if inst.pc == pc:
                    return fact
        else:
            fact = self.exit_facts.get(block.bid)
            if fact is None:
                return None
            for inst in reversed(block.instructions):
                if inst.pc == pc and after:
                    return fact
                fact = problem.transfer_inst(inst, fact)
                if inst.pc == pc:
                    return fact
        raise AnalysisError(f"pc {pc:#x} not in block {block.bid}")


def _edges(cfg: FunctionCFG, direction: str) -> dict[int, list[int]]:
    """Propagation edges by block id (EXIT_BLOCK pruned)."""
    if direction == FORWARD:
        return {
            b.bid: [s for s in b.successors if s != EXIT_BLOCK] for b in cfg.blocks
        }
    return {b.bid: list(b.predecessors) for b in cfg.blocks}


def _roots(cfg: FunctionCFG, direction: str) -> list[int]:
    if direction == FORWARD:
        return [cfg.block_of_pc[cfg.entry_pc]]
    return [b.bid for b in cfg.blocks if EXIT_BLOCK in b.successors]


def _record(
    result: DataflowResult, direction: str, bid: int, in_fact: Fact, out_fact: Fact
) -> None:
    if direction == FORWARD:
        result.entry_facts[bid] = in_fact
        result.exit_facts[bid] = out_fact
    else:
        result.exit_facts[bid] = in_fact
        result.entry_facts[bid] = out_fact


def solve(
    cfg: FunctionCFG,
    problem: DataflowProblem,
    max_visits: int | None = None,
) -> DataflowResult:
    """Run ``problem`` over ``cfg`` to its fixpoint with a worklist.

    ``max_visits`` caps total block visits (default ``64 + 128 * blocks``);
    exceeding it means the problem does not converge and raises
    :class:`AnalysisError`.
    """
    direction = problem.direction
    edges = _edges(cfg, direction)
    roots = _roots(cfg, direction)
    if max_visits is None:
        max_visits = 64 + 128 * cfg.num_blocks

    boundary = problem.boundary(cfg)
    # Fact flowing *into* each block along the analysis direction.
    in_facts: dict[int, Fact] = {}
    out_facts: dict[int, Fact] = {}
    for root in roots:
        prior = in_facts.get(root)
        in_facts[root] = boundary if prior is None else problem.meet(prior, boundary)

    work: deque[int] = deque(roots)
    queued: set[int] = set(roots)
    result = DataflowResult(problem=problem, cfg=cfg)
    while work:
        bid = work.popleft()
        queued.discard(bid)
        result.visits += 1
        if result.visits > max_visits:
            raise AnalysisError(
                f"dataflow did not converge on {cfg.name!r} after "
                f"{max_visits} block visits (non-monotone transfer?)"
            )
        in_fact = in_facts.get(bid)
        if in_fact is None:
            continue
        out_fact = problem.transfer_block(cfg.blocks[bid], in_fact)
        if out_fact == out_facts.get(bid) and bid in out_facts:
            continue
        out_facts[bid] = out_fact
        for succ in edges[bid]:
            prior = in_facts.get(succ)
            merged = out_fact if prior is None else problem.meet(prior, out_fact)
            if merged != prior:
                in_facts[succ] = merged
                if succ not in queued:
                    queued.add(succ)
                    work.append(succ)

    for bid, in_fact in in_facts.items():
        _record(result, direction, bid, in_fact, out_facts.get(bid))
    return result


def solve_round_robin(
    cfg: FunctionCFG,
    problem: DataflowProblem,
    max_passes: int = 1000,
) -> DataflowResult:
    """Naive reference solver: sweep all blocks until nothing changes.

    Exists to cross-check :func:`solve` in the property tests — same
    fixpoint, wildly different visit order.
    """
    direction = problem.direction
    edges = _edges(cfg, direction)
    roots = set(_roots(cfg, direction))
    boundary = problem.boundary(cfg)

    in_facts: dict[int, Fact] = {}
    out_facts: dict[int, Fact] = {}
    result = DataflowResult(problem=problem, cfg=cfg)
    # Reverse edges: who feeds block B along the analysis direction.
    feeders: dict[int, list[int]] = {b.bid: [] for b in cfg.blocks}
    for src, dsts in edges.items():
        for dst in dsts:
            feeders[dst].append(src)

    for _ in range(max_passes):
        changed = False
        for block in cfg.blocks:
            bid = block.bid
            fact: Fact = boundary if bid in roots else None
            for feeder in feeders[bid]:
                fed = out_facts.get(feeder)
                if fed is None:
                    continue
                fact = fed if fact is None else problem.meet(fact, fed)
            if fact is None:
                continue
            result.visits += 1
            out_fact = problem.transfer_block(block, fact)
            if in_facts.get(bid) != fact or out_facts.get(bid) != out_fact:
                in_facts[bid] = fact
                out_facts[bid] = out_fact
                changed = True
        if not changed:
            break
    else:
        raise AnalysisError(
            f"round-robin dataflow did not stabilize on {cfg.name!r} "
            f"within {max_passes} passes"
        )

    for bid, in_fact in in_facts.items():
        _record(result, direction, bid, in_fact, out_facts.get(bid))
    return result


def make_problem(
    direction: str,
    boundary: Callable[[FunctionCFG], Fact],
    meet: Callable[[Fact, Fact], Fact],
    transfer_inst: Callable[[Any, Fact], Fact],
) -> DataflowProblem:
    """Build an ad-hoc problem from plain functions (testing convenience)."""
    problem = DataflowProblem()
    problem.direction = direction
    problem.boundary = boundary  # type: ignore[method-assign]
    problem.meet = meet  # type: ignore[method-assign]
    problem.transfer_inst = transfer_inst  # type: ignore[method-assign]
    return problem
