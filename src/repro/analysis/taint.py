"""Static secret-taint propagation seeded from ``.secret`` data regions.

Forward dataflow over per-register abstract values.  Each register tracks:

* a constant lattice (``const``: known value / unknown), folded with the
  *same* ALU semantics the simulators execute
  (:func:`repro.functional.semantics.alu_result`), so address arithmetic on
  ``la``-materialized bases resolves statically;
* structural taint (``tainted``): the value derives from loaded data — the
  static analog of the dynamic ``out_tainted`` bit the policies consult;
* secrecy, in the two forms the threat models distinguish:

  - ``secret_direct`` — derives from a load whose (statically resolved)
    address overlaps a declared ``.secret`` range: a *non-speculatively*
    accessed secret, the constant-time threat model (v1-CT/v2 victims).
  - ``secret_spec`` — derives from a load that may *speculatively* reach
    secret data: its address is not statically constant and the load sits
    inside the control-dependence region of an unresolved-branch window
    (the bounds-check-bypass shape), in a program that declares secrets.

Assumptions (documented, linter-grade): initial data-segment contents are
treated as read-only for constant folding of pointer tables (``.dword sym``
indirection), and memory taint is not tracked through stores — a secret
stored and reloaded is only caught at its original load.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..asm.program import Program
from ..cfg.basic_block import FunctionCFG
from ..errors import IsaError
from ..functional.semantics import alu_result, load_is_signed
from ..isa import NUM_REGS, Opcode
from .dataflow import FORWARD, DataflowProblem, DataflowResult, solve

NO_PCS: frozenset[int] = frozenset()


@dataclass(frozen=True)
class AbsValue:
    """Abstract value of one register at one program point."""

    const: int | None = None        # statically known value, None = unknown
    tainted: bool = False           # derives from loaded data
    secret_direct: bool = False     # derives from a .secret-range load
    secret_spec: bool = False       # derives from a speculatively-reachable secret
    secret_srcs: frozenset[int] = NO_PCS  # load pcs where secrecy entered
    # Sanitized by AND-ing with the program's declared ``.slhmask`` register:
    # zero whenever execution is misspeculated, so the value cannot carry a
    # transiently-reached secret (must hold on *all* joined paths).
    masked: bool = False

    @property
    def secret(self) -> bool:
        return self.secret_direct or self.secret_spec

    def join(self, other: "AbsValue") -> "AbsValue":
        const = self.const if self.const == other.const else None
        return AbsValue(
            const=const,
            tainted=self.tainted or other.tainted,
            secret_direct=self.secret_direct or other.secret_direct,
            secret_spec=self.secret_spec or other.secret_spec,
            secret_srcs=self.secret_srcs | other.secret_srcs,
            masked=self.masked and other.masked,
        )


UNKNOWN = AbsValue()
ZERO = AbsValue(const=0)

RegState = tuple  # tuple[AbsValue, ...] of length NUM_REGS


def entry_state() -> RegState:
    """Conservative function-entry state: nothing known, nothing tainted."""
    regs = [UNKNOWN] * NUM_REGS
    regs[0] = ZERO
    return tuple(regs)


@dataclass
class TaintContext:
    """Program-level inputs shared by every function's taint run."""

    program: Program
    region_of: dict[int, frozenset[int]]  # pc -> guarding branch pcs
    always_speculative: frozenset[int] = NO_PCS  # window guards applied to all pcs
    assume_rom: bool = True
    # pc -> guard pcs still open (no intervening fence) at that point; None
    # disables fence refinement (transmit_guards_of falls back to raw).
    open_of: dict[int, frozenset[int]] | None = None

    @property
    def has_secrets(self) -> bool:
        return bool(self.program.secret_ranges)

    def guards_of(self, pc: int) -> frozenset[int]:
        """Branch pcs whose unresolved window covers the instruction at ``pc``.

        This is the *raw* structural map — fences do not remove guards
        here.  Secrecy creation (:meth:`SecretTaint._load_value`) must use
        this form: a fence before a bounds-check-bypass load changes when
        the load issues, not whether its value is secret.
        """
        guards = self.region_of.get(pc, NO_PCS)
        if self.always_speculative:
            guards = guards | self.always_speculative
        return guards

    def transmit_guards_of(self, pc: int) -> frozenset[int]:
        """Guards that are both structural and still *open* at ``pc``.

        The transmitter check uses this fence-refined form: a fence drains
        the pipeline, so a window opened before it is provably resolved by
        the time anything after it issues — the transmit cannot happen
        transiently and the gadget is not exploitable.  With no
        ``open_of`` map attached this degrades to the raw guards.
        """
        guards = self.guards_of(pc)
        if not guards or self.open_of is None:
            return guards
        return guards & self.open_of.get(pc, NO_PCS)


class SecretTaint(DataflowProblem):
    """Forward taint/constant propagation; facts are register-state tuples."""

    direction = FORWARD

    def __init__(self, context: TaintContext, entry: RegState | None = None):
        self.context = context
        self.entry = entry if entry is not None else entry_state()

    def boundary(self, cfg: FunctionCFG) -> RegState:
        return self.entry

    def meet(self, a: RegState, b: RegState) -> RegState:
        if a == b:
            return a
        return tuple(x if x == y else x.join(y) for x, y in zip(a, b))

    # ------------------------------------------------------------- transfer
    def transfer_inst(self, inst, state: RegState) -> RegState:
        dest = inst.dest_reg()
        if dest is None:
            return state  # stores, branches, cflush, fence: no register effect
        op = inst.opcode
        if op.is_load:
            value = self._load_value(inst, state)
        elif op is Opcode.RDCYCLE:
            value = UNKNOWN
        else:
            value = self._alu_value(inst, state)
        if state[dest] == value:
            return state
        regs = list(state)
        regs[dest] = value
        return tuple(regs)

    def _alu_value(self, inst, state: RegState) -> AbsValue:
        op = inst.opcode
        a = state[inst.rs1] if op.reads_rs1 else ZERO
        b = state[inst.rs2] if op.reads_rs2 else ZERO
        # SLH sanitization contract: AND with the declared ``.slhmask``
        # register yields 0 under misspeculation, so the result cannot be a
        # transiently-reached secret regardless of the operand's lineage.
        mask_reg = self.context.program.slh_mask
        if (
            mask_reg is not None
            and op is Opcode.AND
            and mask_reg in (inst.rs1, inst.rs2)
            and inst.rd != mask_reg
        ):
            other = b if inst.rs1 == mask_reg else a
            return AbsValue(tainted=other.tainted, masked=True)
        const: int | None = None
        if (not op.reads_rs1 or a.const is not None) and (
            not op.reads_rs2 or b.const is not None
        ):
            try:
                const = alu_result(
                    op, a.const or 0, b.const or 0, inst.imm, inst.pc
                )
            except IsaError:
                const = None
        tainted = a.tainted or b.tainted
        if not tainted and not a.secret and not b.secret:
            return UNKNOWN if const is None else AbsValue(const=const)
        return AbsValue(
            const=const,
            tainted=tainted,
            secret_direct=a.secret_direct or b.secret_direct,
            secret_spec=a.secret_spec or b.secret_spec,
            secret_srcs=a.secret_srcs | b.secret_srcs,
        )

    def _load_value(self, inst, state: RegState) -> AbsValue:
        ctx = self.context
        program = ctx.program
        base = state[inst.rs1]
        size = inst.mem_size or 1
        if base.const is not None:
            address = (base.const + inst.imm) & ((1 << 64) - 1)
            if program.is_secret_address(address, size):
                return AbsValue(
                    tainted=True, secret_direct=True,
                    secret_srcs=frozenset((inst.pc,)),
                )
            const = None
            if ctx.assume_rom:
                const = _initial_data_value(program, address, size, inst.opcode)
            return AbsValue(const=const, tainted=True)
        # A masked base is forced to zero on every misspeculated path, so
        # the load cannot be steered into secret data transiently.
        if base.masked:
            return AbsValue(tainted=True)
        # Unknown address: under an unresolved-branch window an attacker-
        # steered index may reach any secret the program declares.
        if ctx.has_secrets and ctx.guards_of(inst.pc):
            return AbsValue(
                tainted=True, secret_spec=True, secret_srcs=frozenset((inst.pc,))
            )
        return AbsValue(tainted=True)


def _initial_data_value(
    program: Program, address: int, size: int, opcode: Opcode
) -> int | None:
    """Read the initial data image (treated as ROM for pointer tables)."""
    offset = address - program.data_base
    if offset < 0 or offset + size > len(program.data):
        return None
    raw = int.from_bytes(program.data[offset : offset + size], "little")
    if load_is_signed(opcode) and raw >= 1 << (8 * size - 1):
        raw -= 1 << (8 * size)
    return raw & ((1 << 64) - 1)


def taint_states(
    program: Program,
    cfg: FunctionCFG,
    region_of: dict[int, frozenset[int]],
    entry: RegState | None = None,
    always_speculative: frozenset[int] = NO_PCS,
) -> DataflowResult:
    """Solve secret-taint propagation for one function."""
    context = TaintContext(
        program=program,
        region_of=region_of,
        always_speculative=always_speculative,
    )
    return solve(cfg, SecretTaint(context, entry))
