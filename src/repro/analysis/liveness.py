"""Register liveness over a function CFG.

Backward may-analysis: a register is live at a point when some path from the
point reads it before writing it.  The fact is a frozenset of architectural
register indices.  ``exit_live`` configures what is considered live at
function exit — empty by default (our workloads communicate results through
explicit self-check registers, and the analysis is intraprocedural), pass
e.g. ``frozenset({10})`` to keep ``a0`` live across returns.
"""

from __future__ import annotations

from ..cfg.basic_block import FunctionCFG
from .dataflow import BACKWARD, DataflowProblem, DataflowResult, solve

EMPTY: frozenset[int] = frozenset()


class LiveRegisters(DataflowProblem):
    """Backward liveness; facts are frozensets of live register indices."""

    direction = BACKWARD

    def __init__(self, exit_live: frozenset[int] = EMPTY):
        self.exit_live = exit_live

    def boundary(self, cfg: FunctionCFG) -> frozenset[int]:
        return self.exit_live

    def meet(self, a, b):
        return a | b

    def transfer_inst(self, inst, fact):
        dest = inst.dest_reg()
        if dest is not None:
            fact = fact - {dest}
        sources = inst.source_regs()
        if sources:
            fact = fact | frozenset(sources)
        return fact


def live_registers(
    cfg: FunctionCFG, exit_live: frozenset[int] = EMPTY
) -> DataflowResult:
    """Solve liveness for ``cfg``."""
    return solve(cfg, LiveRegisters(exit_live))


def dead_writes(cfg: FunctionCFG, result: DataflowResult | None = None) -> list[int]:
    """PCs whose register write is never read (diagnostic helper)."""
    if result is None:
        result = live_registers(cfg)
    dead: list[int] = []
    for block in cfg.blocks:
        for inst in block.instructions:
            dest = inst.dest_reg()
            if dest is None:
                continue
            live_after = result.after(inst.pc)
            if live_after is not None and dest not in live_after:
                dead.append(inst.pc)
    return dead
