"""Compiler-metadata soundness verifier.

Levioso's security guarantee stands on the compiler-emitted
:class:`~repro.compiler.branch_deps.BranchDependencyInfo` being *sound*: the
hardware closes a branch's speculation region at the claimed reconvergence
point and restricts only the claimed control-dependent instructions, so a
missed true dependence is a security hole (an unprotected transmitter), while
an excess dependence only costs performance.

This module re-derives both facts by brute force, sharing **no code** with
the production analysis pipeline (which goes through the iterative
Cooper-Harvey-Kennedy dominance solver and a region walk):

* *Post-dominance by node removal* — X post-dominates Y iff the virtual
  exit becomes unreachable from Y once X is deleted from the graph.  One
  reachability sweep per candidate pair; O(V²·E) and obviously correct.
* *Minimal dependence region* — blocks reachable from the branch's
  successors along paths avoiding **every** post-dominator of the branch
  block (execution is decided by the branch exactly until the first
  guaranteed block).

Soundness requires: metadata region ⊇ brute-force region, and the claimed
reconvergence point is a genuine post-dominator.  The gap between the two
regions is the metadata's imprecision, reported for Table 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..asm.program import Program
from ..cfg.basic_block import EXIT_BLOCK, FunctionCFG
from ..cfg.builder import build_all_cfgs
from ..compiler.branch_deps import BranchDependencyInfo
from ..compiler.pass_manager import ensure_analysis

Node = int


def _successor_map(cfg: FunctionCFG) -> dict[Node, list[Node]]:
    succs: dict[Node, list[Node]] = {EXIT_BLOCK: []}
    for block in cfg.blocks:
        succs[block.bid] = list(block.successors)
    return succs


def _reachable_avoiding(
    succs: dict[Node, list[Node]],
    starts: list[Node],
    blocked: frozenset[Node],
) -> set[Node]:
    """Nodes reachable from ``starts`` without entering ``blocked``."""
    seen: set[Node] = set()
    work = [n for n in starts if n not in blocked]
    while work:
        node = work.pop()
        if node in seen:
            continue
        seen.add(node)
        for succ in succs.get(node, ()):
            if succ not in seen and succ not in blocked:
                work.append(succ)
    return seen


def brute_postdominators(cfg: FunctionCFG) -> dict[Node, frozenset[Node]]:
    """Post-dominator sets by node deletion (independent of the CHK solver).

    ``result[y]`` holds every node x (including y itself and
    :data:`EXIT_BLOCK`) such that all paths from y to the exit pass x.
    Blocks that cannot reach the exit at all (infinite loops) are absent.
    """
    succs = _successor_map(cfg)
    nodes = [b.bid for b in cfg.blocks]
    result: dict[Node, frozenset[Node]] = {}
    for y in nodes:
        if EXIT_BLOCK not in _reachable_avoiding(succs, [y], frozenset()):
            continue  # cannot exit: post-dominance undefined
        pdoms = {y, EXIT_BLOCK}
        for x in nodes:
            if x == y:
                continue
            if EXIT_BLOCK not in _reachable_avoiding(succs, [y], frozenset((x,))):
                pdoms.add(x)
        result[y] = frozenset(pdoms)
    return result


def brute_dependence_region(
    cfg: FunctionCFG,
    branch_pc: int,
    pdoms: dict[Node, frozenset[Node]] | None = None,
) -> frozenset[int]:
    """Minimal set of instruction pcs whose execution the branch decides.

    Blocks reachable from the branch's successors avoiding every strict
    post-dominator of the branch block.  This is the floor any sound
    metadata region must cover.
    """
    if pdoms is None:
        pdoms = brute_postdominators(cfg)
    succs = _successor_map(cfg)
    bid = cfg.block_of_pc[branch_pc]
    strict = frozenset(
        p for p in pdoms.get(bid, frozenset()) if p != bid
    )
    starts = [s for s in cfg.blocks[bid].successors if s != EXIT_BLOCK]
    region = _reachable_avoiding(succs, starts, strict)
    pcs: set[int] = set()
    for node in region:
        if node == EXIT_BLOCK:
            continue
        for inst in cfg.blocks[node].instructions:
            pcs.add(inst.pc)
    return frozenset(pcs)


def brute_ipdom(
    bid: Node, pdoms: dict[Node, frozenset[Node]]
) -> Node | None:
    """The closest strict post-dominator of ``bid`` (EXIT_BLOCK possible)."""
    mine = pdoms.get(bid)
    if mine is None:
        return None
    strict = [p for p in mine if p != bid]
    for candidate in strict:
        others = [p for p in strict if p != candidate]
        candidate_pdoms = (
            pdoms.get(candidate, frozenset({EXIT_BLOCK, candidate}))
            if candidate != EXIT_BLOCK
            else frozenset({EXIT_BLOCK})
        )
        if all(p in candidate_pdoms for p in others):
            return candidate
    return None


@dataclass(frozen=True)
class Violation:
    """One soundness defect found in the metadata."""

    branch_pc: int
    function: str
    kind: str     # missing-branch / missed-dependence / bogus-reconvergence
    detail: str

    def to_dict(self) -> dict:
        return {
            "branch_pc": self.branch_pc,
            "function": self.function,
            "kind": self.kind,
            "detail": self.detail,
        }


@dataclass
class VerifierReport:
    """Soundness verdict + precision statistics for one program's metadata."""

    program: str
    branches_checked: int = 0
    violations: list[Violation] = field(default_factory=list)
    exact_regions: int = 0        # metadata region == brute-force region
    excess_pcs: int = 0           # sum over branches of |metadata \ brute|
    exact_reconvergence: int = 0  # metadata reconv == brute ipdom

    @property
    def sound(self) -> bool:
        return not self.violations

    @property
    def mean_excess(self) -> float:
        if not self.branches_checked:
            return 0.0
        return self.excess_pcs / self.branches_checked

    def to_dict(self) -> dict:
        return {
            "program": self.program,
            "sound": self.sound,
            "branches_checked": self.branches_checked,
            "violations": [v.to_dict() for v in self.violations],
            "exact_regions": self.exact_regions,
            "exact_reconvergence": self.exact_reconvergence,
            "excess_pcs": self.excess_pcs,
            "mean_excess": round(self.mean_excess, 3),
        }


def verify_metadata(
    program: Program, info: BranchDependencyInfo | None = None
) -> VerifierReport:
    """Cross-check the program's branch metadata against brute force."""
    if info is None:
        info = ensure_analysis(program)
    report = VerifierReport(program=program.name)
    for cfg in build_all_cfgs(program):
        pdoms = brute_postdominators(cfg)
        for branch in cfg.conditional_branches():
            pc = branch.pc
            if info.function_of_branch.get(pc, cfg.name) != cfg.name:
                continue  # shared code: metadata belongs to another function
            report.branches_checked += 1
            if not info.knows_branch(pc):
                report.violations.append(
                    Violation(pc, cfg.name, "missing-branch",
                              "branch absent from metadata")
                )
                continue
            bid = cfg.block_of_pc[pc]
            reconv = info.reconvergence_of(pc)
            if bid not in pdoms:
                # The branch cannot reach the exit: no reconvergence exists.
                if reconv is not None:
                    report.violations.append(
                        Violation(
                            pc, cfg.name, "bogus-reconvergence",
                            f"claims reconvergence {reconv:#x} but the branch "
                            "block cannot reach the function exit",
                        )
                    )
                continue
            # Reconvergence claim: must be a genuine post-dominator.
            ipdom_bf = brute_ipdom(bid, pdoms)
            if reconv is None:
                if ipdom_bf is None or ipdom_bf == EXIT_BLOCK:
                    report.exact_reconvergence += 1
                # A None claim is always sound (conservative fallback).
            else:
                reconv_bid = cfg.block_of_pc.get(reconv)
                if reconv_bid is None or reconv_bid not in pdoms[bid]:
                    report.violations.append(
                        Violation(
                            pc, cfg.name, "bogus-reconvergence",
                            f"claimed reconvergence {reconv:#x} does not "
                            "post-dominate the branch",
                        )
                    )
                elif (
                    ipdom_bf == reconv_bid
                    and cfg.blocks[reconv_bid].start_pc == reconv
                ):
                    report.exact_reconvergence += 1
            # Dependence region: metadata must cover the brute-force floor.
            brute = brute_dependence_region(cfg, pc, pdoms)
            claimed = info.control_dep_pcs.get(pc, frozenset())
            missed = brute - claimed
            if missed:
                report.violations.append(
                    Violation(
                        pc, cfg.name, "missed-dependence",
                        f"{len(missed)} control-dependent pc(s) missing from "
                        f"metadata region: "
                        f"{', '.join(hex(p) for p in sorted(missed)[:8])}",
                    )
                )
            excess = claimed - brute
            report.excess_pcs += len(excess)
            if not missed and not excess:
                report.exact_regions += 1
    return report
