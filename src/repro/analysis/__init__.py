"""Static analysis over assembled programs.

A generic worklist dataflow framework (:mod:`.dataflow`) with four client
analyses — reaching definitions, register liveness, secret-taint
propagation, and the Spectre-gadget scanner built on it — plus two
soundness checkers for the compiler metadata the Levioso hardware trusts:
the brute-force :mod:`.verifier` (static) and the retired-instruction
:mod:`.crosscheck` (dynamic).
"""

from .crosscheck import (
    CrosscheckReport,
    CrosscheckViolation,
    crosscheck_retired,
    run_with_crosscheck,
)
from .dataflow import (
    BACKWARD,
    FORWARD,
    DataflowProblem,
    DataflowResult,
    make_problem,
    solve,
    solve_round_robin,
)
from .liveness import LiveRegisters, dead_writes, live_registers
from .reaching import (
    ENTRY_DEF,
    ReachingDefinitions,
    definitions_reaching_use,
    reaching_definitions,
)
from .scanner import (
    KIND_V1,
    KIND_V1_CT,
    KIND_V2,
    Finding,
    ScanReport,
    scan_counters,
    scan_program,
)
from .taint import AbsValue, SecretTaint, TaintContext, entry_state, taint_states
from .verifier import (
    VerifierReport,
    Violation,
    brute_dependence_region,
    brute_postdominators,
    verify_metadata,
)
from .windows import OpenWindows, open_windows

__all__ = [
    "BACKWARD",
    "FORWARD",
    "ENTRY_DEF",
    "KIND_V1",
    "KIND_V1_CT",
    "KIND_V2",
    "AbsValue",
    "CrosscheckReport",
    "CrosscheckViolation",
    "DataflowProblem",
    "DataflowResult",
    "Finding",
    "LiveRegisters",
    "OpenWindows",
    "ReachingDefinitions",
    "ScanReport",
    "SecretTaint",
    "TaintContext",
    "VerifierReport",
    "Violation",
    "brute_dependence_region",
    "brute_postdominators",
    "crosscheck_retired",
    "dead_writes",
    "definitions_reaching_use",
    "entry_state",
    "live_registers",
    "make_problem",
    "open_windows",
    "reaching_definitions",
    "run_with_crosscheck",
    "scan_counters",
    "scan_program",
    "solve",
    "solve_round_robin",
    "taint_states",
    "verify_metadata",
]
