"""Dynamic cross-check: simulator dependency tracking vs static prediction.

The Levioso hardware model tags every fetched instruction with the set of
unresolved branches whose reconvergence region it sits in (the front-end
tracker in :class:`~repro.uarch.core.OooCore`).  The static metadata claims,
for each branch, exactly which instruction pcs its region can contain.  If
the metadata is sound, every dynamically observed dependence must be
statically predicted:

    for each retired instruction I, for each branch B in I.control_deps:
        pc(I) ∈ control_dep_pcs[pc(B)]

modulo the cases static intraprocedural analysis legitimately abstains
from: indirect-jump windows (``jalr`` regions never reconverge and have no
static region), branches whose metadata already gave up (reconvergence
``None`` means the hardware holds the region until resolve — trivially
sound), and callee instructions fetched inside a caller-side region (the
static region is per-function; the dynamic tracker keeps the region open
across calls, which only *adds* protection).

Anything else is a genuine soundness violation of the compiler metadata —
the hardware would release an instruction the branch actually controls.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..asm.program import Program
from ..cfg.builder import build_all_cfgs
from ..compiler.branch_deps import BranchDependencyInfo
from ..compiler.pass_manager import ensure_analysis
from ..errors import AnalysisError
from ..isa import Opcode
from ..uarch import CoreConfig, OooCore, SimResult
from ..uarch.dyninst import DynInst


@dataclass(frozen=True)
class CrosscheckViolation:
    """One retired instruction whose tracked dependence the metadata missed."""

    inst_pc: int
    branch_pc: int
    inst_seq: int
    branch_seq: int

    def to_dict(self) -> dict:
        return {
            "inst_pc": self.inst_pc,
            "branch_pc": self.branch_pc,
            "inst_seq": self.inst_seq,
            "branch_seq": self.branch_seq,
        }


@dataclass
class CrosscheckReport:
    """Outcome of one dynamic-vs-static dependency comparison."""

    program: str
    retired: int = 0
    dependences_checked: int = 0
    confirmed: int = 0          # pc listed in the branch's static region
    indirect: int = 0           # jalr window: no static region exists
    conservative: int = 0       # reconvergence None: held to resolve anyway
    cross_function: int = 0     # callee code inside a caller-side region
    violations: list[CrosscheckViolation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self) -> dict:
        return {
            "program": self.program,
            "ok": self.ok,
            "retired": self.retired,
            "dependences_checked": self.dependences_checked,
            "confirmed": self.confirmed,
            "indirect": self.indirect,
            "conservative": self.conservative,
            "cross_function": self.cross_function,
            "violations": [v.to_dict() for v in self.violations],
        }


def _functions_of_pc(program: Program) -> dict[int, frozenset[str]]:
    containing: dict[int, set[str]] = {}
    for cfg in build_all_cfgs(program):
        for pc in cfg.block_of_pc:
            containing.setdefault(pc, set()).add(cfg.name)
    return {pc: frozenset(names) for pc, names in containing.items()}


def crosscheck_retired(
    program: Program,
    retired: list[DynInst],
    info: BranchDependencyInfo | None = None,
) -> CrosscheckReport:
    """Assert every retired instruction's tracked deps ⊆ static prediction."""
    if info is None:
        info = ensure_analysis(program)
    report = CrosscheckReport(program=program.name, retired=len(retired))
    pc_functions = _functions_of_pc(program)
    # Commit is in order, so a branch always retires before its dependents;
    # one forward sweep sees every producer before its consumers.
    branch_pc_of_seq: dict[int, int] = {}
    indirect_seqs: set[int] = set()
    for dyn in retired:
        for seq in dyn.control_deps:
            report.dependences_checked += 1
            if seq in indirect_seqs:
                report.indirect += 1
                continue
            branch_pc = branch_pc_of_seq.get(seq)
            if branch_pc is None:
                # Unknown producer seq: in-order commit makes this
                # unreachable, so treat it as a hard violation.
                report.violations.append(
                    CrosscheckViolation(dyn.pc, -1, dyn.seq, seq)
                )
                continue
            if branch_pc in info.indirect_pcs:
                report.indirect += 1
            elif info.reconvergence_of(branch_pc) is None:
                report.conservative += 1
            elif dyn.pc in info.control_dep_pcs.get(branch_pc, frozenset()):
                report.confirmed += 1
            else:
                branch_fn = info.function_of_branch.get(branch_pc)
                if branch_fn is not None and branch_fn not in pc_functions.get(
                    dyn.pc, frozenset()
                ):
                    report.cross_function += 1
                else:
                    report.violations.append(
                        CrosscheckViolation(dyn.pc, branch_pc, dyn.seq, seq)
                    )
        if dyn.inst.is_branch:
            branch_pc_of_seq[dyn.seq] = dyn.pc
        elif dyn.opcode is Opcode.JALR:
            indirect_seqs.add(dyn.seq)
    return report


def run_with_crosscheck(
    program: Program,
    policy=None,
    config: CoreConfig | None = None,
    use_compiler_info: bool = True,
) -> tuple[SimResult, CrosscheckReport]:
    """Run the OoO core recording its pipeline, then cross-check it.

    Raises :class:`~repro.errors.AnalysisError` when the dynamic dependency
    tracking escapes the static prediction — i.e. the metadata is unsound
    on an actually-executed path.
    """
    if isinstance(policy, str):
        from ..secure import make_policy

        policy = make_policy(policy)
    core = OooCore(
        program,
        config=config,
        policy=policy,
        record_pipeline=True,
        use_compiler_info=use_compiler_info,
    )
    result = core.run()
    report = crosscheck_retired(program, core.retired, program.analysis)
    if not report.ok:
        first = report.violations[0]
        raise AnalysisError(
            f"{program.name}: dynamic dependency escaped static metadata — "
            f"retired pc {first.inst_pc:#x} depends on branch "
            f"{first.branch_pc:#x} which does not list it "
            f"({len(report.violations)} violation(s) total)"
        )
    return result, report
