"""The :class:`Program` image produced by the assembler.

A program bundles the instruction stream, the initial data image, the symbol
table, secret-data annotations (for the constant-time threat model) and —
after the Levioso compiler pass has run — the branch-dependency metadata the
hardware consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator

from ..errors import SimulationError
from ..isa import INSTRUCTION_BYTES, Instruction

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..compiler.branch_deps import BranchDependencyInfo

TEXT_BASE = 0x1000
"""Default base address of the instruction stream."""

DATA_BASE = 0x100000
"""Default base address of the data segment."""

STACK_TOP = 0x800000
"""Initial stack pointer handed to simulated programs."""


@dataclass(frozen=True)
class SecretRange:
    """A byte range of the data segment holding secret data.

    Under the comprehensive threat model, values loaded from these ranges are
    secrets even when loaded non-speculatively (the constant-time programming
    model), and must never reach a transmitter while execution is
    policy-speculative.
    """

    start: int
    end: int  # exclusive
    name: str = ""

    def contains(self, address: int, size: int = 1) -> bool:
        return address < self.end and address + size > self.start


@dataclass
class Program:
    """An assembled, executable program image."""

    instructions: list[Instruction]
    data: bytes = b""
    symbols: dict[str, int] = field(default_factory=dict)
    secret_ranges: list[SecretRange] = field(default_factory=list)
    text_base: int = TEXT_BASE
    data_base: int = DATA_BASE
    entry: int | None = None
    name: str = "program"
    analysis: "BranchDependencyInfo | None" = None
    # Original assembly text (when assembled from source): the repair pass
    # rewrites at the source level and reassembles, so jump tables and
    # label arithmetic re-resolve instead of being patched in the binary.
    source: str | None = field(default=None, repr=False, compare=False)
    # Register declared via the ``.slhmask`` directive: the SLH passes'
    # misspeculation predicate (-1 on the correct path, 0 after threading a
    # mispredicted branch).  Declaring it is a guarantee by the emitting
    # pass — every conditional branch guarding a masked access updates the
    # register — which the taint analysis assumes: AND-ing with it yields a
    # secret-free value (see DESIGN.md, software mitigations).
    slh_mask: int | None = None

    def __post_init__(self) -> None:
        self._by_pc = {inst.pc: inst for inst in self.instructions}
        if self.entry is None:
            self.entry = self.text_base

    # ------------------------------------------------------------ inspection
    @property
    def text_end(self) -> int:
        """One past the last instruction address."""
        return self.text_base + len(self.instructions) * INSTRUCTION_BYTES

    def inst_at(self, pc: int) -> Instruction:
        """Fetch the instruction at ``pc``; raises on wild PCs."""
        inst = self._by_pc.get(pc)
        if inst is None:
            raise SimulationError(f"fetch from non-text address {pc:#x}")
        return inst

    def try_inst_at(self, pc: int) -> Instruction | None:
        """Like :meth:`inst_at` but returns None off the text segment.

        The out-of-order front end uses this: wrong-path fetch may run off
        the end of the program and must not crash the simulation.
        """
        return self._by_pc.get(pc)

    def index_of(self, pc: int) -> int:
        """Position of ``pc`` in the instruction list."""
        return (pc - self.text_base) // INSTRUCTION_BYTES

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __len__(self) -> int:
        return len(self.instructions)

    def address_of(self, symbol: str) -> int:
        """Resolve a symbol to its address."""
        if symbol not in self.symbols:
            raise SimulationError(f"unknown symbol {symbol!r}")
        return self.symbols[symbol]

    def is_secret_address(self, address: int, size: int = 1) -> bool:
        """Does ``[address, address+size)`` overlap any secret range?"""
        return any(r.contains(address, size) for r in self.secret_ranges)

    # ------------------------------------------------------------ statistics
    def static_counts(self) -> dict[str, int]:
        """Static instruction-mix summary used by compiler-stats reports."""
        counts = {"total": len(self.instructions), "loads": 0, "stores": 0,
                  "branches": 0, "jumps": 0}
        for inst in self.instructions:
            if inst.is_load:
                counts["loads"] += 1
            elif inst.is_store:
                counts["stores"] += 1
            elif inst.is_branch:
                counts["branches"] += 1
            elif inst.is_jump:
                counts["jumps"] += 1
        return counts

    def listing(self) -> str:
        """Human-readable disassembly listing of the text segment."""
        lines = []
        label_at = {addr: name for name, addr in self.symbols.items()
                    if self.text_base <= addr < self.text_end}
        for inst in self.instructions:
            if inst.pc in label_at:
                lines.append(f"{label_at[inst.pc]}:")
            lines.append(f"    {inst}")
        return "\n".join(lines)
