"""Line lexer for the mini-RISC assembly language.

The grammar is line-oriented; the lexer turns one source line into a token
list and strips comments (``#`` and ``//`` to end of line, ``;`` also accepted
as a comment leader).
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass

from ..errors import AssemblerError


class TokenKind(enum.Enum):
    IDENT = "ident"        # mnemonics, labels, symbols, register names
    NUMBER = "number"      # integer literal (dec, hex, bin, char)
    DIRECTIVE = "directive"  # .word, .text, ...
    COMMA = "comma"
    COLON = "colon"
    LPAREN = "lparen"
    RPAREN = "rparen"
    PLUS = "plus"
    MINUS = "minus"
    STRING = "string"


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    text: str
    value: int = 0  # numeric payload for NUMBER tokens


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>\#.*|//.*|;.*)
  | (?P<string>"(?:[^"\\]|\\.)*")
  | (?P<number>[0-9][0-9a-fA-FxXbo_]*|'\\?.')
  | (?P<directive>\.[A-Za-z_][A-Za-z0-9_.]*)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_.$]*)
  | (?P<comma>,)
  | (?P<colon>:)
  | (?P<lparen>\()
  | (?P<rparen>\))
  | (?P<plus>\+)
  | (?P<minus>-)
    """,
    re.VERBOSE,
)

_ESCAPES = {"n": "\n", "t": "\t", "0": "\0", "\\": "\\", "'": "'", '"': '"', "r": "\r"}


def _parse_number(text: str, line: int) -> int:
    """Parse integer literals: 123, 0x1f, 0b101, 0o17, 1_000, 'a', '\\n'."""
    if text.startswith("'"):
        body = text[1:-1]
        if body.startswith("\\"):
            ch = _ESCAPES.get(body[1])
            if ch is None:
                raise AssemblerError(f"bad character escape {text}", line)
            return ord(ch)
        return ord(body)
    try:
        return int(text.replace("_", ""), 0)
    except ValueError as exc:
        raise AssemblerError(f"bad number literal {text!r}", line) from exc


def _parse_string(text: str, line: int) -> str:
    """Decode a quoted string literal with C-style escapes."""
    body = text[1:-1]
    out = []
    i = 0
    while i < len(body):
        ch = body[i]
        if ch == "\\":
            i += 1
            if i >= len(body):
                raise AssemblerError("dangling escape in string", line)
            esc = _ESCAPES.get(body[i])
            if esc is None:
                raise AssemblerError(f"bad string escape \\{body[i]}", line)
            out.append(esc)
        else:
            out.append(ch)
        i += 1
    return "".join(out)


def tokenize_line(source: str, line: int) -> list[Token]:
    """Tokenize one source line.  Raises :class:`AssemblerError` on garbage."""
    tokens: list[Token] = []
    pos = 0
    while pos < len(source):
        match = _TOKEN_RE.match(source, pos)
        if match is None:
            raise AssemblerError(f"unexpected character {source[pos]!r}", line)
        pos = match.end()
        kind = match.lastgroup
        text = match.group()
        if kind in ("ws", "comment"):
            continue
        if kind == "number":
            tokens.append(Token(TokenKind.NUMBER, text, _parse_number(text, line)))
        elif kind == "string":
            tokens.append(Token(TokenKind.STRING, _parse_string(text, line)))
        elif kind == "directive":
            tokens.append(Token(TokenKind.DIRECTIVE, text.lower()))
        elif kind == "ident":
            tokens.append(Token(TokenKind.IDENT, text))
        else:
            tokens.append(Token(TokenKind[kind.upper()], text))
    return tokens
