"""Statement parser for the mini-RISC assembly language.

Each source line parses to zero or more :class:`Statement` values:
label definitions, directives, or instruction statements.  Operands are kept
as small expression trees; the assembler resolves symbols against the final
symbol table in its second pass.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import AssemblerError
from .lexer import Token, TokenKind, tokenize_line

# --------------------------------------------------------------------- exprs


@dataclass(frozen=True)
class NumExpr:
    value: int


@dataclass(frozen=True)
class SymExpr:
    name: str


@dataclass(frozen=True)
class BinExpr:
    op: str  # '+' or '-'
    left: "Expr"
    right: "Expr"


Expr = NumExpr | SymExpr | BinExpr


def eval_expr(expr: Expr, symbols: dict[str, int], line: int | None = None) -> int:
    """Evaluate an operand expression against a symbol table."""
    if isinstance(expr, NumExpr):
        return expr.value
    if isinstance(expr, SymExpr):
        if expr.name not in symbols:
            raise AssemblerError(f"undefined symbol {expr.name!r}", line)
        return symbols[expr.name]
    left = eval_expr(expr.left, symbols, line)
    right = eval_expr(expr.right, symbols, line)
    return left + right if expr.op == "+" else left - right


# ------------------------------------------------------------------ operands


@dataclass(frozen=True)
class ExprOperand:
    """A bare expression operand: register name, symbol, or number."""

    expr: Expr


@dataclass(frozen=True)
class MemOperand:
    """``offset(base)`` memory operand."""

    offset: Expr
    base: str


@dataclass(frozen=True)
class StringOperand:
    text: str


Operand = ExprOperand | MemOperand | StringOperand


# ---------------------------------------------------------------- statements


@dataclass(frozen=True)
class LabelDef:
    name: str
    line: int


@dataclass(frozen=True)
class DirectiveStmt:
    name: str  # includes the leading '.'
    operands: tuple[Operand, ...]
    line: int


@dataclass(frozen=True)
class InstructionStmt:
    mnemonic: str
    operands: tuple[Operand, ...]
    line: int


Statement = LabelDef | DirectiveStmt | InstructionStmt


# -------------------------------------------------------------------- parser


class _TokenStream:
    def __init__(self, tokens: list[Token], line: int):
        self._tokens = tokens
        self._pos = 0
        self.line = line

    def peek(self) -> Token | None:
        if self._pos < len(self._tokens):
            return self._tokens[self._pos]
        return None

    def next(self) -> Token:
        tok = self.peek()
        if tok is None:
            raise AssemblerError("unexpected end of line", self.line)
        self._pos += 1
        return tok

    def expect(self, kind: TokenKind) -> Token:
        tok = self.next()
        if tok.kind is not kind:
            raise AssemblerError(
                f"expected {kind.value}, found {tok.text!r}", self.line
            )
        return tok

    def at_end(self) -> bool:
        return self._pos >= len(self._tokens)


def _parse_atom(stream: _TokenStream) -> Expr:
    tok = stream.next()
    if tok.kind is TokenKind.NUMBER:
        return NumExpr(tok.value)
    if tok.kind is TokenKind.IDENT:
        return SymExpr(tok.text)
    if tok.kind is TokenKind.MINUS:
        inner = _parse_atom(stream)
        return BinExpr("-", NumExpr(0), inner)
    if tok.kind is TokenKind.PLUS:
        return _parse_atom(stream)
    raise AssemblerError(f"expected expression, found {tok.text!r}", stream.line)


def _parse_expr(stream: _TokenStream) -> Expr:
    expr = _parse_atom(stream)
    while True:
        tok = stream.peek()
        if tok is None or tok.kind not in (TokenKind.PLUS, TokenKind.MINUS):
            return expr
        stream.next()
        right = _parse_atom(stream)
        expr = BinExpr(tok.text, expr, right)


def _parse_operand(stream: _TokenStream) -> Operand:
    tok = stream.peek()
    if tok is not None and tok.kind is TokenKind.STRING:
        stream.next()
        return StringOperand(tok.text)
    # `(reg)` with implicit zero offset
    if tok is not None and tok.kind is TokenKind.LPAREN:
        stream.next()
        base = stream.expect(TokenKind.IDENT).text
        stream.expect(TokenKind.RPAREN)
        return MemOperand(NumExpr(0), base)
    expr = _parse_expr(stream)
    tok = stream.peek()
    if tok is not None and tok.kind is TokenKind.LPAREN:
        stream.next()
        base = stream.expect(TokenKind.IDENT).text
        stream.expect(TokenKind.RPAREN)
        return MemOperand(expr, base)
    return ExprOperand(expr)


def parse_line(source: str, line: int) -> list[Statement]:
    """Parse one physical line into statements.

    A line may contain ``label:`` prefixes followed by at most one directive
    or instruction.
    """
    tokens = tokenize_line(source, line)
    if not tokens:
        return []
    stream = _TokenStream(tokens, line)
    statements: list[Statement] = []

    # Leading labels: IDENT ':'
    while True:
        tok = stream.peek()
        if tok is None:
            return statements
        if tok.kind is TokenKind.IDENT:
            # lookahead for ':'
            save = stream._pos
            stream.next()
            nxt = stream.peek()
            if nxt is not None and nxt.kind is TokenKind.COLON:
                stream.next()
                statements.append(LabelDef(tok.text, line))
                continue
            stream._pos = save
        break

    tok = stream.peek()
    if tok is None:
        return statements

    if tok.kind is TokenKind.DIRECTIVE:
        stream.next()
        operands = _parse_operand_list(stream)
        statements.append(DirectiveStmt(tok.text, tuple(operands), line))
    elif tok.kind is TokenKind.IDENT:
        stream.next()
        operands = _parse_operand_list(stream)
        statements.append(InstructionStmt(tok.text.lower(), tuple(operands), line))
    else:
        raise AssemblerError(f"unexpected token {tok.text!r}", line)

    if not stream.at_end():
        raise AssemblerError(
            f"trailing tokens after statement: {stream.peek().text!r}", line
        )
    return statements


def _parse_operand_list(stream: _TokenStream) -> list[Operand]:
    operands: list[Operand] = []
    if stream.at_end():
        return operands
    operands.append(_parse_operand(stream))
    while not stream.at_end():
        stream.expect(TokenKind.COMMA)
        operands.append(_parse_operand(stream))
    return operands


def parse_source(source: str) -> list[Statement]:
    """Parse a whole assembly source file into a statement list."""
    statements: list[Statement] = []
    for lineno, text in enumerate(source.splitlines(), start=1):
        statements.extend(parse_line(text, lineno))
    return statements
