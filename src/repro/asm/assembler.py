"""Two-pass assembler for the mini-RISC ISA.

Pass 1 lays out both sections and builds the symbol table; pass 2 resolves
operands and emits :class:`~repro.isa.Instruction` records and the data
image.  Pseudo-instructions (``mv``, ``li``, ``la``, ``j``, ``call``, ``ret``,
``beqz`` ...) expand 1:1 onto real opcodes, so source line <-> instruction
mapping stays trivial, which the compiler pass and the disassembler rely on.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from ..errors import AssemblerError
from ..isa import (
    INSTRUCTION_BYTES,
    MNEMONIC_TO_OPCODE,
    Instruction,
    Opcode,
    OperandFormat,
    parse_register,
)
from .parser import (
    DirectiveStmt,
    ExprOperand,
    InstructionStmt,
    LabelDef,
    MemOperand,
    Operand,
    Statement,
    StringOperand,
    eval_expr,
    parse_source,
)
from .program import DATA_BASE, TEXT_BASE, Program, SecretRange

# Pseudo-instruction table: mnemonic -> (real opcode, operand rewriter).
# Rewriters receive the parsed operand tuple and return the canonical
# operand tuple for the real opcode's format.


@dataclass
class _PendingInst:
    """An instruction statement after pass-1 layout, awaiting resolution."""

    stmt: InstructionStmt
    opcode: Opcode
    operands: tuple[Operand, ...]
    pc: int
    label: str | None


_DATA_DIRECTIVE_SIZES = {".byte": 1, ".half": 2, ".word": 4, ".dword": 8}
_PACK_FMT = {1: "<b", 2: "<h", 4: "<i", 8: "<q"}
_PACK_FMT_U = {1: "<B", 2: "<H", 4: "<I", 8: "<Q"}


def _reg_of(operand: Operand, line: int) -> int:
    """Interpret an operand as a register name."""
    if isinstance(operand, ExprOperand):
        expr = operand.expr
        from .parser import SymExpr

        if isinstance(expr, SymExpr):
            return parse_register(expr.name)
    raise AssemblerError("expected a register operand", line)


class Assembler:
    """Assembles mini-RISC source text into a :class:`Program`."""

    def __init__(self, text_base: int = TEXT_BASE, data_base: int = DATA_BASE):
        self.text_base = text_base
        self.data_base = data_base

    # ----------------------------------------------------------------- public
    def assemble(self, source: str, name: str = "program") -> Program:
        statements = parse_source(source)
        pending, data, symbols, secrets, entry, slh_mask = self._pass1(statements)
        instructions = [self._resolve(p, symbols) for p in pending]
        return Program(
            instructions=instructions,
            data=bytes(data),
            symbols=symbols,
            secret_ranges=secrets,
            text_base=self.text_base,
            data_base=self.data_base,
            entry=entry if entry is not None else self.text_base,
            name=name,
            source=source,
            slh_mask=slh_mask,
        )

    # ----------------------------------------------------------------- pass 1
    def _pass1(
        self, statements: list[Statement]
    ) -> tuple[
        list[_PendingInst], bytearray, dict[str, int], list[SecretRange],
        int | None, int | None,
    ]:
        section = "text"
        text_pc = self.text_base
        data = bytearray()
        symbols: dict[str, int] = {}
        pending: list[_PendingInst] = []
        secrets: list[SecretRange] = []
        secret_open: tuple[int, str] | None = None  # (start offset, name)
        entry_symbol: str | None = None
        pending_label: str | None = None
        slh_mask: int | None = None

        def data_addr() -> int:
            return self.data_base + len(data)

        def define(name: str, value: int, line: int) -> None:
            if name in symbols:
                raise AssemblerError(f"duplicate symbol {name!r}", line)
            symbols[name] = value

        def close_secret() -> None:
            nonlocal secret_open
            if secret_open is not None:
                start, sec_name = secret_open
                secrets.append(
                    SecretRange(self.data_base + start, data_addr(), sec_name)
                )
                secret_open = None

        for stmt in statements:
            if isinstance(stmt, LabelDef):
                addr = text_pc if section == "text" else data_addr()
                define(stmt.name, addr, stmt.line)
                if section == "text":
                    pending_label = stmt.name
                continue

            if isinstance(stmt, InstructionStmt):
                if section != "text":
                    raise AssemblerError(
                        "instruction outside .text section", stmt.line
                    )
                opcode, operands = self._expand_pseudo(stmt)
                pending.append(
                    _PendingInst(stmt, opcode, operands, text_pc, pending_label)
                )
                pending_label = None
                text_pc += INSTRUCTION_BYTES
                continue

            # Directive
            name = stmt.name
            line = stmt.line
            if name == ".text":
                close_secret()
                section = "text"
            elif name == ".data":
                section = "data"
            elif name == ".global":
                pass  # single-image model: every symbol is already global
            elif name == ".entry":
                entry_symbol = self._one_symbol(stmt)
            elif name == ".equ":
                if len(stmt.operands) != 2:
                    raise AssemblerError(".equ needs name, value", line)
                sym = self._symbol_of(stmt.operands[0], line)
                value = eval_expr(
                    self._expr_of(stmt.operands[1], line), symbols, line
                )
                define(sym, value, line)
            elif name in _DATA_DIRECTIVE_SIZES:
                self._require_data(section, name, line)
                size = _DATA_DIRECTIVE_SIZES[name]
                for op in stmt.operands:
                    value = eval_expr(self._expr_of(op, line), symbols, line)
                    data.extend(_pack_datum(value, size, line))
            elif name in (".zero", ".space"):
                self._require_data(section, name, line)
                count = eval_expr(
                    self._expr_of(self._one_operand(stmt), line), symbols, line
                )
                if count < 0:
                    raise AssemblerError(f"{name} with negative size", line)
                data.extend(b"\x00" * count)
            elif name in (".ascii", ".asciiz"):
                self._require_data(section, name, line)
                op = self._one_operand(stmt)
                if not isinstance(op, StringOperand):
                    raise AssemblerError(f"{name} needs a string literal", line)
                data.extend(op.text.encode("utf-8"))
                if name == ".asciiz":
                    data.append(0)
            elif name == ".align":
                self._require_data(section, name, line)
                power = eval_expr(
                    self._expr_of(self._one_operand(stmt), line), symbols, line
                )
                alignment = 1 << power
                while data_addr() % alignment:
                    data.append(0)
            elif name == ".secret":
                self._require_data(section, name, line)
                close_secret()
                sec_name = ""
                if stmt.operands:
                    sec_name = self._symbol_of(stmt.operands[0], line)
                secret_open = (len(data), sec_name)
            elif name == ".public":
                self._require_data(section, name, line)
                close_secret()
            elif name == ".slhmask":
                # Declares the SLH misspeculation-predicate register the
                # emitting compiler pass threads through every conditional
                # branch (the taint analysis's sanitization contract).
                reg = _reg_of(self._one_operand(stmt), line)
                if reg == 0:
                    raise AssemblerError(".slhmask register must not be x0", line)
                slh_mask = reg
            else:
                raise AssemblerError(f"unknown directive {name}", line)

        close_secret()
        entry = None
        if entry_symbol is not None:
            if entry_symbol not in symbols:
                raise AssemblerError(f".entry references undefined {entry_symbol!r}")
            entry = symbols[entry_symbol]
        return pending, data, symbols, secrets, entry, slh_mask

    # ----------------------------------------------------------------- pass 2
    def _resolve(self, p: _PendingInst, symbols: dict[str, int]) -> Instruction:
        op = p.opcode
        fmt = op.fmt
        ops = p.operands
        line = p.stmt.line

        def expr_value(operand: Operand) -> int:
            return eval_expr(self._expr_of(operand, line), symbols, line)

        rd = rs1 = rs2 = 0
        imm = 0
        try:
            if op is Opcode.CFLUSH:
                self._arity(ops, 1, op, line)
                mem = ops[0]
                if not isinstance(mem, MemOperand):
                    raise AssemblerError("cflush needs an offset(base) operand", line)
                rs1 = parse_register(mem.base)
                imm = eval_expr(mem.offset, symbols, line)
            elif op is Opcode.RDCYCLE:
                self._arity(ops, 1, op, line)
                rd = _reg_of(ops[0], line)
            elif fmt is OperandFormat.R:
                self._arity(ops, 3, op, line)
                rd, rs1, rs2 = (_reg_of(o, line) for o in ops)
            elif fmt is OperandFormat.I:
                self._arity(ops, 3, op, line)
                rd = _reg_of(ops[0], line)
                rs1 = _reg_of(ops[1], line)
                imm = expr_value(ops[2])
            elif fmt is OperandFormat.LI:
                self._arity(ops, 2, op, line)
                rd = _reg_of(ops[0], line)
                imm = expr_value(ops[1])
            elif fmt is OperandFormat.MEM:
                self._arity(ops, 2, op, line)
                data_reg = _reg_of(ops[0], line)
                mem = ops[1]
                if not isinstance(mem, MemOperand):
                    raise AssemblerError(
                        f"{op.mnemonic} needs an offset(base) operand", line
                    )
                if op.is_load:
                    rd = data_reg
                else:
                    rs2 = data_reg
                rs1 = parse_register(mem.base)
                imm = eval_expr(mem.offset, symbols, line)
            elif fmt is OperandFormat.B:
                self._arity(ops, 3, op, line)
                rs1 = _reg_of(ops[0], line)
                rs2 = _reg_of(ops[1], line)
                imm = expr_value(ops[2])  # absolute target address
            elif fmt is OperandFormat.J:
                self._arity(ops, 2, op, line)
                rd = _reg_of(ops[0], line)
                imm = expr_value(ops[1])
            elif fmt is OperandFormat.JR:
                self._arity(ops, 3, op, line)
                rd = _reg_of(ops[0], line)
                rs1 = _reg_of(ops[1], line)
                imm = expr_value(ops[2])
            else:  # NONE
                self._arity(ops, 0, op, line)
        except AssemblerError:
            raise
        return Instruction(
            opcode=op, rd=rd, rs1=rs1, rs2=rs2, imm=imm,
            pc=p.pc, label=p.label, source_line=line,
        )

    # ------------------------------------------------------------ pseudo-ops
    def _expand_pseudo(
        self, stmt: InstructionStmt
    ) -> tuple[Opcode, tuple[Operand, ...]]:
        """Map a source mnemonic onto a real opcode + canonical operands."""
        from .parser import NumExpr, SymExpr

        def reg(name: str) -> Operand:
            return ExprOperand(SymExpr(name))

        def num(value: int) -> Operand:
            return ExprOperand(NumExpr(value))

        m = stmt.mnemonic
        ops = stmt.operands
        line = stmt.line

        if m == "mv":
            self._arity(ops, 2, m, line)
            return Opcode.ADDI, (ops[0], ops[1], num(0))
        if m == "la":
            self._arity(ops, 2, m, line)
            return Opcode.LI, ops
        if m == "not":
            self._arity(ops, 2, m, line)
            return Opcode.XORI, (ops[0], ops[1], num(-1))
        if m == "neg":
            self._arity(ops, 2, m, line)
            return Opcode.SUB, (ops[0], reg("zero"), ops[1])
        if m in ("beqz", "bnez", "bltz", "bgez"):
            self._arity(ops, 2, m, line)
            real = {"beqz": Opcode.BEQ, "bnez": Opcode.BNE,
                    "bltz": Opcode.BLT, "bgez": Opcode.BGE}[m]
            return real, (ops[0], reg("zero"), ops[1])
        if m in ("bgtz", "blez"):
            self._arity(ops, 2, m, line)
            real = Opcode.BLT if m == "bgtz" else Opcode.BGE
            return real, (reg("zero"), ops[0], ops[1])
        if m in ("ble", "bgt", "bleu", "bgtu"):
            self._arity(ops, 3, m, line)
            real = {"ble": Opcode.BGE, "bgt": Opcode.BLT,
                    "bleu": Opcode.BGEU, "bgtu": Opcode.BLTU}[m]
            return real, (ops[1], ops[0], ops[2])
        if m == "j":
            self._arity(ops, 1, m, line)
            return Opcode.JAL, (reg("zero"), ops[0])
        if m == "call":
            self._arity(ops, 1, m, line)
            return Opcode.JAL, (reg("ra"), ops[0])
        if m == "jal" and len(ops) == 1:
            return Opcode.JAL, (reg("ra"), ops[0])
        if m == "jr":
            self._arity(ops, 1, m, line)
            return Opcode.JALR, (reg("zero"), ops[0], num(0))
        if m == "ret":
            self._arity(ops, 0, m, line)
            return Opcode.JALR, (reg("zero"), reg("ra"), num(0))
        if m == "jalr" and len(ops) == 1:
            return Opcode.JALR, (reg("ra"), ops[0], num(0))

        opcode = MNEMONIC_TO_OPCODE.get(m)
        if opcode is None:
            raise AssemblerError(f"unknown mnemonic {m!r}", line)
        return opcode, ops

    # -------------------------------------------------------------- utilities
    @staticmethod
    def _arity(ops: tuple, want: int, what, line: int) -> None:
        if len(ops) != want:
            name = what.mnemonic if isinstance(what, Opcode) else what
            raise AssemblerError(
                f"{name} expects {want} operand(s), got {len(ops)}", line
            )

    @staticmethod
    def _require_data(section: str, directive: str, line: int) -> None:
        if section != "data":
            raise AssemblerError(f"{directive} outside .data section", line)

    @staticmethod
    def _expr_of(operand: Operand, line: int):
        if isinstance(operand, ExprOperand):
            return operand.expr
        raise AssemblerError("expected an expression operand", line)

    @staticmethod
    def _symbol_of(operand: Operand, line: int) -> str:
        from .parser import SymExpr

        if isinstance(operand, ExprOperand) and isinstance(operand.expr, SymExpr):
            return operand.expr.name
        raise AssemblerError("expected a symbol operand", line)

    def _one_operand(self, stmt: DirectiveStmt) -> Operand:
        if len(stmt.operands) != 1:
            raise AssemblerError(f"{stmt.name} expects one operand", stmt.line)
        return stmt.operands[0]

    def _one_symbol(self, stmt: DirectiveStmt) -> str:
        return self._symbol_of(self._one_operand(stmt), stmt.line)


def _pack_datum(value: int, size: int, line: int) -> bytes:
    """Pack an integer into little-endian bytes, accepting both signdoms."""
    try:
        return struct.pack(_PACK_FMT[size], value)
    except struct.error:
        pass
    try:
        return struct.pack(_PACK_FMT_U[size], value)
    except struct.error as exc:
        raise AssemblerError(
            f"value {value} does not fit in {size} byte(s)", line
        ) from exc


def assemble(source: str, name: str = "program") -> Program:
    """Convenience wrapper: assemble source text with default bases."""
    return Assembler().assemble(source, name=name)
