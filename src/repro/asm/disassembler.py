"""Disassembler: render a :class:`Program` back to assembly text.

The output round-trips through the assembler (modulo pseudo-instruction
choice): labels are regenerated for every address that is a control-flow
target or carries a symbol.
"""

from __future__ import annotations

from ..isa import Instruction, Opcode, OperandFormat, register_name
from .program import Program


def _collect_labels(program: Program) -> dict[int, str]:
    """Assign a label to every address referenced by control flow."""
    labels: dict[int, str] = {}
    for name, addr in program.symbols.items():
        if program.text_base <= addr < program.text_end:
            labels.setdefault(addr, name)
    counter = 0
    for inst in program.instructions:
        if inst.is_branch or inst.opcode is Opcode.JAL:
            target = inst.branch_target
            if target not in labels:
                labels[target] = f"L{counter}"
                counter += 1
    return labels


def _render(inst: Instruction, labels: dict[int, str]) -> str:
    op = inst.opcode
    r = register_name
    if op.fmt is OperandFormat.B:
        target = labels.get(inst.branch_target, f"{inst.branch_target:#x}")
        return f"{op.mnemonic} {r(inst.rs1)}, {r(inst.rs2)}, {target}"
    if op.fmt is OperandFormat.J:
        target = labels.get(inst.imm, f"{inst.imm:#x}")
        return f"{op.mnemonic} {r(inst.rd)}, {target}"
    return inst.text()


def disassemble(program: Program) -> str:
    """Produce assembly text for the program's text segment."""
    labels = _collect_labels(program)
    lines = [".text"]
    for inst in program.instructions:
        if inst.pc in labels:
            lines.append(f"{labels[inst.pc]}:")
        lines.append(f"    {_render(inst, labels)}")
    return "\n".join(lines) + "\n"
