"""Assembler toolchain: source text -> :class:`Program` images."""

from .assembler import Assembler, assemble
from .disassembler import disassemble
from .program import DATA_BASE, STACK_TOP, TEXT_BASE, Program, SecretRange

__all__ = [
    "Assembler",
    "DATA_BASE",
    "Program",
    "STACK_TOP",
    "SecretRange",
    "TEXT_BASE",
    "assemble",
    "disassemble",
]
