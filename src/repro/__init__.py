"""Levioso: Efficient Compiler-Informed Secure Speculation - reproduction.

A full-system Python reproduction of the DAC 2024 paper: mini-RISC ISA and
assembler, functional golden model, Levioso compiler analysis (branch
reconvergence + control dependence), an out-of-order core with pluggable
secure-speculation policies, Spectre attack gadgets, the SPEClite workload
suite, and a harness regenerating every table and figure.

Quickstart::

    from repro import assemble, OooCore, make_policy

    program = assemble('''
    .text
        li a0, 41
        addi a0, a0, 1
        halt
    ''')
    result = OooCore(program, policy=make_policy("levioso")).run()
    print(result.regs[10], result.cycles)

See README.md for the architecture overview and EXPERIMENTS.md for the
paper-vs-measured record.
"""

from .asm import Program, assemble, disassemble
from .compiler import run_levioso_pass
from .errors import ReproError
from .functional import FunctionalSimulator, run_program
from .harness import ExperimentRunner, geomean
from .secure import (
    ALL_POLICY_NAMES,
    COMPREHENSIVE_POLICY_NAMES,
    LeviosoPolicy,
    SpeculationPolicy,
    make_policy,
)
from .uarch import CoreConfig, OooCore, SimResult
from .workloads import WORKLOAD_NAMES, build_suite, build_workload

__version__ = "1.0.0"

__all__ = [
    "ALL_POLICY_NAMES",
    "COMPREHENSIVE_POLICY_NAMES",
    "CoreConfig",
    "ExperimentRunner",
    "FunctionalSimulator",
    "LeviosoPolicy",
    "OooCore",
    "Program",
    "ReproError",
    "SimResult",
    "SpeculationPolicy",
    "WORKLOAD_NAMES",
    "__version__",
    "assemble",
    "build_suite",
    "build_workload",
    "disassemble",
    "geomean",
    "make_policy",
    "run_levioso_pass",
    "run_program",
]
