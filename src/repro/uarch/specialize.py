"""Region-specialized execute/address/extend functions, exec-compiled per PC.

The interpreted execute path (:meth:`~repro.uarch.core.OooCore._execute_alu`
and the address/sign-extension arithmetic in ``_try_issue_mem``) re-derives,
for every executed :class:`~repro.uarch.dyninst.DynInst`, facts that are
constants at that instruction's PC: the opcode dispatch through
``semantics._ALU_OPS``/``_BRANCH_OPS``, the immediate, the branch target and
fallthrough, the link-register value, and the load access size/signedness.

This module ``exec``-compiles one tiny function per static instruction with
all of those folded in as literals, and hangs them off the shared
:class:`~repro.uarch.decoded.DecodedInst` records (slots ``xop``/``aop``/
``ext``):

* ``xop(dyn, a, b)`` — the execute op: writes ``dyn.result`` (ALU/JAL) or
  the branch/JALR resolution fields (``actual_taken``/``actual_target``/
  ``mispredicted``), bit-for-bit equal to what the interpreted path via
  :mod:`repro.functional.semantics` produces;
* ``aop(base)`` — the effective-address op for loads/stores/cflush, with
  the immediate folded;
* ``ext(raw)`` — the load sign/zero-extension with size and signedness
  folded (``OooCore._extend`` specialized to one opcode).

Plans are cached in an LRU keyed like the decoded-image cache — program
fingerprint plus the latency-relevant config fields — extended with the
policy name (the plan also records whether the policy overrides
``defers_wakeup``, which lets the specialized core skip that virtual call
per load completion).  The generated ops themselves are policy-independent
and are built once per :class:`DecodedProgram` instance.

``REPRO_NO_SPECIALIZE=1`` forces the interpreted reference path, mirroring
``REPRO_NO_CYCLE_SKIP``/``REPRO_NO_DYN_POOL``; the equivalence suite
(``tests/test_specialize.py``) compares the two arm-for-arm over every
workload and policy.
"""

from __future__ import annotations

import heapq
import os
import time
from collections import OrderedDict
from typing import TYPE_CHECKING

from ..functional.semantics import _div, _rem
from ..isa import INSTRUCTION_BYTES, WORD_MASK, Opcode
from ..secure.policy import SpeculationPolicy
from .dyninst import Stage

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..secure.policy import SpeculationPolicy as _Policy
    from .config import CoreConfig
    from .decoded import DecodedProgram

_M = WORD_MASK
_H = 1 << 63
_T = 1 << 64

#: Branch predicates as (needs_signed, expression-template) pairs.
_BRANCH_PREDS: dict[Opcode, tuple[bool, str]] = {
    Opcode.BEQ: (False, "a == b"),
    Opcode.BNE: (False, "a != b"),
    Opcode.BLT: (True, "sa < sb"),
    Opcode.BGE: (True, "sa >= sb"),
    Opcode.BLTU: (False, "a < b"),
    Opcode.BGEU: (False, "a >= b"),
}

#: Sign-extension constants per signed sub-64-bit load: (sign bit, span).
_SIGNED_LOADS = {
    Opcode.LB: (1 << 7, 1 << 8),
    Opcode.LH: (1 << 15, 1 << 16),
    Opcode.LW: (1 << 31, 1 << 32),
}


def _signed_lines(var: str, out: str) -> list[str]:
    """Statements converting unsigned ``var`` to signed ``out`` (exact
    replica of :func:`repro.isa.to_signed`, mask included)."""
    return [
        f"    {out} = {var} & {_M}",
        f"    {out} = {out} - {_T} if {out} >= {_H} else {out}",
    ]


def _alu_lines(opcode: Opcode, imm: int, pc: int) -> list[str] | None:
    """Body statements computing ``dyn.result`` for one ALU-class PC."""
    immu = imm & _M
    sh = imm & 63
    if opcode is Opcode.ADD:
        return [f"    dyn.result = (a + b) & {_M}"]
    if opcode is Opcode.SUB:
        return [f"    dyn.result = (a - b) & {_M}"]
    if opcode is Opcode.AND:
        return ["    dyn.result = a & b"]
    if opcode is Opcode.OR:
        return ["    dyn.result = a | b"]
    if opcode is Opcode.XOR:
        return ["    dyn.result = a ^ b"]
    if opcode is Opcode.SLL:
        return [f"    dyn.result = (a << (b & 63)) & {_M}"]
    if opcode is Opcode.SRL:
        return ["    dyn.result = a >> (b & 63)"]
    if opcode is Opcode.SRA:
        return _signed_lines("a", "sa") + [
            f"    dyn.result = (sa >> (b & 63)) & {_M}"
        ]
    if opcode is Opcode.SLT:
        return (
            _signed_lines("a", "sa")
            + _signed_lines("b", "sb")
            + ["    dyn.result = 1 if sa < sb else 0"]
        )
    if opcode is Opcode.SLTU:
        return ["    dyn.result = 1 if a < b else 0"]
    if opcode is Opcode.MUL:
        return [f"    dyn.result = (a * b) & {_M}"]
    if opcode is Opcode.MULH:
        return (
            _signed_lines("a", "sa")
            + _signed_lines("b", "sb")
            + [f"    dyn.result = ((sa * sb) >> 64) & {_M}"]
        )
    if opcode is Opcode.DIV:
        return ["    dyn.result = _div(a, b, 0, 0)"]
    if opcode is Opcode.REM:
        return ["    dyn.result = _rem(a, b, 0, 0)"]
    if opcode is Opcode.ADDI:
        return [f"    dyn.result = (a + {imm}) & {_M}"]
    if opcode is Opcode.ANDI:
        return [f"    dyn.result = a & {immu}"]
    if opcode is Opcode.ORI:
        return [f"    dyn.result = a | {immu}"]
    if opcode is Opcode.XORI:
        return [f"    dyn.result = a ^ {immu}"]
    if opcode is Opcode.SLLI:
        return [f"    dyn.result = (a << {sh}) & {_M}"]
    if opcode is Opcode.SRLI:
        return [f"    dyn.result = a >> {sh}"]
    if opcode is Opcode.SRAI:
        return _signed_lines("a", "sa") + [
            f"    dyn.result = (sa >> {sh}) & {_M}"
        ]
    if opcode is Opcode.SLTI:
        return _signed_lines("a", "sa") + [
            f"    dyn.result = 1 if sa < {imm} else 0"
        ]
    if opcode is Opcode.LI:
        return [f"    dyn.result = {immu}"]
    if opcode is Opcode.NOP:
        return ["    dyn.result = 0"]
    if opcode is Opcode.JAL:
        # The core computes the link value as inst.pc + INSTRUCTION_BYTES.
        return [f"    dyn.result = {pc + INSTRUCTION_BYTES}"]
    return None  # mem / system / branch: not an ALU xop


def _emit_ops_source(image: "DecodedProgram") -> tuple[str, dict[int, tuple]]:
    """Generated module source plus pc -> (xop name, aop name, ext name)."""
    lines: list[str] = []
    names: dict[int, tuple] = {}
    addr_fns: dict[int, str] = {}   # imm -> shared address-fn name
    ext_fns: dict[Opcode, str] = {}  # load opcode -> shared extend-fn name
    n = 0
    for pc, dec in image.by_pc.items():
        inst = dec.inst
        opcode = dec.opcode
        xop_name = aop_name = ext_name = None
        if opcode.is_mem:
            imm = inst.imm
            aop_name = addr_fns.get(imm)
            if aop_name is None:
                aop_name = addr_fns[imm] = f"_addr_{len(addr_fns)}"
                lines.append(f"def {aop_name}(base):")
                lines.append(f"    return (base + {imm}) & {_M}")
            if opcode.is_load and opcode is not Opcode.CFLUSH:
                ext_name = ext_fns.get(opcode)
                if ext_name is None:
                    ext_name = ext_fns[opcode] = f"_ext_{opcode.mnemonic}"
                    lines.append(f"def {ext_name}(raw):")
                    signed = _SIGNED_LOADS.get(opcode)
                    if signed is not None:
                        bit, span = signed
                        lines.append(
                            f"    return (raw - {span} if raw & {bit} "
                            f"else raw) & {_M}"
                        )
                    else:
                        lines.append(f"    return raw & {_M}")
        elif opcode.is_branch:
            needs_signed, pred = _BRANCH_PREDS[opcode]
            xop_name = f"_x_{n}"
            n += 1
            lines.append(f"def {xop_name}(dyn, a, b):")
            if needs_signed:
                lines += _signed_lines("a", "sa") + _signed_lines("b", "sb")
            lines.append(f"    t = {pred}")
            lines.append("    dyn.actual_taken = t")
            lines.append(
                f"    dyn.actual_target = {inst.branch_target} if t "
                f"else {dec.fallthrough}"
            )
            lines.append("    dyn.mispredicted = t != dyn.predicted_taken")
        elif opcode is Opcode.JALR:
            xop_name = f"_x_{n}"
            n += 1
            lines.append(f"def {xop_name}(dyn, a, b):")
            lines.append(f"    t = (a + {inst.imm}) & {_M}")
            lines.append("    dyn.actual_target = t")
            lines.append(f"    dyn.result = {pc + INSTRUCTION_BYTES}")
            lines.append("    if dyn.predicted_target is not None:")
            lines.append("        dyn.mispredicted = t != dyn.predicted_target")
        else:
            body = _alu_lines(opcode, inst.imm, pc)
            if body is not None:  # HALT/RDCYCLE/FENCE never reach execute
                xop_name = f"_x_{n}"
                n += 1
                lines.append(f"def {xop_name}(dyn, a, b):")
                lines += body
        if xop_name or aop_name or ext_name:
            names[pc] = (xop_name, aop_name, ext_name)
    return "\n".join(lines), names


def _emit_superblock_source(
    image: "DecodedProgram",
) -> tuple[list[str], dict]:
    """Generated fetch/dispatch functions, one pair per superblock.

    ``_sbf_<i>(core, fq, cycle, budget, space, pos, deps, last_line,
    line_bits)`` fetches the run from ``pos`` — per-PC dict lookups, kind
    dispatch, and the region-close scan are all folded away (interior PCs
    are provably never reconvergence points), with the I-cache access
    replicated line-for-line from the interpreted loop.  Returns
    ``(pos, budget_left, last_line, stalled)``.

    ``_sbd_<i>(core, fq, rob, cycle, ripe, width, rob_space, iq_space,
    lq_space, sq_space, pos)`` dispatches + renames queued run instructions
    with the checkpoint / unresolved-control / HALT / fence logic folded
    away (interiors are plain by construction) and the rename operand
    numbers pre-extracted.  Returns ``(dispatched, stall_code, lq_used,
    sq_used)`` with stall codes 0 = ran dry, 1 = head not ripe,
    2/3/4 = ROB/IQ/LSQ full, mirroring the interpreted loop's first-blocked
    accounting.

    Both are shared across cores via the image; nothing cycle- or
    config-dependent is folded in (the cache key only covers latencies).
    """
    lines: list[str] = []
    consts: dict = {}
    for sb in image.superblocks:
        i = sb.index
        consts[f"_SBP{i}"] = sb.pcs
        consts[f"_SBI{i}"] = sb.decs
        consts[f"_SBM{i}"] = sb.meta
        n = sb.n
        lines += [
            f"def _sbf_{i}(core, fq, cycle, budget, space, pos, deps, "
            "last_line, line_bits):",
            f"    pcs = _SBP{i}",
            f"    decs = _SBI{i}",
            "    lpool = core._dyn_pool_light",
            "    pool = core._dyn_pool",
            "    hfetch = core.hierarchy.fetch",
            "    fqa = fq.append",
            "    seq = core._next_seq",
            "    end = pos + (budget if budget < space else space)",
            f"    if end > {n}:",
            f"        end = {n}",
            "    start = pos",
            "    stall = 0",
            "    while pos < end:",
            "        pc = pcs[pos]",
            "        line = pc >> line_bits",
            "        if line != last_line:",
            "            ready = hfetch(pc, cycle)",
            "            last_line = line",
            "            if ready > cycle:",
            "                core._fetch_resume_cycle = ready",
            "                stall = 1",
            "                break",
            "        if lpool:",
            "            dyn = lpool.pop()",
            "            dyn.reset_light(seq, decs[pos], cycle)",
            "        elif pool:",
            "            dyn = pool.pop()",
            "            dyn.reset(seq, decs[pos], cycle)",
            "        else:",
            "            dyn = core._alloc_dyn_slow(seq, decs[pos], cycle)",
            "        dyn.sb_fast = True",
            "        if deps:",
            "            dyn.control_deps = deps",
            "        fqa(dyn)",
            "        seq += 1",
            "        pos += 1",
            "    fetched = pos - start",
            "    if fetched:",
            "        core._next_seq = seq",
            "        core.stats.fetched += fetched",
            "        core._sb_fetched += fetched",
            "    return pos, budget - fetched, last_line, stall",
        ]
        has_mem = sb.has_mem
        lines += [
            f"def _sbd_{i}(core, fq, rob, cycle, ripe, width, rob_space, "
            "iq_space, lq_space, sq_space, pos):",
            f"    meta = _SBM{i}",
            "    rename_map = core.rename_map",
            "    arf = core.arf",
            "    arf_taint = core.arf_taint",
            "    ready = core.ready",
            "    popleft = fq.popleft",
            "    roba = rob.append",
        ]
        if has_mem:
            lines += [
                "    inflight = core.inflight_loads",
                "    sqa = core.store_queue.append",
            ]
        lines += [
            "    d = 0",
            "    lq_used = 0",
            "    sq_used = 0",
            "    code = 0",
            f"    while pos < {n} and fq:",
            "        if d >= width:",
            "            break",
            "        dyn = fq[0]",
            "        if dyn.fetch_cycle > ripe:",
            "            code = 1",
            "            break",
            "        if rob_space <= 0:",
            "            code = 2",
            "            break",
            "        if iq_space <= 0:",
            "            code = 3",
            "            break",
            "        rs1, rs2, dest, cls = meta[pos]",
        ]
        if has_mem:
            lines += [
                "        if cls == 1:",
                "            if lq_space <= 0:",
                "                code = 4",
                "                break",
                "        elif cls == 2:",
                "            if sq_space <= 0:",
                "                code = 4",
                "                break",
            ]
        lines += [
            "        popleft()",
            "        d += 1",
            "        pos += 1",
            "        rob_space -= 1",
            "        iq_space -= 1",
            "        dyn.stage = _DISP",
            "        dyn.dispatch_cycle = cycle",
            "        w = 0",
            "        e = 0",
            "        if rs1 >= 0:",
            "            producer = rename_map[rs1]",
            "            if producer is not None:",
            "                dyn.src1_producer = producer",
            "                if not producer.propagated:",
            "                    w = 1",
            "                    e = 1",
            "                    producer.consumers.append(dyn)",
            "            else:",
            "                dyn.src1_value = arf[rs1]",
            "                dyn.src1_arf_tainted = arf_taint[rs1]",
            "        if rs2 >= 0:",
            "            producer = rename_map[rs2]",
            "            if producer is not None:",
            "                dyn.src2_producer = producer",
            "                if not producer.propagated:",
            "                    w += 1",
            "                    e |= 2",
            "                    producer.consumers.append(dyn)",
            "            else:",
            "                dyn.src2_value = arf[rs2]",
            "                dyn.src2_arf_tainted = arf_taint[rs2]",
            "        if dest >= 0:",
            "            rename_map[dest] = dyn",
            "        roba(dyn)",
        ]
        if has_mem:
            lines += [
                "        if cls == 1:",
                "            lq_space -= 1",
                "            lq_used += 1",
                "            inflight[dyn.seq] = dyn",
                "        elif cls == 2:",
                "            sq_space -= 1",
                "            sq_used += 1",
                "            sqa(dyn)",
            ]
        lines += [
            "        if w:",
            "            dyn.waiting_on = w",
            "            dyn.enlisted = e",
            "        else:",
            "            _push(ready, (dyn.seq, dyn))",
            "    return d, code, lq_used, sq_used",
        ]
    return lines, consts


def _attach_ops(image: "DecodedProgram") -> int:
    """Compile and attach the per-PC ops to ``image``; returns fn count."""
    source, names = _emit_ops_source(image)
    sb_lines, sb_consts = _emit_superblock_source(image)
    if sb_lines:
        source = source + "\n" + "\n".join(sb_lines)
    namespace: dict = {
        "_div": _div, "_rem": _rem,
        "_DISP": Stage.DISPATCHED, "_push": heapq.heappush,
    }
    namespace.update(sb_consts)
    exec(  # noqa: S102 - generated from the trusted decoded image only
        compile(source, f"<specialized:{image.fingerprint[:12]}>", "exec"),
        namespace,
    )
    by_pc = image.by_pc
    for pc, (xop_name, aop_name, ext_name) in names.items():
        dec = by_pc[pc]
        if xop_name is not None:
            dec.xop = namespace[xop_name]
        if aop_name is not None:
            dec.aop = namespace[aop_name]
        if ext_name is not None:
            dec.ext = namespace[ext_name]
    for sb in image.superblocks:
        sb.fop = namespace[f"_sbf_{sb.index}"]
        sb.dop = namespace[f"_sbd_{sb.index}"]
    return sum(
        1 for name in namespace
        if name.startswith(("_x_", "_addr_", "_ext_", "_sbf_", "_sbd_"))
    )


class SpecializedProgram:
    """One cached specialization plan: compiled ops + policy-level facts."""

    __slots__ = ("key", "fn_count", "codegen_ns", "skip_defer_wakeup", "hits")

    def __init__(self, key: tuple, fn_count: int, codegen_ns: int,
                 skip_defer_wakeup: bool):
        self.key = key
        self.fn_count = fn_count
        self.codegen_ns = codegen_ns
        self.skip_defer_wakeup = skip_defer_wakeup
        self.hits = 0


#: Plan cache: (program fp, latency profile, policy name) -> plan.  Keyed
#: like the decoded-image LRU (:data:`repro.uarch.decoded._IMAGE_CACHE`)
#: plus the policy name.
_SPEC_CACHE: "OrderedDict[tuple, SpecializedProgram]" = OrderedDict()
_SPEC_CACHE_MAX = 128

#: Cumulative diagnostics for the profiling harness (process lifetime).
_STATS = {"hits": 0, "misses": 0, "codegen_ns": 0, "fn_count": 0}


def specialize_enabled() -> bool:
    """Process-level default for the ``specialize`` core knob."""
    return os.environ.get("REPRO_NO_SPECIALIZE") != "1"


def superblock_enabled() -> bool:
    """Process-level default for the ``superblock`` core knob.

    Gates *use* of the generated superblock fetch/dispatch ops, not their
    compilation: they are attached together with the per-PC ops (one shared
    image serves cores in either mode), and a core only takes the fast path
    when both ``specialize`` and ``superblock`` are on.
    """
    return os.environ.get("REPRO_NO_SUPERBLOCK") != "1"


def specialized_image(
    image: "DecodedProgram", config: "CoreConfig", policy: "_Policy"
) -> SpecializedProgram:
    """The specialization plan for ``image`` under ``config``/``policy``.

    Idempotent per image: the exec-compiled ops are attached to the
    (shared) :class:`DecodedInst` records exactly once; cache hits for a
    *fresh* image object of the same content (``REPRO_DECODE_CACHE=0``)
    re-attach by recompiling, which keeps plans content-addressed rather
    than identity-addressed.
    """
    key = (
        image.fingerprint,
        config.alu_latency, config.branch_latency,
        config.mul_latency, config.div_latency,
        policy.name,
    )
    plan = _SPEC_CACHE.get(key)
    if plan is None:
        _STATS["misses"] += 1
        start = time.perf_counter_ns()
        if image.spec_token is None:
            fn_count = _attach_ops(image)
            image.spec_token = image.fingerprint
        else:
            fn_count = 0  # ops already attached by a sibling plan
        codegen_ns = time.perf_counter_ns() - start
        _STATS["codegen_ns"] += codegen_ns
        _STATS["fn_count"] += fn_count
        plan = SpecializedProgram(
            key, fn_count, codegen_ns,
            skip_defer_wakeup=(
                type(policy).defers_wakeup is SpeculationPolicy.defers_wakeup
            ),
        )
        _SPEC_CACHE[key] = plan
        if len(_SPEC_CACHE) > _SPEC_CACHE_MAX:
            _SPEC_CACHE.popitem(last=False)
    else:
        _STATS["hits"] += 1
        plan.hits += 1
        _SPEC_CACHE.move_to_end(key)
        if image.spec_token is None:
            start = time.perf_counter_ns()
            _STATS["fn_count"] += _attach_ops(image)
            _STATS["codegen_ns"] += time.perf_counter_ns() - start
            image.spec_token = image.fingerprint
    return plan


def spec_cache_info() -> dict[str, int | float]:
    """Diagnostics for the profiling harness (cache + codegen cost)."""
    return {
        "entries": len(_SPEC_CACHE),
        "max_entries": _SPEC_CACHE_MAX,
        "hits": _STATS["hits"],
        "misses": _STATS["misses"],
        "generated_functions": _STATS["fn_count"],
        "codegen_ms": _STATS["codegen_ns"] / 1e6,
    }
