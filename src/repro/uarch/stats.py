"""Per-run statistics of the out-of-order core."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class CoreStats:
    """Event counters filled in by :class:`~repro.uarch.core.OooCore`."""

    cycles: int = 0
    committed: int = 0
    committed_loads: int = 0
    committed_stores: int = 0
    committed_branches: int = 0
    fetched: int = 0
    squashed_insts: int = 0

    branch_mispredicts: int = 0
    jalr_mispredicts: int = 0
    branch_resolutions: int = 0
    fetch_stall_cycles: int = 0
    rob_full_stalls: int = 0
    iq_full_stalls: int = 0
    lsq_full_stalls: int = 0

    loads_issued: int = 0
    loads_forwarded: int = 0
    # Motivation counters (Fig. 1): sampled at every real-load issue,
    # regardless of policy - how many loads a conservative defense would
    # have to restrict vs how many Levioso truly must.
    loads_speculative_at_issue: int = 0
    loads_true_dep_at_issue: int = 0
    loads_gated: int = 0          # distinct loads blocked by the policy
    load_gate_cycles: int = 0     # total cycles loads waited on the policy
    branches_gated: int = 0       # distinct branches blocked by the policy
    branch_gate_cycles: int = 0
    memdep_blocked_cycles: int = 0

    @property
    def ipc(self) -> float:
        return self.committed / self.cycles if self.cycles else 0.0

    @property
    def cpi(self) -> float:
        return self.cycles / self.committed if self.committed else 0.0

    @property
    def mpki(self) -> float:
        """Branch mispredicts per kilo-instruction."""
        if not self.committed:
            return 0.0
        return 1000.0 * (self.branch_mispredicts + self.jalr_mispredicts) / self.committed

    @property
    def gated_loads_pki(self) -> float:
        """Policy-delayed loads per kilo-instruction (Fig. 3)."""
        if not self.committed:
            return 0.0
        return 1000.0 * self.loads_gated / self.committed

    @property
    def mean_gate_delay(self) -> float:
        """Average cycles a gated load waited (Fig. 3)."""
        if not self.loads_gated:
            return 0.0
        return self.load_gate_cycles / self.loads_gated

    def as_dict(self) -> dict[str, float]:
        return {
            "cycles": self.cycles,
            "committed": self.committed,
            "ipc": self.ipc,
            "mpki": self.mpki,
            "branch_mispredicts": self.branch_mispredicts,
            "jalr_mispredicts": self.jalr_mispredicts,
            "squashed_insts": self.squashed_insts,
            "loads_issued": self.loads_issued,
            "loads_forwarded": self.loads_forwarded,
            "loads_gated": self.loads_gated,
            "load_gate_cycles": self.load_gate_cycles,
            "branches_gated": self.branches_gated,
            "branch_gate_cycles": self.branch_gate_cycles,
            "gated_loads_pki": self.gated_loads_pki,
            "mean_gate_delay": self.mean_gate_delay,
        }
