"""Dynamic-instruction records and speculation-lineage tracking.

Each in-flight instruction carries two kinds of security lineage, finalized
when the instruction *completes* (so consumers — which cannot issue before
their producers complete — always observe final sets):

* ``out_deps`` — true branch dependencies of the produced value: the
  instruction's own control dependencies (from the front-end reconvergence
  tracker) plus the dependencies of every operand producer, plus, for
  forwarded loads, the forwarding store's data lineage.  This is what the
  Levioso hardware consults.
* ``out_roots`` / ``out_tainted`` — taint lineage: ``out_roots`` holds the
  in-flight load seqs the value descends from (STT's expiring taint);
  ``out_tainted`` says the value descends from *any* loaded data, a
  persistent property carried across commit by the core's architectural
  taint bits (comprehensive policies' structural taint).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from ..isa import Instruction, Opcode

EMPTY: frozenset[int] = frozenset()


class Stage(enum.Enum):
    FETCHED = "fetched"
    DISPATCHED = "dispatched"
    ISSUED = "issued"
    COMPLETED = "completed"
    COMMITTED = "committed"
    SQUASHED = "squashed"


@dataclass(slots=True)
class Checkpoint:
    """Front-end + rename state captured at a speculation source."""

    rename_map: list  # list[DynInst | None] per arch reg
    ras: tuple[int, ...]
    history: int
    # Copy-on-write region snapshot: a *reference* to the live region list
    # plus its length at capture time.  Entries are never mutated in place
    # and the live list only ever grows by append while it stays the
    # current binding (every removal rebinds a freshly built list), so the
    # first ``regions_len`` entries of ``regions`` are immutable — the
    # restore path materializes its own copy from that prefix.
    regions: list  # list of [branch_seq, reconv_pc, active]
    regions_len: int
    fetch_pc_after: int  # where fetch would go if the prediction was wrong


@dataclass(slots=True)
class DynInst:
    """One in-flight dynamic instruction.

    Slotted: the core allocates one of these per fetched instruction, so the
    per-instance ``__dict__`` would be the single largest allocation on the
    simulator's hot path.  ``opcode``/``pc`` are materialized at construction
    instead of chaining through ``self.inst`` on every scheduler query.
    """

    seq: int
    inst: Instruction
    fetch_cycle: int
    stage: Stage = Stage.FETCHED
    # Pre-decoded static facts (a repro.uarch.decoded.DecodedInst); None for
    # unit-test DynInsts built outside a core's fetch stage.
    dec: object = None

    # Materialized from ``inst`` in __post_init__ (hot-path shorthand).
    opcode: Opcode = field(init=False)
    pc: int = field(init=False)

    # Prediction state (control-flow instructions)
    predicted_taken: bool = False
    predicted_target: int | None = None
    predictor_context: object = None
    checkpoint: Checkpoint | None = None
    actual_taken: bool | None = None
    actual_target: int | None = None
    mispredicted: bool = False

    # Renamed operands: producer DynInsts (None = value from the ARF)
    src1_producer: Optional["DynInst"] = None
    src2_producer: Optional["DynInst"] = None
    src1_value: int = 0          # ARF value captured at rename when no producer
    src2_value: int = 0
    src1_arf_tainted: bool = False
    src2_arf_tainted: bool = False

    # Control lineage assigned by the front-end reconvergence tracker.
    control_deps: frozenset[int] = EMPTY

    # Finalized output lineage (valid once stage >= COMPLETED).
    out_deps: frozenset[int] = EMPTY
    out_roots: frozenset[int] = EMPTY
    out_tainted: bool = False

    # Execution results
    result: int = 0
    mem_address: int | None = None
    store_data: int = 0
    forwarded_from: Optional["DynInst"] = None

    # Timing
    dispatch_cycle: int = -1
    issue_cycle: int = -1
    complete_cycle: int = -1
    commit_cycle: int = -1
    first_gated_cycle: int = -1
    gated_cycles: int = 0

    # Scheduler bookkeeping
    waiting_on: int = 0
    # Which producer consumer-lists this record joined at rename (bit 0 =
    # src1, bit 1 = src2).  Unlike ``waiting_on`` this never decrements:
    # list membership outlives wakeup, and the squash path needs to know
    # exactly which lists to unlink from before recycling the record.
    enlisted: int = 0
    consumers: list = field(default_factory=list)
    squashed: bool = False
    propagated: bool = False  # value visible to dependents (NDA defers this)
    # Fetched via a superblock fast path.  Diagnostic only (feeds the
    # profile hit-rate metric, which must live off CoreStats: the fast and
    # slow front ends are bit-identical, this flag is what differs).
    sb_fast: bool = False

    def __post_init__(self) -> None:
        self.opcode = self.inst.opcode
        self.pc = self.inst.pc

    @classmethod
    def fresh(cls, seq: int, dec, fetch_cycle: int) -> "DynInst":
        """Allocate a record the way :meth:`reset` initializes one.

        Construction-path twin of the free-list fast path: skips the
        dataclass ``__init__``/``__post_init__`` machinery (keyword
        plumbing plus per-field default processing) and funnels through
        the same ``reset`` that pool recycling uses, so both allocation
        paths are definitionally identical.
        """
        dyn = object.__new__(cls)
        dyn.consumers = []
        # reset() deliberately leaves the prediction slots untouched (see
        # its docstring); seed them once here so every slot exists — a
        # dataclass __repr__ of a never-executed record must not raise.
        dyn.predicted_taken = False
        dyn.predicted_target = None
        dyn.predictor_context = None
        dyn.actual_taken = None
        dyn.actual_target = None
        dyn.mispredicted = False
        dyn.reset(seq, dec, fetch_cycle)
        return dyn

    def reset(self, seq: int, dec, fetch_cycle: int) -> None:
        """Reinitialize a recycled record (free-list pool fast path).

        Must restore every field a reader could observe before a writer
        runs.  The pool only recycles committed instructions whose window
        has fully drained, so no live reference observes the old state —
        but the new incarnation must not inherit any of it either.

        Deliberate exception: the six prediction fields (``predicted_*``,
        ``predictor_context``, ``actual_*``, ``mispredicted``) stay stale.
        Every read of them is dominated by a write in the same incarnation:
        fetch writes the predicted fields for branches (always) and jalrs
        (target, with an explicit ``None`` on the BTB/RAS-miss stall path),
        execute writes the actual fields and ``mispredicted`` for both, and
        no non-control path reads any of them — the jalr resolve path only
        consults ``mispredicted`` when ``predicted_target`` is not None,
        which execute then guarantees was freshly written.  ``checkpoint``
        is NOT part of the exception: dispatch probes it on every record.
        """
        inst = dec.inst
        self.seq = seq
        self.inst = inst
        self.fetch_cycle = fetch_cycle
        self.stage = Stage.FETCHED
        self.dec = dec
        self.opcode = dec.opcode
        self.pc = dec.pc
        self.checkpoint = None
        self.src1_producer = None
        self.src2_producer = None
        self.src1_value = 0
        self.src2_value = 0
        self.src1_arf_tainted = False
        self.src2_arf_tainted = False
        self.control_deps = EMPTY
        self.out_deps = EMPTY
        self.out_roots = EMPTY
        self.out_tainted = False
        self.result = 0
        self.mem_address = None
        self.store_data = 0
        self.forwarded_from = None
        self.dispatch_cycle = -1
        self.issue_cycle = -1
        self.complete_cycle = -1
        self.commit_cycle = -1
        self.first_gated_cycle = -1
        self.gated_cycles = 0
        self.waiting_on = 0
        self.enlisted = 0
        self.consumers.clear()
        self.squashed = False
        self.propagated = False
        self.sb_fast = False

    def reset_light(self, seq: int, dec, fetch_cycle: int) -> None:
        """Reinitialize a record recycled straight from the fetch queue.

        A squashed FETCHED record was never renamed, issued, or executed:
        the only fields a fetch stage can touch are the identity fields,
        ``control_deps``/``sb_fast``, ``checkpoint``, and — for control
        instructions — the prediction fields (left stale under the same
        write-before-read contract :meth:`reset` documents).  Everything
        else still holds its construction default, so restoring just these
        is equivalent to :meth:`reset` (the fetch-queue squash path is the
        single producer of records eligible for this, see
        ``OooCore._squash_after``).
        """
        self.seq = seq
        self.inst = dec.inst
        self.fetch_cycle = fetch_cycle
        self.stage = Stage.FETCHED
        self.dec = dec
        self.opcode = dec.opcode
        self.pc = dec.pc
        self.checkpoint = None
        self.control_deps = EMPTY
        self.squashed = False
        self.sb_fast = False

    # ------------------------------------------------------------- operands
    def value_of_src1(self) -> int:
        if self.src1_producer is not None:
            return self.src1_producer.result
        return self.src1_value

    def value_of_src2(self) -> int:
        if self.src2_producer is not None:
            return self.src2_producer.result
        return self.src2_value

    # ----------------------------------------------------- lineage queries
    def _producer_sets(
        self, producer: Optional["DynInst"], arf_tainted: bool
    ) -> tuple[frozenset[int], frozenset[int], bool]:
        if producer is not None:
            return producer.out_deps, producer.out_roots, producer.out_tainted
        return EMPTY, EMPTY, arf_tainted

    def addr_deps(self) -> frozenset[int]:
        """True branch dependencies of the *address* of this memory op."""
        deps, _, _ = self._producer_sets(self.src1_producer, self.src1_arf_tainted)
        if deps:
            return self.control_deps | deps
        return self.control_deps

    def addr_roots(self) -> frozenset[int]:
        """STT taint roots in the address lineage."""
        _, roots, _ = self._producer_sets(self.src1_producer, self.src1_arf_tainted)
        return roots

    def addr_tainted(self) -> bool:
        """Is the address derived from any loaded data (structural taint)?"""
        _, _, tainted = self._producer_sets(self.src1_producer, self.src1_arf_tainted)
        return tainted

    def operand_roots(self) -> frozenset[int]:
        """STT taint roots across both operands (branch-gate query)."""
        _, r1, _ = self._producer_sets(self.src1_producer, self.src1_arf_tainted)
        _, r2, _ = self._producer_sets(self.src2_producer, self.src2_arf_tainted)
        return r1 | r2

    def operand_tainted(self) -> bool:
        """Does either operand descend from loaded data?"""
        _, _, t1 = self._producer_sets(self.src1_producer, self.src1_arf_tainted)
        _, _, t2 = self._producer_sets(self.src2_producer, self.src2_arf_tainted)
        return t1 or t2

    def input_deps(self) -> frozenset[int]:
        """Control deps + both operands' dependency lineages."""
        deps = set(self.control_deps)
        d1, _, _ = self._producer_sets(self.src1_producer, self.src1_arf_tainted)
        d2, _, _ = self._producer_sets(self.src2_producer, self.src2_arf_tainted)
        deps.update(d1)
        deps.update(d2)
        return frozenset(deps)

    def finalize_lineage(
        self,
        unresolved: "set[int] | frozenset[int] | None" = None,
        inflight_loads: "dict | None" = None,
        track_roots: bool = True,
    ) -> None:
        """Compute the output lineage at completion time.

        Loads produce memory data: structurally tainted, rooted at the load
        itself, and — when forwarded — additionally carrying the forwarding
        store's data lineage.

        When the core passes its ``unresolved`` branch set and
        ``inflight_loads`` map, already-resolved branch seqs and
        already-visible load roots are pruned: a resolved seq can never
        become unresolved again (seqs are unique), so pruning cannot change
        any future gate decision — but it keeps lineage sets bounded by the
        in-flight window instead of growing along dependence chains.

        ``track_roots=False`` (policies with ``uses_taint_roots`` unset)
        skips seeding ``out_roots`` at loads; with every producer's root
        set empty, root sets then stay empty along the whole chain, so
        per-completion set construction disappears for policies that never
        read them.
        """
        op = self.opcode
        p1 = self.src1_producer
        p2 = self.src2_producer
        if p1 is not None:
            d1, r1, t1 = p1.out_deps, p1.out_roots, p1.out_tainted
        else:
            d1, r1, t1 = EMPTY, EMPTY, self.src1_arf_tainted
        if p2 is not None:
            d2, r2, t2 = p2.out_deps, p2.out_roots, p2.out_tainted
        else:
            d2, r2, t2 = EMPTY, EMPTY, self.src2_arf_tainted
        deps = self.control_deps
        if d1 or d2:
            deps = deps | d1 | d2
        roots = r1 | r2 if (r1 or r2) else EMPTY
        tainted = t1 or t2

        if op.is_load and op is not Opcode.CFLUSH:
            tainted = True
            if track_roots:
                roots = roots | frozenset((self.seq,))
            if self.forwarded_from is not None:
                store = self.forwarded_from
                deps = deps | store.out_deps
                if store.out_roots:
                    roots = roots | store.out_roots
        if unresolved is not None and deps:
            deps = frozenset(deps & unresolved)
        if inflight_loads is not None and roots:
            roots = frozenset(r for r in roots if r in inflight_loads)
        self.out_deps = deps
        self.out_roots = roots
        self.out_tainted = tainted

    # ------------------------------------------------------------ shorthand
    @property
    def is_speculation_source(self) -> bool:
        """Does this instruction open a speculative window when predicted?"""
        return self.inst.is_branch or self.opcode is Opcode.JALR

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DynInst(seq={self.seq}, {self.inst.text()}, {self.stage.value})"
