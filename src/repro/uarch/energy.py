"""Event-based energy model (McPAT-flavoured, heavily simplified).

Energy is accumulated from the event counters the core and memory system
already collect — no extra simulation cost.  Per-event energies are in
arbitrary "units" (roughly pJ-shaped ratios: a DRAM access is ~3 orders of
magnitude above an ALU op); the *relative* energy of two policies on the
same workload is the meaningful output, matching how secure-speculation
papers report energy overhead.

The security machinery itself is charged too: every policy gate evaluation
costs a (small) CAM-style check, and Levioso's dependency-matrix update is
charged per dispatched instruction — so the model can answer "does the
defense pay for itself in EDP".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..mem.hierarchy import MemoryHierarchy
from .stats import CoreStats


@dataclass(frozen=True)
class EnergyParams:
    """Per-event energies (arbitrary units) and static power."""

    fetch_per_inst: float = 1.0
    rename_per_inst: float = 1.2
    rob_per_inst: float = 0.8
    issue_wakeup: float = 1.5
    regfile_per_inst: float = 1.0
    alu_op: float = 1.0
    mul_op: float = 3.0
    div_op: float = 8.0
    agu_op: float = 0.8
    predictor_access: float = 0.6
    l1_access: float = 5.0
    l2_access: float = 15.0
    llc_access: float = 40.0
    dram_access: float = 1000.0
    squash_per_inst: float = 1.0       # recovery bookkeeping
    gate_check: float = 0.1            # policy CAM lookup
    dep_matrix_update: float = 0.15    # Levioso per-dispatch metadata write
    static_per_cycle: float = 4.0      # leakage for the whole core


@dataclass
class EnergyBreakdown:
    """Energy by component for one run."""

    frontend: float = 0.0
    window: float = 0.0      # rename/ROB/IQ/regfile
    execute: float = 0.0
    memory: float = 0.0
    speculation_waste: float = 0.0  # energy spent on squashed instructions
    security: float = 0.0           # gate checks + dependency tracking
    static: float = 0.0

    @property
    def dynamic(self) -> float:
        return (
            self.frontend + self.window + self.execute + self.memory
            + self.speculation_waste + self.security
        )

    @property
    def total(self) -> float:
        return self.dynamic + self.static

    def as_dict(self) -> dict[str, float]:
        return {
            "frontend": self.frontend,
            "window": self.window,
            "execute": self.execute,
            "memory": self.memory,
            "speculation_waste": self.speculation_waste,
            "security": self.security,
            "static": self.static,
            "dynamic": self.dynamic,
            "total": self.total,
        }


def estimate_energy(
    stats: CoreStats,
    hierarchy: MemoryHierarchy | dict,
    gate_checks: int = 0,
    tracks_dependencies: bool = False,
    params: EnergyParams | None = None,
) -> EnergyBreakdown:
    """Estimate the energy of one finished run from its counters.

    ``hierarchy`` may be a live :class:`MemoryHierarchy` or the dict its
    ``stats()`` returns (what cached run records carry).
    """
    p = params or EnergyParams()
    breakdown = EnergyBreakdown()

    fetched = stats.fetched
    committed = stats.committed
    squashed = stats.squashed_insts

    breakdown.frontend = fetched * (p.fetch_per_inst + p.predictor_access)
    # Window structures touched by everything that dispatched.
    dispatched = committed + squashed
    breakdown.window = dispatched * (
        p.rename_per_inst + p.rob_per_inst + p.issue_wakeup + p.regfile_per_inst
    )
    # Execution mix: approximate with committed counts (squashed covered by
    # speculation_waste at ALU cost).
    loads = stats.committed_loads
    stores = stats.committed_stores
    alu_like = max(committed - loads - stores, 0)
    breakdown.execute = (
        alu_like * p.alu_op + (loads + stores) * p.agu_op
    )
    breakdown.speculation_waste = squashed * (p.alu_op + p.squash_per_inst)

    mem = hierarchy if isinstance(hierarchy, dict) else hierarchy.stats()
    breakdown.memory = (
        (mem["l1i"]["hits"] + mem["l1i"]["misses"]) * p.l1_access
        + (mem["l1d"]["hits"] + mem["l1d"]["misses"]) * p.l1_access
        + (mem["l2"]["hits"] + mem["l2"]["misses"]) * p.l2_access
        + (mem["llc"]["hits"] + mem["llc"]["misses"]) * p.llc_access
        + mem["dram"]["requests"] * p.dram_access
    )

    breakdown.security = gate_checks * p.gate_check
    if tracks_dependencies:
        breakdown.security += dispatched * p.dep_matrix_update

    breakdown.static = stats.cycles * p.static_per_cycle
    return breakdown


def energy_delay_product(breakdown: EnergyBreakdown, cycles: int) -> float:
    """EDP in (energy units x cycles)."""
    return breakdown.total * cycles
