"""Pre-decoded program images: per-instruction decode done once per program.

The out-of-order front end used to re-derive, for every fetched
:class:`~repro.uarch.dyninst.DynInst`, facts that are static per program:
the control-flow kind of the instruction (plain / branch / jal / jalr /
halt), its reconvergence PC from the compiler pass, and the functional-unit
port and latency it will occupy at issue.  A :class:`DecodedProgram` bakes
all of that into one flat ``pc -> DecodedInst`` table built once.

Images are **content-addressed** (sha-256 over the instruction stream plus
the latency-relevant config fields — the same fingerprint discipline as the
persistent run cache in :mod:`repro.harness.cache`) and memoized per
process, so a grid of many (policy, config) points over the same workload —
serial or inside a pool worker — decodes each program exactly once.
Decoding never depends on the policy or on ``use_compiler_info``: the core
masks reconvergence PCs itself when modeling metadata-free binaries, which
keeps one image shareable across both arms of the compiler ablation.
"""

from __future__ import annotations

import hashlib
import os
from collections import OrderedDict
from typing import TYPE_CHECKING

from ..compiler.pass_manager import ensure_analysis
from ..isa import Opcode

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..asm.program import Program
    from .config import CoreConfig

# Control-flow kinds, dispatched on by the fetch stage (int compares beat
# enum identity chains on the hot path).
K_SEQ = 0
K_BRANCH = 1
K_JAL = 2
K_JALR = 3
K_HALT = 4


class DecodedInst:
    """Static per-instruction facts, materialized once per program."""

    __slots__ = (
        "inst", "opcode", "pc", "kind", "fallthrough",
        "port", "latency", "reconv_pc", "is_return",
        # Specialized per-PC ops, attached lazily by repro.uarch.specialize:
        # execute (xop), effective address (aop), load extension (ext).
        "xop", "aop", "ext",
    )

    def __init__(self, inst, kind: int, port: str, latency: int,
                 reconv_pc: int | None):
        self.inst = inst
        self.opcode = inst.opcode
        self.pc = inst.pc
        self.kind = kind
        self.fallthrough = inst.fallthrough
        self.port = port
        self.latency = latency
        self.reconv_pc = reconv_pc
        self.is_return = (
            kind == K_JALR and inst.rs1 == 1 and inst.rd == 0
        )
        self.xop = None
        self.aop = None
        self.ext = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DecodedInst({self.inst.text()}, kind={self.kind})"


class DecodedProgram:
    """The complete pre-decoded image of one program."""

    __slots__ = ("by_pc", "entry", "fingerprint", "spec_token")

    def __init__(self, by_pc: dict[int, DecodedInst], entry: int,
                 fingerprint: str):
        self.by_pc = by_pc
        self.entry = entry
        self.fingerprint = fingerprint
        # Set (to the fingerprint) once specialized ops are attached, so
        # sibling plans for other policies skip recompilation.
        self.spec_token = None

    def __len__(self) -> int:
        return len(self.by_pc)


def program_fingerprint(program: "Program") -> str:
    """Content hash of the instruction stream (memoized on the program).

    Covers everything decode reads from the program text: opcode + operands
    + layout of every instruction, the text base and the entry point.  The
    (possibly attached) analysis is deliberately *not* part of this hash —
    it is mixed into the image-cache key separately, because it can be
    replaced on a program after the fingerprint was memoized.
    """
    fp = getattr(program, "_content_fp", None)
    if fp is not None:
        return fp
    h = hashlib.sha256()
    h.update(f"{program.text_base}:{program.entry}|".encode())
    for inst in program.instructions:
        h.update(
            f"{inst.opcode.code}:{inst.rd}:{inst.rs1}:{inst.rs2}:"
            f"{inst.imm}:{inst.pc};".encode()
        )
    fp = h.hexdigest()
    program._content_fp = fp
    return fp


def _analysis_digest(program: "Program") -> str:
    """Digest of a pre-attached analysis' reconvergence map (else '')."""
    if program.analysis is None:
        return ""
    h = hashlib.sha256()
    for pc, reconv in sorted(program.analysis.reconv_pc.items()):
        h.update(f"{pc}:{reconv};".encode())
    return h.hexdigest()


def _fu_of(opcode: Opcode, config: "CoreConfig") -> tuple[str, int]:
    """Functional-unit port and latency for one opcode (issue-stage view)."""
    if opcode in (Opcode.MUL, Opcode.MULH):
        return "mul", config.mul_latency
    if opcode in (Opcode.DIV, Opcode.REM):
        return "div", config.div_latency
    if opcode.is_branch or opcode is Opcode.JALR:
        return "alu", config.branch_latency
    return "alu", config.alu_latency


def decode_program(program: "Program", config: "CoreConfig") -> DecodedProgram:
    """Build a fresh image (no cache); prefer :func:`decoded_image`."""
    analysis = ensure_analysis(program)
    reconv_of = analysis.reconv_pc
    by_pc: dict[int, DecodedInst] = {}
    for inst in program.instructions:
        opcode = inst.opcode
        if opcode.is_branch:
            kind = K_BRANCH
        elif opcode is Opcode.JAL:
            kind = K_JAL
        elif opcode is Opcode.JALR:
            kind = K_JALR
        elif opcode is Opcode.HALT:
            kind = K_HALT
        else:
            kind = K_SEQ
        port, latency = _fu_of(opcode, config)
        by_pc[inst.pc] = DecodedInst(
            inst, kind, port, latency, reconv_of.get(inst.pc)
        )
    return DecodedProgram(by_pc, program.entry, program_fingerprint(program))


#: Process-level image cache: (program fingerprint, latency profile) -> image.
_IMAGE_CACHE: "OrderedDict[tuple, DecodedProgram]" = OrderedDict()
_IMAGE_CACHE_MAX = 64


def decoded_image(program: "Program", config: "CoreConfig") -> DecodedProgram:
    """The shared pre-decoded image for ``program`` under ``config``.

    Keyed by content, not identity: rebuilding the same workload for
    another grid point (or for each policy of a sweep) hits the cache.
    ``REPRO_DECODE_CACHE=0`` disables sharing (always decodes fresh).
    """
    if os.environ.get("REPRO_DECODE_CACHE") == "0":
        return decode_program(program, config)
    key = (
        program_fingerprint(program),
        _analysis_digest(program),
        config.alu_latency, config.branch_latency,
        config.mul_latency, config.div_latency,
    )
    image = _IMAGE_CACHE.get(key)
    if image is None:
        image = decode_program(program, config)
        _IMAGE_CACHE[key] = image
        if len(_IMAGE_CACHE) > _IMAGE_CACHE_MAX:
            _IMAGE_CACHE.popitem(last=False)
    else:
        _IMAGE_CACHE.move_to_end(key)
    return image


def image_cache_info() -> dict[str, int]:
    """Diagnostics for the profiling harness."""
    return {"entries": len(_IMAGE_CACHE), "max_entries": _IMAGE_CACHE_MAX}
