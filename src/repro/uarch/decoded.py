"""Pre-decoded program images: per-instruction decode done once per program.

The out-of-order front end used to re-derive, for every fetched
:class:`~repro.uarch.dyninst.DynInst`, facts that are static per program:
the control-flow kind of the instruction (plain / branch / jal / jalr /
halt), its reconvergence PC from the compiler pass, and the functional-unit
port and latency it will occupy at issue.  A :class:`DecodedProgram` bakes
all of that into one flat ``pc -> DecodedInst`` table built once.

Images are **content-addressed** (sha-256 over the instruction stream plus
the latency-relevant config fields — the same fingerprint discipline as the
persistent run cache in :mod:`repro.harness.cache`) and memoized per
process, so a grid of many (policy, config) points over the same workload —
serial or inside a pool worker — decodes each program exactly once.
Decoding never depends on the policy or on ``use_compiler_info``: the core
masks reconvergence PCs itself when modeling metadata-free binaries, which
keeps one image shareable across both arms of the compiler ablation.
"""

from __future__ import annotations

import hashlib
import os
from collections import OrderedDict
from typing import TYPE_CHECKING

from ..compiler.pass_manager import ensure_analysis
from ..isa import Opcode

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..asm.program import Program
    from .config import CoreConfig

# Control-flow kinds, dispatched on by the fetch stage (int compares beat
# enum identity chains on the hot path).
K_SEQ = 0
K_BRANCH = 1
K_JAL = 2
K_JALR = 3
K_HALT = 4

# Scheduling classes consulted by the issue stage (``sched``): plain ALU-class
# work / serialized (rdcycle, fence) / memory / policy-gated control.
S_PLAIN = 0
S_SERIALIZE = 1
S_MEM = 2
S_CTRL = 3

# Commit classes (``cc``): what the retirement stage must do beyond the
# common register writeback.
C_PLAIN = 0
C_STORE = 1
C_LOAD = 2
C_CFLUSH = 3
C_BRANCH = 4
C_FENCE = 5
C_HALT = 6

_PORT_INDEX = {"alu": 0, "mul": 1, "div": 2}

#: Superblock runs shorter than this stay on the per-PC path: for a
#: one-instruction "run" the generated-call overhead exceeds the saved
#: per-instruction decode dispatch.
_SB_MIN_RUN = 2


class DecodedInst:
    """Static per-instruction facts, materialized once per program."""

    __slots__ = (
        "inst", "opcode", "pc", "kind", "fallthrough",
        "port", "latency", "reconv_pc", "is_return",
        # Pre-resolved scheduler facts: one attribute read on the hot path
        # instead of an Opcode attribute chain / string compare.
        "sched", "port_i", "cc", "dest", "asize", "is_ctrl", "true_load",
        "rs1n", "rs2n",
        # Superblock membership: the run this PC belongs to (None when it
        # is a terminator or the run was below _SB_MIN_RUN) and the
        # position inside it (mid-run entry from a predicted indirect
        # target starts the generated function at this offset).
        "sb", "sb_pos",
        # Specialized per-PC ops, attached lazily by repro.uarch.specialize:
        # execute (xop), effective address (aop), load extension (ext).
        "xop", "aop", "ext",
    )

    def __init__(self, inst, kind: int, port: str, latency: int,
                 reconv_pc: int | None):
        self.inst = inst
        opcode = inst.opcode
        self.opcode = opcode
        self.pc = inst.pc
        self.kind = kind
        self.fallthrough = inst.fallthrough
        self.port = port
        self.latency = latency
        self.reconv_pc = reconv_pc
        self.is_return = (
            kind == K_JALR and inst.rs1 == 1 and inst.rd == 0
        )
        is_branch = opcode.is_branch
        is_jalr = opcode is Opcode.JALR
        if opcode in (Opcode.RDCYCLE, Opcode.FENCE):
            self.sched = S_SERIALIZE
        elif opcode.is_mem:
            self.sched = S_MEM
        elif is_branch or is_jalr:
            self.sched = S_CTRL
        else:
            self.sched = S_PLAIN
        self.port_i = _PORT_INDEX[port]
        if opcode is Opcode.HALT:
            self.cc = C_HALT
        elif opcode.is_store:
            self.cc = C_STORE
        elif opcode is Opcode.CFLUSH:
            self.cc = C_CFLUSH
        elif opcode.is_load:
            self.cc = C_LOAD
        elif is_branch:
            self.cc = C_BRANCH
        elif opcode is Opcode.FENCE:
            self.cc = C_FENCE
        else:
            self.cc = C_PLAIN
        self.dest = inst._dest
        # Renamable operand register numbers (-1 = no renamed read): lets
        # the dispatch stage rename without opcode attribute chains.
        self.rs1n = inst.rs1 if (opcode.reads_rs1 and inst.rs1 != 0) else -1
        self.rs2n = inst.rs2 if (opcode.reads_rs2 and inst.rs2 != 0) else -1
        self.asize = opcode.access_size if opcode.is_mem else 0
        self.is_ctrl = is_branch or is_jalr
        self.true_load = opcode.is_load and opcode is not Opcode.CFLUSH
        self.sb = None
        self.sb_pos = 0
        self.xop = None
        self.aop = None
        self.ext = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DecodedInst({self.inst.text()}, kind={self.kind})"


class Superblock:
    """One maximal single-entry straight-line run of plain instructions.

    A run contains only ``K_SEQ`` non-FENCE instructions; the terminator
    (branch / jal / jalr / halt / fence) and any PC that is a potential
    control-flow *entry* — a branch target, a branch/jump fallthrough, the
    program entry, or any reconvergence PC — start a new run.  Because every
    reconvergence PC is a boundary, no interior PC can close a tracker
    region, so the control-dependency set is constant across a fetched run
    and the generated fetch op computes it once per packet.  Mid-run entry
    (a predicted indirect target landing inside) is legal: the generated
    ops take a start position.
    """

    __slots__ = (
        "index", "pcs", "decs", "n", "next_pc", "meta", "has_mem",
        "fop", "dop",
    )

    def __init__(self, index: int, decs: list) -> None:
        self.index = index
        self.decs = tuple(decs)
        self.pcs = tuple(d.pc for d in decs)
        self.n = len(decs)
        self.next_pc = decs[-1].fallthrough
        meta = []
        has_mem = False
        for d in decs:
            inst = d.inst
            op = d.opcode
            rs1 = inst.rs1 if (op.reads_rs1 and inst.rs1 != 0) else -1
            rs2 = inst.rs2 if (op.reads_rs2 and inst.rs2 != 0) else -1
            dest = inst._dest if inst._dest is not None else -1
            cls = 1 if op.is_load else (2 if op.is_store else 0)
            if cls:
                has_mem = True
            meta.append((rs1, rs2, dest, cls))
        self.meta = tuple(meta)
        self.has_mem = has_mem
        # Generated fetch / dispatch+rename ops, attached together with the
        # per-PC ops by repro.uarch.specialize.
        self.fop = None
        self.dop = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Superblock({self.index}, pcs={self.pcs[0]:#x}..{self.pcs[-1]:#x},"
            f" n={self.n})"
        )


def _partition_superblocks(program: "Program", by_pc: dict) -> tuple:
    """Split the text segment into superblock runs (see :class:`Superblock`)."""
    boundaries = {program.entry}
    for inst in program.instructions:
        opcode = inst.opcode
        if opcode.is_branch:
            boundaries.add(inst.branch_target)
            boundaries.add(inst.fallthrough)
        elif opcode is Opcode.JAL:
            boundaries.add(inst.imm)
            boundaries.add(inst.fallthrough)
        elif opcode is Opcode.JALR:
            boundaries.add(inst.fallthrough)
    for dec in by_pc.values():
        if dec.reconv_pc is not None:
            boundaries.add(dec.reconv_pc)

    superblocks: list[Superblock] = []
    run: list[DecodedInst] = []

    def flush() -> None:
        if len(run) >= _SB_MIN_RUN:
            sb = Superblock(len(superblocks), run)
            superblocks.append(sb)
            for i, d in enumerate(run):
                d.sb = sb
                d.sb_pos = i
        run.clear()

    for inst in program.instructions:
        dec = by_pc[inst.pc]
        if inst.pc in boundaries or (run and run[-1].fallthrough != inst.pc):
            flush()
        if dec.kind == K_SEQ and dec.opcode is not Opcode.FENCE:
            run.append(dec)
        else:
            flush()
    flush()
    return tuple(superblocks)


class DecodedProgram:
    """The complete pre-decoded image of one program."""

    __slots__ = ("by_pc", "entry", "fingerprint", "superblocks", "spec_token")

    def __init__(self, by_pc: dict[int, DecodedInst], entry: int,
                 fingerprint: str, superblocks: tuple = ()):
        self.by_pc = by_pc
        self.entry = entry
        self.fingerprint = fingerprint
        self.superblocks = superblocks
        # Set (to the fingerprint) once specialized ops are attached, so
        # sibling plans for other policies skip recompilation.
        self.spec_token = None

    def __len__(self) -> int:
        return len(self.by_pc)


def program_fingerprint(program: "Program") -> str:
    """Content hash of the instruction stream (memoized on the program).

    Covers everything decode reads from the program text: opcode + operands
    + layout of every instruction, the text base and the entry point.  The
    (possibly attached) analysis is deliberately *not* part of this hash —
    it is mixed into the image-cache key separately, because it can be
    replaced on a program after the fingerprint was memoized.
    """
    fp = getattr(program, "_content_fp", None)
    if fp is not None:
        return fp
    h = hashlib.sha256()
    h.update(f"{program.text_base}:{program.entry}|".encode())
    for inst in program.instructions:
        h.update(
            f"{inst.opcode.code}:{inst.rd}:{inst.rs1}:{inst.rs2}:"
            f"{inst.imm}:{inst.pc};".encode()
        )
    fp = h.hexdigest()
    program._content_fp = fp
    return fp


def _analysis_digest(program: "Program") -> str:
    """Digest of a pre-attached analysis' reconvergence map (else '')."""
    if program.analysis is None:
        return ""
    h = hashlib.sha256()
    for pc, reconv in sorted(program.analysis.reconv_pc.items()):
        h.update(f"{pc}:{reconv};".encode())
    return h.hexdigest()


def _fu_of(opcode: Opcode, config: "CoreConfig") -> tuple[str, int]:
    """Functional-unit port and latency for one opcode (issue-stage view)."""
    if opcode in (Opcode.MUL, Opcode.MULH):
        return "mul", config.mul_latency
    if opcode in (Opcode.DIV, Opcode.REM):
        return "div", config.div_latency
    if opcode.is_branch or opcode is Opcode.JALR:
        return "alu", config.branch_latency
    return "alu", config.alu_latency


def decode_program(program: "Program", config: "CoreConfig") -> DecodedProgram:
    """Build a fresh image (no cache); prefer :func:`decoded_image`."""
    analysis = ensure_analysis(program)
    reconv_of = analysis.reconv_pc
    by_pc: dict[int, DecodedInst] = {}
    for inst in program.instructions:
        opcode = inst.opcode
        if opcode.is_branch:
            kind = K_BRANCH
        elif opcode is Opcode.JAL:
            kind = K_JAL
        elif opcode is Opcode.JALR:
            kind = K_JALR
        elif opcode is Opcode.HALT:
            kind = K_HALT
        else:
            kind = K_SEQ
        port, latency = _fu_of(opcode, config)
        by_pc[inst.pc] = DecodedInst(
            inst, kind, port, latency, reconv_of.get(inst.pc)
        )
    superblocks = _partition_superblocks(program, by_pc)
    return DecodedProgram(
        by_pc, program.entry, program_fingerprint(program), superblocks
    )


#: Process-level image cache: (program fingerprint, latency profile) -> image.
_IMAGE_CACHE: "OrderedDict[tuple, DecodedProgram]" = OrderedDict()
_IMAGE_CACHE_MAX = 64


def decoded_image(program: "Program", config: "CoreConfig") -> DecodedProgram:
    """The shared pre-decoded image for ``program`` under ``config``.

    Keyed by content, not identity: rebuilding the same workload for
    another grid point (or for each policy of a sweep) hits the cache.
    ``REPRO_DECODE_CACHE=0`` disables sharing (always decodes fresh).
    """
    if os.environ.get("REPRO_DECODE_CACHE") == "0":
        return decode_program(program, config)
    key = (
        program_fingerprint(program),
        _analysis_digest(program),
        config.alu_latency, config.branch_latency,
        config.mul_latency, config.div_latency,
    )
    image = _IMAGE_CACHE.get(key)
    if image is None:
        image = decode_program(program, config)
        _IMAGE_CACHE[key] = image
        if len(_IMAGE_CACHE) > _IMAGE_CACHE_MAX:
            _IMAGE_CACHE.popitem(last=False)
    else:
        _IMAGE_CACHE.move_to_end(key)
    return image


def image_cache_info() -> dict[str, int]:
    """Diagnostics for the profiling harness."""
    return {"entries": len(_IMAGE_CACHE), "max_entries": _IMAGE_CACHE_MAX}
