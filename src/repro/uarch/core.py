"""The out-of-order superscalar core.

A cycle-level model with the structural mechanisms that secure-speculation
overheads come from: a ROB-bounded window, wakeup/select issue, a load/store
queue with forwarding and conservative memory disambiguation, branch
prediction with full squash recovery, a three-level cache hierarchy — and a
pluggable :class:`~repro.secure.policy.SpeculationPolicy` consulted before
any transmitter (load/cflush) is allowed to access the memory system.

Speculation is *real*: wrong-path instructions execute, touch the caches,
and are squashed — which is exactly what the Spectre attack evaluation
observes and the defenses must prevent from transmitting.

Stage order within a cycle: completions (incl. branch resolution/squash) ->
commit -> issue -> dispatch -> fetch.  A producer completing at cycle C can
wake a consumer that issues at C (1-cycle back-to-back bypass).
"""

from __future__ import annotations

import heapq
import os
from collections import deque
from dataclasses import dataclass, field

from ..asm.program import STACK_TOP, Program
from ..branch import BranchTargetBuffer, ReturnAddressStack, make_predictor
from ..errors import SimulationError, SimulationTimeout
from ..functional import semantics
from ..isa import INSTRUCTION_BYTES, NUM_REGS, Opcode, to_unsigned
from ..mem.backing import SparseMemory
from ..mem.hierarchy import MemoryHierarchy
from ..secure.baselines import NoProtection
from ..secure.policy import SpeculationPolicy
from .config import CoreConfig
from .decoded import (
    C_BRANCH,
    C_CFLUSH,
    C_HALT,
    C_LOAD,
    C_STORE,
    K_BRANCH,
    K_JAL,
    K_JALR,
    K_SEQ,
    S_MEM,
    S_SERIALIZE,
    decoded_image,
)
from .specialize import (
    specialize_enabled,
    specialized_image,
    superblock_enabled,
)
from .dyninst import EMPTY, Checkpoint, DynInst, Stage
from .horizon import WATCHDOG_CYCLES as _WATCHDOG_CYCLES
from .horizon import WarpStats, warp_to_horizon
from .stats import CoreStats
from .trace import ObservationTrace

#: Upper bound on the DynInst free list: enough to cover the ROB + fetch
#: queue + retire FIFO of any realistic configuration without letting a
#: pathological one hoard memory.
_DYN_POOL_MAX = 1024

EMPTY_DEPS: frozenset[int] = frozenset()


@dataclass
class SimResult:
    """Outcome of one out-of-order run."""

    stats: CoreStats
    regs: tuple[int, ...]
    memory: SparseMemory
    policy_name: str
    committed_pcs: list[int] = field(default_factory=list)
    hierarchy: MemoryHierarchy | None = None
    observations: ObservationTrace | None = None

    @property
    def cycles(self) -> int:
        return self.stats.cycles

    @property
    def ipc(self) -> float:
        return self.stats.ipc

    def stats_dict(self) -> dict:
        """Machine-readable run summary (core + memory counters)."""
        out = {"policy": self.policy_name}
        out.update(self.stats.as_dict())
        if self.hierarchy is not None:
            out["memory"] = self.hierarchy.stats()
        return out


class OooCore:
    """One out-of-order core executing one program under one policy."""

    def __init__(
        self,
        program: Program,
        config: CoreConfig | None = None,
        policy: SpeculationPolicy | None = None,
        record_trace: bool = False,
        record_pipeline: bool = False,
        record_observations: bool = False,
        use_compiler_info: bool = True,
        cycle_skip: bool | None = None,
        recycle_dyninsts: bool | None = None,
        specialize: bool | None = None,
        superblock: bool | None = None,
    ):
        self.program = program
        self.config = config or CoreConfig()
        self.policy = policy or NoProtection()
        self.record_trace = record_trace
        self.record_pipeline = record_pipeline
        # Observation-trace capture for the differential leakage oracle:
        # bit-invisible (append-only side channel out of the simulation),
        # so observed and unobserved runs take identical simulated cycles.
        self.observations = ObservationTrace() if record_observations else None
        self.retired: list[DynInst] = []

        # Pre-decoded program image: per-instruction decode (control-flow
        # kind, FU port/latency, reconvergence PC from the compiler pass —
        # Levioso's software half) happens once per program, content-
        # addressed and shared across cores and grid points, instead of
        # per fetched DynInst.  `use_compiler_info=False` models shipping
        # no metadata; it is masked at fetch rather than baked into the
        # image so both arms of the compiler ablation share one decode.
        self._decoded = decoded_image(program, self.config)
        self._use_compiler_info = use_compiler_info

        # Performance-mode knobs.  Both default on and both are required
        # to be *bit-invisible*: simulated results are identical with them
        # off (REPRO_NO_CYCLE_SKIP=1 / REPRO_NO_DYN_POOL=1 force the
        # reference paths, which is what the equivalence suite compares
        # against).
        if cycle_skip is None:
            cycle_skip = os.environ.get("REPRO_NO_CYCLE_SKIP") != "1"
        self._cycle_skip = cycle_skip
        if recycle_dyninsts is None:
            recycle_dyninsts = os.environ.get("REPRO_NO_DYN_POOL") != "1"
        # record_pipeline keeps every retired DynInst alive for timeline
        # inspection — exactly what recycling would overwrite.
        self._recycle = recycle_dyninsts and not record_pipeline
        # Region specialization: per-PC execute/address/extend functions,
        # exec-compiled once per (image, latency profile) and attached to
        # the shared DecodedInst records (.specialize).  Bit-invisible by
        # contract (REPRO_NO_SPECIALIZE=1 forces the interpreted path).
        if specialize is None:
            specialize = specialize_enabled()
        self._specialize = specialize
        if specialize:
            spec = specialized_image(self._decoded, self.config, self.policy)
            self._execute = self._execute_alu_spec
            # The base policy's defers_wakeup is a constant False with no
            # side effects; skip the per-load-completion virtual call
            # unless the policy actually overrides it (NDA does).
            self._defers_wakeup = (
                None if spec.skip_defer_wakeup else self.policy.defers_wakeup
            )
        else:
            self._execute = self._execute_alu
            self._defers_wakeup = self.policy.defers_wakeup
        # STT-style expiring taint roots are consulted only by policies
        # declaring uses_taint_roots; for the rest, root sets are provably
        # unread and lineage finalization skips building them.  Derived
        # from the policy alone, so both execution modes agree.
        self._track_roots = bool(self.policy.uses_taint_roots)
        # Superblock front-end fast path: one generated fetch + dispatch
        # function per straight-line run (attached alongside the per-PC ops
        # above), used only when both knobs are on.  Bit-invisible by
        # contract (REPRO_NO_SUPERBLOCK=1 forces the per-PC loops).
        if superblock is None:
            superblock = superblock_enabled()
        self._superblock = bool(
            specialize and superblock and self._decoded.superblocks
        )
        # Superblock diagnostics (deliberately off CoreStats — the fast and
        # slow front ends are bit-identical; what differs lives here).
        self._sb_fetched = 0
        self._sb_committed = 0
        # Grid-point label threaded into SimulationTimeout by lockstep
        # batches so a multi-point worker failure names the guilty point.
        self.point_label: str | None = None
        self._dyn_pool: list[DynInst] = []
        # Records recycled straight out of the squashed fetch queue: they
        # were never renamed/issued, so allocation from this pool takes the
        # cheaper ``reset_light`` path (~1/3 of the field stores).  On
        # squash-heavy workloads most fetched instructions die here, which
        # makes this the hottest allocation source.
        self._dyn_pool_light: list[DynInst] = []
        # Committed records awaiting reclamation: (barrier_seq, dyn) where
        # barrier_seq is the fetch frontier at commit time.  Once every
        # instruction fetched before the commit has drained, nothing live
        # can reference the record and it may be recycled.
        self._retire_fifo: deque[tuple[int, DynInst]] = deque()
        self.warp_stats = WarpStats()

        # Architectural state
        self.arf = [0] * NUM_REGS
        self.arf[2] = STACK_TOP  # sp
        self.arf_taint = [False] * NUM_REGS
        self.memory = SparseMemory()
        self.memory.load_image(program.data_base, program.data)

        # Front end
        self.fetch_pc = program.entry
        self.predictor = make_predictor(self.config.predictor)
        self.btb = BranchTargetBuffer(self.config.btb_entries)
        self.ras = ReturnAddressStack(self.config.ras_depth)
        self.fetch_queue: deque[DynInst] = deque()
        self.fetch_stalled_on: DynInst | None = None  # unpredicted jalr
        self.fetch_wild = False                        # ran off the text segment
        self.halt_fetched = False
        self.active_regions: list[list] = []  # [branch_seq, reconv_pc, active]
        # Cached frozenset of live region seqs; None = recompute.  Region
        # entries are immutable once created (only the list membership
        # changes), so the cache is invalidated exactly where the list is.
        self._live_deps: frozenset[int] | None = EMPTY_DEPS
        # Reconvergence PCs of the live regions: the fetch loop probes this
        # set once per PC instead of scanning the region list (almost no PC
        # closes a region).  Exact at close sites (closing removes every
        # entry with that PC); rebuilt wholesale where regions are filtered
        # by seq (loop iterations can carry duplicate reconvergence PCs).
        self._reconv_live: set[int] = set()
        self._fetch_resume_cycle = 0          # L1I miss stall
        self._last_fetch_line: int | None = None

        # Back end
        self.rename_map: list[DynInst | None] = [None] * NUM_REGS
        self.rob: deque[DynInst] = deque()
        self.store_queue: deque[DynInst] = deque()
        self.iq_count = 0
        self.lq_count = 0
        self.sq_count = 0
        self.ready: list[tuple[int, DynInst]] = []      # (seq, dyn) heap
        self.pending_loads: list[DynInst] = []          # blocked mem ops
        self.pending_ctrl: list[DynInst] = []           # policy-gated branches
        self.serialize_wait: list[DynInst] = []         # rdcycle/fence
        self.deferred_values: list[DynInst] = []        # NDA-deferred loads
        self.completions: list[tuple[int, int, DynInst]] = []
        self.unresolved_ctrl: set[int] = set()
        self.inflight_loads: dict[int, DynInst] = {}
        self.inflight_fences: set[int] = set()

        self.hierarchy = MemoryHierarchy(self.config.mem)
        self._line_bits = self.hierarchy.l1i.line_bits
        self.stats = CoreStats()
        self.committed_pcs: list[int] = []

        self._next_seq = 0
        self._cycle = 0
        self._done = False
        self._last_commit_cycle = 0
        # Gate-retry events: pending (policy/memdep-blocked) instructions are
        # re-evaluated only when something that can change a gate decision
        # happened (completion, commit, squash, a cache fill) — gate
        # predicates are pure functions of that state, so skipping quiet
        # cycles is safe and makes long stalls cheap to simulate.  The
        # event-horizon engine (.horizon) relies on exactly this invariant
        # to warp over quiet stretches entirely.
        self._retry_event = True
        # Min-heap over unresolved branch seqs with lazy deletion: resolved/
        # squashed seqs stay in the heap until they surface at the top, so
        # the oldest-unresolved query is O(log n) amortized instead of a
        # full scan of the unresolved set.
        self._unresolved_heap: list[int] = []

    # ------------------------------------------------------------------ API
    @property
    def cycle(self) -> int:
        return self._cycle

    def run(self, max_cycles: int | None = None) -> SimResult:
        """Run to HALT; returns the result bundle."""
        limit = max_cycles or self.config.max_cycles
        self.advance(limit)
        return self._result()

    def advance(self, limit: int, stop_cycle: int | None = None) -> bool:
        """Advance until HALT, ``limit`` (raises), or ``stop_cycle``.

        Returns True when the program halted, False when it paused at
        ``stop_cycle`` — the resumable slice the lockstep executor uses
        to interleave cores.  With ``stop_cycle`` omitted this is exactly
        the classic run loop (the limit guard precedes the stop guard, so
        a stop at the limit still raises).  The event-horizon warp is
        bounded by ``limit``, not ``stop_cycle``: warping past a pause
        point is harmless (quiet cycles are quiet in any interleaving)
        and keeps the warp contract identical in both entry modes.
        """
        if stop_cycle is None:
            stop_cycle = limit
        cycle_skip = self._cycle_skip
        while not self._done:
            cycle = self._cycle
            if cycle >= limit:
                head = self.rob[0] if self.rob else None
                raise SimulationTimeout(
                    f"OoO run exceeded {limit} cycles "
                    f"(committed {self.stats.committed}, fetch pc "
                    f"{self.fetch_pc:#x}, rob head {head})",
                    limit=limit,
                    committed=self.stats.committed,
                    pc=self.fetch_pc,
                    point=self.point_label,
                )
            if cycle >= stop_cycle:
                return False
            if cycle - self._last_commit_cycle > _WATCHDOG_CYCLES:
                raise SimulationError(
                    f"no commit for {_WATCHDOG_CYCLES} cycles at cycle "
                    f"{cycle}: likely scheduler deadlock "
                    f"(rob head: {self.rob[0] if self.rob else None})"
                )
            # Event-horizon engine: when this cycle is provably quiet, warp
            # straight to the next cycle anything can change, then re-check
            # the limit/watchdog guards at the warped cycle (the warp clamps
            # at both, so they fire exactly as in the stepped run).  The
            # retry/ready pre-check is inlined so busy cycles pay two
            # attribute reads instead of a call.
            if (
                cycle_skip
                and not self._retry_event
                and not self.ready
                and warp_to_horizon(self, limit)
            ):
                continue
            self.step()
        return True

    def _result(self) -> SimResult:
        """The result bundle for a finished (halted) core."""
        self.stats.cycles = self._cycle
        return SimResult(
            stats=self.stats,
            regs=tuple(self.arf),
            memory=self.memory,
            policy_name=self.policy.name,
            committed_pcs=self.committed_pcs,
            hierarchy=self.hierarchy,
            observations=self.observations,
        )

    def step(self) -> None:
        """Advance one cycle."""
        cycle = self._cycle
        # The stage calls' own early-return guards are replicated inline:
        # they have no side effects, and skipping the call entirely keeps
        # idle stages off the per-cycle hot path.
        completions = self.completions
        if completions and completions[0][0] <= cycle:
            self._process_completions(cycle)
        rob = self.rob
        if rob and rob[0].stage is Stage.COMPLETED:
            self._commit(cycle)
        if not self._done:
            if self._retry_event or self.ready or self.serialize_wait:
                self._issue(cycle)
            if self.fetch_queue:
                self._dispatch(cycle)
            if (
                self.halt_fetched
                or self.fetch_wild
                or self.fetch_stalled_on is not None
                or cycle < self._fetch_resume_cycle
            ):
                self.stats.fetch_stall_cycles += 1
            else:
                self._fetch(cycle)
        self._cycle = cycle + 1

    # ----------------------------------------------------- policy interface
    def has_unresolved_ctrl_older_than(self, seq: int) -> bool:
        """Any in-flight unresolved branch/indirect-jump older than ``seq``?"""
        unresolved = self.unresolved_ctrl
        if not unresolved:
            return False
        heap = self._unresolved_heap
        while heap[0] not in unresolved:  # lazy-delete resolved/squashed seqs
            heapq.heappop(heap)
        return heap[0] < seq

    def any_unresolved(self, deps: frozenset[int]) -> bool:
        """Is any of these branch seqs still unresolved?"""
        if not deps:
            return False
        unresolved = self.unresolved_ctrl
        if not unresolved:
            return False
        if len(deps) < len(unresolved):
            for d in deps:
                if d in unresolved:
                    return True
            return False
        for u in unresolved:
            if u in deps:
                return True
        return False

    def is_load_root_unsafe(self, root_seq: int) -> bool:
        """STT visibility: root load still in flight and still speculative."""
        if root_seq not in self.inflight_loads:
            return False  # committed (visible) or squashed (consumer dies too)
        return self.has_unresolved_ctrl_older_than(root_seq)

    # ---------------------------------------------------------------- fetch
    def _fetch(self, cycle: int) -> None:
        if (
            self.halt_fetched
            or self.fetch_wild
            or self.fetch_stalled_on is not None
            or cycle < self._fetch_resume_cycle
        ):
            self.stats.fetch_stall_cycles += 1
            return
        fetch_queue = self.fetch_queue
        fq_cap = self.config.fetch_queue_size
        if len(fetch_queue) >= fq_cap:
            return
        by_pc = self._decoded.by_pc
        line_bits = self._line_bits
        budget = self.config.fetch_width
        use_compiler_info = self._use_compiler_info
        use_sb = self._superblock
        stats = self.stats
        dyn_pool = self._dyn_pool
        dyn_pool_light = self._dyn_pool_light
        reconv_live = self._reconv_live
        predictor = self.predictor
        hfetch = self.hierarchy.fetch
        # pc and the last-fetched line live in locals for the whole packet;
        # the finally block is the single write-back point for every exit.
        pc = self.fetch_pc
        last_line = self._last_fetch_line
        try:
            while budget > 0 and len(fetch_queue) < fq_cap:
                dec = by_pc.get(pc)
                if dec is None:
                    self.fetch_wild = True  # wrong path off the text segment
                    return

                if use_sb:
                    sb = dec.sb
                    if sb is not None:
                        # Superblock fast path: the entry PC may close a
                        # tracker region (it is a boundary); interior PCs
                        # never can, so the dep set is computed once and
                        # the generated op fetches the rest of the run.
                        regions = self.active_regions
                        deps = EMPTY_DEPS
                        if regions:
                            if pc in reconv_live:
                                self.active_regions = regions = [
                                    entry for entry in regions
                                    if entry[1] != pc
                                ]
                                reconv_live.discard(pc)
                                self._live_deps = None
                            if regions:
                                deps = self._live_deps
                                if deps is None:
                                    deps = self._live_deps = frozenset(
                                        r[0] for r in regions if r[2]
                                    )
                        pos, budget, last_line, stall = sb.fop(
                            self, fetch_queue, cycle, budget,
                            fq_cap - len(fetch_queue), dec.sb_pos,
                            deps, last_line, line_bits,
                        )
                        if stall:
                            pc = sb.pcs[pos]  # resume at the missing PC
                            return
                        pc = sb.pcs[pos] if pos < sb.n else sb.next_pc
                        continue
                line = pc >> line_bits
                if line != last_line:
                    ready = hfetch(pc, cycle)
                    last_line = line
                    if ready > cycle:
                        # L1I miss: the packet ends; resume when the line
                        # fills.
                        self._fetch_resume_cycle = ready
                        return
                seq = self._next_seq
                self._next_seq = seq + 1
                if dyn_pool_light:
                    dyn = dyn_pool_light.pop()
                    dyn.reset_light(seq, dec, cycle)
                elif dyn_pool:
                    dyn = dyn_pool.pop()
                    dyn.reset(seq, dec, cycle)
                else:
                    dyn = self._alloc_dyn_slow(seq, dec, cycle)
                stats.fetched += 1
                budget -= 1

                # Reconvergence tracker: reaching a branch's reconvergence
                # PC ends its control region (a closed region can never
                # reopen, so it leaves the live list); then tag with the
                # remaining ones.
                regions = self.active_regions
                if regions:
                    if pc in reconv_live:
                        self.active_regions = regions = [
                            entry for entry in regions if entry[1] != pc
                        ]
                        reconv_live.discard(pc)
                        self._live_deps = None
                    if regions:
                        deps = self._live_deps
                        if deps is None:
                            deps = self._live_deps = frozenset(
                                r[0] for r in regions if r[2]
                            )
                        dyn.control_deps = deps

                fetch_queue.append(dyn)
                kind = dec.kind

                if kind == K_SEQ:
                    pc = dec.fallthrough
                    continue

                inst = dec.inst
                if kind == K_BRANCH:
                    taken, ctx = predictor.predict(pc)
                    dyn.predicted_taken = taken
                    target = inst.branch_target if taken else dec.fallthrough
                    dyn.predicted_target = target
                    dyn.predictor_context = ctx
                    dyn.checkpoint = self._front_checkpoint(dyn)
                    predictor.on_speculative_branch(pc, taken)
                    reconv = dec.reconv_pc if use_compiler_info else None
                    if reconv is not None:
                        reconv_live.add(reconv)
                    self.active_regions.append([dyn.seq, reconv, True])
                    self._live_deps = None
                    pc = target
                    if taken:
                        return  # taken branches end the fetch packet
                    continue

                if kind == K_JAL:
                    if inst.rd != 0:
                        self.ras.push(dec.fallthrough)
                    pc = inst.imm
                    return  # taken control ends the packet

                if kind == K_JALR:
                    if dec.is_return:  # jalr x0, ra, 0
                        predicted = self.ras.pop()
                    else:
                        predicted = self.btb.lookup(pc)
                    if inst.rd != 0:
                        self.ras.push(dec.fallthrough)  # indirect call
                    if predicted is None:
                        # Explicit null: recycled records keep stale
                        # prediction fields (see DynInst.reset), and the
                        # resolve path distinguishes a stalled jalr by
                        # ``predicted_target is None``.
                        dyn.predicted_target = None
                        self.fetch_stalled_on = dyn
                        return
                    dyn.predicted_target = predicted
                    dyn.checkpoint = self._front_checkpoint(dyn)
                    self.active_regions.append([dyn.seq, None, True])
                    self._live_deps = None
                    pc = predicted
                    return

                # K_HALT
                self.halt_fetched = True
                return
        finally:
            self.fetch_pc = pc
            self._last_fetch_line = last_line

    def _alloc_dyn_slow(self, seq: int, dec, cycle: int) -> DynInst:
        """Allocation slow path: replenish the free list, else construct.

        (The fast path — pop from a non-empty pool — is inlined in
        :meth:`_fetch`.)  A committed record becomes recyclable once every
        instruction fetched before its commit has itself left the window
        (committed or squashed): after that, no live producer link,
        store-forward link, or checkpointed rename map can reference it
        (squash-restore nulls out committed producers, see
        :meth:`_squash_after`).  Squashed records are recycled eagerly by
        the squash path itself, which scrubs the scheduler heaps and
        unlinks consumer-list membership first; fetch-queue casualties land
        in the light pool (cheaper ``reset_light``), ROB casualties here.
        Sweeping the retire FIFO only when the pool runs dry is safe: the
        barrier condition is monotonic.
        """
        if self._recycle:
            fifo = self._retire_fifo
            if fifo:
                rob = self.rob
                if rob:
                    min_live = rob[0].seq
                elif self.fetch_queue:
                    min_live = self.fetch_queue[0].seq
                else:
                    min_live = seq
                pool = self._dyn_pool
                while fifo and fifo[0][0] <= min_live:
                    dyn = fifo.popleft()[1]
                    if len(pool) < _DYN_POOL_MAX:
                        pool.append(dyn)
                if pool:
                    dyn = pool.pop()
                    dyn.reset(seq, dec, cycle)
                    return dyn
            # Pool dry: allocate via the reset() twin of the recycle path,
            # skipping the dataclass __init__ keyword machinery.
            return DynInst.fresh(seq, dec, cycle)
        return DynInst(seq=seq, inst=dec.inst, fetch_cycle=cycle, dec=dec)

    def _front_checkpoint(self, dyn: DynInst) -> Checkpoint:
        """Front-end snapshot; the rename map is added at dispatch."""
        # Copy-on-write region snapshot: checkpoints vastly outnumber
        # restores (every fetched branch/jalr vs only mispredicts), so the
        # snapshot stores a reference to the live list plus its current
        # length and the rare restore path materializes the copy.  Sound
        # because entries are never mutated in place and every removal
        # rebinds a freshly built list — the captured prefix is immutable.
        # Slot stores through __new__ skip the dataclass keyword plumbing
        # (one checkpoint per fetched branch/jalr makes this hot).
        ckpt = Checkpoint.__new__(Checkpoint)
        ckpt.rename_map = []
        ckpt.ras = self.ras.checkpoint()
        ckpt.history = self.predictor.history_checkpoint()
        regions = self.active_regions
        ckpt.regions = regions
        ckpt.regions_len = len(regions)
        ckpt.fetch_pc_after = dyn.inst.fallthrough
        return ckpt

    # -------------------------------------------------------------- dispatch
    def _dispatch(self, cycle: int) -> None:
        fetch_queue = self.fetch_queue
        if not fetch_queue:
            return
        cfg = self.config
        stats = self.stats
        rob = self.rob
        frontend_latency = cfg.frontend_latency
        rob_size = cfg.rob_size
        iq_size = cfg.iq_size
        lq_size = cfg.lq_size
        sq_size = cfg.sq_size
        width = cfg.dispatch_width
        use_sb = self._superblock
        ripe = cycle - frontend_latency
        # Occupancy counters live in locals for the loop; written back below.
        iq_count = self.iq_count
        lq_count = self.lq_count
        sq_count = self.sq_count
        rename_map = self.rename_map
        arf = self.arf
        arf_taint = self.arf_taint
        while width > 0 and fetch_queue:
            dyn = fetch_queue[0]

            if use_sb:
                sb = dyn.dec.sb
                if sb is not None:
                    # Superblock fast path: the generated op dispatches and
                    # renames run instructions until width/ripeness/capacity
                    # stops it, returning the slow loop's first-blocked
                    # stall code so accounting is identical.
                    d, code, lq_d, sq_d = sb.dop(
                        self, fetch_queue, rob, cycle, ripe, width,
                        rob_size - len(rob), iq_size - iq_count,
                        lq_size - lq_count, sq_size - sq_count,
                        dyn.dec.sb_pos,
                    )
                    width -= d
                    iq_count += d
                    lq_count += lq_d
                    sq_count += sq_d
                    if code == 0:
                        continue  # ran dry: terminator (or empty queue) next
                    if code == 2:
                        stats.rob_full_stalls += 1
                    elif code == 3:
                        stats.iq_full_stalls += 1
                    elif code == 4:
                        stats.lsq_full_stalls += 1
                    break  # code 1 (head not ripe) breaks without a stat

            if dyn.fetch_cycle + frontend_latency > cycle:
                break
            if len(rob) >= rob_size:
                stats.rob_full_stalls += 1
                break
            opcode = dyn.opcode
            is_load = opcode.is_load
            is_store = opcode.is_store
            if opcode is not Opcode.HALT and iq_count >= iq_size:
                stats.iq_full_stalls += 1
                break
            if is_load and lq_count >= lq_size:
                stats.lsq_full_stalls += 1
                break
            if is_store and sq_count >= sq_size:
                stats.lsq_full_stalls += 1
                break

            fetch_queue.popleft()
            width -= 1
            dyn.stage = Stage.DISPATCHED
            dyn.dispatch_cycle = cycle
            # Rename, inlined (same body the generated superblock dispatch
            # ops emit): producer links from the map, else ARF value +
            # taint capture.
            dec = dyn.dec
            rs = dec.rs1n
            if rs >= 0:
                producer = rename_map[rs]
                if producer is not None:
                    dyn.src1_producer = producer
                    if not producer.propagated:
                        dyn.waiting_on += 1
                        dyn.enlisted = 1
                        producer.consumers.append(dyn)
                else:
                    dyn.src1_value = arf[rs]
                    dyn.src1_arf_tainted = arf_taint[rs]
            rs = dec.rs2n
            if rs >= 0:
                producer = rename_map[rs]
                if producer is not None:
                    dyn.src2_producer = producer
                    if not producer.propagated:
                        dyn.waiting_on += 1
                        dyn.enlisted |= 2
                        producer.consumers.append(dyn)
                else:
                    dyn.src2_value = arf[rs]
                    dyn.src2_arf_tainted = arf_taint[rs]
            dest = dec.dest
            if dest is not None:
                rename_map[dest] = dyn
            rob.append(dyn)

            if dyn.checkpoint is not None:
                dyn.checkpoint.rename_map = list(rename_map)
            if dyn.inst.is_branch or (
                opcode is Opcode.JALR and dyn.predicted_target is not None
            ):
                self.unresolved_ctrl.add(dyn.seq)
                heapq.heappush(self._unresolved_heap, dyn.seq)

            if opcode is Opcode.HALT:
                dyn.stage = Stage.COMPLETED
                dyn.complete_cycle = cycle
                dyn.propagated = True
                continue

            iq_count += 1
            if opcode is Opcode.FENCE:
                self.inflight_fences.add(dyn.seq)
            if is_load:
                lq_count += 1
                self.inflight_loads[dyn.seq] = dyn
            elif is_store:
                sq_count += 1
                self.store_queue.append(dyn)
            if dyn.waiting_on == 0:
                heapq.heappush(self.ready, (dyn.seq, dyn))
        self.iq_count = iq_count
        self.lq_count = lq_count
        self.sq_count = sq_count

    # ----------------------------------------------------------------- issue
    def _issue(self, cycle: int) -> None:
        retry = self._retry_event
        self._retry_event = False
        if not retry and not self.ready and not self.serialize_wait:
            return  # nothing schedulable this cycle (pending work is
            # event-driven: it is only re-examined after a retry event)

        cfg = self.config
        budget = cfg.issue_width
        alu_ports = cfg.alu_ports
        mul_ports = cfg.mul_ports
        div_ports = cfg.div_ports
        mem_ports = cfg.mem_ports

        # Release NDA-deferred values whose loads became safe.
        if self.deferred_values and retry:
            still_deferred: list[DynInst] = []
            for dyn in self.deferred_values:
                if dyn.squashed:
                    continue
                if self.policy.may_propagate(dyn, self):
                    self._propagate(dyn)
                else:
                    still_deferred.append(dyn)
            self.deferred_values = still_deferred

        # Retry policy/memdep-blocked memory ops first (oldest first).
        if self.pending_loads and retry:
            self.pending_loads.sort(key=lambda d: d.seq)
            still_blocked: list[DynInst] = []
            for dyn in self.pending_loads:
                if dyn.squashed:
                    continue
                if budget <= 0 or mem_ports <= 0:
                    still_blocked.append(dyn)
                    self._retry_event = True  # resource block: retry next cycle
                    continue
                issued = self._try_issue_mem(dyn, cycle)
                if issued:
                    budget -= 1
                    mem_ports -= 1
                else:
                    still_blocked.append(dyn)
            self.pending_loads = still_blocked

        # Retry policy-gated control instructions (oldest first).
        if self.pending_ctrl and retry:
            self.pending_ctrl.sort(key=lambda d: d.seq)
            still_gated: list[DynInst] = []
            for dyn in self.pending_ctrl:
                if dyn.squashed:
                    continue
                if budget <= 0 or alu_ports <= 0:
                    still_gated.append(dyn)
                    self._retry_event = True  # resource block: retry next cycle
                    continue
                pstats = self.policy.stats
                pstats.gate_checks += 1
                if self.policy.may_issue_branch(dyn, self):
                    self._execute(dyn, cycle, self.config.branch_latency)
                    budget -= 1
                    alu_ports -= 1
                else:
                    pstats.gate_denials += 1
                    self._note_branch_gated(dyn, cycle)
                    still_gated.append(dyn)
            self.pending_ctrl = still_gated

        # Serialized instructions (rdcycle/fence) wait for ROB head.
        if self.serialize_wait:
            remaining: list[DynInst] = []
            for dyn in self.serialize_wait:
                if dyn.squashed:
                    continue
                if (
                    budget > 0
                    and alu_ports > 0
                    and self.rob
                    and self.rob[0] is dyn
                ):
                    self._schedule(dyn, cycle, cfg.alu_latency)
                    dyn.result = cycle
                    budget -= 1
                    alu_ports -= 1
                else:
                    remaining.append(dyn)
            self.serialize_wait = remaining

        overflow: list[tuple[int, DynInst]] = []
        ready = self.ready
        heappop = heapq.heappop
        execute = self._execute
        while budget > 0 and ready:
            dyn = heappop(ready)[1]
            if dyn.squashed or dyn.stage is not Stage.DISPATCHED:
                continue
            dec = dyn.dec  # scheduling class / FU port pre-resolved at decode
            sched = dec.sched

            if sched:
                if sched == S_SERIALIZE:  # rdcycle / fence
                    if self.rob and self.rob[0] is dyn and alu_ports > 0:
                        self._schedule(dyn, cycle, cfg.alu_latency)
                        dyn.result = cycle
                        budget -= 1
                        alu_ports -= 1
                    else:
                        self.serialize_wait.append(dyn)
                    continue

                if sched == S_MEM:
                    if mem_ports <= 0:
                        overflow.append((dyn.seq, dyn))
                        continue
                    issued = self._try_issue_mem(dyn, cycle)
                    if issued:
                        budget -= 1
                        mem_ports -= 1
                    else:
                        self.pending_loads.append(dyn)
                    continue

                # S_CTRL: policy-gated branch/jalr, then the ALU port below.
                pstats = self.policy.stats
                pstats.gate_checks += 1
                if not self.policy.may_issue_branch(dyn, self):
                    pstats.gate_denials += 1
                    self._note_branch_gated(dyn, cycle)
                    self.pending_ctrl.append(dyn)
                    continue

            port_i = dec.port_i
            if port_i == 0:
                if alu_ports <= 0:
                    overflow.append((dyn.seq, dyn))
                    continue
                alu_ports -= 1
            elif port_i == 1:
                if mul_ports <= 0:
                    overflow.append((dyn.seq, dyn))
                    continue
                mul_ports -= 1
            else:  # div
                if div_ports <= 0:
                    overflow.append((dyn.seq, dyn))
                    continue
                div_ports -= 1
            budget -= 1
            execute(dyn, cycle, dec.latency)

        for entry in overflow:
            heapq.heappush(ready, entry)

    def _note_branch_gated(self, dyn: DynInst, cycle: int) -> None:
        if dyn.first_gated_cycle < 0:
            dyn.first_gated_cycle = cycle
            self.stats.branches_gated += 1
            self.policy.stats.branches_gated += 1
        dyn.gated_cycles += 1
        self.stats.branch_gate_cycles += 1
        self.policy.stats.branch_gate_cycles += 1

    def _execute_alu(self, dyn: DynInst, cycle: int, latency: int) -> None:
        inst = dyn.inst
        opcode = inst.opcode
        a = dyn.value_of_src1()
        b = dyn.value_of_src2()
        if opcode.is_branch:
            dyn.actual_taken = semantics.branch_taken(opcode, a, b)
            dyn.actual_target = (
                inst.branch_target if dyn.actual_taken else inst.fallthrough
            )
            dyn.mispredicted = dyn.actual_taken != dyn.predicted_taken
        elif opcode is Opcode.JALR:
            dyn.actual_target = semantics.effective_address(a, inst.imm)
            dyn.result = inst.pc + INSTRUCTION_BYTES
            if dyn.predicted_target is not None:
                dyn.mispredicted = dyn.actual_target != dyn.predicted_target
        elif opcode is Opcode.JAL:
            dyn.result = inst.pc + INSTRUCTION_BYTES
        else:
            dyn.result = semantics.alu_result(opcode, a, b, inst.imm, inst.pc)
        self._schedule(dyn, cycle, latency)

    def _execute_alu_spec(self, dyn: DynInst, cycle: int, latency: int) -> None:
        """Specialized execute: one pre-compiled op per PC (see
        :mod:`repro.uarch.specialize`), bit-identical to
        :meth:`_execute_alu` by the equivalence suite's contract.  The
        operand reads and the schedule call are inlined — this runs once
        per executed ALU/branch/jump instruction."""
        p = dyn.src1_producer
        a = p.result if p is not None else dyn.src1_value
        p = dyn.src2_producer
        b = p.result if p is not None else dyn.src2_value
        dyn.dec.xop(dyn, a, b)
        # _complete_at, inlined (hot: once per executed ALU instruction).
        if dyn.stage is Stage.DISPATCHED:
            self.iq_count -= 1
        dyn.stage = Stage.ISSUED
        dyn.issue_cycle = self._cycle
        heapq.heappush(self.completions, (cycle + latency, dyn.seq, dyn))

    # ------------------------------------------------------------ memory ops
    def _try_issue_mem(self, dyn: DynInst, cycle: int) -> bool:
        """Attempt to issue a load/store/cflush; False leaves it pending."""
        inst = dyn.inst
        opcode = inst.opcode
        if dyn.mem_address is None:
            if self._specialize:
                dyn.mem_address = dyn.dec.aop(dyn.value_of_src1())
            else:
                dyn.mem_address = semantics.effective_address(
                    dyn.value_of_src1(), inst.imm
                )

        if opcode.is_store:
            p = dyn.src2_producer
            dyn.store_data = p.result if p is not None else dyn.src2_value
            if dyn.stage is Stage.DISPATCHED:
                self.iq_count -= 1
            dyn.stage = Stage.ISSUED
            dyn.issue_cycle = self._cycle
            heapq.heappush(
                self.completions,
                (cycle + self.config.agu_latency, dyn.seq, dyn),
            )
            return True

        # Memory ordering: an older in-flight fence blocks younger memory ops.
        if self.inflight_fences and min(self.inflight_fences) < dyn.seq:
            self.stats.memdep_blocked_cycles += 1
            return False

        # Loads and cflush are transmitters: consult the policy (the
        # checked_may_issue_load wrapper's bookkeeping is inlined — this
        # runs once per load issue attempt).
        policy = self.policy
        pstats = policy.stats
        pstats.gate_checks += 1
        if not policy.may_issue_load(dyn, self):
            pstats.gate_denials += 1
            if dyn.first_gated_cycle < 0:
                dyn.first_gated_cycle = cycle
                self.stats.loads_gated += 1
                pstats.loads_gated += 1
            dyn.gated_cycles += 1
            self.stats.load_gate_cycles += 1
            pstats.gate_cycles += 1
            return False

        if opcode is Opcode.CFLUSH:
            # clflush semantics: the line leaves the hierarchy at execute
            # (speculative flushes do perturb the caches, as on real parts).
            self.hierarchy.flush_address(dyn.mem_address)
            if self.observations is not None:
                self.observations.record(
                    "fl", inst.pc, dyn.mem_address, cycle, dyn.seq
                )
            self._schedule(dyn, cycle, self.config.agu_latency + 1)
            return True

        # Memory disambiguation against older stores (conservative).
        size = opcode.access_size
        address = dyn.mem_address
        forwarding_store: DynInst | None = None
        for store in reversed(self.store_queue):
            if store.seq > dyn.seq or store.squashed:
                continue
            if store.stage not in (Stage.COMPLETED, Stage.COMMITTED):
                # Older store address unknown: wait (no memdep speculation).
                self.stats.memdep_blocked_cycles += 1
                return False
            s_addr = store.mem_address
            s_size = store.opcode.access_size
            if s_addr + s_size <= address or address + size <= s_addr:
                continue  # no overlap
            if s_addr <= address and address + size <= s_addr + s_size:
                forwarding_store = store
                break
            # Partial overlap: wait until the store drains at commit.
            self.stats.memdep_blocked_cycles += 1
            return False

        self.stats.loads_issued += 1
        if self.has_unresolved_ctrl_older_than(dyn.seq):
            self.stats.loads_speculative_at_issue += 1
            if dyn.addr_tainted() and self.any_unresolved(dyn.addr_deps()):
                self.stats.loads_true_dep_at_issue += 1
        if self.observations is not None:
            # The address reaches the memory system here — transient or not.
            self.observations.record("ld", inst.pc, address, cycle, dyn.seq)
        if forwarding_store is not None:
            self.stats.loads_forwarded += 1
            dyn.forwarded_from = forwarding_store
            shift = (dyn.mem_address - forwarding_store.mem_address) * 8
            raw = (forwarding_store.store_data >> shift) & ((1 << (size * 8)) - 1)
            if self._specialize:
                dyn.result = dyn.dec.ext(raw)
            else:
                dyn.result = self._extend(raw, size, opcode)
            if dyn.stage is Stage.DISPATCHED:
                self.iq_count -= 1
            dyn.stage = Stage.ISSUED
            dyn.issue_cycle = self._cycle
            heapq.heappush(
                self.completions,
                (cycle + self.config.store_forward_latency, dyn.seq, dyn),
            )
            return True

        self._retry_event = True  # a fill may unblock Delay-on-Miss loads
        ready = self.hierarchy.load(
            address, cycle + self.config.agu_latency, pc=inst.pc
        )
        raw = self.memory.read_int(address, size)
        if self._specialize:
            dyn.result = dyn.dec.ext(raw)
        else:
            dyn.result = self._extend(raw, size, opcode)
        if dyn.stage is Stage.DISPATCHED:
            self.iq_count -= 1
        dyn.stage = Stage.ISSUED
        dyn.issue_cycle = self._cycle
        heapq.heappush(self.completions, (ready, dyn.seq, dyn))
        return True

    @staticmethod
    def _extend(raw: int, size: int, opcode: Opcode) -> int:
        if semantics.load_is_signed(opcode) and size < 8:
            sign_bit = 1 << (size * 8 - 1)
            if raw & sign_bit:
                raw -= 1 << (size * 8)
        return to_unsigned(raw)

    # ------------------------------------------------------------ scheduling
    def _schedule(self, dyn: DynInst, cycle: int, latency: int) -> None:
        self._complete_at(dyn, cycle + latency)

    def _complete_at(self, dyn: DynInst, when: int) -> None:
        if dyn.stage is Stage.DISPATCHED:
            self.iq_count -= 1  # leaves the issue queue
        dyn.stage = Stage.ISSUED
        dyn.issue_cycle = self._cycle
        heapq.heappush(self.completions, (when, dyn.seq, dyn))

    def _process_completions(self, cycle: int) -> None:
        completions = self.completions
        if not completions or completions[0][0] > cycle:
            return
        heappop = heapq.heappop
        unresolved = self.unresolved_ctrl
        inflight_loads = self.inflight_loads
        track_roots = self._track_roots
        # None when the policy provably never defers (base implementation
        # is a side-effect-free constant False — see __init__).
        defers_wakeup = self._defers_wakeup
        # Same-cycle completions are processed as one batch: wakeups are
        # collected and inserted into the ready heap once at the end, and
        # the retry event is raised once.  (seq, dyn) keys are unique, so
        # pop order — hence issue order — is independent of how the heap
        # was built and the batch is bit-identical to per-item pushes.
        newly_ready: list[tuple[int, DynInst]] = []
        wake = newly_ready.append
        progress = False
        while completions and completions[0][0] <= cycle:
            dyn = heappop(completions)[2]
            if dyn.squashed:
                continue
            progress = True
            dyn.stage = Stage.COMPLETED
            dyn.complete_cycle = cycle
            dec = dyn.dec
            # Lineage fast path: an instruction with ARF-only operands, no
            # control region, and no load semantics finalizes to the empty
            # sets (taint is just the captured ARF bits) — the common case
            # on straight-line code, worth skipping the full method for.
            if (
                dyn.src1_producer is None
                and dyn.src2_producer is None
                and not dyn.control_deps
                and not dec.true_load
            ):
                dyn.out_deps = EMPTY
                dyn.out_roots = EMPTY
                dyn.out_tainted = (
                    dyn.src1_arf_tainted or dyn.src2_arf_tainted
                )
            else:
                dyn.finalize_lineage(unresolved, inflight_loads, track_roots)
            if (
                defers_wakeup is not None
                and dec.true_load
                and defers_wakeup(dyn, self)
            ):
                self.deferred_values.append(dyn)  # NDA: value withheld
            else:
                dyn.propagated = True
                for consumer in dyn.consumers:
                    if consumer.squashed:
                        continue
                    w = consumer.waiting_on - 1
                    consumer.waiting_on = w
                    if w == 0 and consumer.stage is Stage.DISPATCHED:
                        wake((consumer.seq, consumer))
            if dec.is_ctrl:
                self._resolve_control(dyn, cycle)
        if progress:
            self._retry_event = True
        if newly_ready:
            ready = self.ready
            if ready:
                heappush = heapq.heappush
                for entry in newly_ready:
                    heappush(ready, entry)
            else:
                # A sorted list satisfies the heap invariant wholesale.
                newly_ready.sort()
                self.ready = newly_ready

    def _propagate(self, dyn: DynInst) -> None:
        """Make a completed value visible to dependents (wakeup)."""
        dyn.propagated = True
        for consumer in dyn.consumers:
            if consumer.squashed:
                continue
            consumer.waiting_on -= 1
            if consumer.waiting_on == 0 and consumer.stage is Stage.DISPATCHED:
                heapq.heappush(self.ready, (consumer.seq, consumer))
        self._retry_event = True

    # ---------------------------------------------------- control resolution
    def _resolve_control(self, dyn: DynInst, cycle: int) -> None:
        self.unresolved_ctrl.discard(dyn.seq)
        # A resolved branch creates no control dependence: retire its
        # tracker region so younger fetches stop inheriting it (and the
        # region list stays bounded by the unresolved window).
        if self.active_regions:
            regions = [r for r in self.active_regions if r[0] != dyn.seq]
            self.active_regions = regions
            self._reconv_live = {r[1] for r in regions if r[1] is not None}
            self._live_deps = None
        inst = dyn.inst
        if inst.is_branch:
            self.stats.branch_resolutions += 1
            if self.observations is not None:
                self.observations.record(
                    "br", inst.pc, int(bool(dyn.actual_taken)), cycle, dyn.seq
                )
            self.predictor.update(inst.pc, dyn.actual_taken, dyn.predictor_context)
            if dyn.mispredicted:
                self.stats.branch_mispredicts += 1
                self._squash_after(dyn, cycle)
            return
        # JALR
        if self.observations is not None:
            self.observations.record(
                "jr", inst.pc, dyn.actual_target, cycle, dyn.seq
            )
        self.btb.update(inst.pc, dyn.actual_target)
        if dyn.predicted_target is None:
            # Fetch stalled on this jalr; resume at the resolved target.
            if self.fetch_stalled_on is dyn:
                self.fetch_stalled_on = None
                self.fetch_pc = dyn.actual_target
            return
        if dyn.mispredicted:
            self.stats.jalr_mispredicts += 1
            self._squash_after(dyn, cycle)

    def _squash_after(self, dyn: DynInst, cycle: int) -> None:
        """Squash everything younger than ``dyn`` and redirect fetch."""
        boundary = dyn.seq
        # The ROB is seq-ordered, so the squashed suffix pops off the tail:
        # O(#squashed) work, and the occupancy counters are maintained
        # incrementally per squashed entry (they were consistent with the
        # full window before the squash) instead of rescanning the survivors.
        rob = self.rob
        observations = self.observations
        squashed_rob: list[DynInst] = []
        stale_ready = False
        stale_comp = False
        while rob and rob[-1].seq > boundary:
            entry = rob.pop()
            entry.squashed = True
            if observations is not None:
                observations.squashed.add(entry.seq)
            stage = entry.stage
            entry.stage = Stage.SQUASHED
            squashed_rob.append(entry)
            opcode = entry.opcode
            if stage is Stage.DISPATCHED and opcode is not Opcode.HALT:
                self.iq_count -= 1
                if entry.waiting_on == 0:
                    stale_ready = True  # may sit in the ready heap
            elif stage is Stage.ISSUED:
                stale_comp = True  # sits in the completions heap
            if opcode.is_load:
                self.lq_count -= 1
                self.inflight_loads.pop(entry.seq, None)
            elif opcode.is_store:
                self.sq_count -= 1
            self.unresolved_ctrl.discard(entry.seq)
            self.inflight_fences.discard(entry.seq)
        self.stats.squashed_insts += len(squashed_rob)

        # Scrub squashed entries out of the scheduler heaps instead of
        # leaving them for lazy deletion.  Pop order depends only on the
        # (unique) keys, never on the internal array layout, so filtering
        # and re-heapifying is bit-identical to lazily skipping them — and
        # it is what makes the squashed records below safe to recycle.
        # (Only entries that were DISPATCHED-and-ready or ISSUED can be in
        # a heap, so the scans run only when the pop loop saw one.)
        ready = self.ready
        if stale_ready and ready:
            alive = [e for e in ready if not e[1].squashed]
            if len(alive) != len(ready):
                heapq.heapify(alive)
                self.ready = alive
        completions = self.completions
        if stale_comp and completions:
            alive_c = [e for e in completions if not e[2].squashed]
            if len(alive_c) != len(completions):
                heapq.heapify(alive_c)
                self.completions = alive_c

        store_queue = self.store_queue
        while store_queue and store_queue[-1].seq > boundary:
            store_queue.pop()
        if self.pending_loads:
            self.pending_loads = [
                p for p in self.pending_loads if p.seq <= boundary
            ]
        if self.pending_ctrl:
            self.pending_ctrl = [
                p for p in self.pending_ctrl if p.seq <= boundary
            ]
        if self.deferred_values:
            self.deferred_values = [
                d for d in self.deferred_values if d.seq <= boundary
            ]
        if self.serialize_wait:
            self.serialize_wait = [
                s for s in self.serialize_wait if s.seq <= boundary
            ]

        # Fetch-queue records go straight back to the free list: a FETCHED
        # record was never renamed (no producer links or consumers), never
        # entered the ready/completion heaps (lazy deletion never sees it),
        # and ``fetch_stalled_on`` — the only external reference a fetched
        # record can acquire — is cleared below.  Recycling here is what
        # keeps the pool warm on squash-heavy workloads, where most fetched
        # instructions die in the queue and would otherwise force a fresh
        # allocation per wrong-path instruction.
        fetch_queue = self.fetch_queue
        if fetch_queue:
            pool = self._dyn_pool_light
            room = _DYN_POOL_MAX - len(pool) if self._recycle else 0
            for entry in fetch_queue:
                entry.squashed = True
                entry.stage = Stage.SQUASHED
                if room > 0:
                    pool.append(entry)
                    room -= 1
            fetch_queue.clear()

        checkpoint = dyn.checkpoint
        if checkpoint is None:
            raise SimulationError(
                f"mispredicted {dyn} carries no checkpoint"
            )
        self.rename_map = list(checkpoint.rename_map)
        # Drop producers that have left the window from the restored map.
        # Squashed ones are a defensive sweep (a snapshot taken at the
        # branch's dispatch can only reference older instructions).
        # Committed ones are nulled because a committed producer is
        # indistinguishable from reading the ARF: the snapshot maps each
        # register to its youngest older-than-branch writer, so by commit
        # order that writer's result/taint is exactly what the ARF holds,
        # and its already-pruned lineage sets only ever contained seqs that
        # resolved/retired before it committed (inert in every membership
        # query).  This is also what lets the free-list recycle committed
        # records without a restored checkpoint resurrecting them.
        for i, producer in enumerate(self.rename_map):
            if producer is not None and (
                producer.squashed or producer.stage is Stage.COMMITTED
            ):
                self.rename_map[i] = None
        self.ras.restore(checkpoint.ras)
        self.predictor.history_restore(checkpoint.history)
        if dyn.inst.is_branch:
            self.predictor.on_speculative_branch(dyn.pc, bool(dyn.actual_taken))
        # Restore only regions whose branches are still unresolved: branches
        # that resolved after the checkpoint was taken were already retired
        # from the tracker and must not be resurrected.  (The snapshot is
        # copy-on-write: the first ``regions_len`` entries of the captured
        # list reference are the state at capture time.)
        unresolved = self.unresolved_ctrl
        regions = [
            r
            for r in checkpoint.regions[: checkpoint.regions_len]
            if r[0] in unresolved
        ]
        self.active_regions = regions
        self._reconv_live = {r[1] for r in regions if r[1] is not None}
        self._live_deps = None

        self.fetch_pc = dyn.actual_target
        self.fetch_wild = False
        self.halt_fetched = False
        self.fetch_stalled_on = None
        self._last_fetch_line = None
        self._retry_event = True

        # Recycle the squashed ROB records.  By this point every structure
        # that could reference one has been purged: the scheduler heaps were
        # scrubbed above, the seq-filtered lists dropped them, and the
        # restored rename map nulled them.  The one remaining class of
        # references is producer consumer-lists — a consumer is always
        # younger than its producer, so a *live* producer may still list a
        # squashed consumer; ``enlisted`` records exactly which lists the
        # record joined at rename.  Tail-pop order is youngest-first, so
        # consumers are unlinked while their producers' lists are intact; a
        # producer squashed in the same batch is skipped (its list dies with
        # it).
        if self._recycle and squashed_rob:
            pool = self._dyn_pool
            room = _DYN_POOL_MAX - len(pool)
            for entry in squashed_rob:
                e = entry.enlisted
                if e:
                    if e & 1:
                        p = entry.src1_producer
                        if not p.squashed:
                            p.consumers.remove(entry)
                    if e & 2:
                        p = entry.src2_producer
                        if not p.squashed:
                            p.consumers.remove(entry)
                    entry.enlisted = 0
                if room > 0:
                    pool.append(entry)
                    room -= 1

    # ----------------------------------------------------------------- commit
    def _commit(self, cycle: int) -> None:
        width = self.config.commit_width
        rob = self.rob
        stats = self.stats
        arf = self.arf
        arf_taint = self.arf_taint
        rename_map = self.rename_map
        observations = self.observations
        record_trace = self.record_trace
        record_pipeline = self.record_pipeline
        recycle = self._recycle
        retire_fifo = self._retire_fifo
        # Retirement bookkeeping is batched: the committed counters, the
        # watchdog timestamp, and the retry event are written once per
        # commit packet instead of once per instruction.
        committed_n = 0
        sb_n = 0
        while width > 0 and rob:
            dyn = rob[0]
            if dyn.stage is not Stage.COMPLETED:
                break
            if not dyn.propagated:
                # NDA-deferred value reaching the head: it is non-speculative
                # now, so the policy must agree to release it.
                if self.policy.may_propagate(dyn, self):
                    self._propagate(dyn)
                    self.deferred_values = [
                        d for d in self.deferred_values if d is not dyn
                    ]
                else:
                    break
            rob.popleft()
            width -= 1
            dyn.stage = Stage.COMMITTED
            dyn.commit_cycle = cycle
            committed_n += 1
            if dyn.sb_fast:
                sb_n += 1
            if record_trace:
                self.committed_pcs.append(dyn.pc)
            if record_pipeline:
                self.retired.append(dyn)

            dec = dyn.dec
            cc = dec.cc
            if cc:
                if cc == C_HALT:
                    self._done = True
                    break
                if cc == C_STORE:
                    address = dyn.mem_address
                    self.memory.write_int(address, dyn.store_data, dec.asize)
                    self.hierarchy.store(address, cycle)
                    if observations is not None:
                        observations.record("st", dyn.pc, address, cycle,
                                            dyn.seq)
                    store_queue = self.store_queue
                    if store_queue[0] is dyn:  # stores commit in order
                        store_queue.popleft()
                    else:  # pragma: no cover - defensive
                        store_queue.remove(dyn)
                    self.sq_count -= 1
                    stats.committed_stores += 1
                elif cc == C_LOAD:
                    stats.committed_loads += 1
                    self.inflight_loads.pop(dyn.seq, None)
                    self.lq_count -= 1
                elif cc == C_CFLUSH:
                    self.hierarchy.flush_address(dyn.mem_address)
                    self.inflight_loads.pop(dyn.seq, None)
                    self.lq_count -= 1
                elif cc == C_BRANCH:
                    stats.committed_branches += 1
                else:  # C_FENCE
                    self.inflight_fences.discard(dyn.seq)

            dest = dec.dest
            if dest is not None:
                arf[dest] = dyn.result
                arf_taint[dest] = dyn.out_tainted
                if rename_map[dest] is dyn:
                    rename_map[dest] = None

            if recycle:
                # Reclaimable once everything fetched so far has drained.
                retire_fifo.append((self._next_seq, dyn))
        if committed_n:
            stats.committed += committed_n
            self._sb_committed += sb_n
            self._last_commit_cycle = cycle
            self._retry_event = True
