"""Pipeline-timeline rendering (Konata-style, in plain text).

Every :class:`~repro.uarch.dyninst.DynInst` already records its
fetch/dispatch/issue/complete/commit cycles; with ``record_pipeline=True``
the core keeps the retired instructions, and this module renders them as a
per-instruction timeline — the fastest way to *see* where a policy inserts
its delays:

    seq    pc      instruction          pipeline
    17  0x1028  ld t5, 0(t4)        ...F....D--------I=C.....R
                                            ^^^^^^^^ policy gate

Legend: F fetch, D dispatch, ``-`` waiting in the IQ (operands or gate),
``I`` issue, ``=`` executing, ``C`` complete, ``.`` waiting, ``R`` retire.
"""

from __future__ import annotations

from .dyninst import DynInst


def render_timeline(
    retired: list[DynInst],
    start: int = 0,
    count: int = 32,
    max_width: int = 96,
) -> str:
    """Render ``count`` retired instructions starting at index ``start``."""
    window = [d for d in retired[start : start + count] if d.commit_cycle >= 0]
    if not window:
        return "(no retired instructions in range)"
    origin = min(d.fetch_cycle for d in window)
    horizon = max(d.commit_cycle for d in window) + 1
    span = horizon - origin
    scale = 1
    if span > max_width:
        scale = (span + max_width - 1) // max_width

    lines = [
        f"cycles {origin}..{horizon - 1}"
        + (f" (1 char = {scale} cycles)" if scale > 1 else "")
    ]
    for dyn in window:
        cells = [" "] * ((span + scale - 1) // scale)

        def put(cycle: int, char: str) -> None:
            if cycle < 0:
                return
            index = (cycle - origin) // scale
            if 0 <= index < len(cells):
                # Later lifecycle markers win within a scaled cell.
                cells[index] = char

        for c in range(dyn.dispatch_cycle, dyn.issue_cycle):
            put(c, "-")
        for c in range(dyn.issue_cycle, dyn.complete_cycle):
            put(c, "=")
        for c in range(dyn.complete_cycle, dyn.commit_cycle):
            put(c, ".")
        put(dyn.fetch_cycle, "F")
        put(dyn.dispatch_cycle, "D")
        put(dyn.issue_cycle, "I")
        put(dyn.complete_cycle, "C")
        put(dyn.commit_cycle, "R")
        text = dyn.inst.text()[:22].ljust(22)
        gate = f" gated:{dyn.gated_cycles}" if dyn.gated_cycles else ""
        lines.append(
            f"{dyn.seq:5d} {dyn.pc:#08x} {text} |{''.join(cells)}|{gate}"
        )
    return "\n".join(lines)


def gate_summary(retired: list[DynInst], top: int = 10) -> str:
    """The most-delayed transmitters of a run (policy post-mortem)."""
    gated = [d for d in retired if d.gated_cycles > 0]
    gated.sort(key=lambda d: d.gated_cycles, reverse=True)
    if not gated:
        return "no instructions were gated"
    lines = [f"{len(gated)} gated instructions; worst {min(top, len(gated))}:"]
    for dyn in gated[:top]:
        lines.append(
            f"  seq {dyn.seq:6d} {dyn.pc:#08x} {dyn.inst.text():24s} "
            f"waited {dyn.gated_cycles} cycles"
        )
    return "\n".join(lines)
