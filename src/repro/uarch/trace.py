"""Pipeline-timeline rendering and observation-trace capture.

Every :class:`~repro.uarch.dyninst.DynInst` already records its
fetch/dispatch/issue/complete/commit cycles; with ``record_pipeline=True``
the core keeps the retired instructions, and this module renders them as a
per-instruction timeline — the fastest way to *see* where a policy inserts
its delays:

    seq    pc      instruction          pipeline
    17  0x1028  ld t5, 0(t4)        ...F....D--------I=C.....R
                                            ^^^^^^^^ policy gate

Legend: F fetch, D dispatch, ``-`` waiting in the IQ (operands or gate),
``I`` issue, ``=`` executing, ``C`` complete, ``.`` waiting, ``R`` retire.

The second half of this module is the **observation trace** — the
attacker's view of a run, in the SPECTECTOR sense: everything a
microarchitectural observer can see.  With ``record_observations=True``
the core appends one event per

* ``ld`` — load issued to the memory system (or forwarded from a store):
  the address reaches the cache hierarchy, *including transient loads that
  are later squashed* (that is the Spectre channel);
* ``fl`` — ``cflush`` executed (speculative flushes perturb the caches);
* ``st`` — store committed (its write reaches the hierarchy at commit);
* ``br`` / ``jr`` — conditional branch / indirect jump resolved, with the
  actual outcome/target.

Each event carries its cycle, so the trace is *timing-sensitive*: two runs
of one program that differ only in declared-secret data produce identical
traces iff the program leaks nothing through addresses, control flow, or
timing.  The differential leakage oracle (:mod:`repro.adversarial.oracle`)
compares :meth:`ObservationTrace.digest` across two secret fills.
Recording is bit-invisible — it only appends to a side list and never
feeds back into timing — so observed runs cost the same simulated cycles
as unobserved ones.
"""

from __future__ import annotations

import hashlib
import json

from .dyninst import DynInst


class ObservationTrace:
    """Microarchitectural observation events of one run.

    Events are ``(kind, pc, value, cycle, seq)`` tuples appended in the
    order the core performs them (deterministic for a deterministic run).
    ``value`` is the accessed address for ``ld``/``st``/``fl``, the taken
    bit for ``br`` and the resolved target for ``jr``.  ``seq`` is the
    dynamic instruction number; :attr:`squashed` marks the seqs that were
    later squashed, so events split into committed and transient views.
    """

    __slots__ = ("events", "squashed")

    def __init__(self) -> None:
        self.events: list[tuple[str, int, int, int, int]] = []
        self.squashed: set[int] = set()

    def record(self, kind: str, pc: int, value: int, cycle: int, seq: int) -> None:
        self.events.append((kind, pc, value, cycle, seq))

    def __len__(self) -> int:
        return len(self.events)

    def normalized(self) -> list[tuple[str, int, int, int, bool]]:
        """Events as ``(kind, pc, value, cycle, transient)`` records.

        The raw ``seq`` is replaced by the derived transient bit: two runs
        are observationally equivalent iff these lists are equal.
        """
        squashed = self.squashed
        return [
            (kind, pc, value, cycle, seq in squashed)
            for kind, pc, value, cycle, seq in self.events
        ]

    def transient_events(self) -> list[tuple[str, int, int, int, bool]]:
        return [e for e in self.normalized() if e[4]]

    def digest(self) -> str:
        """Content hash of the normalized trace (the oracle's unit)."""
        body = json.dumps(self.normalized(), separators=(",", ":"))
        return hashlib.sha256(body.encode()).hexdigest()


def first_divergence(
    a: ObservationTrace, b: ObservationTrace
) -> tuple[int, tuple | None, tuple | None] | None:
    """First index where two observation traces differ, with both events.

    Returns ``None`` when the traces are identical; a missing event (one
    trace is a prefix of the other) is reported as ``None`` on that side.
    """
    ea, eb = a.normalized(), b.normalized()
    for i in range(max(len(ea), len(eb))):
        va = ea[i] if i < len(ea) else None
        vb = eb[i] if i < len(eb) else None
        if va != vb:
            return i, va, vb
    return None


def render_timeline(
    retired: list[DynInst],
    start: int = 0,
    count: int = 32,
    max_width: int = 96,
) -> str:
    """Render ``count`` retired instructions starting at index ``start``."""
    window = [d for d in retired[start : start + count] if d.commit_cycle >= 0]
    if not window:
        return "(no retired instructions in range)"
    origin = min(d.fetch_cycle for d in window)
    horizon = max(d.commit_cycle for d in window) + 1
    span = horizon - origin
    scale = 1
    if span > max_width:
        scale = (span + max_width - 1) // max_width

    lines = [
        f"cycles {origin}..{horizon - 1}"
        + (f" (1 char = {scale} cycles)" if scale > 1 else "")
    ]
    for dyn in window:
        cells = [" "] * ((span + scale - 1) // scale)

        def put(cycle: int, char: str) -> None:
            if cycle < 0:
                return
            index = (cycle - origin) // scale
            if 0 <= index < len(cells):
                # Later lifecycle markers win within a scaled cell.
                cells[index] = char

        for c in range(dyn.dispatch_cycle, dyn.issue_cycle):
            put(c, "-")
        for c in range(dyn.issue_cycle, dyn.complete_cycle):
            put(c, "=")
        for c in range(dyn.complete_cycle, dyn.commit_cycle):
            put(c, ".")
        put(dyn.fetch_cycle, "F")
        put(dyn.dispatch_cycle, "D")
        put(dyn.issue_cycle, "I")
        put(dyn.complete_cycle, "C")
        put(dyn.commit_cycle, "R")
        text = dyn.inst.text()[:22].ljust(22)
        gate = f" gated:{dyn.gated_cycles}" if dyn.gated_cycles else ""
        lines.append(
            f"{dyn.seq:5d} {dyn.pc:#08x} {text} |{''.join(cells)}|{gate}"
        )
    return "\n".join(lines)


def gate_summary(retired: list[DynInst], top: int = 10) -> str:
    """The most-delayed transmitters of a run (policy post-mortem)."""
    gated = [d for d in retired if d.gated_cycles > 0]
    gated.sort(key=lambda d: d.gated_cycles, reverse=True)
    if not gated:
        return "no instructions were gated"
    lines = [f"{len(gated)} gated instructions; worst {min(top, len(gated))}:"]
    for dyn in gated[:top]:
        lines.append(
            f"  seq {dyn.seq:6d} {dyn.pc:#08x} {dyn.inst.text():24s} "
            f"waited {dyn.gated_cycles} cycles"
        )
    return "\n".join(lines)
