"""Out-of-order core configuration (Table 1 of the reproduction)."""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..errors import ConfigError
from ..mem.hierarchy import MemHierarchyConfig


@dataclass(frozen=True)
class CoreConfig:
    """All microarchitectural parameters of one simulated core.

    Defaults model a contemporary mid-size out-of-order core (gem5 O3-like),
    and are the configuration reported as Table 1 in EXPERIMENTS.md.
    """

    # Widths
    fetch_width: int = 4
    dispatch_width: int = 4
    issue_width: int = 4
    commit_width: int = 4

    # Windows / queues
    rob_size: int = 192
    iq_size: int = 64
    lq_size: int = 48
    sq_size: int = 48
    fetch_queue_size: int = 32

    # Front end
    frontend_latency: int = 5          # fetch -> dispatch pipe depth
    predictor: str = "tournament"
    btb_entries: int = 1024
    ras_depth: int = 16

    # Execution resources
    alu_ports: int = 4
    mul_ports: int = 1
    div_ports: int = 1
    mem_ports: int = 2

    # Latencies (cycles)
    alu_latency: int = 1
    branch_latency: int = 2            # issue-to-resolve depth of branches
    mul_latency: int = 3
    div_latency: int = 12
    agu_latency: int = 1               # address generation before cache access
    store_forward_latency: int = 2

    # Memory system
    mem: MemHierarchyConfig = field(default_factory=MemHierarchyConfig)

    # Safety rails
    max_cycles: int = 20_000_000

    def __post_init__(self) -> None:
        positive_fields = (
            "fetch_width", "dispatch_width", "issue_width", "commit_width",
            "rob_size", "iq_size", "lq_size", "sq_size", "fetch_queue_size",
            "frontend_latency", "alu_ports", "mem_ports",
            "alu_latency", "agu_latency",
        )
        for name in positive_fields:
            if getattr(self, name) <= 0:
                raise ConfigError(f"CoreConfig.{name} must be positive")
        if self.rob_size < self.iq_size:
            raise ConfigError("ROB must be at least as large as the IQ")

    def with_overrides(self, **kwargs) -> "CoreConfig":
        """A modified copy (used by sensitivity sweeps)."""
        return replace(self, **kwargs)

    def table_rows(self) -> list[tuple[str, str]]:
        """Human-readable configuration rows (Table 1)."""
        mem = self.mem
        return [
            ("Pipeline width", f"{self.fetch_width}-wide fetch/dispatch/issue/commit"),
            ("ROB / IQ / LQ / SQ", f"{self.rob_size} / {self.iq_size} / {self.lq_size} / {self.sq_size}"),
            ("Front-end depth", f"{self.frontend_latency} cycles"),
            ("Branch predictor", f"{self.predictor}, {self.btb_entries}-entry BTB, {self.ras_depth}-deep RAS"),
            ("FUs", f"{self.alu_ports} ALU, {self.mul_ports} MUL, {self.div_ports} DIV, {self.mem_ports} mem ports"),
            ("L1I", f"{mem.l1i.size_bytes // 1024} KiB, {mem.l1i.assoc}-way"),
            ("L1D", f"{mem.l1d.size_bytes // 1024} KiB, {mem.l1d.assoc}-way, {mem.l1d.hit_latency}-cycle"),
            ("L2", f"{mem.l2.size_bytes // 1024} KiB, {mem.l2.assoc}-way, {mem.l2.hit_latency}-cycle"),
            ("LLC", f"{mem.llc.size_bytes // 1024} KiB, {mem.llc.assoc}-way, {mem.llc.hit_latency}-cycle"),
            ("DRAM", f"{mem.dram_latency}-cycle, {mem.mshr_entries} MSHRs"),
        ]
