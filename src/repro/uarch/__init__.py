"""Out-of-order core: configuration, dynamic instructions, the pipeline."""

from .config import CoreConfig
from .core import OooCore, SimResult
from .dyninst import Checkpoint, DynInst, Stage
from .energy import EnergyBreakdown, EnergyParams, energy_delay_product, estimate_energy
from .stats import CoreStats
from .trace import gate_summary, render_timeline

__all__ = [
    "Checkpoint",
    "CoreConfig",
    "CoreStats",
    "DynInst",
    "EnergyBreakdown",
    "EnergyParams",
    "OooCore",
    "SimResult",
    "Stage",
    "energy_delay_product",
    "estimate_energy",
    "gate_summary",
    "render_timeline",
]
