"""Out-of-order core: configuration, dynamic instructions, the pipeline."""

from .config import CoreConfig
from .core import OooCore, SimResult
from .decoded import DecodedProgram, decoded_image
from .dyninst import Checkpoint, DynInst, Stage
from .energy import EnergyBreakdown, EnergyParams, energy_delay_product, estimate_energy
from .horizon import WarpStats, warp_to_horizon
from .stats import CoreStats
from .trace import ObservationTrace, first_divergence, gate_summary, render_timeline

__all__ = [
    "Checkpoint",
    "CoreConfig",
    "CoreStats",
    "DecodedProgram",
    "DynInst",
    "EnergyBreakdown",
    "EnergyParams",
    "ObservationTrace",
    "OooCore",
    "SimResult",
    "Stage",
    "WarpStats",
    "decoded_image",
    "energy_delay_product",
    "estimate_energy",
    "first_divergence",
    "gate_summary",
    "render_timeline",
    "warp_to_horizon",
]
