"""Deterministic event-horizon cycle skipping for the out-of-order core.

The cycle loop in :meth:`~repro.uarch.core.OooCore.run` historically ticked
:meth:`step` once per simulated cycle, even when every pipeline structure
was provably idle — the dominant cost on memory-bound workloads, where a
single DRAM miss stalls the machine for ~120 cycles at a time.

This module decides, from the core's scheduler state, whether the *current*
cycle can possibly change anything.  A cycle is **quiet** when:

* no retry event is pending (``_retry_event`` — policy/memdep-gated loads,
  gated branches and NDA-deferred values are only re-evaluated after one),
* the ready heap is empty (nothing can issue),
* no completion is due (``completions[0][0] > cycle``),
* the ROB head is not completed (nothing can commit or NDA-release),
* no serialized instruction (rdcycle/fence) sits at the ROB head,
* dispatch would only bump a structural-stall counter (or the fetch-queue
  head is still in the front-end pipe), and
* fetch is stalled (halt / wild PC / jalr wait / L1I refill) or the fetch
  queue is full.

Quiet state is *stable*: nothing in it changes until the earliest of the
pending-completion heap head (which also carries every MSHR/DRAM return and
policy-gate release, since gates are re-evaluated on completion events), the
fetch-queue head leaving the front-end pipe, or the L1I refill timer.  So
the engine warps ``_cycle`` straight to that horizon and bulk-credits the
per-cycle stall counters (fetch stalls and ROB/IQ/LSQ dispatch stalls) the
stepped loop would have incremented — making the warped run **bit-identical**
to the stepped one, including `SimulationTimeout`/watchdog behavior (the
warp clamps at both boundaries so the guard checks fire at the same cycle
with the same counters).

The proof obligation "no event can fire inside a skipped interval" is
enforced by ``tests/test_event_horizon.py`` (suite-wide equivalence plus a
hypothesis property over random configurations).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..isa import Opcode
from .dyninst import Stage

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .core import OooCore

#: Mirrors ``core._WATCHDOG_CYCLES`` (imported there; kept here to avoid a
#: circular import at module load).
WATCHDOG_CYCLES = 100_000

_EMPTY_DEPS: frozenset[int] = frozenset()


class WarpStats:
    """Diagnostics of the event-horizon engine (not part of CoreStats).

    Deliberately kept off :class:`~repro.uarch.stats.CoreStats`: simulated
    results must be bit-identical with the engine on or off, so anything
    that differs between the two modes lives here instead.
    """

    __slots__ = ("warps", "cycles_skipped", "reasons")

    def __init__(self) -> None:
        self.warps = 0
        self.cycles_skipped = 0
        #: horizon source -> count: what bounded each warp.
        self.reasons: dict[str, int] = {}

    def as_dict(self) -> dict:
        return {
            "warps": self.warps,
            "cycles_skipped": self.cycles_skipped,
            "reasons": dict(self.reasons),
        }


def warp_to_horizon(core: "OooCore", limit: int) -> int:
    """Skip ahead if the current cycle is quiet; returns cycles skipped.

    Returns 0 when the cycle may make progress — the caller must run a
    normal :meth:`step`.  Otherwise ``core._cycle`` has been advanced to
    the event horizon and the per-cycle stall statistics credited exactly
    as the stepped loop would have.
    """
    if core._retry_event or core.ready:
        return 0
    cycle = core._cycle
    # Never warp past the run-loop guards: the cycle-limit check and the
    # no-commit watchdog must fire at exactly the cycle the stepped loop
    # would have fired them.
    horizon = limit
    reason = "limit"
    watchdog = core._last_commit_cycle + WATCHDOG_CYCLES + 1
    if watchdog < horizon:
        horizon = watchdog
        reason = "watchdog"

    completions = core.completions
    if completions:
        due = completions[0][0]
        if due <= cycle:
            return 0  # a completion (or lazy-deleted entry) fires now
        if due < horizon:
            horizon = due
            reason = "completion"

    rob = core.rob
    if rob:
        head = rob[0]
        if head.stage is Stage.COMPLETED:
            return 0  # commit (or NDA head-release) can make progress
        serialize_wait = core.serialize_wait
        if serialize_wait:
            for dyn in serialize_wait:
                if dyn is head:
                    return 0  # rdcycle/fence at the head issues this cycle

    cfg = core.config
    dispatch_stall = 0  # 0 none, 1 rob-full, 2 iq-full, 3 lsq-full
    fetch_queue = core.fetch_queue
    if fetch_queue:
        head = fetch_queue[0]
        ripe_at = head.fetch_cycle + cfg.frontend_latency
        if ripe_at > cycle:
            if ripe_at < horizon:
                horizon = ripe_at
                reason = "frontend"
        else:
            # The head is dispatchable: replicate _dispatch's first-blocked
            # decision.  Any structural stall is stable during quiet cycles
            # (occupancies only change on events) and counts one stat per
            # cycle; anything else means dispatch would make progress.
            opcode = head.opcode
            if len(rob) >= cfg.rob_size:
                dispatch_stall = 1
            elif opcode is not Opcode.HALT and core.iq_count >= cfg.iq_size:
                dispatch_stall = 2
            elif opcode.is_load and core.lq_count >= cfg.lq_size:
                dispatch_stall = 3
            elif opcode.is_store and core.sq_count >= cfg.sq_size:
                dispatch_stall = 3
            else:
                return 0

    fetch_blocked = (
        core.halt_fetched
        or core.fetch_wild
        or core.fetch_stalled_on is not None
    )
    if not fetch_blocked:
        resume = core._fetch_resume_cycle
        if cycle < resume:
            # Blocked solely by the L1I refill timer, which expires on its
            # own: it bounds the horizon.
            fetch_blocked = True
            if resume < horizon:
                horizon = resume
                reason = "icache"
        elif len(fetch_queue) < cfg.fetch_queue_size:
            # Fetch would make progress.  If the only possible progress for
            # several cycles is streaming straight-line superblock fetch
            # (scheduler quiet, dispatch idle), run those fetch packets
            # back-to-back here instead of stepping cycle by cycle.
            if dispatch_stall == 0 and core._superblock:
                return _stream_superblocks(core, cycle, horizon)
            return 0

    skipped = horizon - cycle
    if skipped <= 0:
        return 0

    stats = core.stats
    if fetch_blocked:
        stats.fetch_stall_cycles += skipped
    if dispatch_stall == 1:
        stats.rob_full_stalls += skipped
    elif dispatch_stall == 2:
        stats.iq_full_stalls += skipped
    elif dispatch_stall == 3:
        stats.lsq_full_stalls += skipped
    core._cycle = horizon

    warp_stats = core.warp_stats
    warp_stats.warps += 1
    warp_stats.cycles_skipped += skipped
    warp_stats.reasons[reason] = warp_stats.reasons.get(reason, 0) + 1
    return skipped


def _stream_superblocks(core: "OooCore", cycle: int, horizon: int) -> int:
    """Run consecutive fetch-only cycles of one superblock in a tight loop.

    Preconditions (established by :func:`warp_to_horizon` before the call):
    no retry event, empty ready heap, no completion due, ROB head neither
    completed nor a serialized head, dispatch idle (queue empty or head not
    yet through the front-end pipe — never structurally stalled, whose
    per-cycle stall stats streaming does not model), and fetch unblocked
    with queue space.  Under those conditions every cycle until ``horizon``
    executes *only* the fetch stage, so calling the superblock's generated
    fetch op once per cycle — with the true cycle number, preserving
    I-cache access order/timing — is bit-identical to stepping.

    ``horizon`` already bounds at limit/watchdog/completion-due and, when
    the queue is non-empty, the head's dispatch-ripeness cycle; an empty
    queue is bounded by the first streamed packet's own ripeness.  The
    stream additionally stops at the queue's capacity, the superblock's
    terminator (both handled by full-packet bounding), and any L1I miss
    (that cycle still fetched its pre-miss prefix; the refill timer then
    blocks fetch exactly as in the stepped run).

    Returns the number of cycles consumed (0 = not eligible, step normally).
    """
    dec = core._decoded.by_pc.get(core.fetch_pc)
    if dec is None:
        return 0
    sb = dec.sb
    if sb is None:
        return 0
    cfg = core.config
    width = cfg.fetch_width
    pos = dec.sb_pos
    fq = core.fetch_queue
    if not fq:
        ripe = cycle + cfg.frontend_latency
        if ripe < horizon:
            horizon = ripe
    k = horizon - cycle
    bound = (cfg.fetch_queue_size - len(fq)) // width
    if bound < k:
        k = bound
    bound = (sb.n - pos) // width
    if bound < k:
        k = bound
    if k < 2:
        return 0  # a single eligible cycle is just a normal step

    # Entry-PC region close + control deps, exactly as _fetch computes once
    # per packet; interior PCs are never reconvergence points and no branch
    # is fetched while streaming, so the dep set is constant throughout.
    pc = core.fetch_pc
    deps = _EMPTY_DEPS
    regions = core.active_regions
    if regions:
        if pc in core._reconv_live:
            core.active_regions = regions = [
                entry for entry in regions if entry[1] != pc
            ]
            core._reconv_live.discard(pc)
            core._live_deps = None
        if regions:
            deps = core._live_deps
            if deps is None:
                deps = core._live_deps = frozenset(
                    r[0] for r in regions if r[2]
                )

    fop = sb.fop
    line_bits = core._line_bits
    last_line = core._last_fetch_line
    c = cycle
    end = cycle + k
    stalled = 0
    while c < end:
        pos, _, last_line, stalled = fop(
            core, fq, c, width, width, pos, deps, last_line, line_bits
        )
        c += 1
        if stalled:
            break  # L1I miss: _fetch_resume_cycle is set; stop streaming
    core._cycle = c
    core.fetch_pc = sb.pcs[pos] if pos < sb.n else sb.next_pc
    core._last_fetch_line = last_line

    streamed = c - cycle
    warp_stats = core.warp_stats
    warp_stats.warps += 1
    warp_stats.cycles_skipped += streamed
    warp_stats.reasons["superblock"] = (
        warp_stats.reasons.get("superblock", 0) + 1
    )
    return streamed
