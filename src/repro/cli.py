"""Command-line interface.

Subcommands::

    repro run FILE.s [--policy P] [--functional] [--trace]
    repro disasm FILE.s
    repro analyze TARGET [--json]        # compiler pass + gadget scan + verifier
    repro lint TARGET... [--expect E]    # scan many programs, gate on the result
    repro bench [--scale S] [--jobs N] [--policies ...] [--workloads ...]
    repro experiment ID... [--scale S] [--jobs N] [--cache]
    repro fuzz [--seed N] [--count N] [--repair] [--json] [--out F]
                                         # adversarial campaign: synthesize,
                                         # scan, oracle-judge, repair
    repro repair TARGET [--strategy S] [--emit F]
                                         # fence repair + oracle certification
    repro mitigate TARGET --pass P [--emit F]
                                         # software mitigation pass + dual
                                         # certification (equivalence, oracle)
    repro attack NAME [--policy P] [--secret N]
    repro pipeline FILE.s [--policy P]   # per-instruction timeline view
    repro profile TARGET [--policy P] [--sort cumtime] [--json]
                                         # cProfile + cycle attribution
    repro report [--scale S]             # fold bench artifacts into EXPERIMENTS.md
    repro suite                          # list workloads
    repro cache {info,verify,repair,clear}   # persistent run-result cache
    repro chaos [--seed N] [--service]   # fault-injection smoke drill
    repro serve [--port P] [--jobs N]    # simulation-as-a-service daemon
    repro submit WORKLOAD... [--policies ...] [--wait] [--verify]

``--jobs N`` fans simulations out over N worker processes (default:
``$REPRO_JOBS`` or 1); ``--cache`` persists run results on disk (location:
``$REPRO_CACHE_DIR`` or ``~/.cache/repro-levioso/runs``).

Grid execution is supervised: ``--retries``/``--timeout`` bound each
point's attempts and wall clock, ``--resume`` continues an interrupted
invocation from its journal (requires ``--cache``), ``--keep-going``
finishes the grid around permanently failed points and renders partial
tables with explicit holes, and ``--fault-plan`` injects a seeded fault
plan (JSON text or ``@file``) for chaos testing.

Also usable as ``python -m repro ...``.
"""

from __future__ import annotations

import argparse
import sys

from .asm import assemble, disassemble
from .attacks import ATTACKS, run_attack
from .compiler import run_levioso_pass, static_stats
from .errors import ReproError
from .functional import run_program
from .harness import (
    ExperimentRunner,
    GridPoint,
    ParallelRunner,
    ResultCache,
    default_jobs,
    format_table,
    run_experiments,
)
from .harness.experiments import EXPERIMENTS
from .isa import register_name
from .secure import ALL_POLICY_NAMES, make_policy
from .uarch import OooCore
from .workloads import WORKLOAD_NAMES, build_workload


def _load_source(path: str):
    with open(path) as f:
        return assemble(f.read(), name=path)


def _resolve_program(target: str, scale: str = "test"):
    """A lint/analyze target: assembly file, workload name, or attack name."""
    import os

    if os.path.exists(target):
        return _load_source(target)
    if (target in WORKLOAD_NAMES or target.startswith("fuzz/")
            or target.startswith("mit/")):
        return build_workload(target, scale=scale).assemble()
    if target in ATTACKS:
        return ATTACKS[target]()
    raise ReproError(
        f"unknown target {target!r}: not a file, workload "
        f"({', '.join(WORKLOAD_NAMES)}), fuzz/s<seed>/i<index>/f<fill> name, "
        f"mit/<pass>/<base> variant, or attack ({', '.join(sorted(ATTACKS))})"
    )


def cmd_run(args) -> int:
    program = _load_source(args.file)
    if args.json and not args.functional:
        import json

        core = OooCore(program, policy=make_policy(args.policy))
        result = core.run()
        print(json.dumps(result.stats_dict(), indent=2))
        return 0
    if args.functional:
        result = run_program(program, trace=args.trace)
        print(f"instructions: {result.instructions}")
        regs = result.regs
    else:
        core = OooCore(program, policy=make_policy(args.policy))
        result = core.run()
        stats = result.stats
        print(f"policy:       {args.policy}")
        print(f"cycles:       {stats.cycles}")
        print(f"instructions: {stats.committed}")
        print(f"IPC:          {stats.ipc:.3f}")
        print(f"mispredicts:  {stats.branch_mispredicts + stats.jalr_mispredicts}")
        print(f"gated loads:  {stats.loads_gated} ({stats.load_gate_cycles} cycles)")
        regs = result.regs
    nonzero = [
        f"{register_name(i)}={v:#x}" for i, v in enumerate(regs) if v and i != 2
    ]
    print("registers:   ", " ".join(nonzero) or "(all zero)")
    return 0


def cmd_disasm(args) -> int:
    print(disassemble(_load_source(args.file)))
    return 0


def cmd_analyze(args) -> int:
    from .analysis import scan_program, verify_metadata

    program = _resolve_program(args.file)
    info = run_levioso_pass(program)
    stats = static_stats(program)
    scan = scan_program(program)
    verdict = verify_metadata(program, info)

    if args.json:
        import dataclasses
        import json

        print(
            json.dumps(
                {
                    "program": program.name,
                    "pass": dataclasses.asdict(stats),
                    "scan": scan.to_dict(),
                    "verifier": verdict.to_dict(),
                },
                indent=2,
            )
        )
        return 0 if scan.clean and verdict.sound else 1

    print(f"functions analysed:   {len(set(info.function_of_branch.values()))}")
    print(f"static instructions:  {stats.static_instructions}")
    print(f"conditional branches: {stats.static_branches}")
    print(f"reconvergence found:  {stats.reconvergence_coverage:.1%}")
    print(f"mean region size:     {stats.mean_region_size:.1f} instructions")
    print()
    rows = []
    for branch_pc, reconv in sorted(info.reconv_pc.items()):
        rows.append(
            [
                f"{branch_pc:#x}",
                f"{reconv:#x}" if reconv is not None else "(none)",
                len(info.control_dep_pcs.get(branch_pc, ())),
                info.function_of_branch.get(branch_pc, "?"),
            ]
        )
    print(format_table(["branch", "reconv", "region size", "function"], rows))

    print()
    print(
        f"metadata verifier:    "
        f"{'SOUND' if verdict.sound else 'UNSOUND'} "
        f"({verdict.branches_checked} branches, "
        f"{verdict.exact_regions} exact regions, "
        f"{verdict.excess_pcs} excess pcs)"
    )
    for violation in verdict.violations:
        print(f"  VIOLATION {violation.kind} at {violation.branch_pc:#x} "
              f"[{violation.function}]: {violation.detail}")

    print(
        f"gadget scanner:       "
        f"{'clean' if scan.clean else f'{len(scan.findings)} finding(s)'} "
        f"({scan.functions_scanned} functions, "
        f"{scan.orphan_instructions} orphan instructions, "
        f"{scan.secret_ranges} secret range(s))"
    )
    for finding in scan.findings:
        print(f"  [{finding.kind}] {finding.pc:#x} {finding.instruction} "
              f"— {finding.message}")
    return 0 if scan.clean and verdict.sound else 1


def _parse_expected_counts(spec: str) -> dict[str, int]:
    """Parse ``counts:<kind>=<n>[,<kind>=<n>...]`` into a dict."""
    want: dict[str, int] = {}
    body = spec[len("counts:"):]
    for part in body.split(","):
        kind, sep, num = part.strip().partition("=")
        if not kind or not sep or not num.isdigit():
            raise ReproError(
                f"malformed --expect {spec!r}: want "
                "counts:<kind>=<n>[,<kind>=<n>...] with integer counts"
            )
        want[kind] = int(num)
    return want


def _expect_spec(value: str) -> str:
    if value in ("clean", "findings") or value.startswith("counts:"):
        return value
    raise argparse.ArgumentTypeError(
        f"invalid expectation {value!r} "
        "(choose clean, findings, or counts:<kind>=<n>,...)"
    )


def cmd_lint(args) -> int:
    from .analysis import scan_program, verify_metadata

    results = []
    for target in args.targets:
        program = _resolve_program(target)
        scan = scan_program(program)
        verdict = verify_metadata(program)
        results.append((target, scan, verdict))

    if args.json:
        import json

        print(
            json.dumps(
                [
                    {
                        "target": target,
                        "scan": scan.to_dict(),
                        "verifier": verdict.to_dict(),
                    }
                    for target, scan, verdict in results
                ],
                indent=2,
            )
        )
    else:
        rows = []
        for target, scan, verdict in results:
            counts = scan.counts_by_kind()
            rows.append(
                [
                    target,
                    "clean" if scan.clean else f"{len(scan.findings)} finding(s)",
                    ", ".join(f"{k}:{v}" for k, v in sorted(counts.items()))
                    or "-",
                    "sound" if verdict.sound else "UNSOUND",
                ]
            )
        print(format_table(["target", "scan", "kinds", "metadata"], rows))

    unsound = [t for t, _, v in results if not v.sound]
    flagged = [t for t, s, _ in results if not s.clean]
    if unsound:
        print(f"error: unsound metadata on: {', '.join(unsound)}", file=sys.stderr)
        return 1
    if args.expect == "clean":
        if flagged:
            print(
                f"error: expected clean, but findings on: {', '.join(flagged)}",
                file=sys.stderr,
            )
            return 1
        return 0
    if args.expect == "findings":
        missed = [t for t, s, _ in results if s.clean]
        if missed:
            print(
                f"error: expected findings, but scanned clean: "
                f"{', '.join(missed)}",
                file=sys.stderr,
            )
            return 1
        return 0
    if args.expect and args.expect.startswith("counts:"):
        # Exact per-kind totals across all targets; a kind not listed in
        # the expectation must not appear at all (count 0).
        want = _parse_expected_counts(args.expect)
        got: dict[str, int] = {}
        for _, scan, _ in results:
            for kind, count in scan.counts_by_kind().items():
                got[kind] = got.get(kind, 0) + count
        mismatches = [
            f"{kind}: want {want.get(kind, 0)}, got {got.get(kind, 0)}"
            for kind in sorted(set(want) | set(got))
            if want.get(kind, 0) != got.get(kind, 0)
        ]
        if mismatches:
            print(
                f"error: finding counts diverge from expectation — "
                f"{'; '.join(mismatches)}",
                file=sys.stderr,
            )
            return 1
        return 0
    return 1 if flagged else 0


def cmd_fuzz(args) -> int:
    import json

    from .adversarial import CampaignConfig, run_campaign

    cache = _make_cache(args)
    _install_fault_plan(args)
    config = CampaignConfig.resolve(
        seed=args.seed,
        count=args.count,
        policies=tuple(args.policies) if args.policies else None,
        repair=args.repair,
    )
    runner = ParallelRunner(
        scale="test", jobs=args.jobs, cache=cache,
        retry_policy=_make_retry_policy(args), keep_going=args.keep_going,
    )
    report = run_campaign(config, runner)
    text = json.dumps(report, indent=2, sort_keys=True)
    if args.out:
        with open(args.out, "w") as f:
            f.write(text + "\n")
    if args.json:
        print(text)
    else:
        gates = report["gates"]
        print(f"campaign: seed {config.seed}, {config.count} programs, "
              f"policies {', '.join(config.policies)}, "
              f"fills {', '.join(f'{f:#04x}' for f in config.fills)}")
        rows = []
        for cls, cm in report["scanner"]["vs_intent"].items():
            rows.append([
                cls, cm["tp"], cm["fp"], cm["fn"], cm["tn"],
                f"{cm['precision']:.3f}", f"{cm['recall']:.3f}",
            ])
        print()
        print(format_table(
            ["class", "TP", "FP", "FN", "TN", "precision", "recall"], rows
        ))
        print()
        summary = report["repair"]
        if summary["repaired_items"]:
            slowdowns = ", ".join(
                f"{policy} {value:.3f}x"
                for policy, value in summary["mean_slowdown"].items()
            )
            print(f"repair: {summary['repaired_items']} program(s), "
                  f"mean {summary['mean_fences']:.2f} fence(s), "
                  f"mean slowdown {slowdowns}")
        print(f"gates: scanner recall on intended-leaky "
              f"{gates['scanner_recall_intended_leaky']:.3f}, "
              f"{gates['scanner_false_negatives']} scanner false negative(s), "
              f"{gates['oracle_leaks_after_repair']} oracle leak(s) after "
              f"repair — {'PASS' if gates['passed'] else 'FAIL'}")
    if args.out and not args.json:
        print(f"report written to {args.out}")
    return 0 if report["gates"]["passed"] else 1


def cmd_repair(args) -> int:
    from .adversarial import program_verdict, repair_program
    from .analysis import scan_program

    program = _resolve_program(args.target)
    before = scan_program(program)
    verdict_before = program_verdict(program, args.policy)
    outcome = repair_program(program, strategy=args.strategy)
    verdict_after = program_verdict(outcome.program, args.policy)

    def cycles(prog) -> int:
        core = OooCore(prog, policy=make_policy(args.policy))
        return core.run().cycles

    changed = bool(outcome.fences_inserted or outcome.mitigation)
    base_cycles = cycles(program)
    repaired_cycles = cycles(outcome.program) if changed else base_cycles
    certified = outcome.clean and not verdict_after.leaks

    if args.json:
        import json

        print(json.dumps({
            "target": args.target,
            "policy": args.policy,
            "strategy": outcome.strategy,
            "before": {
                "findings": [f.to_dict() for f in before.findings],
                "oracle": verdict_before.verdict,
            },
            "after": {
                "scanner_clean": outcome.clean,
                "oracle": verdict_after.verdict,
            },
            "fences_inserted": outcome.fences_inserted,
            "mitigation": outcome.mitigation,
            "iterations": outcome.iterations,
            "steps": outcome.steps,
            "cycles": {"base": base_cycles, "repaired": repaired_cycles},
            "slowdown": round(repaired_cycles / base_cycles, 4),
            "certified": certified,
        }, indent=2))
    else:
        print(f"target:    {args.target} (policy {args.policy}, "
              f"strategy {outcome.strategy})")
        print(f"before:    {len(before.findings)} finding(s), "
              f"oracle {verdict_before.verdict}")
        for step in outcome.steps:
            if "site" in step:
                print(f"  fence at {step['site']:#x} "
                      f"(iteration {step['iteration']}, {step['kind']} "
                      f"transmitter at {step['pc']:#x})")
            else:
                print(f"  applied pass {step['pass']} "
                      f"({step.get('stats', {})})")
        print(f"after:     {'clean' if outcome.clean else 'STILL FLAGGED'}, "
              f"oracle {verdict_after.verdict}")
        cost = f"{outcome.fences_inserted} fence(s)"
        if outcome.mitigation:
            cost = f"pass {outcome.mitigation}, {cost}"
        print(f"cost:      {cost}, "
              f"{base_cycles} -> {repaired_cycles} cycles "
              f"({repaired_cycles / base_cycles:.3f}x)")
        print(f"verdict:   {'CERTIFIED SECURE' if certified else 'NOT CERTIFIED'}")
    if args.emit:
        with open(args.emit, "w") as f:
            f.write(outcome.source)
        print(f"repaired source written to {args.emit}")
    return 0 if certified else 1


def cmd_mitigate(args) -> int:
    from .compiler.mitigations import certify_mitigation

    program = _resolve_program(args.target, scale=args.scale)
    result, certificate = certify_mitigation(
        program, args.pass_name, name=f"{program.name}+{args.pass_name}"
    )
    if args.json:
        import json

        payload = certificate.to_dict()
        payload["target"] = args.target
        payload["changed"] = result.changed
        print(json.dumps(payload, indent=2))
    else:
        print(f"target:      {args.target} (pass {result.tag})")
        stats = ", ".join(f"{k}={v}" for k, v in sorted(result.stats.items()))
        print(f"transform:   {stats or 'no change needed'}")
        print(f"equivalent:  {'yes' if certificate.equivalent else 'NO'} "
              f"({certificate.baseline_instructions} -> "
              f"{certificate.mitigated_instructions} instructions, "
              f"{certificate.instruction_overhead:+.1%})")
        print(f"scanner:     {'clean' if certificate.scanner_clean else str(certificate.findings_left) + ' finding(s) left'}")
        print(f"oracle:      {certificate.oracle_verdict} (policy none)")
        print(f"verdict:     "
              f"{'CERTIFIED' if certificate.certified else 'NOT CERTIFIED'}")
    if args.emit:
        with open(args.emit, "w") as f:
            f.write(result.program.source or "")
        print(f"mitigated source written to {args.emit}")
    return 0 if certificate.certified else 1


def _make_cache(args) -> ResultCache | None:
    if not getattr(args, "cache", False):
        return None
    return ResultCache(getattr(args, "cache_dir", None))


def _make_retry_policy(args):
    from .harness import RetryPolicy

    return RetryPolicy(
        max_attempts=max(getattr(args, "retries", 2) + 1, 1),
        timeout=getattr(args, "timeout", None),
    )


def _install_fault_plan(args) -> None:
    """Activate ``--fault-plan`` (inline JSON or ``@path``), if given."""
    text = getattr(args, "fault_plan", None)
    if not text:
        return
    from .faults import FaultPlan

    if text.startswith("@"):
        with open(text[1:]) as f:
            text = f.read()
    FaultPlan.from_json(text).install()


def cmd_bench(args) -> int:
    cache = _make_cache(args)
    _install_fault_plan(args)
    runner = ParallelRunner(
        scale=args.scale, verbose=args.jobs <= 1, jobs=args.jobs, cache=cache,
        retry_policy=_make_retry_policy(args), keep_going=args.keep_going,
    )
    policies = args.policies or ["none", "fence", "ctt", "levioso"]
    workloads = args.workloads or list(WORKLOAD_NAMES)
    runner.prefetch(
        GridPoint(w, p) for w in workloads for p in ["none", *policies]
    )
    rows = []
    for name in workloads:
        base = runner.run(name, "none")
        row = [name, base.cycles]
        for policy in policies:
            if policy == "none":
                row.append("0.0%")
                continue
            overhead = runner.overhead(name, policy)
            row.append(f"{100 * overhead:.1f}%")
        rows.append(row)
    print()
    print(format_table(["benchmark", "base cycles", *policies], rows))
    if cache is not None:
        print(f"cache: {cache.stats.hits} hits, {cache.stats.misses} misses")
    return 0


def cmd_experiment(args) -> int:
    from .harness import render_resilience

    cache = _make_cache(args)
    _install_fault_plan(args)
    results, report = run_experiments(
        args.ids, scale=args.scale, jobs=args.jobs, cache=cache,
        retry_policy=_make_retry_policy(args),
        keep_going=args.keep_going, resume=args.resume,
        journal_path=args.journal, with_report=True,
    )
    for result in results.values():
        print(result.text())
        print()
    if report.outcomes or report.pool_rebuilds:
        print(render_resilience(report))
    if cache is not None:
        print(f"cache: {cache.stats.hits} hits, {cache.stats.misses} misses, "
              f"{cache.stats.stores} stored"
              + (f", {cache.stats.quarantined} quarantined"
                 if cache.stats.quarantined else ""))
    return 0 if report.ok else 1


def cmd_cache(args) -> int:
    import json

    cache = ResultCache(args.cache_dir)
    if args.action == "clear":
        removed = cache.clear()
        print(f"removed {removed} cached run(s) from {cache.root}")
        return 0
    if args.action == "verify":
        result = cache.verify()
        print(json.dumps(result.as_dict(), indent=2))
        return 0 if result.clean else 1
    if args.action == "repair":
        counts = cache.repair()
        print(json.dumps(counts, indent=2))
        return 0
    print(json.dumps(cache.info(), indent=2))
    return 0


def cmd_chaos(args) -> int:
    if getattr(args, "cluster", False):
        from .cluster.chaos import cluster_chaos_smoke

        ok = cluster_chaos_smoke(
            seed=args.seed,
            scale=args.scale,
            workloads=tuple(args.workloads or ("gather", "pchase", "bsearch")),
            policies=tuple(args.policies or ("none", "fence", "levioso")),
        )
        return 0 if ok else 1
    if args.service:
        from .service.chaos import service_chaos_smoke

        ok = service_chaos_smoke(
            seed=args.seed,
            scale=args.scale,
            jobs=args.jobs,
            workloads=tuple(args.workloads or ("gather", "pchase")),
            policies=tuple(args.policies or ("none", "levioso")),
            cache_dir=args.cache_dir,
        )
        return 0 if ok else 1
    from .harness import chaos_smoke

    ok = chaos_smoke(
        seed=args.seed,
        scale=args.scale,
        jobs=args.jobs,
        workloads=tuple(args.workloads or ("gather", "pchase")),
        policies=tuple(args.policies or ("none", "levioso")),
        cache_dir=args.cache_dir,
    )
    return 0 if ok else 1


def cmd_serve(args) -> int:
    from .service.daemon import ServiceConfig, serve

    config = ServiceConfig(
        host=args.host,
        port=args.port,
        jobs=args.jobs,
        queue_depth=args.queue_depth,
        retries=args.retries,
        timeout=args.timeout,
        cache_dir=args.cache_dir,
        use_cache=args.cache or args.cache_dir is not None,
        drain_timeout=args.drain_timeout,
        register_url=args.register,
        node_id=args.node_id,
        advertise_url=args.advertise,
        heartbeat_interval=args.heartbeat_interval,
    )
    return serve(config)


def cmd_coordinate(args) -> int:
    from .cluster.coordinator import CoordinatorConfig, coordinate

    # Unset flags fall back to the config defaults (which read
    # $REPRO_CLUSTER_NODES / $REPRO_HEARTBEAT_INTERVAL / $REPRO_NODE_TIMEOUT).
    overrides = {
        "host": args.host,
        "port": args.port,
        "max_flights": args.max_flights,
        "drain_timeout": args.drain_timeout,
        "local_fallback": not args.no_local_fallback,
    }
    if args.nodes:
        overrides["nodes"] = tuple(args.nodes)
    if args.heartbeat_interval is not None:
        overrides["heartbeat_interval"] = args.heartbeat_interval
    if args.node_timeout is not None:
        overrides["node_timeout"] = args.node_timeout
    return coordinate(CoordinatorConfig(**overrides))


def cmd_submit(args) -> int:
    from .service.client import JobFailed, ServiceClient, ServiceError, ServiceQueueFull
    from .service.jobs import is_valid_workload

    bad = [w for w in args.workloads if not is_valid_workload(w)]
    if bad:
        print(f"error: unknown workload(s): {', '.join(bad)} "
              f"(choices: {', '.join(WORKLOAD_NAMES)}, or "
              f"fuzz/s<seed>/i<index>/f<fill> adversarial names)",
              file=sys.stderr)
        return 2
    client = ServiceClient(args.url, timeout=args.http_timeout)
    policies = args.policies or ["none", "levioso"]
    runs = [
        {"workload": w, "policy": p, "scale": args.scale}
        for w in args.workloads
        for p in policies
    ]
    if args.duplicate:
        # Same batch twice over: the daemon must coalesce the in-batch
        # duplicates and serve the second round from its result store.
        runs = runs * 2
    try:
        return _submit_and_report(args, client, runs)
    except ServiceQueueFull as exc:
        print(f"error: {exc} (retry after {exc.retry_after:.0f}s)",
              file=sys.stderr)
        return 3
    except JobFailed as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except ServiceError as exc:
        print(f"repro submit: {exc} — is a daemon up at {client.base_url}? "
              f"start one with 'repro serve' (or point --url/"
              f"$REPRO_SERVICE_URL at it)", file=sys.stderr)
        return 1


def _submit_and_report(args, client, runs) -> int:
    jobs = client.submit(runs, priority=args.priority)
    dedup = sum(1 for j in jobs if j["coalesced"] or j["cached"])
    print(f"submitted {len(jobs)} job(s) "
          f"({dedup} coalesced/cached) to {client.base_url}")
    if not (args.wait or args.verify or args.json):
        for job in jobs:
            print(f"  {job['id']}  {job['request']['workload']}"
                  f"/{job['request']['policy']}  {job['state']}")
        return 0

    finals = client.wait([j["id"] for j in jobs], timeout=args.wait_timeout)
    ordered = [finals[j["id"]] for j in jobs]
    if args.duplicate:
        # Round two: every point now has a stored result, so a fresh
        # submission must be answered entirely from the result store.
        rerun = client.submit(runs[: len(runs) // 2])
        refinals = client.wait([j["id"] for j in rerun],
                               timeout=args.wait_timeout)
        ordered += [refinals[j["id"]] for j in rerun]

    if args.json:
        import json

        print(json.dumps(ordered, indent=2))

    mismatches = 0
    if args.verify:
        import json as json_mod

        runner = ExperimentRunner(scale=args.scale)
        for job in ordered:
            request = job["request"]
            local = json_mod.loads(json_mod.dumps(ResultCache.serialize(
                runner.run(request["workload"], request["policy"]).slim())))
            if job.get("result") != local:
                mismatches += 1
                print(f"MISMATCH {request['workload']}/{request['policy']}: "
                      f"service result differs from serial in-process run",
                      file=sys.stderr)

    if not args.json:
        rows = [
            [j["request"]["workload"], j["request"]["policy"],
             j["result"]["cycles"] if j.get("result") else "—",
             f"{j['result']['ipc']:.3f}" if j.get("result") else "—",
             ("cached" if j["cached"] else
              "coalesced" if j["coalesced"] else "simulated"),
             f"{j['latency']:.3f}s" if j.get("latency") is not None else "—"]
            for j in ordered
        ]
        print(format_table(
            ["workload", "policy", "cycles", "IPC", "served", "latency"],
            rows))
    if args.verify:
        print("verify: " + ("OK — service results bit-identical to the "
                            "serial in-process runner" if not mismatches
                            else f"{mismatches} MISMATCH(ES)"))
    return 1 if mismatches else 0


def cmd_attack(args) -> int:
    outcome = run_attack(args.name, args.policy, secret=args.secret)
    print(f"attack:    {outcome.attack}")
    print(f"policy:    {outcome.policy}")
    print(f"secret:    {outcome.secret:#04x}")
    recovered = outcome.reading.recovered_value
    print(f"recovered: {recovered:#04x}" if recovered is not None else "recovered: (nothing)")
    print(f"verdict:   {outcome.verdict}")
    return 0 if not outcome.leaked else 1


def cmd_pipeline(args) -> int:
    from .uarch import OooCore, gate_summary, render_timeline

    program = _load_source(args.file)
    core = OooCore(
        program, policy=make_policy(args.policy), record_pipeline=True
    )
    core.run()
    print(render_timeline(core.retired, start=args.start, count=args.count))
    print()
    print(gate_summary(core.retired))
    return 0


def cmd_profile(args) -> int:
    from .profiling import (
        compare_specialization,
        profile_run,
        render_compare,
        render_profile,
    )

    program = _resolve_program(args.target, scale=args.scale)
    if args.compare:
        report = compare_specialization(
            program,
            policy_name=args.policy,
            max_cycles=args.limit,
        )
        render = render_compare
    else:
        report = profile_run(
            program,
            policy_name=args.policy,
            sort=args.sort,
            top=args.top,
            max_cycles=args.limit,
            cycle_skip=False if args.no_cycle_skip else None,
            specialize=False if args.no_specialize else None,
            superblock=False if args.no_superblock else None,
        )
        render = render_profile
    if args.json:
        import json

        print(json.dumps(report, indent=2))
    else:
        print(render(report))
    return 0


def cmd_report(args) -> int:
    from .harness.report import update_experiments_md

    ok = update_experiments_md(args.experiments, args.artifacts, scale=args.scale)
    if ok:
        print(f"updated {args.experiments} from {args.artifacts}")
        return 0
    print("nothing to do (no artifacts or no '## Recorded' marker)")
    return 1


def cmd_suite(args) -> int:
    rows = []
    for name in WORKLOAD_NAMES:
        workload = build_workload(name, scale="test")
        rows.append([name, workload.category, workload.description])
    print(format_table(["name", "category", "description"], rows))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Levioso (DAC'24) reproduction: simulators, compiler pass, "
        "attacks and experiment harness.",
    )
    from . import __version__

    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}",
        help="print the package version and exit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("run", help="assemble and execute a program")
    p.add_argument("file")
    p.add_argument("--policy", default="none", choices=ALL_POLICY_NAMES)
    p.add_argument("--functional", action="store_true", help="use the golden model")
    p.add_argument("--trace", action="store_true")
    p.add_argument("--json", action="store_true", help="machine-readable stats")
    p.set_defaults(func=cmd_run)

    p = sub.add_parser("disasm", help="disassemble a program")
    p.add_argument("file")
    p.set_defaults(func=cmd_disasm)

    p = sub.add_parser(
        "analyze",
        help="compiler pass report + gadget scan + metadata verifier",
    )
    p.add_argument("file", metavar="TARGET",
                   help="assembly file, workload name, or attack name")
    p.add_argument("--json", action="store_true", help="machine-readable report")
    p.set_defaults(func=cmd_analyze)

    p = sub.add_parser(
        "lint",
        help="scan programs for Spectre gadgets and verify their metadata",
    )
    p.add_argument("targets", nargs="+", metavar="TARGET",
                   help="assembly files, workload names, or attack names")
    p.add_argument(
        "--expect", type=_expect_spec, default=None, metavar="EXPECTATION",
        help="gate the exit code on the expected outcome (CI use): "
        "clean, findings, or counts:<kind>=<n>,... for exact per-kind "
        "totals across all targets (unlisted kinds must be absent)",
    )
    p.add_argument("--json", action="store_true", help="machine-readable report")
    p.set_defaults(func=cmd_lint)

    def add_parallel_flags(p):
        p.add_argument(
            "--jobs", type=int, default=default_jobs(), metavar="N",
            help="worker processes for simulations (default: $REPRO_JOBS or 1)",
        )
        p.add_argument(
            "--cache", action="store_true",
            help="persist run results in the on-disk cache",
        )
        p.add_argument(
            "--cache-dir", default=None, metavar="DIR",
            help="cache location (default: $REPRO_CACHE_DIR or "
            "~/.cache/repro-levioso/runs)",
        )
        p.add_argument(
            "--retries", type=int, default=2, metavar="N",
            help="retries per grid point after the first attempt (default: 2)",
        )
        p.add_argument(
            "--timeout", type=float, default=None, metavar="SECS",
            help="per-point wall-clock budget; hung workers are abandoned "
            "and the point retried (parallel mode only)",
        )
        p.add_argument(
            "--keep-going", action="store_true",
            help="complete the grid around permanently failed points and "
            "render partial tables with explicit holes",
        )
        p.add_argument(
            "--fault-plan", default=None, metavar="JSON|@FILE",
            help="inject a seeded fault plan (chaos testing)",
        )

    p = sub.add_parser("bench", help="overhead table across the suite")
    p.add_argument("--scale", default="test", choices=("test", "ref"))
    p.add_argument("--policies", nargs="*", choices=ALL_POLICY_NAMES)
    p.add_argument("--workloads", nargs="*", choices=WORKLOAD_NAMES)
    add_parallel_flags(p)
    p.set_defaults(func=cmd_bench)

    p = sub.add_parser("experiment", help="regenerate tables/figures")
    p.add_argument("ids", nargs="+", choices=sorted(EXPERIMENTS),
                   metavar="ID")
    p.add_argument("--scale", default="test", choices=("test", "ref"))
    add_parallel_flags(p)
    p.add_argument(
        "--resume", action="store_true",
        help="continue an interrupted invocation from its journal "
        "(requires --cache); only unfinished points re-simulate",
    )
    p.add_argument(
        "--journal", default=None, metavar="FILE",
        help="journal manifest location (default: derived from the grid, "
        "under the cache root)",
    )
    p.set_defaults(func=cmd_experiment)

    p = sub.add_parser(
        "cache", help="inspect, verify, repair or clear the run-result cache"
    )
    p.add_argument("action", choices=("info", "verify", "repair", "clear"))
    p.add_argument("--cache-dir", default=None, metavar="DIR")
    p.set_defaults(func=cmd_cache)

    p = sub.add_parser(
        "chaos",
        help="seeded fault-injection drill: inject worker crashes/hangs/"
        "kills + cache corruption, assert recovery is bit-identical",
    )
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--scale", default="test", choices=("test", "ref"))
    p.add_argument("--jobs", type=int, default=2, metavar="N")
    p.add_argument("--workloads", nargs="*", choices=WORKLOAD_NAMES)
    p.add_argument("--policies", nargs="*", choices=ALL_POLICY_NAMES)
    p.add_argument("--cache-dir", default=None, metavar="DIR",
                   help="keep the drill's cache here (default: temp dir)")
    p.add_argument(
        "--service", action="store_true",
        help="drive the drill through the HTTP service path (worker kill "
        "+ cache corruption while jobs are queued) instead of the batch "
        "harness",
    )
    p.add_argument(
        "--cluster", action="store_true",
        help="drive the drill through a real coordinator + worker fleet "
        "(node SIGKILL + heartbeat partition mid-campaign) instead of "
        "the batch harness",
    )
    p.set_defaults(func=cmd_chaos)

    p = sub.add_parser(
        "serve",
        help="run the simulation service daemon (async job queue with "
        "request coalescing, backpressure and a /metrics endpoint)",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8765,
                   help="listen port (0 picks an ephemeral port)")
    p.add_argument("--jobs", type=int, default=default_jobs(), metavar="N",
                   help="worker processes (default: $REPRO_JOBS or 1)")
    p.add_argument("--queue-depth", type=int, default=64, metavar="N",
                   help="max queued simulations before 429s (default: 64)")
    p.add_argument("--retries", type=int, default=2, metavar="N",
                   help="retries per job after the first attempt (default: 2)")
    p.add_argument("--timeout", type=float, default=None, metavar="SECS",
                   help="per-job wall-clock budget; hung workers are "
                   "abandoned and the job retried")
    p.add_argument("--cache", action="store_true",
                   help="persist results in the on-disk run cache")
    p.add_argument("--cache-dir", default=None, metavar="DIR",
                   help="cache location (implies --cache)")
    p.add_argument("--drain-timeout", type=float, default=60.0,
                   metavar="SECS",
                   help="grace period for in-flight jobs on SIGTERM "
                   "(default: 60)")
    p.add_argument("--register", default=None, metavar="URL",
                   help="join the cluster coordinated at URL (repro "
                   "coordinate); the daemon registers and heartbeats "
                   "until it drains")
    p.add_argument("--node-id", default=None, metavar="ID",
                   help="stable cluster node id (default: random)")
    p.add_argument("--advertise", default=None, metavar="URL",
                   help="URL the coordinator should reach this node at "
                   "(default: http://HOST:PORT of the listener)")
    p.add_argument("--heartbeat-interval", type=float, default=None,
                   metavar="SECS",
                   help="seconds between heartbeats (default: "
                   "$REPRO_HEARTBEAT_INTERVAL or 1.0)")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "coordinate",
        help="run the cluster coordinator: consistent-hash runs across "
        "registered repro serve nodes with heartbeat failure detection, "
        "automatic failover and cluster-wide coalescing",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8770,
                   help="listen port (0 picks an ephemeral port)")
    p.add_argument("--nodes", nargs="*", metavar="URL",
                   help="static worker URLs to admit at startup (default: "
                   "$REPRO_CLUSTER_NODES); dynamic nodes join via "
                   "'repro serve --register'")
    p.add_argument("--heartbeat-interval", type=float, default=None,
                   metavar="SECS",
                   help="expected node heartbeat cadence (default: "
                   "$REPRO_HEARTBEAT_INTERVAL or 1.0)")
    p.add_argument("--node-timeout", type=float, default=None,
                   metavar="SECS",
                   help="silence after which a node is declared dead and "
                   "its flights fail over (default: $REPRO_NODE_TIMEOUT "
                   "or 5.0)")
    p.add_argument("--max-flights", type=int, default=256, metavar="N",
                   help="max unresolved cluster flights before 429s "
                   "(default: 256)")
    p.add_argument("--drain-timeout", type=float, default=60.0,
                   metavar="SECS",
                   help="grace period for in-flight work on SIGTERM "
                   "(default: 60)")
    p.add_argument("--no-local-fallback", action="store_true",
                   help="fail jobs instead of simulating in-process when "
                   "zero nodes are routable")
    p.set_defaults(func=cmd_coordinate)

    p = sub.add_parser(
        "submit",
        help="submit workload x policy runs to a running repro serve "
        "daemon and optionally wait/verify",
    )
    p.add_argument("workloads", nargs="+", metavar="WORKLOAD",
                   help="suite workload name or a fuzz/s<seed>/i<i>/f<ff> "
                   "adversarial name")
    p.add_argument("--policies", nargs="*", choices=ALL_POLICY_NAMES,
                   help="policies per workload (default: none levioso)")
    p.add_argument("--scale", default="test", choices=("test", "ref"))
    p.add_argument("--url", default=None,
                   help="service base URL (default: $REPRO_SERVICE_URL or "
                   "http://127.0.0.1:8765)")
    p.add_argument("--priority", type=int, default=None,
                   help="batch priority (lower runs sooner)")
    p.add_argument("--wait", action="store_true",
                   help="block until every job resolves and print results")
    p.add_argument("--duplicate", action="store_true",
                   help="submit every point twice in-batch, then resubmit "
                   "after completion (exercises coalescing + cache hits)")
    p.add_argument("--verify", action="store_true",
                   help="after waiting, rerun each point serially in-process "
                   "and require bit-identical results (implies --wait)")
    p.add_argument("--json", action="store_true",
                   help="print the final job objects as JSON (implies --wait)")
    p.add_argument("--wait-timeout", type=float, default=600.0,
                   metavar="SECS")
    p.add_argument("--http-timeout", type=float, default=30.0,
                   metavar="SECS")
    p.set_defaults(func=cmd_submit)

    p = sub.add_parser(
        "fuzz",
        help="adversarial campaign: synthesize Spectre-shaped programs, "
        "cross-validate the scanner against the differential leakage "
        "oracle, optionally repair every leaky program to certified-clean",
    )
    p.add_argument("--seed", type=int, default=7,
                   help="corpus seed (default: 7)")
    p.add_argument("--count", type=int, default=32, metavar="N",
                   help="programs to synthesize (default: 32)")
    p.add_argument("--policies", nargs="*", choices=ALL_POLICY_NAMES,
                   help="policies to judge under (default: "
                   "$REPRO_FUZZ_POLICIES or none fence levioso; the "
                   "baseline 'none' is always included)")
    p.add_argument("--repair", action="store_true",
                   help="drive every leaky program through the fence-repair "
                   "loop and re-judge the repaired variants")
    p.add_argument("--json", action="store_true",
                   help="print the full campaign report as JSON")
    p.add_argument("--out", default=None, metavar="FILE",
                   help="also write the JSON report to FILE")
    add_parallel_flags(p)
    p.set_defaults(func=cmd_fuzz)

    p = sub.add_parser(
        "repair",
        help="scan one program, insert the cheapest sufficient fences, "
        "and certify the result with the differential oracle",
    )
    p.add_argument("target", metavar="TARGET",
                   help="assembly file, workload/fuzz name, or attack name")
    p.add_argument("--policy", default="none", choices=ALL_POLICY_NAMES,
                   help="policy to certify and cost under (default: none)")
    p.add_argument("--strategy", default="load",
                   choices=("load", "branch", "selective", "slh", "cheapest"),
                   help="fence placement: at the transmitter (load), the "
                   "guard's fallthrough (branch), batched transmitter "
                   "fencing (selective), lifted speculative load hardening "
                   "(slh), or simulate all and keep the fastest (cheapest)")
    p.add_argument("--json", action="store_true",
                   help="machine-readable report")
    p.add_argument("--emit", default=None, metavar="FILE",
                   help="write the repaired assembly source to FILE")
    p.set_defaults(func=cmd_repair)

    p = sub.add_parser(
        "mitigate",
        help="apply a software mitigation pass and certify it both ways "
        "(architectural equivalence + differential oracle)",
    )
    p.add_argument("target", metavar="TARGET",
                   help="assembly file, workload/fuzz name, or attack name")
    from .compiler.mitigations import MITIGATION_PASSES as _MIT_PASSES

    p.add_argument("--pass", dest="pass_name", required=True,
                   choices=_MIT_PASSES,
                   help="mitigation pass to apply")
    p.add_argument("--scale", default="test", choices=("test", "ref"),
                   help="workload scale for named targets (default: test)")
    p.add_argument("--json", action="store_true",
                   help="machine-readable certificate")
    p.add_argument("--emit", default=None, metavar="FILE",
                   help="write the mitigated assembly source to FILE")
    p.set_defaults(func=cmd_mitigate)

    p = sub.add_parser("attack", help="run a Spectre gadget under a policy")
    p.add_argument("name", choices=sorted(ATTACKS))
    p.add_argument("--policy", default="none", choices=ALL_POLICY_NAMES)
    p.add_argument("--secret", type=lambda s: int(s, 0), default=0x5A)
    p.set_defaults(func=cmd_attack)

    p = sub.add_parser("pipeline", help="render a pipeline timeline for a program")
    p.add_argument("file")
    p.add_argument("--policy", default="none", choices=ALL_POLICY_NAMES)
    p.add_argument("--start", type=int, default=0)
    p.add_argument("--count", type=int, default=32)
    p.set_defaults(func=cmd_pipeline)

    p = sub.add_parser(
        "profile",
        help="profile one simulator run: cProfile hot paths + per-stage "
        "cycle attribution + event-horizon diagnostics",
    )
    p.add_argument("target", metavar="TARGET",
                   help="assembly file, workload name, or attack name")
    p.add_argument("--policy", default="none", choices=ALL_POLICY_NAMES)
    p.add_argument("--scale", default="test", choices=("test", "ref"))
    p.add_argument("--sort", default="cumtime",
                   choices=("cumtime", "tottime", "ncalls"))
    p.add_argument("--top", type=int, default=25, metavar="N",
                   help="number of functions to report (default: 25)")
    p.add_argument("--limit", type=int, default=None, metavar="CYCLES",
                   help="cycle budget for the profiled run")
    p.add_argument("--no-cycle-skip", action="store_true",
                   help="profile the reference stepped loop instead of the "
                   "event-horizon fast path")
    p.add_argument("--no-specialize", action="store_true",
                   help="profile the interpreted execute path instead of "
                   "the region-specialized one")
    p.add_argument("--no-superblock", action="store_true",
                   help="profile the per-PC front end instead of the "
                   "superblock fast path")
    p.add_argument("--compare", action="store_true",
                   help="run specialized vs interpreted back-to-back and "
                   "print the per-stage delta table")
    p.add_argument("--json", action="store_true", help="machine-readable report")
    p.set_defaults(func=cmd_profile)

    p = sub.add_parser("report", help="fold benchmark artifacts into EXPERIMENTS.md")
    p.add_argument("--experiments", default="EXPERIMENTS.md")
    p.add_argument("--artifacts", default="benchmarks/_artifacts")
    p.add_argument("--scale", default="test")
    p.set_defaults(func=cmd_report)

    p = sub.add_parser("suite", help="list SPEClite workloads")
    p.set_defaults(func=cmd_suite)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        # Conventional 128+SIGINT exit, without the traceback wall of text.
        print("interrupted", file=sys.stderr)
        return 130


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
