"""Simulator profiling harness: cProfile + per-stage cycle attribution.

Perf work on the simulator should be guided by measurements, not folklore.
:func:`profile_run` executes one (workload, policy) run under
:mod:`cProfile` and returns a machine-readable report combining two views:

* **wall-clock attribution** — the top functions by cumulative/total time,
  straight from the profiler (where does the *host* spend its time), and
* **simulated-cycle attribution** — the core's per-stage stall counters
  plus the event-horizon engine's warp diagnostics (where does the *guest*
  spend its cycles, and how many of them the engine never had to step).

Exposed on the CLI as ``repro profile`` (see :mod:`repro.cli`); CI runs it
with ``--json`` so the harness cannot bit-rot.
"""

from __future__ import annotations

import cProfile
import io
import pstats
import time

from .secure import make_policy
from .uarch import CoreConfig, OooCore
from .uarch.decoded import image_cache_info

SORT_KEYS = ("cumtime", "tottime", "ncalls")


def profile_run(
    program,
    policy_name: str = "none",
    config: CoreConfig | None = None,
    *,
    sort: str = "cumtime",
    top: int = 25,
    max_cycles: int | None = None,
    cycle_skip: bool | None = None,
) -> dict:
    """Profile one simulator run; returns the combined report as a dict."""
    if sort not in SORT_KEYS:
        raise ValueError(f"sort must be one of {SORT_KEYS}, got {sort!r}")
    core = OooCore(
        program,
        config=config,
        policy=make_policy(policy_name),
        cycle_skip=cycle_skip,
    )
    profiler = cProfile.Profile()
    start = time.perf_counter()
    profiler.enable()
    result = core.run(max_cycles=max_cycles)
    profiler.disable()
    wall = time.perf_counter() - start

    stats = pstats.Stats(profiler, stream=io.StringIO())
    top_functions = []
    for func, (cc, nc, tt, ct, _callers) in stats.stats.items():
        filename, line, name = func
        top_functions.append(
            {
                "function": name,
                "file": filename,
                "line": line,
                "ncalls": nc,
                "primitive_calls": cc,
                "tottime": tt,
                "cumtime": ct,
            }
        )
    top_functions.sort(key=lambda row: row[sort], reverse=True)
    del top_functions[top:]

    s = result.stats
    warp = core.warp_stats
    simulated = s.cycles
    stepped = simulated - warp.cycles_skipped
    report = {
        "workload": program.name,
        "policy": result.policy_name,
        "sort": sort,
        "run": {
            "cycles": simulated,
            "committed": s.committed,
            "ipc": s.ipc,
            "wall_seconds": wall,
            "inst_per_sec": s.committed / wall if wall > 0 else 0.0,
            "cycles_per_sec": simulated / wall if wall > 0 else 0.0,
        },
        "cycle_attribution": {
            # Guest-side view: which stall condition each cycle sat in.
            # Buckets overlap (a cycle can stall fetch and dispatch at
            # once), so they are attribution hints, not a partition.
            "simulated_cycles": simulated,
            "stepped_cycles": stepped,
            "fetch_stall_cycles": s.fetch_stall_cycles,
            "rob_full_stalls": s.rob_full_stalls,
            "iq_full_stalls": s.iq_full_stalls,
            "lsq_full_stalls": s.lsq_full_stalls,
            "load_gate_cycles": s.load_gate_cycles,
            "branch_gate_cycles": s.branch_gate_cycles,
            "memdep_blocked_cycles": s.memdep_blocked_cycles,
        },
        "event_horizon": {
            **warp.as_dict(),
            "skip_fraction": warp.cycles_skipped / simulated if simulated else 0.0,
        },
        "decode_cache": image_cache_info(),
        "top_functions": top_functions,
    }
    return report


def render_profile(report: dict) -> str:
    """Human-readable rendering of a :func:`profile_run` report."""
    run = report["run"]
    attr = report["cycle_attribution"]
    horizon = report["event_horizon"]
    lines = [
        f"workload {report['workload']}  policy {report['policy']}",
        f"  {run['cycles']} cycles, {run['committed']} committed "
        f"(IPC {run['ipc']:.3f}) in {run['wall_seconds']:.3f}s "
        f"-> {run['inst_per_sec']:,.0f} inst/s",
        f"  event horizon: {horizon['cycles_skipped']} of "
        f"{attr['simulated_cycles']} cycles skipped "
        f"({100 * horizon['skip_fraction']:.1f}%) in {horizon['warps']} warps"
        + (
            "  [" + ", ".join(
                f"{k}:{v}" for k, v in sorted(horizon["reasons"].items())
            ) + "]"
            if horizon["reasons"]
            else ""
        ),
        "  cycle attribution (overlapping buckets):",
    ]
    for key in (
        "fetch_stall_cycles",
        "rob_full_stalls",
        "iq_full_stalls",
        "lsq_full_stalls",
        "load_gate_cycles",
        "branch_gate_cycles",
        "memdep_blocked_cycles",
    ):
        value = attr[key]
        if value:
            lines.append(f"    {key:<24} {value}")
    lines.append("")
    lines.append(
        f"  top functions by {report['sort']} "
        f"(ncalls / tottime / cumtime):"
    )
    for row in report["top_functions"]:
        where = f"{row['file']}:{row['line']}" if row["line"] else row["file"]
        lines.append(
            f"    {row['ncalls']:>10}  {row['tottime']:8.3f}s "
            f"{row['cumtime']:8.3f}s  {row['function']}  ({where})"
        )
    return "\n".join(lines)
