"""Simulator profiling harness: cProfile + per-stage cycle attribution.

Perf work on the simulator should be guided by measurements, not folklore.
:func:`profile_run` executes one (workload, policy) run under
:mod:`cProfile` and returns a machine-readable report combining two views:

* **wall-clock attribution** — the top functions by cumulative/total time,
  straight from the profiler (where does the *host* spend its time), and
* **simulated-cycle attribution** — the core's per-stage stall counters
  plus the event-horizon engine's warp diagnostics (where does the *guest*
  spend its cycles, and how many of them the engine never had to step).

Exposed on the CLI as ``repro profile`` (see :mod:`repro.cli`); CI runs it
with ``--json`` so the harness cannot bit-rot.
"""

from __future__ import annotations

import cProfile
import io
import pstats
import time

from .secure import make_policy
from .uarch import CoreConfig, OooCore
from .uarch.decoded import image_cache_info
from .uarch.specialize import spec_cache_info

SORT_KEYS = ("cumtime", "tottime", "ncalls")

#: Core stage methods whose tottime the --compare mode attributes, in
#: pipeline order.  Both execute entrypoints are listed; whichever arm is
#: active contributes its time under the same "execute" label.
_STAGE_FUNCTIONS = {
    "_fetch": "fetch",
    "_dispatch": "dispatch",
    "_front_checkpoint": "checkpoint",
    "_issue": "issue",
    "_execute_alu": "execute",
    "_execute_alu_spec": "execute",
    "_try_issue_mem": "mem-issue",
    "_process_completions": "complete",
    "_propagate": "wakeup",
    "_commit": "commit",
    "_squash_after": "squash",
    "_alloc_dyn_slow": "alloc",
    "_stream_superblocks": "fetch",
}


def _stage_of(function_name: str) -> str | None:
    """Pipeline-stage label for a profiled function name.

    Generated superblock ops are per-program (``_sbf_<i>`` fetches,
    ``_sbd_<i>`` dispatches+renames), so they are matched by prefix and
    folded into the stage rows the fetch-wall comparison reads.
    """
    stage = _STAGE_FUNCTIONS.get(function_name)
    if stage is None:
        if function_name.startswith("_sbf_"):
            return "fetch"
        if function_name.startswith("_sbd_"):
            return "dispatch"
    return stage


def profile_run(
    program,
    policy_name: str = "none",
    config: CoreConfig | None = None,
    *,
    sort: str = "cumtime",
    top: int = 25,
    max_cycles: int | None = None,
    cycle_skip: bool | None = None,
    specialize: bool | None = None,
    superblock: bool | None = None,
) -> dict:
    """Profile one simulator run; returns the combined report as a dict."""
    if sort not in SORT_KEYS:
        raise ValueError(f"sort must be one of {SORT_KEYS}, got {sort!r}")
    core = OooCore(
        program,
        config=config,
        policy=make_policy(policy_name),
        cycle_skip=cycle_skip,
        specialize=specialize,
        superblock=superblock,
    )
    profiler = cProfile.Profile()
    start = time.perf_counter()
    profiler.enable()
    result = core.run(max_cycles=max_cycles)
    profiler.disable()
    wall = time.perf_counter() - start

    stats = pstats.Stats(profiler, stream=io.StringIO())
    top_functions = []
    for func, (cc, nc, tt, ct, _callers) in stats.stats.items():
        filename, line, name = func
        top_functions.append(
            {
                "function": name,
                "file": filename,
                "line": line,
                "ncalls": nc,
                "primitive_calls": cc,
                "tottime": tt,
                "cumtime": ct,
            }
        )
    top_functions.sort(key=lambda row: row[sort], reverse=True)
    del top_functions[top:]

    s = result.stats
    warp = core.warp_stats
    simulated = s.cycles
    stepped = simulated - warp.cycles_skipped
    report = {
        "workload": program.name,
        "policy": result.policy_name,
        "sort": sort,
        "run": {
            "cycles": simulated,
            "committed": s.committed,
            "ipc": s.ipc,
            "wall_seconds": wall,
            "inst_per_sec": s.committed / wall if wall > 0 else 0.0,
            "cycles_per_sec": simulated / wall if wall > 0 else 0.0,
        },
        "cycle_attribution": {
            # Guest-side view: which stall condition each cycle sat in.
            # Buckets overlap (a cycle can stall fetch and dispatch at
            # once), so they are attribution hints, not a partition.
            "simulated_cycles": simulated,
            "stepped_cycles": stepped,
            "fetch_stall_cycles": s.fetch_stall_cycles,
            "rob_full_stalls": s.rob_full_stalls,
            "iq_full_stalls": s.iq_full_stalls,
            "lsq_full_stalls": s.lsq_full_stalls,
            "load_gate_cycles": s.load_gate_cycles,
            "branch_gate_cycles": s.branch_gate_cycles,
            "memdep_blocked_cycles": s.memdep_blocked_cycles,
        },
        "event_horizon": {
            **warp.as_dict(),
            "skip_fraction": warp.cycles_skipped / simulated if simulated else 0.0,
        },
        "decode_cache": image_cache_info(),
        # Specialization cache hit/miss + codegen-time attribution: the
        # codegen cost must stay invisible next to simulation time, and
        # hits must dominate misses on any repeated-program workload.
        "specialization": {
            "enabled": core._specialize,
            **spec_cache_info(),
        },
        # Superblock front-end fast path: the hit rate is the fraction of
        # committed instructions that were fetched via a generated
        # superblock op (the rest took the per-PC loop — terminators,
        # short runs, post-squash refills into mid-line misses, ...).
        "superblock": {
            "enabled": core._superblock,
            "fetched_fast": core._sb_fetched,
            "committed_fast": core._sb_committed,
            "hit_rate": (
                core._sb_committed / s.committed if s.committed else 0.0
            ),
        },
        "top_functions": top_functions,
    }
    return report


def compare_specialization(
    program,
    policy_name: str = "none",
    config: CoreConfig | None = None,
    *,
    max_cycles: int | None = None,
) -> dict:
    """Run interpreted vs specialized back-to-back; per-stage delta table.

    Both runs profile the same (workload, policy, config); the only knob
    that differs is ``specialize``.  The report carries each arm's run
    summary plus a per-stage table of profiler tottime (interpreted,
    specialized, delta) keyed by pipeline-stage label, so a regression in
    one stage is visible even when the total wall time moves little.
    """
    arms = {}
    stage_times: dict[str, dict[str, float]] = {}
    for arm, specialize in (("interpreted", False), ("specialized", True)):
        report = profile_run(
            program, policy_name, config,
            sort="tottime", top=250,
            max_cycles=max_cycles, specialize=specialize,
        )
        arms[arm] = report
        for row in report["top_functions"]:
            stage = _stage_of(row["function"])
            if stage is not None:
                bucket = stage_times.setdefault(stage, {})
                bucket[arm] = bucket.get(arm, 0.0) + row["tottime"]

    stages = []
    for name in dict.fromkeys(_STAGE_FUNCTIONS.values()):
        bucket = stage_times.get(name)
        if bucket is None:
            continue
        interp = bucket.get("interpreted", 0.0)
        spec = bucket.get("specialized", 0.0)
        stages.append({
            "stage": name,
            "interpreted_s": interp,
            "specialized_s": spec,
            "delta_s": spec - interp,
            "speedup": interp / spec if spec > 0 else 0.0,
        })

    interp_run = arms["interpreted"]["run"]
    spec_run = arms["specialized"]["run"]
    if interp_run["cycles"] != spec_run["cycles"]:  # pragma: no cover
        raise AssertionError(
            "specialized run diverged from interpreted run: "
            f"{spec_run['cycles']} != {interp_run['cycles']} cycles"
        )
    return {
        "workload": arms["interpreted"]["workload"],
        "policy": arms["interpreted"]["policy"],
        "interpreted": interp_run,
        "specialized": spec_run,
        "wall_speedup": (interp_run["wall_seconds"] / spec_run["wall_seconds"]
                         if spec_run["wall_seconds"] > 0 else 0.0),
        "stages": stages,
        "specialization": arms["specialized"]["specialization"],
        "superblock": arms["specialized"]["superblock"],
        "superblock_hit_rate": arms["specialized"]["superblock"]["hit_rate"],
    }


def render_compare(report: dict) -> str:
    """Human-readable rendering of a :func:`compare_specialization` report."""
    interp = report["interpreted"]
    spec = report["specialized"]
    lines = [
        f"workload {report['workload']}  policy {report['policy']}  "
        f"(identical {interp['cycles']} simulated cycles)",
        f"  interpreted: {interp['wall_seconds']:.3f}s "
        f"({interp['inst_per_sec']:,.0f} inst/s)",
        f"  specialized: {spec['wall_seconds']:.3f}s "
        f"({spec['inst_per_sec']:,.0f} inst/s)",
        f"  wall speedup: {report['wall_speedup']:.2f}x",
        "",
        f"  {'stage':<12} {'interp(s)':>10} {'spec(s)':>10} "
        f"{'delta(s)':>10} {'speedup':>8}",
    ]
    for row in report["stages"]:
        lines.append(
            f"  {row['stage']:<12} {row['interpreted_s']:>10.3f} "
            f"{row['specialized_s']:>10.3f} {row['delta_s']:>+10.3f} "
            f"{row['speedup']:>7.2f}x"
        )
    cache = report["specialization"]
    lines.append("")
    lines.append(
        f"  spec cache: {cache['entries']} plan(s), "
        f"{cache['hits']} hit(s) / {cache['misses']} miss(es), "
        f"{cache['generated_functions']} generated fn(s) in "
        f"{cache['codegen_ms']:.1f}ms"
    )
    sb = report["superblock"]
    if sb["enabled"]:
        lines.append(
            f"  superblock: {sb['committed_fast']} of "
            f"{spec['committed']} committed via fast path "
            f"({100 * sb['hit_rate']:.1f}% hit rate, "
            f"{sb['fetched_fast']} fetched)"
        )
    return "\n".join(lines)


def render_profile(report: dict) -> str:
    """Human-readable rendering of a :func:`profile_run` report."""
    run = report["run"]
    attr = report["cycle_attribution"]
    horizon = report["event_horizon"]
    lines = [
        f"workload {report['workload']}  policy {report['policy']}",
        f"  {run['cycles']} cycles, {run['committed']} committed "
        f"(IPC {run['ipc']:.3f}) in {run['wall_seconds']:.3f}s "
        f"-> {run['inst_per_sec']:,.0f} inst/s",
        f"  event horizon: {horizon['cycles_skipped']} of "
        f"{attr['simulated_cycles']} cycles skipped "
        f"({100 * horizon['skip_fraction']:.1f}%) in {horizon['warps']} warps"
        + (
            "  [" + ", ".join(
                f"{k}:{v}" for k, v in sorted(horizon["reasons"].items())
            ) + "]"
            if horizon["reasons"]
            else ""
        ),
        "  cycle attribution (overlapping buckets):",
    ]
    sb = report["superblock"]
    if sb["enabled"]:
        lines.insert(3, (
            f"  superblock: {sb['committed_fast']} of "
            f"{run['committed']} committed via fast path "
            f"({100 * sb['hit_rate']:.1f}% hit rate, "
            f"{sb['fetched_fast']} fetched)"
        ))
    for key in (
        "fetch_stall_cycles",
        "rob_full_stalls",
        "iq_full_stalls",
        "lsq_full_stalls",
        "load_gate_cycles",
        "branch_gate_cycles",
        "memdep_blocked_cycles",
    ):
        value = attr[key]
        if value:
            lines.append(f"    {key:<24} {value}")
    lines.append("")
    lines.append(
        f"  top functions by {report['sort']} "
        f"(ncalls / tottime / cumtime):"
    )
    for row in report["top_functions"]:
        where = f"{row['file']}:{row['line']}" if row["line"] else row["file"]
        lines.append(
            f"    {row['ncalls']:>10}  {row['tottime']:8.3f}s "
            f"{row['cumtime']:8.3f}s  {row['function']}  ({where})"
        )
    return "\n".join(lines)
