"""Deterministic, seedable fault injection for chaos-testing the harness.

The resilience layer (:mod:`repro.harness.resilience`) claims to survive
crashed workers, hung workers, killed worker processes, corrupted cache
entries and transient I/O errors.  This module makes those failures
*injectable on demand* so tests and the CI chaos job can prove the claim:
a :class:`FaultPlan` is a seeded list of :class:`FaultSpec` entries, each
naming an injection **site** (``worker``, ``cache.get``, ``cache.put``),
a fault **kind**, and a firing budget.

Design constraints, in priority order:

1. **Determinism** — the same plan over the same grid produces the same
   set of injected failures (per-key selection is a hash of the seed and
   the content key, never wall-clock or ``random``).
2. **Cross-process coherence** — grid points run in pool workers, so the
   firing ledger lives on disk (``state_dir``): each spec fires at most
   ``times`` times *across all processes*, claimed with ``O_EXCL`` token
   files, and at most **once per key**, so a retried point succeeds.
   That mirrors real transient faults and is what lets tests assert
   "injected failure, then recovery".
3. **Zero overhead when off** — the plan travels in the ``REPRO_FAULTS``
   environment variable (inherited by pool workers); when unset,
   :func:`maybe_fault` is a cached dict lookup and a ``None`` return.

Fault kinds:

``exception``   raise :class:`~repro.errors.InjectedFault` at the site
``io_error``    raise :class:`OSError` (transient-I/O shape) at the site
``hang``        sleep ``hang_seconds`` (trips the supervisor's timeout)
``kill``        ``SIGKILL`` the current process (breaks the worker pool)
``corrupt``     not raised: returned to the caller, which garbles the
                bytes it was about to write (cache-store site only)
``node_kill``   ``SIGKILL`` the current process at the ``node`` site — a
                whole worker *daemon* dies mid-campaign (the cluster
                coordinator must fail its in-flight jobs over)
``heartbeat_loss``  not raised: returned to the caller — the daemon's
                membership loop goes silent for ``hang_seconds``,
                modelling a network partition (the node keeps running
                but the coordinator declares it dead)

The ``node`` site is consulted once per heartbeat with the key
``"{node_id}/hb{seq}"``, so a drill can target e.g. exactly the fourth
heartbeat of worker ``w1`` (``match="w1/hb4"``) — deterministically
mid-campaign rather than at startup.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import signal
import tempfile
import time
from fnmatch import fnmatch
from pathlib import Path

from .errors import HarnessError, InjectedFault

#: Environment variable carrying the serialized active plan (workers
#: inherit it from the coordinator through the process pool).
FAULT_ENV = "REPRO_FAULTS"

FAULT_KINDS = ("exception", "io_error", "hang", "kill", "corrupt",
               "node_kill", "heartbeat_loss")
FAULT_SITES = ("worker", "cache.get", "cache.put", "node")

#: Kinds that are *returned* by :func:`maybe_fault` instead of executed:
#: the caller owns the failure (garbling bytes, suppressing heartbeats).
PASSIVE_KINDS = ("corrupt", "heartbeat_loss")


@dataclasses.dataclass(frozen=True)
class FaultSpec:
    """One injectable failure: where, what, how often."""

    site: str                 # injection point, one of FAULT_SITES
    kind: str                 # one of FAULT_KINDS
    match: str = "*"          # fnmatch pattern over the content key
    times: int = 1            # total firing budget across all processes
    probability: float = 1.0  # seeded per-key selection when < 1.0
    hang_seconds: float = 30.0
    #: Transient faults (the default) fire at most once per key, so a
    #: retry succeeds.  Persistent faults skip that veto and keep firing
    #: until the budget is spent — modelling a deterministic crash.
    persistent: bool = False

    def __post_init__(self):
        if self.site not in FAULT_SITES:
            raise HarnessError(
                f"unknown fault site {self.site!r} (sites: {', '.join(FAULT_SITES)})"
            )
        if self.kind not in FAULT_KINDS:
            raise HarnessError(
                f"unknown fault kind {self.kind!r} (kinds: {', '.join(FAULT_KINDS)})"
            )


def _key_digest(seed: int, index: int, key: str) -> int:
    text = f"{seed}:{index}:{key}"
    return int(hashlib.sha256(text.encode()).hexdigest()[:16], 16)


class FaultPlan:
    """A seeded set of fault specs with an on-disk firing ledger.

    ``state_dir`` holds one token file per firing (claimed atomically
    with ``O_EXCL``), which is what enforces the ``times`` budget and the
    once-per-key rule across worker processes.
    """

    def __init__(self, specs: list[FaultSpec] | tuple[FaultSpec, ...],
                 seed: int = 0, state_dir: str | Path | None = None):
        self.specs = tuple(specs)
        self.seed = seed
        if state_dir is None:
            state_dir = tempfile.mkdtemp(prefix="repro-faults-")
        self.state_dir = Path(state_dir)
        self.state_dir.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------ selection
    def check(self, site: str, key: str) -> FaultSpec | None:
        """The spec that should fire at ``site`` for ``key``, if any.

        Claims a slot in the firing ledger as a side effect, so asking is
        committing: callers must act on a non-``None`` answer.
        """
        for index, spec in enumerate(self.specs):
            if spec.site != site or not fnmatch(key, spec.match):
                continue
            if spec.probability < 1.0:
                frac = (_key_digest(self.seed, index, key) % 10**9) / 10**9
                if frac >= spec.probability:
                    continue
            if self._claim(index, spec.times, key, spec.persistent):
                return spec
        return None

    def _claim(self, index: int, budget: int, key: str,
               persistent: bool = False) -> bool:
        """Atomically claim one of ``budget`` firing slots for spec ``index``.

        A transient spec fires at most once per key — a retried point
        must succeed, like a real transient fault — so a slot already
        holding this key vetoes a second firing.
        """
        digest = hashlib.sha256(key.encode()).hexdigest()[:16]
        slots = [self.state_dir / f"spec{index}.slot{n}" for n in range(budget)]
        if not persistent:
            for slot in slots:
                try:
                    claimed = slot.read_text()
                except OSError:
                    continue
                if claimed == digest:
                    return False  # already fired for this key once
        for slot in slots:
            try:
                fd = os.open(slot, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                continue
            with os.fdopen(fd, "w") as f:
                f.write(digest)
            return True
        return False  # budget exhausted

    def fired(self) -> int:
        """How many faults have fired so far (ledger size)."""
        return len(list(self.state_dir.glob("spec*.slot*")))

    # ---------------------------------------------------------------- firing
    def fire(self, spec: FaultSpec, site: str, key: str) -> None:
        """Execute an *active* fault kind (everything except ``corrupt``)."""
        what = f"injected {spec.kind} at {site} for key {key[:12]}…"
        if spec.kind == "exception":
            raise InjectedFault(what)
        if spec.kind == "io_error":
            raise OSError(f"{what} (transient I/O error)")
        if spec.kind == "hang":
            time.sleep(spec.hang_seconds)
            return
        if spec.kind in ("kill", "node_kill"):
            os.kill(os.getpid(), signal.SIGKILL)

    # ----------------------------------------------------------- environment
    def to_json(self) -> str:
        return json.dumps(
            {
                "seed": self.seed,
                "state_dir": str(self.state_dir),
                "specs": [dataclasses.asdict(s) for s in self.specs],
            }
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            data = json.loads(text)
            specs = [FaultSpec(**s) for s in data["specs"]]
            return cls(specs, seed=data.get("seed", 0),
                       state_dir=data.get("state_dir"))
        except (ValueError, TypeError, KeyError) as exc:
            raise HarnessError(f"unreadable fault plan: {exc}") from exc

    def install(self) -> "FaultPlan":
        """Publish this plan in the environment (pool workers inherit it)."""
        os.environ[FAULT_ENV] = self.to_json()
        _PLAN_CACHE[0] = None  # force re-resolution in this process
        return self


def uninstall() -> None:
    """Remove any active plan from the environment."""
    os.environ.pop(FAULT_ENV, None)
    _PLAN_CACHE[0] = None


#: (env text, parsed plan) memo so maybe_fault() is cheap per call.
_PLAN_CACHE: list = [None]


def active_plan() -> FaultPlan | None:
    """The plan published in ``$REPRO_FAULTS``, or ``None``."""
    text = os.environ.get(FAULT_ENV)
    if not text:
        return None
    memo = _PLAN_CACHE[0]
    if memo is not None and memo[0] == text:
        return memo[1]
    plan = FaultPlan.from_json(text)
    _PLAN_CACHE[0] = (text, plan)
    return plan


def maybe_fault(site: str, key: str) -> FaultSpec | None:
    """Consult the active plan at an injection site.

    Active kinds (exception / io_error / hang / kill / node_kill) are
    executed here; passive kinds (``corrupt``, ``heartbeat_loss``) are
    returned so the caller — the cache store, the daemon's membership
    loop — can own the failure itself.
    """
    plan = active_plan()
    if plan is None:
        return None
    spec = plan.check(site, key)
    if spec is None:
        return None
    if spec.kind not in PASSIVE_KINDS:
        plan.fire(spec, site, key)
    return spec


def default_chaos_plan(seed: int, state_dir: str | Path | None = None) -> FaultPlan:
    """The plan the CI chaos job and ``repro chaos`` use.

    Exercises every recovery path the acceptance criteria name: three
    worker crashes, one worker hang (short, so the smoke stays fast), one
    killed worker process, one corrupted cache entry, and one transient
    cache-read error.
    """
    return FaultPlan(
        [
            FaultSpec("worker", "exception", times=3),
            FaultSpec("worker", "hang", times=1, hang_seconds=8.0),
            FaultSpec("worker", "kill", times=1),
            FaultSpec("cache.put", "corrupt", times=1),
            FaultSpec("cache.get", "io_error", times=1),
        ],
        seed=seed,
        state_dir=state_dir,
    )
