"""Dependence-heavy SPEClite workloads.

These two kernels are the suite's "no-free-lunch" points: their transmitters
*truly* depend on unresolved branches (descent decisions, state updates), so
even Levioso must pay — they anchor the residual overhead the paper reports
(Levioso's 23% is not zero precisely because real code contains these
shapes).
"""

from __future__ import annotations

import random

from .memory_kernels import _dwords
from .spec import Workload

_MASK64 = (1 << 64) - 1


def tree_walk(nodes: int = 255, queries: int = 200, seed: int = 41) -> Workload:
    """Binary-search-tree descent: every probe is control- and data-dependent
    on the previous comparison, through pointers (tainted addresses)."""
    rng = random.Random(seed)
    keys_pool = rng.sample(range(1, 1 << 20), nodes)

    # Node 0 is the null sentinel; nodes are numbered in insertion order.
    key = [0]
    left = [0]
    right = [0]

    def insert(value: int) -> None:
        key.append(value)
        left.append(0)
        right.append(0)
        me = len(key) - 1
        if me == 1:
            return
        node = 1
        while True:
            if value < key[node]:
                if left[node] == 0:
                    left[node] = me
                    return
                node = left[node]
            else:
                if right[node] == 0:
                    right[node] = me
                    return
                node = right[node]

    for value in keys_pool:
        insert(value)

    qs = [
        rng.choice(keys_pool) if rng.random() < 0.6 else rng.randrange(1 << 20)
        for _ in range(queries)
    ]

    def descend(target: int) -> int:
        node = 1
        last_key = 0
        while node != 0:
            last_key = key[node]
            node = left[node] if target < last_key else right[node]
        return last_key

    acc = 0
    for q in qs:
        acc = (acc + descend(q)) & _MASK64

    source = f"""
.data
key_arr:
{_dwords(key)}
left_arr:
{_dwords(left)}
right_arr:
{_dwords(right)}
query_arr:
{_dwords(qs)}
globals:
    .dword key_arr, left_arr, right_arr, query_arr
.text
    la gp, globals
    ld s0, 0(gp)        # &key
    ld s1, 8(gp)        # &left
    ld s2, 16(gp)       # &right
    ld s3, 24(gp)       # &queries
    li s4, {queries}
    li s5, 0            # q index
    li s6, 0            # acc
next_query:
    slli t0, s5, 3
    add t0, s3, t0
    ld s7, 0(t0)        # target
    li s8, 1            # node = root
    li s9, 0            # last key seen
descend:
    beqz s8, done_query
    slli t1, s8, 3
    add t2, s0, t1
    ld s9, 0(t2)        # key[node]: tainted address, branch-dependent
    bltu s7, s9, go_left
    add t3, s2, t1
    ld s8, 0(t3)        # node = right[node]
    j descend
go_left:
    add t4, s1, t1
    ld s8, 0(t4)        # node = left[node]
    j descend
done_query:
    add s6, s6, s9
    addi s5, s5, 1
    bne s5, s4, next_query
    mv a0, s6
    halt
"""
    return Workload(
        name="treewalk",
        source=source,
        description="BST descent: probes truly depend on prior comparisons",
        category="control",
        check_reg=10,
        check_value=acc,
    )


def automaton(
    n: int = 1500, states: int = 16, classes: int = 4, seed: int = 42
) -> Workload:
    """DFA over a byte stream: the next-state load is data-dependent on the
    current state and an acceptance branch tests every state — a serial,
    fully-dependent taint chain (xalancbmk/perl-style dispatch)."""
    rng = random.Random(seed)
    data = [rng.randrange(256) for _ in range(n)]
    trans = [rng.randrange(states) for _ in range(states * classes)]

    state = 0
    accepts = 0
    acc = 0
    for byte in data:
        state = trans[state * classes + (byte % classes)]
        if state & 1:
            accepts += 1
        acc = (acc + state) & _MASK64
    acc = (acc + accepts) & _MASK64

    source = f"""
.data
input_bytes:
{_dwords(data)}
trans_table:
{_dwords(trans)}
globals:
    .dword input_bytes, trans_table
.text
    la gp, globals
    ld s0, 0(gp)        # &input
    ld s1, 8(gp)        # &trans
    li s4, {n}
    li s2, 0            # state
    li s3, 0            # i
    li s5, 0            # acc
    li s6, 0            # accept counter
loop:
    slli t0, s3, 3
    add t0, s0, t0
    ld t1, 0(t0)        # input byte (untainted address)
    andi t2, t1, {classes - 1}
    slli t3, s2, {classes.bit_length() - 1}
    add t3, t3, t2
    slli t3, t3, 3
    add t3, s1, t3
    ld s2, 0(t3)        # next state: tainted, serial chain
    andi t4, s2, 1
    beqz t4, not_accepting
    addi s6, s6, 1
not_accepting:
    add s5, s5, s2
    addi s3, s3, 1
    bne s3, s4, loop
    add a0, s5, s6
    halt
"""
    return Workload(
        name="automaton",
        source=source,
        description="DFA dispatch: serial state chain with acceptance branch",
        category="control",
        check_reg=10,
        check_value=acc,
    )
