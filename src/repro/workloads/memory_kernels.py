"""Memory-bound SPEClite workloads.

Each generator builds the assembly source *and* computes the expected result
with a Python mirror of the same algorithm, so every simulator run
self-checks (see :class:`~repro.workloads.spec.Workload`).
"""

from __future__ import annotations

import random

from .spec import Workload

_MASK64 = (1 << 64) - 1


def _dwords(values: list[int]) -> str:
    """Emit a .dword block, 8 values per line."""
    lines = []
    for i in range(0, len(values), 8):
        chunk = ", ".join(str(v) for v in values[i : i + 8])
        lines.append(f"    .dword {chunk}")
    return "\n".join(lines)


def pointer_chase(nodes: int = 512, iters: int = 1500, seed: int = 11) -> Workload:
    """mcf-like: three interleaved random pointer chases.

    Three independent chains walk one shuffled permutation from different
    start points, giving the memory-level parallelism real pointer codes
    have.  Defenses that delay speculative (tainted-address) loads collapse
    that MLP; Levioso releases each chase as soon as the quick loop branch
    resolves.
    """
    rng = random.Random(seed)
    order = list(range(nodes))
    rng.shuffle(order)
    nxt = [0] * nodes
    for i in range(nodes):
        nxt[order[i]] = order[(i + 1) % nodes]

    starts = (0, nodes // 3, (2 * nodes) // 3)
    cur = list(starts)
    acc = 0
    odd = 0
    for _ in range(iters):
        for c in range(3):
            cur[c] = nxt[cur[c]]
            acc = (acc + cur[c]) & _MASK64
        if cur[0] & 1:  # traversals test node data (mcf's arc checks)
            odd += 1
    acc = (acc + odd) & _MASK64

    source = f"""
.data
next_table:
{_dwords(nxt)}
globals:
    .dword next_table
.text
    # Compiled-code prologue: pointers live in memory (tainted), while hot
    # loop bounds and induction variables are register-allocated, exactly as
    # a compiler would emit (see suite.py, "why these twelve").
    la gp, globals
    ld s0, 0(gp)        # &next_table
    li s4, {iters}
    li s1, {starts[0]}  # chain A
    li s5, {starts[1]}  # chain B
    li s6, {starts[2]}  # chain C
    li s2, 0            # accumulator
    li s3, 0            # i
    li s7, 0            # odd-node counter
loop:
    slli t0, s1, 3
    add t0, s0, t0
    ld s1, 0(t0)        # chase A: tainted address
    add s2, s2, s1
    andi t3, s1, 1      # data-dependent test on the chased node
    beqz t3, pc_even
    addi s7, s7, 1
pc_even:
    slli t1, s5, 3
    add t1, s0, t1
    ld s5, 0(t1)        # chase B (independent of A)
    add s2, s2, s5
    slli t2, s6, 3
    add t2, s0, t2
    ld s6, 0(t2)        # chase C
    add s2, s2, s6
    addi s3, s3, 1
    bne s3, s4, loop
    add a0, s2, s7
    halt
"""
    return Workload(
        name="pchase",
        source=source,
        description="three interleaved pointer chases (MLP-sensitive)",
        category="memory",
        check_reg=10,
        check_value=acc,
    )


def stream_sum(n: int = 2048, seed: int = 12) -> Workload:
    """libquantum-like: sequential read-modify-write streaming."""
    rng = random.Random(seed)
    data = [rng.randrange(1 << 32) for _ in range(n)]
    acc = 0
    for v in data:
        if v & 0x80:  # data-dependent fixup branch (quantum-gate test)
            acc = (acc ^ v) & _MASK64
        acc = (acc + v) & _MASK64

    source = f"""
.data
in_array:
{_dwords(data)}
out_array:
    .zero {n * 8}
globals:
    .dword in_array, out_array
.text
    la gp, globals
    ld s0, 0(gp)        # &in_array
    ld s1, 8(gp)        # &out_array
    li s4, {n}
    li s2, 0            # acc
    li s3, 0            # i
loop:
    slli t0, s3, 3
    add t1, s0, t0
    ld t2, 0(t1)        # induction-indexed: untainted address
    andi t4, t2, 0x80
    beqz t4, no_fixup   # data-dependent branch on the streamed value
    xor s2, s2, t2
no_fixup:
    add s2, s2, t2
    add t3, s1, t0
    sd s2, 0(t3)        # streaming store
    addi s3, s3, 1
    bne s3, s4, loop
    mv a0, s2
    halt
"""
    return Workload(
        name="stream",
        source=source,
        description="sequential streaming sum with prefix-sum stores",
        category="memory",
        check_reg=10,
        check_value=acc,
    )


def gather(n: int = 1200, table_size: int = 256, seed: int = 13) -> Workload:
    """hash-join-like: slow data-dependent branch + control-independent gather.

    The ``beq`` condition comes from a strided (cache-missing) load, so it
    resolves late; the gather below it sits *past its reconvergence point*
    and is data-independent of it.  Conservative comprehensive policies stall
    the (tainted-address) gather behind the slow branch; Levioso does not.
    This is the workload shape where the paper's mechanism shines.
    """
    rng = random.Random(seed)
    stride_words = 8   # 64 B apart -> each cond load touches a new line
    cond_lines = 128   # working set: 8 KiB of condition lines (L1-thrashing)
    cond = [rng.randrange(1, 100) for _ in range(cond_lines * stride_words)]
    idx = [rng.randrange(table_size) for _ in range(n)]
    table = [rng.randrange(1 << 20) for _ in range(table_size)]

    acc = 0
    rare = 0
    for i in range(n):
        if cond[(i % cond_lines) * stride_words] == 0:  # never true
            rare += 1
        acc = (acc + table[idx[i]]) & _MASK64

    source = f"""
.data
cond_array:
{_dwords(cond)}
idx_array:
{_dwords(idx)}
lut:
{_dwords(table)}
globals:
    .dword cond_array, idx_array, lut
.text
    la gp, globals
    ld s0, 0(gp)        # &cond_array
    ld s1, 8(gp)        # &idx_array
    ld s2, 16(gp)       # &lut
    li s5, {n}
    li s3, 0            # acc
    li s4, 0            # i
    li s6, 0            # rare counter
loop:
    andi t6, s4, {cond_lines - 1}
    slli t0, t6, {3 + stride_words.bit_length() - 1}
    add t0, s0, t0
    ld t1, 0(t0)        # strided load: L1-missing, feeds the branch
    beqz t1, rare_path  # slow-resolving branch, never taken
cont:
    slli t2, s4, 3
    add t2, s1, t2
    ld t3, 0(t2)        # streaming index load (untainted address)
    slli t4, t3, 3
    add t4, s2, t4
    ld t5, 0(t4)        # gather: tainted address, control-independent
    add s3, s3, t5
    addi s4, s4, 1
    bne s4, s5, loop
    mv a0, s3
    halt
rare_path:
    addi s6, s6, 1
    j cont
"""
    return Workload(
        name="gather",
        source=source,
        description="slow branch + control-independent table gather",
        category="memory",
        check_reg=10,
        check_value=acc,
    )


def histogram(n: int = 1500, buckets: int = 64, seed: int = 14) -> Workload:
    """Histogram build: loads/stores whose addresses derive from loaded data."""
    rng = random.Random(seed)
    data = [rng.randrange(1 << 16) for _ in range(n)]
    hist = [0] * buckets
    for v in data:
        if v & 7:  # filtering branch on the loaded value
            hist[v % buckets] += 1
    checksum = 0
    for i, count in enumerate(hist):
        checksum = (checksum + count * (i + 1)) & _MASK64

    source = f"""
.data
data_array:
{_dwords(data)}
hist:
    .zero {buckets * 8}
globals:
    .dword data_array, hist
.text
    la gp, globals
    ld s0, 0(gp)        # &data_array
    ld s1, 8(gp)        # &hist
    li s3, {n}
    li s2, 0            # i
loop:
    slli t0, s2, 3
    add t0, s0, t0
    ld t1, 0(t0)        # value (untainted address)
    andi t4, t1, 7
    beqz t4, hskip      # filter: bin update is control-dependent on data
    andi t2, t1, {buckets - 1}
    slli t2, t2, 3
    add t2, s1, t2
    ld t3, 0(t2)        # bin read: tainted address
    addi t3, t3, 1
    sd t3, 0(t2)        # bin write
hskip:
    addi s2, s2, 1
    bne s2, s3, loop
    # checksum pass: acc += hist[i] * (i+1)
    li s2, 0
    li s4, 0            # acc
    li s3, {buckets}
chk:
    slli t0, s2, 3
    add t0, s1, t0
    ld t1, 0(t0)
    addi t2, s2, 1
    mul t3, t1, t2
    add s4, s4, t3
    addi s2, s2, 1
    bne s2, s3, chk
    mv a0, s4
    halt
"""
    return Workload(
        name="histogram",
        source=source,
        description="histogram build with loaded-data-indexed bins",
        category="memory",
        check_reg=10,
        check_value=checksum,
    )
