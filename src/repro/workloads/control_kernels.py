"""Control-flow-heavy SPEClite workloads."""

from __future__ import annotations

import random

from .spec import Workload
from .memory_kernels import _dwords

_MASK64 = (1 << 64) - 1


def branchy(n: int = 2500, seed: int = 21) -> Workload:
    """gcc/sjeng-like: dense data-dependent branching over cached data."""
    rng = random.Random(seed)
    data = [rng.randrange(1 << 16) for _ in range(n)]
    acc = 0
    even = 0
    for v in data:
        if v & 1:
            acc = (acc + v) & _MASK64
        else:
            acc = (acc ^ v) & _MASK64
            even += 1
        if v & 4:
            acc = (acc + 3) & _MASK64

    source = f"""
.data
data_array:
{_dwords(data)}
globals:
    .dword data_array
.text
    la gp, globals
    ld s0, 0(gp)        # &data_array
    li s3, {n}
    li s1, 0            # acc
    li s2, 0            # i
    li s5, 0            # even counter
loop:
    slli t0, s2, 3
    add t0, s0, t0
    ld t1, 0(t0)
    andi t2, t1, 1
    beqz t2, even_case
    add s1, s1, t1
    j after
even_case:
    xor s1, s1, t1
    addi s5, s5, 1
after:
    andi t3, t1, 4
    beqz t3, no_bonus
    addi s1, s1, 3
no_bonus:
    addi s2, s2, 1
    bne s2, s3, loop
    mv a0, s1
    halt
"""
    return Workload(
        name="branchy",
        source=source,
        description="dense unpredictable data-dependent branches",
        category="control",
        check_reg=10,
        check_value=acc,
    )


def binary_search(n: int = 1024, queries: int = 220, seed: int = 22) -> Workload:
    """Binary search: loads feed branches feed loads (deep dependence).

    Every probe load is both control- and data-dependent on the previous
    compare, so Levioso and the conservative baselines behave similarly —
    an honest "no-win" point in the evaluation space.
    """
    rng = random.Random(seed)
    array = sorted(rng.sample(range(1 << 20), n))
    qs = [rng.choice(array) if rng.random() < 0.7 else rng.randrange(1 << 20)
          for _ in range(queries)]

    def search(target: int) -> int:
        lo, hi = 0, n
        while lo < hi:
            mid = (lo + hi) // 2
            if array[mid] < target:
                lo = mid + 1
            else:
                hi = mid
        return lo

    acc = 0
    for q in qs:
        acc = (acc + search(q)) & _MASK64

    source = f"""
.data
sorted_array:
{_dwords(array)}
query_array:
{_dwords(qs)}
globals:
    .dword sorted_array, query_array
.text
    la gp, globals
    ld s0, 0(gp)        # &sorted_array
    ld s1, 8(gp)        # &query_array
    li s4, {queries}
    li s9, {n}
    li s2, 0            # acc
    li s3, 0            # q index
next_query:
    slli t0, s3, 3
    add t0, s1, t0
    ld s5, 0(t0)        # target
    li s6, 0            # lo
    mv s7, s9           # hi = n
bs_loop:
    bgeu s6, s7, bs_done
    add t1, s6, s7
    srli t1, t1, 1      # mid
    slli t2, t1, 3
    add t2, s0, t2
    ld t3, 0(t2)        # array[mid]
    bltu t3, s5, go_right
    mv s7, t1           # hi = mid
    j bs_loop
go_right:
    addi s6, t1, 1      # lo = mid + 1
    j bs_loop
bs_done:
    add s2, s2, s6
    addi s3, s3, 1
    bne s3, s4, next_query
    mv a0, s2
    halt
"""
    return Workload(
        name="bsearch",
        source=source,
        description="binary search with load->branch->load dependences",
        category="control",
        check_reg=10,
        check_value=acc,
    )


def bubble_pass(n: int = 96, passes: int = 14, seed: int = 23) -> Workload:
    """Bubble-sort passes: unpredictable compare-swap branches + stores."""
    rng = random.Random(seed)
    array = [rng.randrange(1 << 16) for _ in range(n)]
    mirror = list(array)
    swaps = 0
    for _ in range(passes):
        for i in range(n - 1):
            if mirror[i] > mirror[i + 1]:
                mirror[i], mirror[i + 1] = mirror[i + 1], mirror[i]
                swaps += 1
    acc = 0
    for i, v in enumerate(mirror):
        acc = (acc + v * (i + 1)) & _MASK64

    source = f"""
.data
array:
{_dwords(array)}
globals:
    .dword array
.text
    la gp, globals
    ld s0, 0(gp)        # &array
    li s2, {passes}
    li s10, {n - 1}
    li s1, 0            # pass
pass_loop:
    li s3, 0            # i
    mv s4, s10
inner:
    slli t0, s3, 3
    add t0, s0, t0
    ld t1, 0(t0)        # a[i]
    ld t2, 8(t0)        # a[i+1]
    bgeu t2, t1, no_swap
    sd t2, 0(t0)
    sd t1, 8(t0)
no_swap:
    addi s3, s3, 1
    bne s3, s4, inner
    addi s1, s1, 1
    bne s1, s2, pass_loop
    # weighted checksum
    li s3, 0
    li s5, 0
    li s4, {n}
chk:
    slli t0, s3, 3
    add t0, s0, t0
    ld t1, 0(t0)
    addi t2, s3, 1
    mul t3, t1, t2
    add s5, s5, t3
    addi s3, s3, 1
    bne s3, s4, chk
    mv a0, s5
    halt
"""
    return Workload(
        name="sort",
        source=source,
        description="bubble-sort passes with unpredictable compare-swap",
        category="control",
        check_reg=10,
        check_value=acc,
    )


def sandbox_guard(n: int = 1400, bound: int = 256, seed: int = 24) -> Workload:
    """Bounds-checked array access, the sandbox idiom Spectre v1 abuses.

    Every payload load is control-dependent on its own bounds check, so all
    comprehensive policies must gate it while the check is unresolved.
    """
    rng = random.Random(seed)
    arr = [rng.randrange(1 << 12) for _ in range(bound)]
    idxs = [rng.randrange(bound + 40) for _ in range(n)]  # some out of range
    acc = 0
    skipped = 0
    for i in idxs:
        if i < bound:
            acc = (acc + arr[i]) & _MASK64
        else:
            skipped += 1

    source = f"""
.data
arr:
{_dwords(arr)}
idx_array:
{_dwords(idxs)}
globals:
    .dword arr, idx_array
.text
    la gp, globals
    ld s0, 0(gp)        # &arr
    ld s1, 8(gp)        # &idx_array
    li s4, {n}
    li s5, {bound}
    li s2, 0            # acc
    li s3, 0            # i
loop:
    slli t0, s3, 3
    add t0, s1, t0
    ld t1, 0(t0)        # index (attacker-controlled in the threat model)
    bgeu t1, s5, skip   # bounds check
    slli t2, t1, 3
    add t2, s0, t2
    ld t3, 0(t2)        # guarded access
    add s2, s2, t3
skip:
    addi s3, s3, 1
    bne s3, s4, loop
    mv a0, s2
    halt
"""
    return Workload(
        name="sandbox",
        source=source,
        description="bounds-checked accesses (Spectre-v1 victim idiom)",
        category="control",
        check_reg=10,
        check_value=acc,
    )
