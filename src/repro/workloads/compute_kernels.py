"""Compute-centric SPEClite workloads."""

from __future__ import annotations

import random

from .spec import Workload
from .memory_kernels import _dwords

_MASK64 = (1 << 64) - 1


def matmul(dim: int = 14, seed: int = 31) -> Workload:
    """Dense matrix multiply: ILP-rich, induction-indexed (untainted) loads."""
    rng = random.Random(seed)
    a = [[rng.randrange(1 << 10) for _ in range(dim)] for _ in range(dim)]
    b = [[rng.randrange(1 << 10) for _ in range(dim)] for _ in range(dim)]
    acc = 0
    for i in range(dim):
        for j in range(dim):
            s = 0
            for k in range(dim):
                s = (s + a[i][k] * b[k][j]) & _MASK64
            acc = (acc + s) & _MASK64

    flat_a = [v for row in a for v in row]
    flat_b = [v for row in b for v in row]
    source = f"""
.data
mat_a:
{_dwords(flat_a)}
mat_b:
{_dwords(flat_b)}
globals:
    .dword mat_a, mat_b
.text
    la gp, globals
    ld s0, 0(gp)        # &mat_a
    ld s1, 8(gp)        # &mat_b
    li s4, {dim}
    li s2, 0            # acc
    li s3, 0            # i
i_loop:
    li s5, 0            # j
j_loop:
    li s6, 0            # k
    li s7, 0            # s
k_loop:
    # a[i][k]
    mul t0, s3, s4
    add t0, t0, s6
    slli t0, t0, 3
    add t0, s0, t0
    ld t1, 0(t0)
    # b[k][j]
    mul t2, s6, s4
    add t2, t2, s5
    slli t2, t2, 3
    add t2, s1, t2
    ld t3, 0(t2)
    mul t4, t1, t3
    add s7, s7, t4
    addi s6, s6, 1
    bne s6, s4, k_loop
    add s2, s2, s7
    addi s5, s5, 1
    bne s5, s4, j_loop
    addi s3, s3, 1
    bne s3, s4, i_loop
    mv a0, s2
    halt
"""
    return Workload(
        name="matmul",
        source=source,
        description="dense matrix multiply (ILP-rich compute)",
        category="compute",
        check_reg=10,
        check_value=acc,
    )


def crc_table(n: int = 1600, seed: int = 32) -> Workload:
    """CRC-style table-driven checksum: a serial chain of tainted lookups.

    Each table index derives from the previous lookup's result, so the taint
    chain never breaks — a stress test for taint-based policies.
    """
    rng = random.Random(seed)
    data = [rng.randrange(256) for _ in range(n)]
    table = [rng.randrange(1 << 32) for _ in range(256)]
    crc = 0xFFFFFFFF
    for byte in data:
        crc = (table[(crc ^ byte) & 0xFF] ^ (crc >> 8)) & _MASK64

    source = f"""
.data
bytes_in:
{_dwords(data)}
crc_lut:
{_dwords(table)}
globals:
    .dword bytes_in, crc_lut
.text
    la gp, globals
    ld s0, 0(gp)        # &bytes_in
    ld s1, 8(gp)        # &crc_lut
    li s4, {n}
    li s2, 0xFFFFFFFF   # crc
    li s3, 0            # i
loop:
    slli t0, s3, 3
    add t0, s0, t0
    ld t1, 0(t0)        # data byte (untainted address)
    xor t2, s2, t1
    andi t2, t2, 0xFF
    slli t2, t2, 3
    add t2, s1, t2
    ld t3, 0(t2)        # table lookup: tainted address (crc is loaded data)
    srli t4, s2, 8
    xor s2, t3, t4
    addi s3, s3, 1
    bne s3, s4, loop
    mv a0, s2
    halt
"""
    return Workload(
        name="crc",
        source=source,
        description="table-driven CRC with a serial tainted-lookup chain",
        category="compute",
        check_reg=10,
        check_value=crc,
    )


def cipher_ct(blocks: int = 300, rounds: int = 8, seed: int = 33) -> Workload:
    """Constant-time ARX cipher kernel over a secret key.

    The key lives in a ``.secret`` region (the non-speculative-secret threat
    model): the kernel itself is register-only ARX, so a correct comprehensive
    defense should cost little here — and STT must not be credited for
    protecting it (it does not).
    """
    rng = random.Random(seed)
    key = [rng.randrange(1 << 64) for _ in range(4)]
    msgs = [rng.randrange(1 << 64) for _ in range(blocks)]

    def rotl(x: int, r: int) -> int:
        return ((x << r) | (x >> (64 - r))) & _MASK64

    acc = 0
    for m in msgs:
        v = m
        for r in range(rounds):
            v = (v + key[r % 4]) & _MASK64
            v = rotl(v, 13)
            v ^= key[(r + 1) % 4]
        acc = (acc + v) & _MASK64

    round_body = []
    for r in range(rounds):
        k_add = 20 + (r % 4)        # s4..s7 hold the key words
        k_xor = 20 + ((r + 1) % 4)
        round_body.append(
            f"""    add t1, t1, x{k_add}
    slli t2, t1, 13
    srli t3, t1, 51
    or t1, t2, t3
    xor t1, t1, x{k_xor}"""
        )
    rounds_text = "\n".join(round_body)

    source = f"""
.data
.secret cipher_key
key:
{_dwords(key)}
.public
messages:
{_dwords(msgs)}
globals:
    .dword key, messages
.text
    la gp, globals
    ld t0, 0(gp)        # &key
    ld s4, 0(t0)        # non-speculative secret loads
    ld s5, 8(t0)
    ld s6, 16(t0)
    ld s7, 24(t0)
    ld s0, 8(gp)        # &messages
    li s3, {blocks}
    li s1, 0            # acc
    li s2, 0            # i
loop:
    slli t0, s2, 3
    add t0, s0, t0
    ld t1, 0(t0)        # message block
{rounds_text}
    add s1, s1, t1
    addi s2, s2, 1
    bne s2, s3, loop
    mv a0, s1
    halt
"""
    return Workload(
        name="cipher",
        source=source,
        description="constant-time ARX cipher over a .secret key",
        category="compute",
        check_reg=10,
        check_value=acc,
    )


def list_update(nodes: int = 384, iters: int = 1100, seed: int = 34) -> Workload:
    """Linked-structure update: pointer chase + read-modify-write per node."""
    rng = random.Random(seed)
    order = list(range(nodes))
    rng.shuffle(order)
    nxt = [0] * nodes
    for i in range(nodes):
        nxt[order[i]] = order[(i + 1) % nodes]
    values = [rng.randrange(1 << 16) for _ in range(nodes)]

    mirror = list(values)
    cur = 0
    acc = 0
    odd = 0
    for _ in range(iters):
        cur = nxt[cur]
        mirror[cur] = (mirror[cur] + 1) & _MASK64
        acc = (acc + mirror[cur]) & _MASK64
        if mirror[cur] & 1:  # data-dependent bookkeeping branch
            odd += 1
    acc = (acc + odd) & _MASK64

    source = f"""
.data
next_table:
{_dwords(nxt)}
val_table:
{_dwords(values)}
globals:
    .dword next_table, val_table
.text
    la gp, globals
    ld s0, 0(gp)        # &next_table
    ld s1, 8(gp)        # &val_table
    li s5, {iters}
    li s2, 0            # cur
    li s3, 0            # acc
    li s4, 0            # i
    li s7, 0            # odd counter
loop:
    slli t0, s2, 3
    add t0, s0, t0
    ld s2, 0(t0)        # chase
    slli t1, s2, 3
    add t1, s1, t1
    ld t2, 0(t1)        # node value: tainted address
    addi t2, t2, 1
    sd t2, 0(t1)        # update
    add s3, s3, t2
    andi t5, t2, 1
    beqz t5, lskip      # data-dependent test on the updated value
    addi s7, s7, 1
lskip:
    addi s4, s4, 1
    bne s4, s5, loop
    add a0, s3, s7
    halt
"""
    return Workload(
        name="listupd",
        source=source,
        description="linked-structure chase with per-node read-modify-write",
        category="compute",
        check_reg=10,
        check_value=acc,
    )
