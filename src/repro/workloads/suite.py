"""The SPEClite suite: 14 workloads standing in for SPEC CPU2017.

Why these fourteen (DESIGN.md, substitutions): secure-speculation overhead is
driven by (branch density) x (branch resolution latency) x (transmitter
density) x (dependence structure between them).  The suite spans that space:

====== ========== ==========================================================
name   category   stress axis
====== ========== ==========================================================
pchase  memory    serial tainted chases, fast-resolving branches
stream  memory    untainted streaming (defenses should be ~free)
gather  memory    slow branch + control-independent tainted gather (Levioso's
                  best case)
histo.  memory    loaded-data-indexed read-modify-write
branchy control   dense unpredictable branches, cached data
bsearch control   load->branch->load chains (no-win case, honest baseline)
sort    control   compare-swap branches + dependent stores
sandbox control   bounds-checked loads (Spectre-v1 victim shape)
matmul  compute   ILP-rich, induction addressing
crc     compute   serial tainted-lookup chain
cipher  compute   constant-time kernel over .secret key
listupd compute   chase + RMW mix
treew.  control   BST descent - transmitters truly branch-dependent
autom.  control   DFA dispatch - serial fully-dependent taint chain
====== ========== ==========================================================

Two scales are provided: ``test`` (seconds per run, used by pytest) and
``ref`` (the benchmark-harness default).
"""

from __future__ import annotations

from typing import Callable

from .compute_kernels import cipher_ct, crc_table, list_update, matmul
from .control_kernels import binary_search, branchy, bubble_pass, sandbox_guard
from .dependence_kernels import automaton, tree_walk
from .memory_kernels import gather, histogram, pointer_chase, stream_sum
from .spec import Workload

# name -> (builder, test-scale kwargs, ref-scale kwargs)
# Ref-scale footprints are sized against the reduced cache hierarchy
# (16 KiB L1D / 128 KiB L2): the main arrays of the memory-bound kernels
# overflow the L1 and several overflow the L2, so branch conditions that
# depend on loaded data resolve at realistic latencies.
_REGISTRY: dict[str, tuple[Callable[..., Workload], dict, dict]] = {
    "pchase": (pointer_chase, {"nodes": 256, "iters": 400}, {"nodes": 2048, "iters": 1800}),
    "stream": (stream_sum, {"n": 600}, {"n": 4096}),
    "gather": (gather, {"n": 350}, {"n": 1200}),
    "histogram": (histogram, {"n": 400}, {"n": 3000, "buckets": 256}),
    "branchy": (branchy, {"n": 700}, {"n": 3000}),
    "bsearch": (binary_search, {"queries": 70}, {"n": 2048, "queries": 250}),
    "sort": (bubble_pass, {"n": 48, "passes": 8}, {"n": 128, "passes": 12}),
    "sandbox": (sandbox_guard, {"n": 400}, {"n": 1600}),
    "matmul": (matmul, {"dim": 9}, {"dim": 16}),
    "crc": (crc_table, {"n": 450}, {"n": 1800}),
    "cipher": (cipher_ct, {"blocks": 90}, {"blocks": 320}),
    "listupd": (list_update, {"nodes": 192, "iters": 300}, {"nodes": 1024, "iters": 1400}),
    "treewalk": (tree_walk, {"nodes": 127, "queries": 60}, {"nodes": 511, "queries": 220}),
    "automaton": (automaton, {"n": 450}, {"n": 1700}),
}

WORKLOAD_NAMES = tuple(_REGISTRY)

SCALES = ("test", "ref")


def build_workload(name: str, scale: str = "ref", **overrides) -> Workload:
    """Build one workload by name at the given scale.

    ``fuzz/…`` names are synthesized adversarial programs — the name alone
    encodes (seed, index, secret fill, repair state), so any worker process
    can rebuild the exact workload without a corpus file: a fuzz campaign
    is just another grid.  ``mit/<pass>/<base>`` names are software-hardened
    variants: the base workload rebuilt through a mitigation pass.
    """
    if name.startswith("mit/"):
        from ..compiler.mitigations import build_mitigated_workload

        return build_mitigated_workload(name, scale)
    if name.startswith("fuzz/"):
        from ..adversarial.synth import build_fuzz_workload

        return build_fuzz_workload(name)
    if name not in _REGISTRY:
        raise KeyError(f"unknown workload {name!r}; know {sorted(_REGISTRY)}")
    if scale not in SCALES:
        raise KeyError(f"unknown scale {scale!r}; know {SCALES}")
    builder, test_kwargs, ref_kwargs = _REGISTRY[name]
    kwargs = dict(test_kwargs if scale == "test" else ref_kwargs)
    kwargs.update(overrides)
    return builder(**kwargs)


def build_suite(scale: str = "ref", names: tuple[str, ...] | None = None) -> list[Workload]:
    """Build the whole suite (or a named subset) at one scale."""
    selected = names or WORKLOAD_NAMES
    return [build_workload(name, scale) for name in selected]
