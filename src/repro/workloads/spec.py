"""Workload specification record."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..asm import assemble
from ..asm.program import Program


@dataclass(frozen=True)
class Workload:
    """One SPEClite workload: named assembly source + expectations.

    ``check_reg``/``check_value`` define a self-check: after execution the
    given architectural register must hold the given value, so every harness
    run re-validates correctness for free.
    """

    name: str
    source: str
    description: str
    category: str  # memory / control / compute
    check_reg: int | None = None
    check_value: int | None = None
    # Mitigation-pass tag (``<pass>@v<version>``) when this workload is the
    # software-hardened variant of another; part of the cache fingerprint so
    # results from different pass generations are never conflated.
    mitigation: str | None = None

    def assemble(self) -> Program:
        return assemble(self.source, name=self.name)

    def validate(self, regs: tuple[int, ...]) -> bool:
        if self.check_reg is None:
            return True
        return regs[self.check_reg] == self.check_value
