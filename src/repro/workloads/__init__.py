"""SPEClite: the synthetic benchmark suite standing in for SPEC CPU2017."""

from .compute_kernels import cipher_ct, crc_table, list_update, matmul
from .control_kernels import binary_search, branchy, bubble_pass, sandbox_guard
from .dependence_kernels import automaton, tree_walk
from .memory_kernels import gather, histogram, pointer_chase, stream_sum
from .spec import Workload
from .suite import SCALES, WORKLOAD_NAMES, build_suite, build_workload

__all__ = [
    "SCALES",
    "WORKLOAD_NAMES",
    "Workload",
    "automaton",
    "binary_search",
    "branchy",
    "bubble_pass",
    "build_suite",
    "build_workload",
    "cipher_ct",
    "crc_table",
    "gather",
    "histogram",
    "list_update",
    "matmul",
    "pointer_chase",
    "sandbox_guard",
    "stream_sum",
    "tree_walk",
]
