"""The Levioso compiler passes: metadata analysis and fence repair.

:func:`run_levioso_pass` runs CFG construction, post-dominator analysis,
reconvergence and control dependence over every function, and attaches the
combined :class:`~repro.compiler.branch_deps.BranchDependencyInfo` to the
program.

:func:`insert_fences` is the repair-loop's mutation primitive (CureSpec
shape): given transmitter/landing pcs from scanner findings, it inserts
``fence`` instructions *at the source level* and reassembles — so label
arithmetic, jump tables (``.dword stub``) and the ``.secret`` layout all
re-resolve instead of being patched around in the binary.
"""

from __future__ import annotations

from ..asm.program import Program
from ..cfg.builder import build_all_cfgs
from ..cfg.dom import PostDominatorInfo
from ..isa import INSTRUCTION_BYTES, Opcode
from .branch_deps import BranchDependencyInfo
from .control_dep import control_dependent_pcs
from .reconvergence import analyze_reconvergence
from .rewriter import ProgramRewriter


def run_levioso_pass(program: Program) -> BranchDependencyInfo:
    """Analyze ``program`` and attach dependency metadata to it.

    Idempotent: re-running replaces ``program.analysis``.
    """
    info = BranchDependencyInfo()
    for cfg in build_all_cfgs(program):
        pdom = PostDominatorInfo(cfg)
        for branch_pc, record in analyze_reconvergence(cfg).items():
            info.reconv_pc[branch_pc] = record.reconv_pc
            info.control_dep_pcs[branch_pc] = control_dependent_pcs(
                cfg, branch_pc, pdom
            )
            info.function_of_branch[branch_pc] = cfg.name
    for inst in program.instructions:
        if inst.opcode is Opcode.JALR:
            info.indirect_pcs.add(inst.pc)
    program.analysis = info
    return info


def ensure_analysis(program: Program) -> BranchDependencyInfo:
    """Return the program's metadata, running the pass on first use."""
    if program.analysis is None:
        return run_levioso_pass(program)
    return program.analysis


# --------------------------------------------------------------- fence repair


def insert_fences(program: Program, pcs: list[int], name: str | None = None) -> Program:
    """Insert a ``fence`` immediately before each instruction at ``pcs``.

    Rewrites the program's assembly source through :class:`ProgramRewriter`
    and reassembles, shifting every later pc by one slot — callers must
    re-run the scanner on the result rather than reuse old pcs.  A
    ``label: inst`` line is split so the fence lands *after* the label
    (jumps to the label must execute it).
    """
    if not pcs:
        return program
    rewriter = ProgramRewriter(program)
    for pc in sorted(set(pcs)):
        rewriter.insert_before(pc, "fence")
    return rewriter.rewrite(name=name or f"{program.name}+fence")


def repair_sites(
    program: Program, findings, strategy: str = "load"
) -> list[int]:
    """Map scanner findings to fence-insertion pcs for one repair step.

    ``load`` hardens the transmitter itself (a fence directly before it —
    guaranteed progress: the refined open-window set at the transmitter
    becomes empty).  ``branch`` fences the guard's fallthrough
    (``branch_pc + 4``), the classic cheap site — but an indirect-jump
    guard has no fetched fallthrough (the BTB steers fetch straight to the
    landing pad), and a site already fenced means the strategy cannot make
    progress; both fall back to the transmitter site.
    """
    sites: set[int] = set()
    for finding in findings:
        site = finding.pc
        if strategy == "branch" and finding.branch_pc is not None:
            candidate = finding.branch_pc + INSTRUCTION_BYTES
            inst = program.try_inst_at(candidate)
            guard = program.try_inst_at(finding.branch_pc)
            if (
                inst is not None
                and inst.opcode is not Opcode.FENCE
                and guard is not None
                and guard.opcode is not Opcode.JALR
            ):
                site = candidate
        sites.add(site)
    return sorted(sites)
