"""The Levioso compiler pass: program -> branch-dependency metadata.

Runs CFG construction, post-dominator analysis, reconvergence and control
dependence over every function, and attaches the combined
:class:`~repro.compiler.branch_deps.BranchDependencyInfo` to the program.
"""

from __future__ import annotations

from ..asm.program import Program
from ..cfg.builder import build_all_cfgs
from ..cfg.dom import PostDominatorInfo
from ..isa import Opcode
from .branch_deps import BranchDependencyInfo
from .control_dep import control_dependent_pcs
from .reconvergence import analyze_reconvergence


def run_levioso_pass(program: Program) -> BranchDependencyInfo:
    """Analyze ``program`` and attach dependency metadata to it.

    Idempotent: re-running replaces ``program.analysis``.
    """
    info = BranchDependencyInfo()
    for cfg in build_all_cfgs(program):
        pdom = PostDominatorInfo(cfg)
        for branch_pc, record in analyze_reconvergence(cfg).items():
            info.reconv_pc[branch_pc] = record.reconv_pc
            info.control_dep_pcs[branch_pc] = control_dependent_pcs(
                cfg, branch_pc, pdom
            )
            info.function_of_branch[branch_pc] = cfg.name
    for inst in program.instructions:
        if inst.opcode is Opcode.JALR:
            info.indirect_pcs.add(inst.pc)
    program.analysis = info
    return info


def ensure_analysis(program: Program) -> BranchDependencyInfo:
    """Return the program's metadata, running the pass on first use."""
    if program.analysis is None:
        return run_levioso_pass(program)
    return program.analysis
