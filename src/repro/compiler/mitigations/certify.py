"""Dual certification of mitigation passes: equivalence and security.

Every mitigated program is judged on two independent axes before it is
trusted as a software baseline:

* **architectural equivalence** — the functional simulator runs baseline
  and mitigated images to completion and the final states must match bit
  for bit — all 32 registers and every touched memory page — *up to code
  relocation*: source-level insertion moves instructions, so a value that
  is exactly the baseline address of a text-segment symbol is accepted
  when the mitigated state holds that same symbol's relocated address
  (the v2 gadget's function-pointer table is the canonical case).  Any
  other divergence fails; the passes are transformations of *timing*,
  never of meaning.  The 14 SPEClite kernels hold no code pointers at
  all, so for them this degrades to strict bit-for-bit equality;
* **security** — the PR-7 differential oracle must return SECURE for the
  mitigated program under hardware policy ``none`` (the software carries
  the whole burden), and the static scanner must report it clean.

``certify`` bundles both into a :class:`MitigationCertificate`; the CLI,
tests, and CI smoke job all consume the same record.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ...asm.program import Program
from ...mem.backing import PAGE_SIZE

#: Generous instruction budget: SLH at most ~7x's the dynamic count of the
#: largest workload, which retires well under a million instructions.
MAX_INSTRUCTIONS = 20_000_000

_WORD = 8


@dataclass
class MitigationCertificate:
    """Evidence that a mitigated program is both correct and secure."""

    pass_name: str
    version: int
    program_name: str
    equivalent: bool
    oracle_verdict: str
    scanner_clean: bool
    findings_left: int
    baseline_instructions: int
    mitigated_instructions: int
    stats: dict = field(default_factory=dict)

    @property
    def certified(self) -> bool:
        return (
            self.equivalent
            and self.oracle_verdict == "SECURE"
            and self.scanner_clean
        )

    @property
    def instruction_overhead(self) -> float:
        """Dynamic instruction-count overhead of the mitigation."""
        if not self.baseline_instructions:
            return 0.0
        return self.mitigated_instructions / self.baseline_instructions - 1.0

    def to_dict(self) -> dict:
        return {
            "pass": self.pass_name,
            "version": self.version,
            "program": self.program_name,
            "certified": self.certified,
            "equivalent": self.equivalent,
            "oracle_verdict": self.oracle_verdict,
            "scanner_clean": self.scanner_clean,
            "findings_left": self.findings_left,
            "baseline_instructions": self.baseline_instructions,
            "mitigated_instructions": self.mitigated_instructions,
            "instruction_overhead": round(self.instruction_overhead, 6),
            "stats": dict(self.stats),
        }


def _relocation_map(
    baseline: Program,
    mitigated: Program,
    pc_map: dict[int, int] | None = None,
) -> dict[int, int]:
    """baseline code address -> its relocated address in the mitigated image.

    Text-segment symbols relocate by name; the rewriter's ``pc_map``
    additionally covers unlabeled addresses — in particular the ``jal``
    return addresses (``jal_pc + 4`` is the next instruction's pc, whose
    continuation address the map records).
    """
    reloc: dict[int, int] = {}
    for symbol, address in baseline.symbols.items():
        if baseline.text_base <= address < baseline.text_end:
            moved = mitigated.symbols.get(symbol)
            if moved is not None:
                reloc[address] = moved
    if pc_map:
        reloc.update(pc_map)
    return reloc


def _values_match(base_value: int, mit_value: int, reloc: dict[int, int]) -> bool:
    return base_value == mit_value or reloc.get(base_value) == mit_value


def _memory_equivalent(base_mem, mit_mem, reloc: dict[int, int]) -> bool:
    """Touched-page equality, tolerating relocated code-pointer words."""
    zero = bytes(PAGE_SIZE)
    pages = set(base_mem._pages) | set(mit_mem._pages)
    for number in pages:
        mine = bytes(base_mem._pages.get(number, zero))
        theirs = bytes(mit_mem._pages.get(number, zero))
        if mine == theirs:
            continue
        for offset in range(0, PAGE_SIZE, _WORD):
            a = mine[offset:offset + _WORD]
            b = theirs[offset:offset + _WORD]
            if a == b:
                continue
            base_word = int.from_bytes(a, "little")
            mit_word = int.from_bytes(b, "little")
            if reloc.get(base_word) != mit_word:
                return False
    return True


def architecturally_equivalent(
    baseline: Program,
    mitigated: Program,
    max_instructions: int = MAX_INSTRUCTIONS,
    pc_map: dict[int, int] | None = None,
) -> bool:
    """Run both programs functionally and compare final state (see module doc)."""
    from ...functional.simulator import run_program

    base = run_program(baseline, max_instructions=max_instructions)
    mit = run_program(mitigated, max_instructions=max_instructions)
    return _states_equivalent(baseline, mitigated, base, mit, pc_map)


def _states_equivalent(baseline, mitigated, base, mit, pc_map=None) -> bool:
    reloc = _relocation_map(baseline, mitigated, pc_map)
    if any(
        not _values_match(b, m, reloc)
        for b, m in zip(base.regs, mit.regs)
    ):
        return False
    return _memory_equivalent(base.state.memory, mit.state.memory, reloc)


def certify(
    baseline: Program,
    mitigated: Program,
    pass_name: str,
    version: int,
    stats: dict | None = None,
    policy: str = "none",
    pc_map: dict[int, int] | None = None,
) -> MitigationCertificate:
    """Certify a (baseline, mitigated) pair on both axes."""
    from ...adversarial.oracle import program_verdict
    from ...analysis.scanner import scan_program
    from ...functional.simulator import run_program

    base = run_program(baseline, max_instructions=MAX_INSTRUCTIONS)
    mit = run_program(mitigated, max_instructions=MAX_INSTRUCTIONS)
    equivalent = _states_equivalent(baseline, mitigated, base, mit, pc_map)
    report = scan_program(mitigated)
    verdict = program_verdict(mitigated, policy)
    return MitigationCertificate(
        pass_name=pass_name,
        version=version,
        program_name=baseline.name,
        equivalent=equivalent,
        oracle_verdict=verdict.verdict,
        scanner_clean=report.clean,
        findings_left=len(report.findings),
        baseline_instructions=base.instructions,
        mitigated_instructions=mit.instructions,
        stats=dict(stats or {}),
    )
