"""Speculative load hardening (SLH) as a source-level compiler pass.

The pass threads a *misspeculation predicate* through the program using
only existing ALU opcodes — no ISA change:

* a reserved mask register ``M`` starts at ``-1`` (all ones);
* every instrumented conditional branch updates it on **both** edges with
  an ``SLT``/``SLTU``/``SUB``-based recomputation of its own condition
  (the registers it compared are still live right after the branch):
  ``M &= -1`` when the taken/not-taken direction agrees with the
  condition, ``M &= 0`` when it does not.  On the correct path ``M``
  stays ``-1``; on any misspeculated path the first instrumented branch
  zeroes it — and because the update is *data-dependent* on the branch
  operands, a hardened access cannot issue before the condition's inputs
  resolve, which is exactly the SLH ordering trick;
* hardened memory accesses compute their address, then AND it with ``M``
  (``addi T, base, imm; and T, T, M; op data, 0(T)``): the identity under
  correct speculation, address 0 — a secret-independent constant — under
  misspeculation.

The taken edge is instrumented without critical-edge machinery by
redirecting the branch to a per-branch trampoline appended at the end of
the text segment (update, then ``j`` back to a fresh label bound to the
original target's address).  The not-taken update is inserted directly
after the branch line, *before* any labels on the fallthrough line, so
jumps into the fallthrough block skip it: updates are per-edge.

Indirect-jump windows (v2 landing pads) cannot be predicated — the
predicate guards condition outcomes, not targets — so both variants drain
them with a fence at each orphan landing-pad entry, the retpoline stand-in
on this substrate.

Two variants:

* **conservative** — instrument every conditional branch, harden every
  memory access (loads, stores, ``cflush``): whole-program SLH;
* **lifted** (index-masking, per "Do You Even Lift?") — scanner-informed:
  harden only scanner-flagged transmitters and instrument only their
  guarding branches; v2/jalr-guarded findings get a transmitter fence.
  A scanner-clean program is returned untouched.

Architectural equivalence: ``M``/``T`` are chosen from registers the
program never references, ``M == -1`` on every architectural path (so the
masking is the identity), and both registers are re-zeroed before every
``halt`` — the full 32-register final state matches the baseline bit for
bit.  The pass emits a ``.slhmask M`` directive so the static taint
analysis knows AND-with-``M`` sanitizes (the assume-guarantee contract).
"""

from __future__ import annotations

from ...asm.program import Program
from ...errors import AnalysisError
from ...isa import Opcode, register_name
from ..rewriter import ProgramRewriter, compose_pc_maps
from .fencing import _orphan_entries

#: Scratch-register preference: temporaries first, then saved/argument
#: registers; ra/sp/gp/tp stay reserved for their ABI roles.
_CANDIDATES = tuple(
    list(range(28, 32))      # t3..t6
    + [5, 6, 7]              # t0..t2
    + list(range(18, 28))    # s2..s11
    + [8, 9]                 # s0, s1
    + list(range(10, 18))    # a0..a7
)

#: Lifted SLH rescans after rewriting; known gadgets converge in one round.
MAX_ROUNDS = 4


def free_registers(program: Program, count: int) -> list[int]:
    """Registers the program never reads or writes, in preference order."""
    used: set[int] = set()
    for inst in program.instructions:
        op = inst.opcode
        if op.writes_rd:
            used.add(inst.rd)
        if op.reads_rs1:
            used.add(inst.rs1)
        if op.reads_rs2:
            used.add(inst.rs2)
    free = [r for r in _CANDIDATES if r not in used]
    if len(free) < count:
        raise AnalysisError(
            f"SLH needs {count} unused registers but {program.name!r} "
            f"leaves only {len(free)} free"
        )
    return free[:count]


def _predicate_sequences(inst, mask: str, temp: str) -> tuple[list[str], list[str]]:
    """(taken_edge, fallthrough_edge) mask-update sequences for a branch.

    Each recomputes the branch condition into ``temp`` as 0/-1 — ``-1``
    when the edge agrees with the condition (correct speculation), ``0``
    when it does not — then folds it into the mask with ``and``.
    """
    a, b = register_name(inst.rs1), register_name(inst.rs2)
    op = inst.opcode
    if op in (Opcode.BEQ, Opcode.BNE):
        # temp = (a != b) after the setup pair.
        setup = [f"sub {temp}, {a}, {b}", f"sltu {temp}, zero, {temp}"]
        neq_is_cond = op is Opcode.BNE
    elif op in (Opcode.BLT, Opcode.BLTU, Opcode.BGE, Opcode.BGEU):
        cmp_op = "slt" if op in (Opcode.BLT, Opcode.BGE) else "sltu"
        # temp = (a < b) after setup.
        setup = [f"{cmp_op} {temp}, {a}, {b}"]
        neq_is_cond = op in (Opcode.BLT, Opcode.BLTU)
    else:  # pragma: no cover - callers filter on is_branch
        raise AnalysisError(f"not a conditional branch: {inst}")
    # temp currently holds cond (1/0) if neq_is_cond else !cond.
    to_minus_one_if_true = f"sub {temp}, zero, {temp}"   # 1 -> -1, 0 -> 0
    to_minus_one_if_false = f"addi {temp}, {temp}, -1"   # 0 -> -1, 1 -> 0
    fold = f"and {mask}, {mask}, {temp}"
    if neq_is_cond:
        taken = setup + [to_minus_one_if_true, fold]
        fallthrough = setup + [to_minus_one_if_false, fold]
    else:
        taken = setup + [to_minus_one_if_false, fold]
        fallthrough = setup + [to_minus_one_if_true, fold]
    return taken, fallthrough


def _rewrite(
    program: Program,
    branch_pcs: set[int],
    harden_pcs: set[int],
    fence_pcs: set[int],
    name: str | None,
) -> tuple[Program, dict]:
    """Apply one SLH rewriting round over the given instruction sets."""
    mask_idx, temp_idx = free_registers(program, 2)
    mask, temp = register_name(mask_idx), register_name(temp_idx)
    rewriter = ProgramRewriter(program)
    rewriter.prepend(f".slhmask {mask}")

    first_pc = program.instructions[0].pc
    if program.entry == first_pc:
        # Detached prelude above the first instruction *and* its labels:
        # loops back to the original first label cannot reset the mask.
        rewriter.insert_top(f"li {mask}, -1")
    else:
        # Custom ``.entry``: initialize at the entry instruction (jumps
        # back to the entry label re-run the init — architecturally a
        # no-op, and none of the suite uses ``.entry``).
        rewriter.insert_before(program.entry, f"li {mask}, -1")

    for pc in sorted(branch_pcs):
        inst = program.inst_at(pc)
        target = program.inst_at(inst.imm)  # raises on wild targets
        trampoline = rewriter.fresh_label("__slh_t")
        resume = rewriter.fresh_label("__slh_r")
        taken_seq, fallthrough_seq = _predicate_sequences(inst, mask, temp)
        rewriter.replace(
            pc,
            f"{inst.opcode.mnemonic} {register_name(inst.rs1)}, "
            f"{register_name(inst.rs2)}, {trampoline}",
        )
        rewriter.insert_after(pc, *fallthrough_seq)
        rewriter.insert_label(target.pc, resume)
        rewriter.append_block(f"{trampoline}:", *taken_seq, f"j {resume}")

    for pc in sorted(harden_pcs):
        inst = program.inst_at(pc)
        base = register_name(inst.rs1)
        rewriter.insert_before(
            pc, f"addi {temp}, {base}, {inst.imm}", f"and {temp}, {temp}, {mask}"
        )
        if inst.opcode is Opcode.CFLUSH:
            rewriter.replace(pc, f"cflush 0({temp})")
        else:
            data = register_name(inst.rd if inst.is_load else inst.rs2)
            rewriter.replace(pc, f"{inst.opcode.mnemonic} {data}, 0({temp})")

    for pc in sorted(fence_pcs):
        rewriter.insert_before(pc, "fence")

    # Re-zero the scratch registers on every exit so the architectural
    # final state is bit-identical to the baseline (both boot as 0 and the
    # baseline never touches them).
    for inst in program.instructions:
        if inst.opcode is Opcode.HALT:
            rewriter.insert_before(inst.pc, f"li {mask}, 0", f"li {temp}, 0")

    mitigated = rewriter.rewrite(name=name or program.name)
    stats = {
        "instrumented_branches": len(branch_pcs),
        "hardened_accesses": len(harden_pcs),
        "fences_inserted": len(fence_pcs),
        "trampolines": len(branch_pcs),
        "mask_register": mask,
        "pc_map": rewriter.pc_map,
    }
    return mitigated, stats


def conservative_slh(
    program: Program, name: str | None = None
) -> tuple[Program, dict]:
    """Whole-program SLH: every branch predicated, every access hardened."""
    branch_pcs = {i.pc for i in program.instructions if i.is_branch}
    harden_pcs = {
        i.pc for i in program.instructions if i.is_mem and i.opcode.reads_rs1
    }
    fence_pcs = set(_orphan_entries(program))
    mitigated, stats = _rewrite(program, branch_pcs, harden_pcs, fence_pcs, name)
    stats["iterations"] = 1
    return mitigated, stats


def lifted_slh(
    program: Program, name: str | None = None, max_rounds: int = MAX_ROUNDS
) -> tuple[Program, dict]:
    """Index-masking SLH: harden only scanner-flagged transmitters.

    Per finding, the transmitter is hardened and its conditional guards
    predicated; findings guarded (even partly) by indirect jumps get a
    transmitter fence instead, since no branch predicate covers a
    BTB-injected window.  Scanner-clean programs pass through untouched.
    """
    from ...analysis.scanner import scan_program

    current = program
    totals = {
        "instrumented_branches": 0, "hardened_accesses": 0,
        "fences_inserted": 0, "trampolines": 0,
    }
    pc_map: dict[int, int] | None = None
    for round_index in range(max_rounds):
        report = scan_program(current)
        if report.clean:
            totals["iterations"] = round_index
            if pc_map is not None:
                totals["pc_map"] = pc_map
            return current, totals
        branch_pcs: set[int] = set()
        harden_pcs: set[int] = set()
        fence_pcs: set[int] = set()
        for finding in report.findings:
            guards = [current.try_inst_at(g) for g in finding.guards]
            conditional = [g for g in guards if g is not None and g.is_branch]
            if len(conditional) < len(finding.guards):
                fence_pcs.add(finding.pc)
            else:
                harden_pcs.add(finding.pc)
                branch_pcs.update(g.pc for g in conditional)
        current, stats = _rewrite(
            current, branch_pcs, harden_pcs, fence_pcs, name
        )
        round_map = stats.pop("pc_map")
        pc_map = (
            round_map if pc_map is None else compose_pc_maps(pc_map, round_map)
        )
        for key in totals:
            totals[key] += stats.get(key, 0)
    report = scan_program(current)
    if not report.clean:
        raise AnalysisError(
            f"lifted SLH did not converge on {program.name!r} within "
            f"{max_rounds} rounds ({len(report.findings)} finding(s) left)"
        )
    totals["iterations"] = max_rounds
    if pc_map is not None:
        totals["pc_map"] = pc_map
    return current, totals
