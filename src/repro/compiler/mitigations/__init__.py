"""Secure-compiler mitigation passes: software baselines for the grid.

Four source-level program transforms, each certified two ways (see
:mod:`.certify`) and exposed as first-class ``mit/<pass>/<workload>``
grid-axis values so mitigated variants ride the run cache, the lockstep
vectorizer, and the simulation fleet exactly like any other workload:

========== ==========================================================
``fence``      fence at every speculation entry point (blunt baseline)
``slh``        conservative speculative load hardening — predicate
               threaded through every branch, every access masked
``slh-lifted`` index-masking SLH: only scanner-flagged transmitters
               and their guards ("Do You Even Lift?")
``selective``  fence only scanner-flagged transmitter windows
========== ==========================================================

Pass versions feed the run-cache fingerprint via ``mitigation_tag`` so
results from different pass generations are never conflated.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from ...asm.program import Program
from ...errors import AnalysisError
from .certify import MitigationCertificate, certify
from .fencing import full_fence, selective_fence
from .slh import conservative_slh, lifted_slh

#: Bump a pass's version whenever its emitted code changes: the version is
#: part of the mitigation tag, which is part of the workload fingerprint.
PASS_VERSIONS: dict[str, int] = {
    "fence": 1,
    "slh": 1,
    "slh-lifted": 1,
    "selective": 1,
}

MITIGATION_PASSES: tuple[str, ...] = tuple(PASS_VERSIONS)

_PASSES = {
    "fence": full_fence,
    "slh": conservative_slh,
    "slh-lifted": lifted_slh,
    "selective": selective_fence,
}

_MIT_NAME_RE = re.compile(r"^mit/(?P<pass>[a-z][a-z-]*)/(?P<base>.+)$")


def mitigation_tag(pass_name: str) -> str:
    """Cache-fingerprint tag for a pass, e.g. ``slh@v1``."""
    return f"{pass_name}@v{PASS_VERSIONS[pass_name]}"


@dataclass
class MitigationResult:
    """One pass application: the mitigated program plus bookkeeping."""

    program: Program
    pass_name: str
    version: int
    changed: bool
    stats: dict = field(default_factory=dict)
    # Original pc -> mitigated continuation pc (rewriter relocation map);
    # the equivalence checker uses it to relocate return addresses.
    pc_map: dict = field(default_factory=dict, repr=False)

    @property
    def tag(self) -> str:
        return f"{self.pass_name}@v{self.version}"


def apply_mitigation(
    program: Program, pass_name: str, name: str | None = None
) -> MitigationResult:
    """Run one mitigation pass over an in-memory program."""
    if pass_name not in _PASSES:
        raise AnalysisError(
            f"unknown mitigation pass {pass_name!r}; "
            f"know {sorted(_PASSES)}"
        )
    mitigated, stats = _PASSES[pass_name](program, name=name)
    pc_map = stats.pop("pc_map", {})
    return MitigationResult(
        program=mitigated,
        pass_name=pass_name,
        version=PASS_VERSIONS[pass_name],
        changed=mitigated is not program,
        stats=stats,
        pc_map=pc_map,
    )


def certify_mitigation(
    program: Program, pass_name: str, name: str | None = None
) -> tuple[MitigationResult, MitigationCertificate]:
    """Apply a pass and certify the result (equivalence + security)."""
    result = apply_mitigation(program, pass_name, name=name)
    certificate = certify(
        program, result.program, pass_name, result.version,
        stats=result.stats, pc_map=result.pc_map,
    )
    return result, certificate


def parse_mit_name(name: str) -> tuple[str, str] | None:
    """Split ``mit/<pass>/<base>`` into (pass, base); None if not mit-shaped."""
    match = _MIT_NAME_RE.match(name)
    if match is None:
        return None
    pass_name = match.group("pass")
    if pass_name not in _PASSES:
        raise AnalysisError(
            f"unknown mitigation pass in workload name {name!r}; "
            f"know {sorted(_PASSES)}"
        )
    return pass_name, match.group("base")


def build_mitigated_workload(name: str, scale: str = "ref"):
    """Build a ``mit/<pass>/<base>`` workload: mitigate base, keep checks.

    The mitigated source round-trips through plain assembly text (the
    ``.slhmask`` directive included), so any fleet worker can rebuild the
    exact image from the name alone — the mitigation axis needs no corpus
    file, same as ``fuzz/`` names.
    """
    from ...workloads.spec import Workload
    from ...workloads.suite import build_workload

    parsed = parse_mit_name(name)
    if parsed is None:
        raise AnalysisError(f"not a mitigated-workload name: {name!r}")
    pass_name, base_name = parsed
    base = build_workload(base_name, scale)
    result = apply_mitigation(base.assemble(), pass_name, name=name)
    if result.program.source is None:  # pragma: no cover - rewriter guarantees
        raise AnalysisError(f"pass {pass_name!r} dropped source for {name!r}")
    return Workload(
        name=name,
        source=result.program.source,
        description=f"{base.description} [{result.tag}]",
        category=base.category,
        check_reg=base.check_reg,
        check_value=base.check_value,
        mitigation=result.tag,
    )


__all__ = [
    "MITIGATION_PASSES",
    "PASS_VERSIONS",
    "MitigationCertificate",
    "MitigationResult",
    "apply_mitigation",
    "build_mitigated_workload",
    "certify",
    "certify_mitigation",
    "conservative_slh",
    "full_fence",
    "lifted_slh",
    "mitigation_tag",
    "parse_mit_name",
    "selective_fence",
]
