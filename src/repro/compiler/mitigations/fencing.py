"""Fence-insertion mitigation passes: full (blunt) and selective (scanner-led).

*Full fencing* places a ``fence`` at every speculation entry point the
hardware window model knows: both successors of every conditional branch
(the control-dependence region's entries) and the entry of every orphan
landing pad (code reachable only through an indirect jump, the v2 shape).
Every speculative window is therefore drained before its first instruction
issues — the classic compiler baseline and the most expensive one, matching
the paper's fence-class hardware policy in scope.

*Selective fencing* fences only scanner-flagged transmitter windows
(PR-2 gadget scanner): batch-fence every finding's transmitter, rescan, and
repeat to fixpoint.  It is the batched form of the repair loop's ``load``
strategy and the cheapest pure-fence scheme.
"""

from __future__ import annotations

from ...asm.program import Program
from ...errors import AnalysisError
from ...isa import INSTRUCTION_BYTES, Opcode
from ..rewriter import ProgramRewriter, compose_pc_maps

#: Backstop for selective fencing; every known gadget closes in <= 2 rounds.
MAX_ROUNDS = 16


def _orphan_entries(program: Program) -> list[int]:
    """Entry pcs of code reachable only through indirect jumps."""
    from ...analysis.scanner import _orphan_entries as scan_orphans
    from ...cfg.builder import build_all_cfgs

    covered: set[int] = set()
    for cfg in build_all_cfgs(program):
        covered.update(cfg.block_of_pc)
    return scan_orphans(program, covered)


def speculation_entry_sites(program: Program) -> list[int]:
    """Every pc where a hardware speculation window begins.

    Both successors of each conditional branch, plus each orphan landing
    pad entry (entered mid-speculation through a predicted indirect jump).
    Sites already holding a fence are skipped, making the pass idempotent.
    """
    sites: set[int] = set()
    for inst in program.instructions:
        if inst.is_branch:
            for pc in (inst.pc + INSTRUCTION_BYTES, inst.imm):
                succ = program.try_inst_at(pc)
                if succ is not None and succ.opcode is not Opcode.FENCE:
                    sites.add(pc)
    for pc in _orphan_entries(program):
        entry = program.try_inst_at(pc)
        if entry is not None and entry.opcode is not Opcode.FENCE:
            sites.add(pc)
    return sorted(sites)


def _fence_sites(program: Program, sites: list[int], name: str | None):
    """Fence the given pcs, returning (program, pc_map)."""
    rewriter = ProgramRewriter(program)
    for pc in sites:
        rewriter.insert_before(pc, "fence")
    return rewriter.rewrite(name=name or program.name), rewriter.pc_map


def full_fence(program: Program, name: str | None = None) -> tuple[Program, dict]:
    """Fence every speculation entry point; returns (program, stats)."""
    sites = speculation_entry_sites(program)
    if not sites:
        return program, {"fences_inserted": 0, "iterations": 1}
    mitigated, pc_map = _fence_sites(program, sites, name)
    return mitigated, {
        "fences_inserted": len(sites), "iterations": 1, "pc_map": pc_map,
    }


def selective_fence(
    program: Program, name: str | None = None, max_rounds: int = MAX_ROUNDS
) -> tuple[Program, dict]:
    """Fence only scanner-flagged transmitters, to fixpoint."""
    from ...analysis.scanner import scan_program

    current = program
    fences = 0
    pc_map: dict[int, int] | None = None
    for round_index in range(max_rounds):
        report = scan_program(current)
        if report.clean:
            stats = {"fences_inserted": fences, "iterations": round_index}
            if pc_map is not None:
                stats["pc_map"] = pc_map
            return current, stats
        sites = sorted({finding.pc for finding in report.findings})
        current, round_map = _fence_sites(current, sites, name)
        pc_map = (
            round_map if pc_map is None else compose_pc_maps(pc_map, round_map)
        )
        fences += len(sites)
    report = scan_program(current)
    if not report.clean:
        raise AnalysisError(
            f"selective fencing did not converge on {program.name!r} "
            f"within {max_rounds} rounds ({len(report.findings)} finding(s) left)"
        )
    stats = {"fences_inserted": fences, "iterations": max_rounds}
    if pc_map is not None:
        stats["pc_map"] = pc_map
    return current, stats
