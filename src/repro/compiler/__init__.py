"""Levioso compiler pass: reconvergence & control-dependence analysis."""

from .branch_deps import (
    BranchDependencyInfo,
    count_speculation_sources,
    is_speculation_source,
)
from .control_dep import (
    all_control_dependence,
    control_dependence_region,
    control_dependent_pcs,
)
from .pass_manager import (
    ensure_analysis,
    insert_fences,
    repair_sites,
    run_levioso_pass,
)
from .reconvergence import (
    BranchReconvergence,
    analyze_reconvergence,
    reconvergence_distance,
)
from .stats import (
    DynamicDependenceStats,
    StaticCompilerStats,
    dynamic_dependence_stats,
    static_stats,
)

__all__ = [
    "BranchDependencyInfo",
    "BranchReconvergence",
    "DynamicDependenceStats",
    "StaticCompilerStats",
    "all_control_dependence",
    "analyze_reconvergence",
    "control_dependence_region",
    "control_dependent_pcs",
    "count_speculation_sources",
    "dynamic_dependence_stats",
    "ensure_analysis",
    "insert_fences",
    "is_speculation_source",
    "repair_sites",
    "reconvergence_distance",
    "run_levioso_pass",
    "static_stats",
]
