"""Compiler-analysis statistics (Table 2 inputs + trace-based dependence).

Static statistics come straight from the analysis results.  The dynamic
statistics here replay a committed-path trace from the functional simulator
with a fixed resolution window — a *static* approximation of dependence
pressure.  The headline motivation measurement (Fig. 1) instead samples the
timing model at load-issue time (`repro.harness.experiments.fig1`), because
what matters is which branches are *still unresolved when the load is
ready*, not a uniform window.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..asm.program import Program
from ..functional.simulator import TraceEntry
from ..isa import Opcode
from .branch_deps import BranchDependencyInfo
from .pass_manager import ensure_analysis
from .reconvergence import reconvergence_distance, BranchReconvergence


@dataclass
class StaticCompilerStats:
    """One row of Table 2."""

    program: str
    static_instructions: int
    static_branches: int
    reconvergence_coverage: float  # fraction of branches with a reconv point
    mean_region_size: float        # instructions per control-dependence region
    mean_reconv_distance: float    # instructions from branch to reconvergence
    frac_insts_in_any_region: float


def static_stats(program: Program) -> StaticCompilerStats:
    """Compute the static analysis row for one program."""
    info = ensure_analysis(program)
    distances = []
    for branch_pc, reconv in info.reconv_pc.items():
        record = BranchReconvergence(branch_pc, reconv, "")
        d = reconvergence_distance(record)
        if d is not None:
            distances.append(abs(d))
    region_sizes = [len(s) for s in info.control_dep_pcs.values()]
    covered_pcs: set[int] = set()
    for pcs in info.control_dep_pcs.values():
        covered_pcs.update(pcs)
    total = len(program.instructions)
    branches = len(info.reconv_pc)
    with_reconv = sum(1 for v in info.reconv_pc.values() if v is not None)
    return StaticCompilerStats(
        program=program.name,
        static_instructions=total,
        static_branches=branches,
        reconvergence_coverage=with_reconv / branches if branches else 1.0,
        mean_region_size=(
            sum(region_sizes) / len(region_sizes) if region_sizes else 0.0
        ),
        mean_reconv_distance=(
            sum(distances) / len(distances) if distances else 0.0
        ),
        frac_insts_in_any_region=len(covered_pcs) / total if total else 0.0,
    )


@dataclass
class DynamicDependenceStats:
    """Trace-based dependence statistics for one program.

    ``conservative_fraction``: dynamic instructions a conventional
    comprehensive defense must treat as branch-dependent (any older
    unresolved branch in the window).
    ``true_fraction``: instructions inside the *dynamic dependence region*
    of at least one window branch — what Levioso restricts.
    """

    program: str
    dynamic_instructions: int
    conservative_fraction: float
    true_fraction: float

    @property
    def reduction(self) -> float:
        """Relative reduction of restricted instructions (the paper's pitch)."""
        if self.conservative_fraction == 0:
            return 0.0
        return 1.0 - self.true_fraction / self.conservative_fraction


def dynamic_dependence_stats(
    program: Program,
    trace: list[TraceEntry],
    resolution_window: int = 24,
) -> DynamicDependenceStats:
    """Replay a committed trace and measure restricted-instruction fractions.

    ``resolution_window`` models how many dynamic instructions a branch stays
    unresolved for (a proxy for its ROB lifetime); both the conservative and
    the true-dependence models see the same window, so the comparison
    isolates the dependency-precision effect.
    """
    info: BranchDependencyInfo = ensure_analysis(program)

    # Active speculation windows: list of [age, reconv_pc, region_active]
    active: list[list] = []
    conservative = 0
    true_dep = 0
    total = 0

    for entry in trace:
        # Age out resolved branches.
        for rec in active:
            rec[0] += 1
        active = [rec for rec in active if rec[0] <= resolution_window]

        # Region deactivation: once the committed path reaches a branch's
        # reconvergence PC, younger instructions are control-independent.
        for rec in active:
            if rec[2] and rec[1] is not None and entry.pc == rec[1]:
                rec[2] = False

        total += 1
        if active:
            conservative += 1
        if any(rec[2] for rec in active):
            true_dep += 1

        opcode = entry.opcode
        if opcode.is_branch:
            reconv = info.reconvergence_of(entry.pc)
            active.append([0, reconv, True])
        elif opcode is Opcode.JALR:
            active.append([0, None, True])

    return DynamicDependenceStats(
        program=program.name,
        dynamic_instructions=total,
        conservative_fraction=conservative / total if total else 0.0,
        true_fraction=true_dep / total if total else 0.0,
    )
