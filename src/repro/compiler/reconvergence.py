"""Branch reconvergence analysis.

The *reconvergence point* of a conditional branch is the first instruction
that executes regardless of the branch outcome — the entry of the branch
block's immediate post-dominator.  Instructions from the reconvergence point
onward are control-independent of the branch; this is the information
Levioso's compiler communicates to the hardware (NOREBA-style).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cfg.basic_block import EXIT_BLOCK, FunctionCFG
from ..cfg.dom import PostDominatorInfo
from ..isa import Instruction


@dataclass(frozen=True)
class BranchReconvergence:
    """Reconvergence record for one static conditional branch.

    ``reconv_pc`` is None when the branch never reconverges inside its
    function (its join is the function exit): the hardware must then treat
    every younger instruction as dependent until the branch resolves, exactly
    like a conservative design.
    """

    branch_pc: int
    reconv_pc: int | None
    function: str


def analyze_reconvergence(cfg: FunctionCFG) -> dict[int, BranchReconvergence]:
    """Compute the reconvergence point of every conditional branch in ``cfg``."""
    pdom = PostDominatorInfo(cfg)
    result: dict[int, BranchReconvergence] = {}
    for branch in cfg.conditional_branches():
        bid = cfg.block_of_pc[branch.pc]
        ipdom = pdom.immediate_postdominator(bid)
        if ipdom is None or ipdom == EXIT_BLOCK:
            reconv_pc: int | None = None
        else:
            reconv_pc = cfg.blocks[ipdom].start_pc
        result[branch.pc] = BranchReconvergence(
            branch_pc=branch.pc, reconv_pc=reconv_pc, function=cfg.name
        )
    return result


def reconvergence_distance(
    record: BranchReconvergence, instruction_bytes: int = 4
) -> int | None:
    """Static distance (in instructions) from branch to reconvergence.

    A *negative* distance means the reconvergence point sits above the branch
    in the layout (common for loop back-branches whose join is the loop
    exit placed before them is rare, but loop headers joining backwards do
    occur); None when the branch never reconverges.
    """
    if record.reconv_pc is None:
        return None
    return (record.reconv_pc - record.branch_pc) // instruction_bytes
