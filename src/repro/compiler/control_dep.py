"""Control-dependence regions.

The *control-dependence region* of a branch B is the set of blocks on paths
from B's successors up to (and excluding) B's reconvergence block: the blocks
whose execution is decided by B.  Classic Ferrante-Ottenstein-Warren control
dependence computed region-wise, which is the form both the Levioso hardware
model and the verification tests consume.
"""

from __future__ import annotations

from ..cfg.basic_block import EXIT_BLOCK, FunctionCFG
from ..cfg.dom import PostDominatorInfo


def control_dependence_region(
    cfg: FunctionCFG, branch_pc: int, pdom: PostDominatorInfo | None = None
) -> frozenset[int]:
    """Block ids control-dependent on the branch at ``branch_pc``.

    Blocks reachable from either successor of the branch without passing
    through its immediate post-dominator.  When the branch never reconverges
    the region is every block reachable from its successors.
    """
    if pdom is None:
        pdom = PostDominatorInfo(cfg)
    bid = cfg.block_of_pc[branch_pc]
    block = cfg.blocks[bid]
    ipdom = pdom.immediate_postdominator(bid)
    stop = ipdom if ipdom is not None else EXIT_BLOCK

    region: set[int] = set()
    work = [s for s in block.successors if s != EXIT_BLOCK and s != stop]
    while work:
        node = work.pop()
        if node in region:
            continue
        region.add(node)
        for succ in cfg.blocks[node].successors:
            if succ != EXIT_BLOCK and succ != stop and succ not in region:
                work.append(succ)
    return frozenset(region)


def control_dependent_pcs(
    cfg: FunctionCFG, branch_pc: int, pdom: PostDominatorInfo | None = None
) -> frozenset[int]:
    """Instruction PCs control-dependent on the branch at ``branch_pc``.

    The branch's own block-suffix after the branch is empty (branches
    terminate blocks), so the region's blocks fully describe the dependent
    instructions.
    """
    region = control_dependence_region(cfg, branch_pc, pdom)
    pcs: set[int] = set()
    for bid in region:
        for inst in cfg.blocks[bid].instructions:
            pcs.add(inst.pc)
    return frozenset(pcs)


def all_control_dependence(cfg: FunctionCFG) -> dict[int, frozenset[int]]:
    """Control-dependent instruction PCs for every branch in ``cfg``."""
    pdom = PostDominatorInfo(cfg)
    return {
        branch.pc: control_dependent_pcs(cfg, branch.pc, pdom)
        for branch in cfg.conditional_branches()
    }
