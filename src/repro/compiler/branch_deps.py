"""The branch-dependency metadata Levioso ships from compiler to hardware.

:class:`BranchDependencyInfo` is the software half of the co-design: for
every static conditional branch, its reconvergence PC (or None), plus the
static control-dependence sets used by verification and statistics.  The
paper encodes this via an ISA extension; we attach it to the
:class:`~repro.asm.program.Program` as an out-of-band table — the hardware
consumes identical information either way (see DESIGN.md, substitutions).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..isa import Opcode


@dataclass
class BranchDependencyInfo:
    """Compiler-produced true-branch-dependency metadata for one program.

    Attributes:
        reconv_pc: branch PC -> reconvergence PC (None = no intra-function
            reconvergence; hardware falls back to resolve-time release).
        control_dep_pcs: branch PC -> frozenset of instruction PCs that are
            control-dependent on the branch (static; for stats/verification).
        indirect_pcs: PCs of ``jalr`` instructions — speculation sources with
            no static reconvergence point.
        function_of_branch: branch PC -> function name (diagnostics).
    """

    reconv_pc: dict[int, int | None] = field(default_factory=dict)
    control_dep_pcs: dict[int, frozenset[int]] = field(default_factory=dict)
    indirect_pcs: set[int] = field(default_factory=set)
    function_of_branch: dict[int, str] = field(default_factory=dict)

    # ------------------------------------------------------------- hw queries
    def reconvergence_of(self, branch_pc: int) -> int | None:
        """Reconvergence PC the hardware tracker should watch for."""
        return self.reconv_pc.get(branch_pc)

    def knows_branch(self, branch_pc: int) -> bool:
        return branch_pc in self.reconv_pc

    def is_control_dependent(self, inst_pc: int, branch_pc: int) -> bool:
        """Static control dependence query (verification/statistics)."""
        deps = self.control_dep_pcs.get(branch_pc)
        return deps is not None and inst_pc in deps

    # ------------------------------------------------------------- degrading
    def degraded(self, keep_reconvergence: bool) -> "BranchDependencyInfo":
        """Return weakened metadata for the compiler-information ablation.

        ``keep_reconvergence=False`` erases every reconvergence point —
        the hardware then behaves like the conservative baseline.
        Degradation must be *conservative*: a ``None`` reconvergence means
        the region never closes early, so the dependency sets may only
        stay equal or grow, never shrink — the verifier and the dynamic
        cross-check rely on this.
        """
        if keep_reconvergence:
            return self
        return BranchDependencyInfo(
            reconv_pc={pc: None for pc in self.reconv_pc},
            control_dep_pcs=dict(self.control_dep_pcs),
            indirect_pcs=set(self.indirect_pcs),
            function_of_branch=dict(self.function_of_branch),
        )

    # ------------------------------------------------------------- statistics
    def summary(self) -> dict[str, float]:
        """Aggregate static statistics (feeds Table 2)."""
        total = len(self.reconv_pc)
        with_reconv = sum(1 for v in self.reconv_pc.values() if v is not None)
        region_sizes = [len(s) for s in self.control_dep_pcs.values()]
        return {
            "static_branches": float(total),
            "with_reconvergence": float(with_reconv),
            "reconvergence_coverage": with_reconv / total if total else 1.0,
            "mean_region_size": (
                sum(region_sizes) / len(region_sizes) if region_sizes else 0.0
            ),
            "max_region_size": float(max(region_sizes, default=0)),
            "indirect_jumps": float(len(self.indirect_pcs)),
        }


def count_speculation_sources(info: BranchDependencyInfo) -> int:
    """Total speculation sources the hardware must track."""
    return len(info.reconv_pc) + len(info.indirect_pcs)


def is_speculation_source(opcode: Opcode) -> bool:
    """Opcodes whose outcome prediction creates a speculative window."""
    return opcode.is_branch or opcode is Opcode.JALR
